//! # polymix
//!
//! A reproduction of *"Oil and Water Can Mix: An Integration of Polyhedral
//! and AST-based Transformations"* (Shirako, Pouchet, Sarkar — SC 2014).
//!
//! This facade crate re-exports the full workspace so downstream users can
//! depend on a single crate:
//!
//! ```
//! use polymix::polybench::suite;
//! let kernels = suite::all_kernels();
//! assert!(kernels.len() >= 20);
//! ```
pub use polymix_ast as ast;
pub use polymix_cachesim as cachesim;
pub use polymix_codegen as codegen;
pub use polymix_core as core;
pub use polymix_deps as deps;
pub use polymix_dl as dl;
pub use polymix_ir as ir;
pub use polymix_math as math;
pub use polymix_pluto as pluto;
pub use polymix_polybench as polybench;
pub use polymix_runtime as runtime;
pub use polymix_verify as verify;
