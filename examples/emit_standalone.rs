//! Source-to-source: emit an optimized kernel as a standalone Rust
//! program (what the benchmark harness compiles with `rustc -O`), the
//! reproduction's analogue of the paper's generated OpenMP C.
//!
//! ```text
//! cargo run --release --example emit_standalone > /tmp/gemm_opt.rs
//! rustc -O /tmp/gemm_opt.rs -o /tmp/gemm_opt && /tmp/gemm_opt
//! ```

use polymix::codegen::emit::{emit_rust, EmitOptions};
use polymix::core::{optimize_poly_ast, PolyAstOptions};
use polymix::polybench::kernel_by_name;

fn main() {
    let kernel = kernel_by_name("gemm").unwrap();
    let scop = (kernel.build)();
    let prog = match optimize_poly_ast(
        &scop,
        &PolyAstOptions {
            tile: 32,
            unroll: (2, 2),
            ..Default::default()
        },
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gemm failed to optimize: {e}");
            std::process::exit(1);
        }
    };
    let params = kernel.dataset("small").params;
    let src = emit_rust(
        &prog,
        &EmitOptions {
            params: params.clone(),
            flops: (kernel.flops)(&params),
            threads: 4,
            init_rust: Some(kernel.init_rust(&prog.scop)),
            reps: 3,
            ..Default::default()
        },
    );
    print!("{src}");
}
