//! Pipeline parallelism on a heat-diffusion sweep: runs the same
//! dependent 2-D update with the point-to-point pipeline runtime and with
//! the wavefront-doall runtime (Fig. 6's comparison), verifying they
//! produce identical fields, then shows the poly+AST flow discovering the
//! pipeline automatically for seidel-2d.

use polymix::ast::pretty::render;
use polymix::ast::tree::Par;
use polymix::core::{optimize_poly_ast, PolyAstOptions};
use polymix::polybench::kernel_by_name;
use polymix::runtime::{pipeline_2d, wavefront_2d, GridSweep};
use std::sync::Mutex;

fn main() {
    // --- 1. The runtime primitives on a dependent sweep -----------------
    let n = 64usize;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: n as i64,
    };
    let run = |use_pipeline: bool| -> Vec<f64> {
        let field: Vec<Mutex<f64>> = (0..n * n)
            .map(|k| Mutex::new(((k * 7) % 13) as f64))
            .collect();
        let body = |i: i64, j: i64| {
            let (i, j) = (i as usize, j as usize);
            let up = *field[(i - 1) * n + j].lock().unwrap();
            let left = *field[i * n + j - 1].lock().unwrap();
            let me = *field[i * n + j].lock().unwrap();
            *field[i * n + j].lock().unwrap() = 0.25 * (2.0 * me + up + left);
        };
        if use_pipeline {
            pipeline_2d(grid, 4, body).expect("pipeline sweep");
        } else {
            wavefront_2d(grid, 4, body).expect("wavefront sweep");
        }
        field.into_iter().map(|m| m.into_inner().unwrap()).collect()
    };
    let by_pipeline = run(true);
    let by_wavefront = run(false);
    assert_eq!(by_pipeline, by_wavefront);
    println!("pipeline and wavefront runtimes agree on a {n}x{n} dependent sweep");

    // --- 2. The optimizer discovering pipeline parallelism --------------
    let kernel = kernel_by_name("seidel-2d").unwrap();
    let scop = (kernel.build)();
    let prog = optimize_poly_ast(
        &scop,
        &PolyAstOptions {
            tile: 16,
            time_tile: 4,
            unroll: (1, 1),
            ..Default::default()
        },
    )
    .expect("seidel-2d optimizes");
    println!("\nseidel-2d under poly+AST (note the `pipefor` tile loop):\n");
    println!("{}", render(&prog));
    let mut found = false;
    let mut body = prog.body.clone();
    body.visit_loops_mut(&mut |l| {
        if l.par == Par::Pipeline {
            found = true;
        }
    });
    assert!(found, "expected a pipeline-parallel loop");
    println!("the time-tile loop is pipeline-parallel: threads own column\nblocks and synchronize point-to-point, no global barriers.");
}
