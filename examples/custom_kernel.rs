//! Bring your own kernel: define a static control part with the builder
//! DSL, inspect its dependences, and optimize it with both the Pluto-like
//! baseline and the poly+AST flow.
//!
//! The kernel is a blurred cross-correlation:
//!
//! ```text
//! for (i = 0; i < N; i++)
//!   for (j = 0; j < M; j++) {
//!     T[i][j] = 0.25 * (IN[i][j] + IN[i][j+1] + IN[i+1][j] + IN[i+1][j+1]);
//!   }
//! for (i = 0; i < N; i++)
//!   for (j = 0; j < M; j++)
//!     OUT[i][j] = T[i][j] * K[j];
//! ```
//!
//! The two nests share `T`, so the optimizers decide whether to fuse.

use polymix::ast::interp::{alloc_arrays, execute};
use polymix::ast::pretty::render;
use polymix::core::{optimize_poly_ast, PolyAstOptions};
use polymix::deps::build_podg;
use polymix::ir::builder::{con, ix, par, ScopBuilder};
use polymix::ir::{Expr, Scop};
use polymix::pluto::{optimize_pluto, PlutoOptions, PlutoVariant};

fn build() -> Scop {
    let mut b = ScopBuilder::new("blur-scale", &["N", "M"], &[12, 12]);
    let input = b.array_dims("IN", vec![par("N") + con(1), par("M") + con(1)]);
    let t = b.array("T", &["N", "M"]);
    let k = b.array("K", &["M"]);
    let out = b.array("OUT", &["N", "M"]);

    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("M"));
    let sum = Expr::add(
        Expr::add(
            b.rd(input, &[ix("i"), ix("j")]),
            b.rd(input, &[ix("i"), ix("j") + con(1)]),
        ),
        Expr::add(
            b.rd(input, &[ix("i") + con(1), ix("j")]),
            b.rd(input, &[ix("i") + con(1), ix("j") + con(1)]),
        ),
    );
    b.stmt("BLUR", t, &[ix("i"), ix("j")], Expr::mul(Expr::Const(0.25), sum));
    b.exit();
    b.exit();

    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("M"));
    let prod = Expr::mul(b.rd(t, &[ix("i"), ix("j")]), b.rd(k, &[ix("j")]));
    b.stmt("SCALE", out, &[ix("i"), ix("j")], prod);
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

fn main() {
    let scop = build();

    // Inspect the dependence graph the optimizers will reason about.
    let podg = build_podg(&scop);
    println!(
        "SCoP '{}': {} statements, {} dependence polyhedra",
        scop.name,
        scop.statements.len(),
        podg.deps.len()
    );
    for d in &podg.deps {
        println!(
            "  {:?} -> {:?} ({:?}{})",
            d.src,
            d.dst,
            d.kind,
            if d.is_reduction { ", reduction" } else { "" }
        );
    }

    // Baseline vs poly+AST.
    let baseline = optimize_pluto(
        &scop,
        &PlutoOptions {
            variant: PlutoVariant::Pocc,
            tiling: false,
            ..Default::default()
        },
    )
    .expect("baseline optimizes");
    println!("\n== Pluto-like baseline ==\n{}", render(&baseline));
    let ours = optimize_poly_ast(
        &scop,
        &PolyAstOptions {
            tiling: false,
            unroll: (1, 1),
            ..Default::default()
        },
    )
    .expect("poly+AST optimizes");
    println!("== poly+AST ==\n{}", render(&ours));

    // Execute both and compare (the interpreter is the semantics oracle).
    let params = vec![12, 12];
    let run = |prog| {
        let mut arrays = alloc_arrays(&scop, &params);
        for (ai, arr) in arrays.iter_mut().enumerate() {
            for (k, x) in arr.iter_mut().enumerate() {
                *x = ((ai * 13 + k * 7) % 32) as f64 / 32.0;
            }
        }
        execute(prog, &params, &mut arrays);
        arrays
    };
    let a = run(&baseline);
    let b = run(&ours);
    assert_eq!(a, b, "both optimizers must preserve semantics");
    println!("verified: baseline and poly+AST agree bit-for-bit");
}
