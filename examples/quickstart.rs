//! Quickstart: optimize a PolyBench kernel with the poly+AST flow, show
//! the transformed loop nest, and verify it against the reference
//! implementation with the built-in interpreter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use polymix::ast::interp::execute;
use polymix::ast::pretty::render;
use polymix::core::{optimize_poly_ast, PolyAstOptions};
use polymix::dl::Machine;
use polymix::polybench::kernel_by_name;

fn main() {
    // 1. Pick a kernel from the PolyBench suite.
    let kernel = kernel_by_name("gemm").expect("gemm is in the suite");
    let scop = (kernel.build)();
    println!("kernel: {} — {}\n", kernel.name, kernel.description);

    // 2. Run the paper's optimization flow (Algorithm 1): DL-guided
    //    fusion/permutation, AST skewing, parallelization, tiling,
    //    register tiling.
    let optimized = optimize_poly_ast(
        &scop,
        &PolyAstOptions {
            machine: Machine::host(),
            tile: 32,
            unroll: (2, 2),
            ..Default::default()
        },
    )
    .expect("gemm optimizes");
    println!("optimized loop nest:\n{}", render(&optimized));

    // 3. Verify semantics against the native reference implementation.
    let params = kernel.dataset("mini").params;
    let mut expected = kernel.fresh_arrays(&scop, &params);
    (kernel.reference)(&params, &mut expected);

    let mut actual = kernel.fresh_arrays(&scop, &params);
    execute(&optimized, &params, &mut actual);

    assert_eq!(expected, actual, "optimized code must match the reference");
    println!("verified: optimized program matches the reference bit-for-bit");
}
