//! The workspace's foundational oracle test: for every PolyBench kernel,
//! generating code from the SCoP's *original* schedules and executing it
//! with the AST interpreter must reproduce the native Rust reference
//! implementation bit-for-bit. Everything else (optimizers, transforms)
//! builds on this equivalence.

use polymix::codegen::from_poly::original_program;
use polymix::polybench::{all_kernels, extended_kernels};

#[test]
fn every_kernel_scop_matches_its_reference_bitwise() {
    check_at(|p| p.to_vec());
}

#[test]
fn every_kernel_scop_matches_at_awkward_sizes() {
    // Non-round sizes catch floating-point association mismatches and
    // boundary off-by-ones that round sizes can hide.
    check_at(|p| p.iter().map(|&x| x + 3).collect());
}

fn check_at(adjust: impl Fn(&[i64]) -> Vec<i64>) {
    for k in all_kernels().into_iter().chain(extended_kernels()) {
        let scop = (k.build)();
        let params = adjust(&k.dataset("mini").params);

        let mut expected = k.fresh_arrays(&scop, &params);
        (k.reference)(&params, &mut expected);

        let prog = original_program(&scop).expect("original program");
        let mut actual = k.fresh_arrays(&scop, &params);
        polymix::ast::interp::execute(&prog, &params, &mut actual);

        for (ai, (e, a)) in expected.iter().zip(&actual).enumerate() {
            assert_eq!(
                e.len(),
                a.len(),
                "{}: array {ai} ({}) length mismatch",
                k.name,
                scop.arrays[ai].name
            );
            for (off, (x, y)) in e.iter().zip(a).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "{}: array {} ({}) differs at offset {off}: reference {x:?} vs scop {y:?}",
                    k.name,
                    ai,
                    scop.arrays[ai].name
                );
            }
        }
    }
}

#[test]
fn flop_formulas_match_domain_enumeration() {
    // The closed-form FLOP formulas must agree with brute-force counting
    // (domain cardinality × flops per statement instance) at mini sizes.
    for k in all_kernels().into_iter().chain(extended_kernels()) {
        let scop = (k.build)();
        let params = k.dataset("mini").params;
        let counted = scop.flops_by_enumeration(&params);
        let formula = (k.flops)(&params);
        let rel = (counted as f64 - formula as f64).abs() / counted.max(1) as f64;
        assert!(
            rel < 0.35,
            "{}: formula {formula} vs counted {counted} (rel {rel:.2})",
            k.name
        );
    }
}
