#![cfg(feature = "proptest")]
//! Property-based end-to-end testing: randomly generated two-statement
//! producer/consumer kernels (with random stencil offsets, loop extents
//! and coupling) must survive both optimizers bit-for-bit. This hunts for
//! legality bugs the fixed PolyBench suite might miss.

use polymix::ast::interp::{alloc_arrays, execute};
use polymix::codegen::from_poly::original_program;
use polymix::core::{optimize_poly_ast, PolyAstOptions};
use polymix::ir::builder::{con, ix, par, ScopBuilder};
use polymix::ir::{BinOp, Expr, Scop};
use polymix::pluto::{optimize_pluto, PlutoOptions, PlutoVariant};
use proptest::prelude::*;

/// Parameters of a random kernel.
#[derive(Clone, Debug)]
struct Spec {
    n: i64,
    /// Stencil offsets (di, dj) of the producer's reads, each in [-1, 1].
    offs: Vec<(i64, i64)>,
    /// Whether the producer accumulates (+=) or assigns.
    accumulate: bool,
    /// Whether the consumer reads the producer output transposed.
    transpose: bool,
    /// Whether the consumer updates in place (carried dependence).
    in_place: bool,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        6i64..12,
        prop::collection::vec((-1i64..=1, -1i64..=1), 1..4),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n, offs, accumulate, transpose, in_place)| Spec {
            n,
            offs,
            accumulate,
            transpose,
            in_place,
        })
}

/// Builds: for i,j in [1, N-1): B[i][j] (=|+=) Σ A[i+di][j+dj]
///         for i,j in [1, N-1): C[i][j] (=|+=) B[(i|j)][(j|i)] * 0.5
fn build(spec: &Spec) -> Scop {
    let mut b = ScopBuilder::new("random", &["N"], &[spec.n]);
    b.assume_params_at_least(3);
    let a = b.array("A", &["N", "N"]);
    let bb = b.array("B", &["N", "N"]);
    let c = b.array("C", &["N", "N"]);
    b.enter("i", con(1), par("N") - con(1));
    b.enter("j", con(1), par("N") - con(1));
    let mut sum = b.rd(
        a,
        &[ix("i") + con(spec.offs[0].0), ix("j") + con(spec.offs[0].1)],
    );
    for &(di, dj) in &spec.offs[1..] {
        sum = Expr::add(sum, b.rd(a, &[ix("i") + con(di), ix("j") + con(dj)]));
    }
    if spec.accumulate {
        b.stmt_update("P", bb, &[ix("i"), ix("j")], BinOp::Add, sum);
    } else {
        b.stmt("P", bb, &[ix("i"), ix("j")], sum);
    }
    b.exit();
    b.exit();
    b.enter("i", con(1), par("N") - con(1));
    b.enter("j", con(1), par("N") - con(1));
    let src = if spec.transpose {
        b.rd(bb, &[ix("j"), ix("i")])
    } else {
        b.rd(bb, &[ix("i"), ix("j")])
    };
    let val = Expr::mul(src, Expr::Const(0.5));
    if spec.in_place {
        b.stmt_update("Q", c, &[ix("i"), ix("j")], BinOp::Add, val);
    } else {
        b.stmt("Q", c, &[ix("i"), ix("j")], val);
    }
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

fn run(prog: &polymix::ast::tree::Program, n: i64) -> Vec<Vec<f64>> {
    let mut arrays = alloc_arrays(&prog.scop, &[n]);
    for (ai, arr) in arrays.iter_mut().enumerate() {
        for (k, x) in arr.iter_mut().enumerate() {
            *x = ((ai * 31 + k * 7) % 23) as f64 / 23.0;
        }
    }
    execute(prog, &[n], &mut arrays);
    arrays
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn poly_ast_preserves_random_kernels(spec in spec_strategy()) {
        let scop = build(&spec);
        let reference = run(&original_program(&scop).expect("original program"), spec.n);
        let opt = optimize_poly_ast(&scop, &PolyAstOptions {
            tile: 3,
            time_tile: 2,
            unroll: (2, 2),
            ..Default::default()
        });
        let opt = match opt {
            Ok(p) => p,
            Err(e) => return Err(format!("spec {spec:?}: {e}")),
        };
        let got = run(&opt, spec.n);
        prop_assert_eq!(&reference, &got, "spec {:?}", spec);
    }

    #[test]
    fn pluto_preserves_random_kernels(spec in spec_strategy()) {
        let scop = build(&spec);
        let reference = run(&original_program(&scop).expect("original program"), spec.n);
        for variant in [PlutoVariant::Pocc, PlutoVariant::MaxFuse, PlutoVariant::NoFuse] {
            let opt = optimize_pluto(&scop, &PlutoOptions {
                variant,
                tile: 3,
                time_tile: 2,
                ..Default::default()
            });
            let opt = match opt {
                Ok(p) => p,
                Err(e) => return Err(format!("spec {spec:?} variant {variant:?}: {e}")),
            };
            let got = run(&opt, spec.n);
            prop_assert_eq!(&reference, &got, "spec {:?} variant {:?}", spec, variant);
        }
    }
}
