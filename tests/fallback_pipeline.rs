//! Regression tests for the graceful-degradation contract: a SCoP the
//! Pluto-like scheduler cannot handle must still compile (via the
//! `maxfuse → smartfuse → nofuse → identity` fallback chain) and run
//! correctly, and a failing kernel must not abort a multi-kernel sweep —
//! it becomes an `error(<stage>)` cell instead.

use polymix::ast::interp::{alloc_arrays, execute};
use polymix::codegen::from_poly::{generate, original_program};
use polymix::ir::builder::{con, ix, par, ScopBuilder};
use polymix::ir::error::Stage;
use polymix::ir::{Expr, Scop};
use polymix::math::IntMat;
use polymix::pluto::scheduler::{schedule_pluto, schedule_with_fallback};
use polymix::pluto::{optimize_pluto, Fusion, PlutoOptions, PlutoVariant};
use polymix_bench::runner::Runner;
use polymix_bench::variants::{build_variant, Variant};
use polymix_dl::Machine;
use polymix_polybench::{kernel_by_name, Dataset, Group, InitSpec, Kernel};

/// `for (i = N-1; i >= 0; i--) B[i] = B[i+1] + 1.0;`
///
/// The *original* schedule reverses the loop (`θ(i) = N-1-i`), so the
/// flow dependence runs from higher to lower `i`. The scheduler's
/// candidate rows are non-negative iterator combinations only, so every
/// fusion heuristic fails ("no legal row combination") and the fallback
/// chain must bottom out at the identity (original) schedule — which is
/// always legal because it reproduces the original execution order.
fn reversed_scan_scop() -> Scop {
    let mut b = ScopBuilder::new("reversed-scan", &["N"], &[12]);
    let arr = b.array_dims("B", vec![par("N") + con(1)]);
    b.enter("i", con(0), par("N"));
    let body = Expr::add(b.rd(arr, &[ix("i") + con(1)]), Expr::Const(1.0));
    b.stmt("S", arr, &[ix("i")], body);
    b.exit();
    let mut scop = b.finish().expect("well-formed SCoP");
    let sched = &mut scop.statements[0].schedule;
    sched.alpha = IntMat::from_rows(&[vec![-1]]);
    sched.gamma = vec![vec![1, -1]]; // θ(i) = -i + N - 1 ∈ [0, N-1]
    scop
}

#[test]
fn infeasible_scop_falls_back_to_identity_schedule() {
    let scop = reversed_scan_scop();

    // Every fusion heuristic must fail outright …
    for f in [Fusion::Max, Fusion::Smart, Fusion::None] {
        let err = schedule_pluto(&scop, f).expect_err("reversed dep has no legal candidate row");
        assert_eq!(err.stage(), Stage::Scheduling);
    }

    // … so the chain degrades to the identity rung, recording one error
    // per rung tried.
    let fb = schedule_with_fallback(&scop, Fusion::Max);
    assert!(fb.degraded());
    assert_eq!(fb.used, None, "no heuristic rung may claim success");
    assert_eq!(fb.errors.len(), 3);
    assert_eq!(
        fb.schedules[0], scop.statements[0].schedule,
        "identity rung must return the original schedule"
    );

    // The fallback schedule must code-generate and reproduce the
    // reference semantics exactly.
    let params = [12i64];
    let prog = generate(&scop, &fb.schedules).expect("identity fallback codegens");
    let reference = original_program(&scop).expect("reference program");
    let mut got = alloc_arrays(&scop, &params);
    execute(&prog, &params, &mut got);
    let mut want = alloc_arrays(&scop, &params);
    execute(&reference, &params, &mut want);
    assert_eq!(got, want);
    // The scan must actually run reversed: B[0] accumulates all N
    // increments (a forward scan would leave B[0] == 1.0).
    assert_eq!(got[0][0], 12.0);
}

#[test]
fn full_pluto_pipeline_degrades_instead_of_panicking() {
    let scop = reversed_scan_scop();
    let params = [12i64];
    let reference = original_program(&scop).expect("reference program");
    let mut want = alloc_arrays(&scop, &params);
    execute(&reference, &params, &mut want);

    for variant in [PlutoVariant::MaxFuse, PlutoVariant::Pocc, PlutoVariant::NoFuse] {
        let prog = optimize_pluto(
            &scop,
            &PlutoOptions {
                variant,
                tile: 4,
                time_tile: 4,
                tiling: true,
                unroll: (1, 1),
            },
        )
        .expect("pipeline degrades, never dies");
        let mut got = alloc_arrays(&scop, &params);
        execute(&prog, &params, &mut got);
        assert_eq!(got, want, "{variant:?} output diverged from reference");
    }
}

/// A kernel whose original schedule is structurally broken (singular α),
/// so even the identity rung cannot code-generate: the hard-failure case
/// a sweep must survive.
fn poisoned_build() -> Scop {
    let mut b = ScopBuilder::new("poisoned", &["N"], &[12]);
    let arr = b.array_dims("B", vec![par("N") + con(1)]);
    b.enter("i", con(0), par("N"));
    let body = Expr::add(b.rd(arr, &[ix("i") + con(1)]), Expr::Const(1.0));
    b.stmt("S", arr, &[ix("i")], body);
    b.exit();
    let mut scop = b.finish().expect("well-formed SCoP");
    scop.statements[0].schedule.alpha = IntMat::zeros(1, 1);
    scop
}

fn poisoned_reference(_params: &[i64], _arrays: &mut [Vec<f64>]) {}

fn poisoned_flops(_params: &[i64]) -> u64 {
    1
}

fn poisoned_datasets() -> Vec<Dataset> {
    vec![Dataset {
        name: "mini",
        params: vec![12],
    }]
}

fn poisoned_kernel() -> Kernel {
    Kernel {
        name: "poisoned",
        description: "kernel whose schedule is forced to fail",
        group: Group::Doall,
        build: poisoned_build,
        reference: poisoned_reference,
        flops: poisoned_flops,
        datasets: poisoned_datasets,
        init: InitSpec::generic(),
    }
}

#[test]
fn sweep_records_failing_kernel_and_continues() {
    let machine = Machine::nehalem();
    let kernels = vec![
        kernel_by_name("gemm").expect("gemm exists"),
        poisoned_kernel(),
        kernel_by_name("jacobi-2d-imper").expect("jacobi-2d-imper exists"),
    ];

    // Mirror of the figure-sweep loop: a failed kernel records an
    // `error(<stage>)` cell and the sweep moves on.
    let mut cells = Vec::new();
    for k in &kernels {
        match build_variant(k, Variant::Native, &machine) {
            Ok(prog) => {
                let scop = (k.build)();
                let params = k.dataset("mini").params;
                let mut arrays = k.fresh_arrays(&scop, &params);
                execute(&prog, &params, &mut arrays);
                cells.push("ok".to_string());
            }
            Err(e) => cells.push(e.cell()),
        }
    }
    assert_eq!(cells, ["ok", "error(codegen)", "ok"]);
}

#[test]
fn runner_failure_is_recorded_not_fatal() {
    let gemm = kernel_by_name("gemm").expect("gemm exists");
    let machine = Machine::nehalem();
    let prog = build_variant(&gemm, Variant::Native, &machine).expect("gemm builds");
    let params = gemm.dataset("mini").params;

    let mut runner = Runner::new(1);
    runner.work_dir = std::env::temp_dir().join("polymix-fallback-runner-test");
    runner.rustc_flags = vec!["--definitely-not-a-flag".into()];
    let err = runner
        .run(&gemm, &prog, &params, "gemm_bad_flags")
        .expect_err("bogus rustc flag must fail the run");
    assert_eq!(err.stage(), Stage::Runner);
    assert_eq!(err.cell(), "error(runner)");
}
