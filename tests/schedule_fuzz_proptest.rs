#![cfg(feature = "proptest")]
// proptest-regressions are intentionally not persisted for this fuzz target.
//! Schedule fuzzing: random `2d+1` schedules (signed permutations with
//! retiming and β interleavings) are generated for a two-statement
//! producer/consumer kernel; schedules that pass the legality checker
//! must execute bit-identically to the original program, and schedules
//! that the checker rejects are skipped. This cross-validates the
//! legality machinery against the code generator and interpreter.

use polymix::ast::interp::{alloc_arrays, execute};
use polymix::codegen::from_poly::{generate, original_program};
use polymix::deps::build_podg;
use polymix::deps::legality::schedules_legal_for_dep;
use polymix::ir::builder::{con, ix, par, ScopBuilder};
use polymix::ir::{Expr, Schedule, Scop};
use proptest::prelude::*;

fn kernel() -> Scop {
    // P: B[i][j] = A[i][j] + A[i][j+1];  Q: C[i][j] = B[i][j] * 0.5
    let mut b = ScopBuilder::new("fuzz", &["N"], &[7]);
    // Shifts range over ±2: assuming N ≥ 3 keeps shifted/reversed ranges
    // parametrically comparable, which the union-bound generator needs
    // (the same role PolyBench's own size assumptions play).
    b.assume_params_at_least(3);
    let a = b.array_dims("A", vec![par("N"), par("N") + con(1)]);
    let bb = b.array("B", &["N", "N"]);
    let c = b.array("C", &["N", "N"]);
    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("N"));
    let body = Expr::add(
        b.rd(a, &[ix("i"), ix("j")]),
        b.rd(a, &[ix("i"), ix("j") + con(1)]),
    );
    b.stmt("P", bb, &[ix("i"), ix("j")], body);
    b.exit();
    b.exit();
    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("N"));
    let body = Expr::mul(b.rd(bb, &[ix("i"), ix("j")]), Expr::Const(0.5));
    b.stmt("Q", c, &[ix("i"), ix("j")], body);
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

/// A random restricted schedule for a 2-D statement.
#[derive(Clone, Debug)]
struct RandSched {
    perm: bool,     // swap the two loops
    rev: [bool; 2], // reverse each level
    shift: [i64; 2],
    beta: [i64; 3],
}

fn sched_strategy() -> impl Strategy<Value = RandSched> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        -2i64..=2,
        -2i64..=2,
        0i64..=1,
        0i64..=1,
        0i64..=1,
    )
        .prop_map(|(perm, r0, r1, s0, s1, b0, b1, b2)| RandSched {
            perm,
            rev: [r0, r1],
            shift: [s0, s1],
            beta: [b0, b1, b2],
        })
}

fn materialize(r: &RandSched, p: usize) -> Schedule {
    let mut s = if r.perm {
        Schedule::from_permutation(&[1, 0], p)
    } else {
        Schedule::from_permutation(&[0, 1], p)
    };
    for k in 0..2 {
        if r.rev[k] {
            s.reverse_level(k);
        }
        s.shift_level(k, &vec![0; p], r.shift[k]);
    }
    s.beta = r.beta.to_vec();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn legal_random_schedules_execute_exactly(rp in sched_strategy(), rq in sched_strategy()) {
        let scop = kernel();
        let podg = build_podg(&scop);
        let sp = materialize(&rp, 1);
        let sq = materialize(&rq, 1);
        let by_stmt = [sp, sq];
        let legal = podg.deps.iter().all(|d| {
            schedules_legal_for_dep(d, &by_stmt[d.src.0], &by_stmt[d.dst.0])
        });
        prop_assume!(legal);
        // The generator's documented contract excludes opposite-direction
        // fusions needing min-of-affine lower bounds; skip inputs it
        // rejects (it returns a typed error rather than emit wrong code).
        let Ok(prog) = generate(&scop, &by_stmt) else {
            return Ok(());
        };

        let n = 7i64;
        let reference = {
            let prog = original_program(&scop).expect("original program");
            let mut arrays = alloc_arrays(&scop, &[n]);
            for (ai, arr) in arrays.iter_mut().enumerate() {
                for (k, x) in arr.iter_mut().enumerate() {
                    *x = ((ai * 11 + k * 3) % 17) as f64;
                }
            }
            execute(&prog, &[n], &mut arrays);
            arrays
        };
        let mut arrays = alloc_arrays(&scop, &[n]);
        for (ai, arr) in arrays.iter_mut().enumerate() {
            for (k, x) in arr.iter_mut().enumerate() {
                *x = ((ai * 11 + k * 3) % 17) as f64;
            }
        }
        execute(&prog, &[n], &mut arrays);
        prop_assert_eq!(&arrays, &reference, "schedules {:?} / {:?}", rp, rq);
    }

    /// Deliberately illegal orderings must be caught by the checker:
    /// running Q strictly before P (β order flipped) breaks the flow
    /// dependence on B.
    #[test]
    fn q_before_p_is_always_rejected(shift in -2i64..=2) {
        let scop = kernel();
        let podg = build_podg(&scop);
        let mut sp = Schedule::from_permutation(&[0, 1], 1);
        sp.beta = vec![1, 0, 0];
        sp.shift_level(0, &[0], shift);
        let mut sq = Schedule::from_permutation(&[0, 1], 1);
        sq.beta = vec![0, 0, 0];
        let by_stmt = [sp, sq];
        let legal = podg.deps.iter().all(|d| {
            schedules_legal_for_dep(d, &by_stmt[d.src.0], &by_stmt[d.dst.0])
        });
        prop_assert!(!legal);
    }
}
