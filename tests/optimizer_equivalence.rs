//! Cross-crate equivalence: every experimental variant of the harness
//! must reproduce the reference semantics on every kernel, at the mini
//! dataset and at deliberately awkward (non-multiple-of-tile) sizes that
//! exercise ragged tile edges, guards, and union bounds.

use polymix::ast::interp::execute;
use polymix::dl::Machine;
use polymix_bench::variants::{build_variant, Variant};
use polymix_polybench::{all_kernels, extended_kernels};

fn check_all(variant: Variant, bump: i64) {
    let machine = Machine::nehalem();
    for k in all_kernels().into_iter().chain(extended_kernels()) {
        let scop = (k.build)();
        // Awkward sizes: mini + bump (never a multiple of the tile size).
        let params: Vec<i64> = k
            .dataset("mini")
            .params
            .iter()
            .map(|&p| p + bump)
            .collect();
        let mut expected = k.fresh_arrays(&scop, &params);
        (k.reference)(&params, &mut expected);
        let prog = build_variant(&k, variant, &machine).expect("variant builds");
        let mut actual = k.fresh_arrays(&scop, &params);
        execute(&prog, &params, &mut actual);
        for (ai, (e, a)) in expected.iter().zip(&actual).enumerate() {
            for (off, (x, y)) in e.iter().zip(a).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "{:?} {} array {} ({}) offset {off}: {x:?} vs {y:?} (params {params:?})",
                    variant,
                    k.name,
                    ai,
                    scop.arrays[ai].name
                );
            }
        }
    }
}

#[test]
fn poly_ast_bitwise_on_awkward_sizes() {
    check_all(Variant::PolyAst, 3);
}

#[test]
fn pocc_bitwise_on_awkward_sizes() {
    check_all(Variant::Pocc, 3);
}

#[test]
fn pocc_vect_bitwise_on_awkward_sizes() {
    check_all(Variant::PoccVect, 1);
}

#[test]
fn maxfuse_bitwise_on_awkward_sizes() {
    check_all(Variant::PlutoMaxFuse, 5);
}

#[test]
fn nofuse_bitwise_on_awkward_sizes() {
    check_all(Variant::IterativeNo, 2);
}

#[test]
fn doall_only_mode_bitwise() {
    check_all(Variant::PolyAstDoallOnly, 3);
}
