//! The emitted standalone programs — including their *parallel* runtime
//! constructs (doall threads, array reductions, point-to-point pipelines,
//! wavefront diagonals) — must agree with the sequential native program
//! on every checksum. This compiles real binaries with rustc, so it
//! exercises exactly what the benchmark harness measures.

use polymix::dl::Machine;
use polymix_bench::runner::Runner;
use polymix_bench::variants::{build_variant, Variant};
use polymix_polybench::kernel_by_name;

fn runner() -> Runner {
    Runner {
        work_dir: std::env::temp_dir().join("polymix-par-tests"),
        threads: 4, // oversubscribed on small hosts: still exercises sync
        reps: 1,
        rustc_flags: vec!["-O".into()],
        ..Runner::new(4)
    }
}

fn check(kernel: &str, variant: Variant, tolerance: f64) {
    let k = kernel_by_name(kernel).unwrap();
    let machine = Machine::nehalem();
    let params = k.dataset("small").params;
    let r = runner();
    let native = build_variant(&k, Variant::Native, &machine).expect("native variant");
    let base = r
        .run(&k, &native, &params, &format!("{kernel}_native"))
        .unwrap_or_else(|e| panic!("{kernel} native: {e}"));
    let prog = build_variant(&k, variant, &machine).expect("variant builds");
    let got = r
        .run(&k, &prog, &params, &format!("{kernel}_{variant:?}"))
        .unwrap_or_else(|e| panic!("{kernel} {variant:?}: {e}"));
    let rel = (got.checksum - base.checksum).abs() / base.checksum.abs().max(1.0);
    assert!(
        rel <= tolerance,
        "{kernel} {variant:?}: checksum {} vs native {} (rel {rel:e})",
        got.checksum,
        base.checksum
    );
}

#[test]
fn doall_threads_gemm() {
    check("gemm", Variant::PolyAst, 1e-12);
}

#[test]
fn doall_threads_3mm() {
    check("3mm", Variant::PolyAst, 1e-12);
}

#[test]
fn reduction_threads_atax() {
    // Thread-private accumulation reorders FP adds: small tolerance.
    check("atax", Variant::PolyAst, 1e-9);
}

#[test]
fn reduction_threads_bicg() {
    check("bicg", Variant::PolyAst, 1e-9);
}

#[test]
fn pipeline_threads_seidel() {
    check("seidel-2d", Variant::PolyAst, 1e-12);
}

#[test]
fn pipeline_threads_jacobi2d() {
    check("jacobi-2d-imper", Variant::PolyAst, 1e-12);
}

#[test]
fn wavefront_threads_seidel_baseline() {
    check("seidel-2d", Variant::Pocc, 1e-12);
}

#[test]
fn tiled_guarded_maxfuse_2mm() {
    check("2mm", Variant::PlutoMaxFuse, 1e-12);
}
