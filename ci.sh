#!/usr/bin/env bash
# Offline CI gate: build, test, and keep the pipeline library crates free
# of new abort sites. No network access required (Cargo.lock is committed
# and all dependencies are vendored in the toolchain image).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

# The compile pipeline must degrade, never abort: deny unwrap/panic in
# the library code of the crates the pipeline runs through. `--no-deps`
# is required so the lints do not leak into path dependencies (e.g.
# polymix-deps), which are linted at their default levels.
echo "== clippy abort-site gate =="
for c in polymix-ir polymix-ast polymix-codegen polymix-pluto polymix-core; do
    echo "-- $c"
    cargo clippy --lib --no-deps -p "$c" -- \
        -D clippy::unwrap_used -D clippy::panic
done

echo "CI OK"
