#!/usr/bin/env bash
# Offline CI gate: build, test, and keep the pipeline library crates free
# of new abort sites. No network access required (Cargo.lock is committed
# and all dependencies are vendored in the toolchain image).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

# The compile pipeline must degrade, never abort: deny unwrap/panic in
# the library code of every workspace crate the pipeline runs through,
# including the analysis stack (deps/math/dl/cachesim/polybench) and the
# certifier. `--no-deps` keeps each crate linted at its own level.
# polymix-runtime is linted without features: the `fault-inject` module
# panics *on purpose* (that is the injected fault) and is excluded by
# being feature-gated.
echo "== clippy abort-site gate =="
for c in polymix-math polymix-ir polymix-deps polymix-dl polymix-ast \
         polymix-codegen polymix-verify polymix-pluto polymix-core \
         polymix-runtime polymix-cachesim polymix-polybench polymix-bench; do
    echo "-- $c"
    cargo clippy --lib --no-deps -p "$c" -- \
        -D clippy::unwrap_used -D clippy::panic
done

# Fault-tolerance smoke test: seeded fault injection (panics, stalls,
# adversarial schedules) and the dynamic dependence-order checker run
# against every runtime primitive.
echo "== runtime fault-injection tests =="
cargo test -q -p polymix-runtime --features order-check,fault-inject

# Deterministic pool smoke test: the persistent-pool and spawn-per-call
# paths must produce bit-identical sweeps under a seeded adversarial
# schedule, with the dependence-order checker armed.
echo "== pool smoke test =="
cargo test -q -p polymix-runtime --features order-check,fault-inject \
    --test pool_and_schedule pool_smoke

# Task-graph suite: counter-graph runtime under the armed order checker
# and seeded fault injection (panic containment, watchdog, adversarial
# schedules, certification cross-checks), plus the cross-policy
# injection-trace determinism test.
echo "== taskgraph suite =="
cargo test -q -p polymix-runtime --features order-check,fault-inject \
    --test taskgraph --test fault_trace

# Static certification gate: every (kernel, variant) artifact the
# sweeps measure — the transformed program and its emitted source —
# must certify (schedule legality, annotation safety, source protocol
# lint) before anything is compiled or executed.
echo "== static verify gate =="
cargo run --release -q -p polymix-bench --bin verify -- --dataset mini > /dev/null

# Fast end-to-end sweep smoke test: one kernel through the parallel
# executor (2 jobs, tmpdir cache, JSONL log), then the same invocation
# again, which must resume every job from the log.
echo "== sweep smoke test =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
for pass in run resume; do
    echo "-- table1 mini sweep ($pass)"
    POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
        cargo run --release -q -p polymix-bench --bin table1 -- \
        --dataset mini --jobs 2 --run-timeout 120 \
        --results "$SMOKE_DIR/table1.jsonl" > /dev/null
done
# One record per variant from the first pass; the resume pass must add
# nothing (every job replayed from the log).
RECORDS=$(wc -l < "$SMOKE_DIR/table1.jsonl")
[ "$RECORDS" -eq 4 ] || { echo "expected exactly 4 JSONL records, got $RECORDS"; exit 1; }

# Small-budget tuner smoke: one kernel at mini through the closed-loop
# search, then `table1 --tuned` loading (and thereby parsing) the
# committed config — the 5th "tuned (...)" row proves the round trip.
echo "== tuner smoke test =="
POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
    cargo run --release -q -p polymix-bench --bin tune -- \
    --kernels 2mm --dataset mini --budget 6 --jobs 2 --run-timeout 120 \
    --out "$SMOKE_DIR/tuned" --results "$SMOKE_DIR/tune.jsonl" > /dev/null
[ -s "$SMOKE_DIR/tuned/2mm.json" ] || { echo "tuner produced no config"; exit 1; }
grep -q '"speedup_vs_native"' "$SMOKE_DIR/tuned/2mm.json" \
    || { echo "tuned config missing measurement fields"; exit 1; }
POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
    cargo run --release -q -p polymix-bench --bin table1 -- \
    --dataset mini --jobs 2 --run-timeout 120 \
    --tuned --tuned-config "$SMOKE_DIR/tuned/2mm.json" \
    | grep -q 'tuned (' || { echo "table1 --tuned did not render the tuned row"; exit 1; }

echo "CI OK"
