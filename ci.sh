#!/usr/bin/env bash
# Offline CI gate: build, test, and keep the pipeline library crates free
# of new abort sites. No network access required (Cargo.lock is committed
# and all dependencies are vendored in the toolchain image).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

# The compile pipeline must degrade, never abort: deny unwrap/panic in
# the library code of every workspace crate the pipeline runs through,
# including the analysis stack (deps/math/dl/cachesim/polybench) and the
# certifier. `--no-deps` keeps each crate linted at its own level.
# polymix-runtime is linted without features: the `fault-inject` module
# panics *on purpose* (that is the injected fault) and is excluded by
# being feature-gated.
echo "== clippy abort-site gate =="
for c in polymix-math polymix-ir polymix-deps polymix-dl polymix-ast \
         polymix-codegen polymix-verify polymix-pluto polymix-core \
         polymix-runtime polymix-cachesim polymix-polybench polymix-vm \
         polymix-bench polymix-service; do
    echo "-- $c"
    cargo clippy --lib --no-deps -p "$c" -- \
        -D clippy::unwrap_used -D clippy::panic
done

# Fault-tolerance smoke test: seeded fault injection (panics, stalls,
# adversarial schedules) and the dynamic dependence-order checker run
# against every runtime primitive.
echo "== runtime fault-injection tests =="
cargo test -q -p polymix-runtime --features order-check,fault-inject

# Deterministic pool smoke test: the persistent-pool and spawn-per-call
# paths must produce bit-identical sweeps under a seeded adversarial
# schedule, with the dependence-order checker armed.
echo "== pool smoke test =="
cargo test -q -p polymix-runtime --features order-check,fault-inject \
    --test pool_and_schedule pool_smoke

# Task-graph suite: counter-graph runtime under the armed order checker
# and seeded fault injection (panic containment, watchdog, adversarial
# schedules, certification cross-checks), plus the cross-policy
# injection-trace determinism test.
echo "== taskgraph suite =="
cargo test -q -p polymix-runtime --features order-check,fault-inject \
    --test taskgraph --test fault_trace

# Static certification gate: every (kernel, variant) artifact the
# sweeps measure — the transformed program and its emitted source —
# must certify (schedule legality, annotation safety, source protocol
# lint) before anything is compiled or executed.
echo "== static verify gate =="
cargo run --release -q -p polymix-bench --bin verify -- --dataset mini > /dev/null

# Bytecode certification gate: every (kernel, variant) cell the vm
# backend could measure is lowered at mini and run through the bytecode
# certifier (bounds proofs + effect-summary cross-check). The audit must
# certify every artifact AND prove a nonzero number of accesses — an
# all-skip or all-unproven run would pass vacuously and the elided fast
# path would never engage.
echo "== bytecode certification gate =="
VM_OUT=$(cargo run --release -q -p polymix-bench --bin verify -- \
    --dataset mini --backend vm)
echo "$VM_OUT" | grep -Eq 'vm accesses proven: [1-9][0-9]*/' \
    || { echo "bytecode audit proved no accesses"; exit 1; }

# Fast end-to-end sweep smoke test: one kernel through the parallel
# executor (2 jobs, tmpdir cache, JSONL log), then the same invocation
# again, which must resume every job from the log.
echo "== sweep smoke test =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
for pass in run resume; do
    echo "-- table1 mini sweep ($pass)"
    POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
        cargo run --release -q -p polymix-bench --bin table1 -- \
        --dataset mini --jobs 2 --run-timeout 120 \
        --results "$SMOKE_DIR/table1.jsonl" > /dev/null
done
# One record per variant from the first pass; the resume pass must add
# nothing (every job replayed from the log).
RECORDS=$(wc -l < "$SMOKE_DIR/table1.jsonl")
[ "$RECORDS" -eq 4 ] || { echo "expected exactly 4 JSONL records, got $RECORDS"; exit 1; }

# Backend smoke: the same table measured by both backends — 8 JSONL
# records (one per variant per backend, keyed `(id, backend)`), with
# both backend tags present so an interrupted `both` sweep can never
# cross-satisfy a vm cell from a rustc record or vice versa.
echo "== backend smoke test =="
POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
    cargo run --release -q -p polymix-bench --bin table1 -- \
    --dataset mini --jobs 2 --run-timeout 120 --backend both \
    --results "$SMOKE_DIR/backends.jsonl" > /dev/null
B_RECORDS=$(wc -l < "$SMOKE_DIR/backends.jsonl")
[ "$B_RECORDS" -eq 8 ] || { echo "expected 8 backend records, got $B_RECORDS"; exit 1; }
grep -q '"backend":"vm"' "$SMOKE_DIR/backends.jsonl" \
    || { echo "no vm-tagged records"; exit 1; }
grep -q '"backend":"rustc"' "$SMOKE_DIR/backends.jsonl" \
    || { echo "no rustc-tagged records"; exit 1; }

# Vect-lint smoke: emit with the explicit-vectorization post-pass
# enabled and lint the resulting `// vect region` blocks (strided group
# bound, remainder loop, doall-certified label). The audit must actually
# see regions — an always-empty emission would pass the lint vacuously.
echo "== vect lint smoke test =="
VECT_OUT=$(cargo run --release -q -p polymix-bench --bin verify -- \
    --dataset mini --vect jacobi-1d-imper jacobi-2d-imper)
echo "$VECT_OUT" | grep -Eq 'vect regions audited: [1-9]' \
    || { echo "vect lint audited no regions"; exit 1; }

# Small-budget tuner smoke: one kernel at mini through the closed-loop
# search, then `table1 --tuned` loading (and thereby parsing) the
# committed config — the 5th "tuned (...)" row proves the round trip.
echo "== tuner smoke test =="
POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
    cargo run --release -q -p polymix-bench --bin tune -- \
    --kernels 2mm --dataset mini --budget 6 --jobs 2 --run-timeout 120 \
    --out "$SMOKE_DIR/tuned" --results "$SMOKE_DIR/tune.jsonl" > /dev/null
[ -s "$SMOKE_DIR/tuned/2mm.json" ] || { echo "tuner produced no config"; exit 1; }
grep -q '"speedup_vs_native"' "$SMOKE_DIR/tuned/2mm.json" \
    || { echo "tuned config missing measurement fields"; exit 1; }
# Capture rather than pipe into `grep -q`: with pipefail, grep exiting
# at first match SIGPIPEs table1 mid-print and fails a passing check.
TUNED_OUT=$(POLYMIX_BENCH_DIR="$SMOKE_DIR/cache" \
    cargo run --release -q -p polymix-bench --bin table1 -- \
    --dataset mini --jobs 2 --run-timeout 120 \
    --tuned --tuned-config "$SMOKE_DIR/tuned/2mm.json")
echo "$TUNED_OUT" | grep -q 'tuned (' \
    || { echo "table1 --tuned did not render the tuned row"; exit 1; }

# Daemon smoke test: start the optimization service, drive the full
# robustness surface over a real socket — cold miss, warm hit served
# from the cache, an injected scheduler panic degrading to the identity
# schedule with a well-formed response — then shut it down cleanly.
echo "== service smoke test =="
ADDR_FILE="$SMOKE_DIR/service.addr"
cargo run --release -q -p polymix-service --bin polymix_service -- serve \
    --addr 127.0.0.1:0 --cache-dir "$SMOKE_DIR/service_cache" \
    --addr-file "$ADDR_FILE" --allow-inject > "$SMOKE_DIR/service.log" 2>&1 &
SERVICE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$ADDR_FILE" ] && break
    kill -0 "$SERVICE_PID" 2>/dev/null || { cat "$SMOKE_DIR/service.log"; echo "daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -s "$ADDR_FILE" ] || { echo "daemon never wrote its address"; exit 1; }
ADDR=$(cat "$ADDR_FILE")
SRV() { cargo run --release -q -p polymix-service --bin polymix_service -- "$@"; }
COLD_OUT=$(SRV req --addr "$ADDR" --kernel gemm)
echo "$COLD_OUT" | grep -q 'served=miss' \
    || { echo "cold request did not optimize: $COLD_OUT"; exit 1; }
WARM_OUT=$(SRV req --addr "$ADDR" --kernel gemm)
echo "$WARM_OUT" | grep -q 'served=hit' \
    || { echo "warm request was not served from the cache: $WARM_OUT"; exit 1; }
PANIC_OUT=$(SRV req --addr "$ADDR" --kernel 2mm --inject panic)
echo "$PANIC_OUT" | grep -q 'served=identity' \
    && echo "$PANIC_OUT" | grep -q 'degraded=1' \
    || { echo "injected panic did not degrade to identity: $PANIC_OUT"; exit 1; }
SRV shutdown --addr "$ADDR" > /dev/null || { echo "shutdown not acked"; exit 1; }
wait "$SERVICE_PID" || { echo "daemon exited nonzero"; exit 1; }

echo "CI OK"
