//! Machine (cache / TLB) descriptions for the DL model and the cache
//! simulator harness.

/// One level of the memory hierarchy as the DL model sees it: a pool of
/// lines of a given size with an aggregate capacity and a per-line miss
/// cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheLevel {
    /// Line (or page, for TLBs) size in bytes.
    pub line_bytes: usize,
    /// Total capacity in bytes (entries × page size for TLBs).
    pub capacity_bytes: usize,
    /// Relative miss penalty per line (`Cost_line` in the paper).
    pub cost_per_line: f64,
}

impl CacheLevel {
    /// Number of lines the level can hold.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }
}

/// A machine description: the cache/TLB levels the DL model accounts for,
/// plus core count and SIMD width used by the optimizer's parallelism and
/// vectorization decisions.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Human-readable name.
    pub name: String,
    /// Memory hierarchy levels, innermost (L1) first.
    pub levels: Vec<CacheLevel>,
    /// Number of hardware cores to parallelize across.
    pub cores: usize,
    /// f64 lanes per SIMD vector (2 for SSE2, 4 for AVX/VSX-pairs).
    pub simd_lanes: usize,
    /// Default tile size used for tilable dimensions (the paper uses 32).
    pub default_tile: i64,
}

impl Machine {
    /// An Intel Nehalem-like machine: 32 KB L1 (64 B lines), 256 KB L2,
    /// 8 MB L3, 64-entry DTLB of 4 KB pages, 8 cores, SSE 2-lane f64.
    pub fn nehalem() -> Machine {
        Machine {
            name: "nehalem".into(),
            levels: vec![
                CacheLevel {
                    line_bytes: 64,
                    capacity_bytes: 32 * 1024,
                    cost_per_line: 1.0,
                },
                CacheLevel {
                    line_bytes: 64,
                    capacity_bytes: 256 * 1024,
                    cost_per_line: 4.0,
                },
                CacheLevel {
                    line_bytes: 4096,
                    capacity_bytes: 64 * 4096,
                    cost_per_line: 8.0,
                },
            ],
            cores: 8,
            simd_lanes: 2,
            default_tile: 32,
        }
    }

    /// An IBM Power7-like machine: 32 KB L1 (128 B lines), 256 KB L2,
    /// 4 MB local L3 slice, 512-entry TLB of 4 KB pages, 32 cores
    /// (4 chips × 8), VSX 2-lane f64.
    pub fn power7() -> Machine {
        Machine {
            name: "power7".into(),
            levels: vec![
                CacheLevel {
                    line_bytes: 128,
                    capacity_bytes: 32 * 1024,
                    cost_per_line: 1.0,
                },
                CacheLevel {
                    line_bytes: 128,
                    capacity_bytes: 256 * 1024,
                    cost_per_line: 4.0,
                },
                CacheLevel {
                    line_bytes: 4096,
                    capacity_bytes: 512 * 4096,
                    cost_per_line: 8.0,
                },
            ],
            cores: 32,
            simd_lanes: 2,
            default_tile: 32,
        }
    }

    /// The machine running this process: core count from
    /// `std::thread::available_parallelism`, Nehalem-like hierarchy
    /// otherwise (the DL decisions only need rough geometry).
    pub fn host() -> Machine {
        let mut m = Machine::nehalem();
        m.name = "host".into();
        m.cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        m.simd_lanes = 4; // AVX2 f64 lanes on current x86-64 hosts
        m
    }

    /// The level the DL permutation decisions target (L1).
    pub fn primary_level(&self) -> &CacheLevel {
        &self.levels[0]
    }

    /// The level fusion profitability targets: fusion exploits reuse at
    /// outer loop levels, whose working sets live in L2 (falls back to L1
    /// on single-level machines).
    pub fn fusion_level(&self) -> &CacheLevel {
        self.levels.get(1).unwrap_or(&self.levels[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_geometry() {
        for m in [Machine::nehalem(), Machine::power7()] {
            assert!(!m.levels.is_empty());
            assert!(m.cores >= 8);
            assert!(m.primary_level().lines() > 0);
            assert!(m.primary_level().line_bytes >= 64);
        }
        assert_eq!(Machine::nehalem().cores, 8);
        assert_eq!(Machine::power7().cores, 32);
    }

    #[test]
    fn host_reports_parallelism() {
        let m = Machine::host();
        assert!(m.cores >= 1);
        assert_eq!(m.default_tile, 32);
    }

    #[test]
    fn line_counts() {
        let l = CacheLevel {
            line_bytes: 64,
            capacity_bytes: 32 * 1024,
            cost_per_line: 1.0,
        };
        assert_eq!(l.lines(), 512);
    }
}
