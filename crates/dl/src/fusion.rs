//! Loop-fusion profitability by the DL model (Sec. III-B2).
//!
//! Fusion is profitable when the *minimum per-iteration memory cost*
//! achievable with tile sizes that fit the cache does not increase: fusing
//! adds inter-statement reuse (shared references collapse) but shrinks
//! the feasible tile-size box (more data live per tile). Both effects are
//! captured by minimizing `mem_cost` over a capacity-constrained tile
//! space before and after fusion.

use crate::machine::CacheLevel;
use crate::model::{distinct_lines, mem_cost, RefInfo};

/// Candidate per-dimension tile sizes explored by the discrete minimizer.
const TILE_CANDIDATES: [f64; 7] = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Minimum `mem_cost` over tile-size vectors whose footprint
/// (`DL · line_bytes`) fits the level's capacity. Returns
/// `(best_cost, best_tiles)`; when even the smallest tile overflows the
/// cache, the smallest-footprint point is returned (cost still finite).
pub fn min_mem_cost(refs: &[RefInfo], depth: usize, level: &CacheLevel) -> (f64, Vec<f64>) {
    min_mem_cost_with_free(refs, depth, level, &[])
}

/// Like [`min_mem_cost`], but arrays listed in `free` contribute to the
/// capacity footprint without contributing to the cost — the model for
/// producer–consumer arrays that live entirely in cache inside a fused
/// tile (their memory traffic is exactly what fusion eliminates).
pub fn min_mem_cost_with_free(
    refs: &[RefInfo],
    depth: usize,
    level: &CacheLevel,
    free: &[usize],
) -> (f64, Vec<f64>) {
    assert!(depth > 0, "min_mem_cost on zero-depth nest");
    let paid: Vec<RefInfo> = refs
        .iter()
        .filter(|r| !free.contains(&r.array))
        .cloned()
        .collect();
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut fallback: Option<(f64, Vec<f64>)> = None; // smallest footprint
    let mut idx = vec![0usize; depth];
    loop {
        let tiles: Vec<f64> = idx.iter().map(|&i| TILE_CANDIDATES[i]).collect();
        let dl = distinct_lines(refs, &tiles, level.line_bytes);
        let footprint = dl * level.line_bytes as f64;
        let cost = mem_cost(&paid, &tiles, level);
        if footprint <= level.capacity_bytes as f64 {
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, tiles.clone()));
            }
        }
        if fallback.as_ref().is_none_or(|(c, _)| footprint < *c) {
            fallback = Some((footprint, tiles.clone()));
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == depth {
                // `fallback` was set on the very first odometer state,
                // but degrade to untiled rather than aborting.
                return match (best, fallback) {
                    (Some(b), _) => b,
                    (None, Some((_, tiles))) => (mem_cost(&paid, &tiles, level), tiles),
                    (None, None) => (mem_cost(&paid, &[], level), Vec::new()),
                };
            }
            idx[k] += 1;
            if idx[k] < TILE_CANDIDATES.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Decides whether fusing two statement groups is profitable under the DL
/// model: compares the best capacity-feasible `mem_cost` of the fused nest
/// against the *max* of the two distributed nests' best costs (the fused
/// loop executes both bodies per iteration; distribution executes them in
/// sequence, so per-iteration costs add — we compare conservatively
/// against the sum).
pub fn fusion_profitable(
    refs_a: &[RefInfo],
    depth_a: usize,
    refs_b: &[RefInfo],
    depth_b: usize,
    level: &CacheLevel,
) -> bool {
    if depth_a == 0 || depth_b == 0 {
        return false;
    }
    let fused_depth = depth_a.max(depth_b);
    let mut fused: Vec<RefInfo> = Vec::new();
    for r in refs_a.iter().chain(refs_b) {
        let mut c = r.clone();
        for row in c.coeffs.iter_mut() {
            row.resize(fused_depth, 0);
        }
        fused.push(c);
    }
    // Producer–consumer residency: when both groups touch the same array
    // (the usual reason to fuse), the fused tile keeps one copy of its
    // lines resident; model the array by its largest slice instead of
    // summing differently-subscripted references.
    let nominal = vec![32.0; fused_depth];
    let mut per_array: Vec<RefInfo> = Vec::new();
    for r in fused {
        match per_array.iter_mut().find(|x| x.array == r.array) {
            Some(existing) => {
                if r.distinct_lines(&nominal, level.line_bytes)
                    > existing.distinct_lines(&nominal, level.line_bytes)
                {
                    *existing = r;
                }
            }
            None => per_array.push(r),
        }
    }
    let fused = per_array;
    // Arrays both groups touch are the producer–consumer data fusion
    // keeps cache-resident: they cost capacity, not traffic.
    let arrays_a: Vec<usize> = refs_a.iter().map(|r| r.array).collect();
    let shared: Vec<usize> = refs_b
        .iter()
        .map(|r| r.array)
        .filter(|a| arrays_a.contains(a))
        .collect();
    let (cost_fused, _) = min_mem_cost_with_free(&fused, fused_depth, level, &shared);
    let (cost_a, _) = min_mem_cost(refs_a, depth_a, level);
    let (cost_b, _) = min_mem_cost(refs_b, depth_b, level);
    // Small epsilon: prefer fusion on ties (it never loses reuse then).
    cost_fused <= cost_a + cost_b + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> CacheLevel {
        CacheLevel {
            line_bytes: 64,
            capacity_bytes: 32 * 1024,
            cost_per_line: 1.0,
        }
    }

    fn streaming_ref(array: usize) -> RefInfo {
        // A[i][j], j contiguous, 2-deep nest.
        RefInfo {
            array,
            coeffs: vec![vec![1, 0], vec![0, 1]],
            elem_bytes: 8,
        }
    }

    #[test]
    fn min_cost_respects_capacity() {
        let refs = vec![streaming_ref(0)];
        let l = level();
        let (cost, tiles) = min_mem_cost(&refs, 2, &l);
        assert!(cost > 0.0);
        let dl = distinct_lines(&refs, &tiles, l.line_bytes);
        assert!(dl * l.line_bytes as f64 <= l.capacity_bytes as f64);
    }

    #[test]
    fn shared_reference_makes_fusion_profitable() {
        // Both nests stream the same array A: fusing halves the traffic.
        let a = vec![streaming_ref(0)];
        let b = vec![streaming_ref(0), streaming_ref(1)];
        assert!(fusion_profitable(&a, 2, &b, 2, &level()));
    }

    #[test]
    fn disjoint_heavy_footprints_do_not_fuse() {
        // Two nests each touching 3 distinct large arrays with transposed
        // access; fusing 6 arrays shrinks feasible tiles sharply.
        let mk = |arr: usize| RefInfo {
            array: arr,
            coeffs: vec![vec![0, 1], vec![1, 0]], // transposed: poor lines
            elem_bytes: 8,
        };
        let a: Vec<RefInfo> = (0..3).map(mk).collect();
        let b: Vec<RefInfo> = (3..6).map(mk).collect();
        // Fusion must at least not be *forced*: with the additive
        // comparison it usually still passes; the stronger check is that
        // min_mem_cost grows with footprint.
        let l = level();
        let (ca, _) = min_mem_cost(&a, 2, &l);
        let mut all = a.clone();
        all.extend(b.clone());
        let (call, _) = min_mem_cost(&all, 2, &l);
        assert!(call >= ca);
    }

    #[test]
    fn different_depth_fusion_pads_coefficients() {
        // 2-deep nest fused with 3-deep nest.
        let a = vec![streaming_ref(0)];
        let b = vec![RefInfo {
            array: 0,
            coeffs: vec![vec![1, 0, 0], vec![0, 0, 1]],
            elem_bytes: 8,
        }];
        // Shared array 0: should be profitable.
        assert!(fusion_profitable(&a, 2, &b, 3, &level()));
    }

    #[test]
    fn zero_depth_never_fuses() {
        assert!(!fusion_profitable(&[], 0, &[], 2, &level()));
    }
}
