//! # polymix-dl
//!
//! The **DL (Distinct Lines)** analytical memory cost model (Sec. III-B),
//! used by the polyhedral stage to pick loop permutations and decide
//! fusion profitability:
//!
//! * [`model`] — distinct-lines estimation of a (tiled) loop nest, the
//!   per-iteration `mem_cost`, its partial derivatives with respect to
//!   tile sizes, and the induced best permutation order (Sec. III-B1);
//! * [`fusion`] — fusion profitability by comparing the minimum
//!   `mem_cost` reachable within cache capacity before and after fusion
//!   (Sec. III-B2);
//! * [`machine`] — cache/TLB geometries, including Nehalem-like and
//!   Power7-like presets matching the paper's two evaluation platforms.

pub mod fusion;
pub mod machine;
pub mod model;

pub use fusion::{fusion_profitable, min_mem_cost, min_mem_cost_with_free};
pub use machine::{CacheLevel, Machine};
pub use model::{distinct_lines, mem_cost, permutation_priority, RefInfo};
