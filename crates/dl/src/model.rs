//! The Distinct Lines estimator and the permutation-priority analysis.
//!
//! For a loop nest tiled with sizes `t_1 … t_d`, the DL model estimates,
//! per array reference, the number of distinct cache lines (or TLB pages)
//! touched by one tile (Fig. 4 of the paper):
//!
//! * every non-contiguous array dimension contributes the number of
//!   distinct subscript values over the tile,
//! * the contiguous (last) dimension contributes `span / L` line
//!   occupancy where `L` is the line size in elements — provided the
//!   subscript actually varies with a tile iterator; otherwise 1.
//!
//! `mem_cost(t) = Cost_line · DL(t) / Π t_i` is the per-iteration cost;
//! its partial derivatives rank iterators for permutation: the most
//! negative `∂mem_cost/∂t_k` wants iterator `k` innermost (Sec. III-B1).

use crate::machine::CacheLevel;
use polymix_ir::scop::Access;
use polymix_ir::Schedule;

/// The DL-relevant shape of one array reference inside a (transformed)
/// loop nest: iterator coefficients per array dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct RefInfo {
    /// Which array (used to deduplicate uniformly generated references).
    pub array: usize,
    /// `m × d` iterator coefficients: row per array dimension, column per
    /// loop (outermost first) of the nest the reference sits in.
    pub coeffs: Vec<Vec<i64>>,
    /// Element size in bytes.
    pub elem_bytes: usize,
}

impl RefInfo {
    /// Builds a `RefInfo` from an access in the *new* loop coordinates of
    /// `schedule` (via `f·Θ⁻¹`), keeping the first `depth` loop columns.
    pub fn from_access(
        array_idx: usize,
        access: &Access,
        schedule: &Schedule,
        n_params: usize,
        depth: usize,
        elem_bytes: usize,
    ) -> RefInfo {
        let d = schedule.dim();
        let coeffs = access
            .map
            .iter()
            .map(|row| {
                let t = schedule.transformed_access_row(row, n_params);
                let mut c = t[..d.min(depth)].to_vec();
                c.resize(depth, 0);
                c
            })
            .collect();
        RefInfo {
            array: array_idx,
            coeffs,
            elem_bytes,
        }
    }

    /// Distinct lines touched by one `tiles`-sized tile on a level with
    /// `line_bytes` lines. Fractional result (the model is continuous).
    pub fn distinct_lines(&self, tiles: &[f64], line_bytes: usize) -> f64 {
        if self.coeffs.is_empty() {
            return 1.0; // scalar: one line
        }
        let line_elems = (line_bytes / self.elem_bytes).max(1) as f64;
        let mut dl = 1.0;
        let last = self.coeffs.len() - 1;
        for (dim, row) in self.coeffs.iter().enumerate() {
            // Span of the subscript over the tile: Σ |c_k|·(t_k − 1) + 1.
            let span: f64 = row
                .iter()
                .zip(tiles)
                .map(|(&c, &t)| c.unsigned_abs() as f64 * (t - 1.0))
                .sum::<f64>()
                + 1.0;
            if dim == last {
                // Contiguous dimension: a span of `s` elements at arbitrary
                // alignment touches (s-1)/L + 1 lines — the partial-line
                // term is what lets wider contiguous tiles amortize edge
                // lines (and what ranks stride-1 loops innermost).
                dl *= (span - 1.0) / line_elems + 1.0;
            } else {
                dl *= span;
            }
        }
        dl
    }

    /// True when the reference's subscripts are independent of every tile
    /// iterator (loop-invariant data).
    pub fn is_invariant(&self) -> bool {
        self.coeffs.iter().all(|r| r.iter().all(|&c| c == 0))
    }
}

/// Deduplicates uniformly generated references (same array, same iterator
/// coefficients) — they touch the same lines up to a constant offset.
fn dedup(refs: &[RefInfo]) -> Vec<&RefInfo> {
    let mut out: Vec<&RefInfo> = Vec::new();
    for r in refs {
        if !out
            .iter()
            .any(|o| o.array == r.array && o.coeffs == r.coeffs)
        {
            out.push(r);
        }
    }
    out
}

/// Total distinct lines of a loop nest: the sum over (deduplicated)
/// references, as in Fig. 4 (`DL = DL_A + DL_B`).
pub fn distinct_lines(refs: &[RefInfo], tiles: &[f64], line_bytes: usize) -> f64 {
    dedup(refs)
        .iter()
        .map(|r| r.distinct_lines(tiles, line_bytes))
        .sum()
}

/// Per-iteration memory cost
/// `mem_cost(t) = cost_per_line · DL(t) / Π tᵢ` (Sec. III-B).
pub fn mem_cost(refs: &[RefInfo], tiles: &[f64], level: &CacheLevel) -> f64 {
    let vol: f64 = tiles.iter().product();
    level.cost_per_line * distinct_lines(refs, tiles, level.line_bytes) / vol
}

/// Numerical `∂mem_cost/∂t_k` at the nominal tile vector.
pub fn mem_cost_derivative(refs: &[RefInfo], tiles: &[f64], level: &CacheLevel, k: usize) -> f64 {
    let h = 1e-3 * tiles[k];
    let mut hi = tiles.to_vec();
    hi[k] += h;
    let mut lo = tiles.to_vec();
    lo[k] -= h;
    (mem_cost(refs, &hi, level) - mem_cost(refs, &lo, level)) / (2.0 * h)
}

/// Best permutation order by the DL model: returns iterator indices from
/// **outermost to innermost** — ascending `∂mem_cost/∂t` from *inner to
/// outer* means the most negative derivative goes innermost.
///
/// The innermost position additionally minimizes the *stride penalty*
/// (the number of references the iterator walks with a non-unit memory
/// stride): the paper's flow pairs the DL cost with "maximizing the
/// number of clean inner loops that can be effectively vectorized", and
/// a strided innermost access defeats SIMD however good its DL score is
/// (syr2k is the canonical case).
///
/// Ties are broken towards keeping the original order (stable sort).
pub fn permutation_priority(refs: &[RefInfo], depth: usize, level: &CacheLevel) -> Vec<usize> {
    let nominal = vec![32.0; depth];
    let scored: Vec<(usize, f64)> = (0..depth)
        .map(|k| (k, mem_cost_derivative(refs, &nominal, level, k)))
        .collect();
    // Stride penalty: references touching the iterator in a non-last
    // array dimension jump whole rows per iteration.
    let penalty = |k: usize| -> usize {
        refs.iter()
            .filter(|r| {
                let m = r.coeffs.len();
                m > 0
                    && r.coeffs[..m - 1]
                        .iter()
                        .any(|row| row.get(k).copied().unwrap_or(0) != 0)
            })
            .count()
    };
    // Innermost: smallest (stride penalty, derivative).
    let inner = scored
        .iter()
        .min_by(|a, b| {
            (penalty(a.0), a.1)
                .partial_cmp(&(penalty(b.0), b.1))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|&(k, _)| k)
        .expect("empty nest");
    // Remaining levels: outermost = largest derivative.
    let mut rest: Vec<(usize, f64)> = scored.into_iter().filter(|&(k, _)| k != inner).collect();
    rest.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<usize> = rest.into_iter().map(|(k, _)| k).collect();
    out.push(inner);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn level() -> CacheLevel {
        CacheLevel {
            line_bytes: 64, // 8 f64 elements
            capacity_bytes: 32 * 1024,
            cost_per_line: 1.0,
        }
    }

    /// Fig. 4's example: `A[i][j] += B[k][i]` in an (i, j, k) nest.
    fn fig4_refs() -> Vec<RefInfo> {
        vec![
            RefInfo {
                array: 0, // A[i][j]
                coeffs: vec![vec![1, 0, 0], vec![0, 1, 0]],
                elem_bytes: 8,
            },
            RefInfo {
                array: 1, // B[k][i]
                coeffs: vec![vec![0, 0, 1], vec![1, 0, 0]],
                elem_bytes: 8,
            },
        ]
    }

    #[test]
    fn fig4_distinct_lines_formula() {
        // DL = Ti*lines(Tj) + Tk*lines(Ti) with L = 8 elements and
        // lines(s) = (s-1)/L + 1 (paper's Fig. 4 idealizes this to s/L).
        let refs = fig4_refs();
        let t = [16.0, 32.0, 8.0];
        let dl = distinct_lines(&refs, &t, 64);
        let lines = |s: f64| (s - 1.0) / 8.0 + 1.0;
        let expected = 16.0 * lines(32.0) + 8.0 * lines(16.0);
        assert!((dl - expected).abs() < 1e-9, "dl={dl} expected={expected}");
        // Within 25% of the idealized Fig. 4 closed form.
        let ideal = 16.0 * 32.0 / 8.0 + 8.0 * 16.0 / 8.0;
        assert!((dl - ideal).abs() / ideal < 0.35);
    }

    #[test]
    fn uniformly_generated_refs_count_once() {
        let a = RefInfo {
            array: 0,
            coeffs: vec![vec![1, 0], vec![0, 1]],
            elem_bytes: 8,
        };
        let dl1 = distinct_lines(&[a.clone()], &[8.0, 8.0], 64);
        let dl2 = distinct_lines(&[a.clone(), a], &[8.0, 8.0], 64);
        assert_eq!(dl1, dl2);
    }

    #[test]
    fn invariant_reference_is_one_line() {
        let r = RefInfo {
            array: 0,
            coeffs: vec![vec![0, 0]],
            elem_bytes: 8,
        };
        assert!(r.is_invariant());
        assert_eq!(r.distinct_lines(&[32.0, 32.0], 64), 1.0);
    }

    #[test]
    fn matmul_priority_puts_j_innermost() {
        // C[i][j] += A[i][k] * B[k][j] — all three refs:
        let refs = vec![
            RefInfo {
                array: 0,
                coeffs: vec![vec![1, 0, 0], vec![0, 1, 0]],
                elem_bytes: 8,
            },
            RefInfo {
                array: 1,
                coeffs: vec![vec![1, 0, 0], vec![0, 0, 1]],
                elem_bytes: 8,
            },
            RefInfo {
                array: 2,
                coeffs: vec![vec![0, 0, 1], vec![0, 1, 0]],
                elem_bytes: 8,
            },
        ];
        let order = permutation_priority(&refs, 3, &level());
        // j (index 1) strides contiguously through C and B: innermost.
        assert_eq!(*order.last().unwrap(), 1, "order={order:?}");
    }

    #[test]
    fn transposed_access_prefers_other_loop_inner() {
        // Only ref: B[j][i] — i contiguous => i innermost.
        let refs = vec![RefInfo {
            array: 0,
            coeffs: vec![vec![0, 1], vec![1, 0]],
            elem_bytes: 8,
        }];
        let order = permutation_priority(&refs, 2, &level());
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn mem_cost_decreases_with_reuse() {
        // A[i][j] with j contiguous: growing Tj amortizes lines; growing Ti
        // does not (each new i touches new lines).
        let refs = vec![RefInfo {
            array: 0,
            coeffs: vec![vec![1, 0], vec![0, 1]],
            elem_bytes: 8,
        }];
        let l = level();
        let base = mem_cost(&refs, &[32.0, 32.0], &l);
        let taller = mem_cost(&refs, &[64.0, 32.0], &l);
        let wider = mem_cost(&refs, &[32.0, 64.0], &l);
        assert!((taller - base).abs() < 1e-9); // Ti scales DL and volume alike
        assert!(wider < base); // Tj amortizes partial lines
        let _ = Machine::nehalem();
    }

    #[test]
    fn from_access_uses_transformed_rows() {
        use polymix_ir::scop::{Access, ArrayId};
        // Access B[k][j] in an (i,j,k|1) statement, schedule permuting to (k,j,i):
        let acc = Access {
            array: ArrayId(1),
            map: vec![vec![0, 0, 1, 0], vec![0, 1, 0, 0]],
        };
        let sched = Schedule::from_permutation(&[2, 1, 0], 0);
        let r = RefInfo::from_access(1, &acc, &sched, 0, 3, 8);
        assert_eq!(r.coeffs, vec![vec![1, 0, 0], vec![0, 1, 0]]);
    }
}
