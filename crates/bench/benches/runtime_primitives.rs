//! Criterion microbenchmarks of the parallel runtime (Sec. IV-D):
//! point-to-point pipeline vs wavefront doall on a dependent sweep
//! (the mechanism behind Fig. 6), plus the doall scheduler and the
//! array-reduction combiner.

use polymix_bench::microbench::{BenchmarkId, Criterion};
use polymix_bench::{criterion_group, criterion_main};
use polymix_runtime::{
    par_for, pipeline_2d, pipeline_2d_opts, reduce_array, wavefront_2d, CachePadded, GridSweep,
    PoolPolicy, RuntimeOptions,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicI64, Ordering};

fn dependent_sweep(c: &mut Criterion) {
    let n = 256usize;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: n as i64,
    };
    let mut group = c.benchmark_group("dependent_sweep_256");
    // On single-core hosts, >2 threads only measures scheduler churn.
    let max_t = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    for threads in [1usize, 2, 4].into_iter().filter(|&t| t <= max_t) {
        group.bench_with_input(
            BenchmarkId::new("pipeline", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let field = vec![1.0f64; n * n];
                    let ptr = field.as_ptr() as usize;
                    pipeline_2d(grid, t, |i, j| unsafe {
                        let p = ptr as *mut f64;
                        let (i, j) = (i as usize, j as usize);
                        *p.add(i * n + j) = 0.25
                            * (2.0 * *p.add(i * n + j)
                                + *p.add((i - 1) * n + j)
                                + *p.add(i * n + j - 1));
                    })
                    .expect("pipeline sweep");
                    black_box(field[n * n - 1])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wavefront", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let field = vec![1.0f64; n * n];
                    let ptr = field.as_ptr() as usize;
                    wavefront_2d(grid, t, |i, j| unsafe {
                        let p = ptr as *mut f64;
                        let (i, j) = (i as usize, j as usize);
                        *p.add(i * n + j) = 0.25
                            * (2.0 * *p.add(i * n + j)
                                + *p.add((i - 1) * n + j)
                                + *p.add(i * n + j - 1));
                    })
                    .expect("wavefront sweep");
                    black_box(field[n * n - 1])
                });
            },
        );
    }
    group.finish();
}

fn doall_and_reduction(c: &mut Criterion) {
    let n = 1 << 16;
    let data: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
    c.bench_function("par_for_sum_64k", |b| {
        b.iter(|| {
            let acc = std::sync::atomic::AtomicU64::new(0);
            par_for(0, n as i64, 4, |i| {
                // Cheap body: measures scheduling overhead.
                acc.fetch_add(data[i as usize] as u64, std::sync::atomic::Ordering::Relaxed);
            })
            .expect("par_for sum");
            black_box(acc.into_inner())
        });
    });
    c.bench_function("reduce_array_64k_into_16", |b| {
        b.iter(|| {
            let mut target = vec![0.0f64; 16];
            reduce_array(&mut target, 0, n as i64, 4, |i, local| {
                local[(i % 16) as usize] += data[i as usize];
            })
            .expect("array reduction");
            black_box(target[0])
        });
    });
}

/// The workload the persistent pool exists for: many invocations on a
/// small grid, where spawn-per-call pays `threads` thread spawns per
/// invocation and the pool pays two mailbox handoffs per worker.
fn pooled_vs_spawn(c: &mut Criterion) {
    let n = 48usize;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: n as i64,
    };
    let mut group = c.benchmark_group("pipeline_48x48_invocation");
    for (name, policy) in [
        ("pooled", PoolPolicy::Persistent),
        ("spawn", PoolPolicy::SpawnPerCall),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 4), &policy, |b, &policy| {
            let opts = RuntimeOptions {
                pool: policy,
                ..RuntimeOptions::default()
            };
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                pipeline_2d_opts(grid, 4, opts, |i, j| unsafe {
                    let p = ptr as *mut f64;
                    let (i, j) = (i as usize, j as usize);
                    *p.add(i * n + j) =
                        0.5 * (*p.add((i - 1) * n + j) + *p.add(i * n + j - 1));
                })
                .expect("pipeline sweep");
                black_box(field[n * n - 1])
            });
        });
    }
    group.finish();
}

/// Neighboring progress counters with and without cache-line padding,
/// hammered by two threads. On a multi-core host the unpadded pair
/// false-shares one line; single-core hosts see only the ALU cost.
fn padded_vs_unpadded(c: &mut Criterion) {
    const HAMMERS: i64 = 1 << 14;
    let mut group = c.benchmark_group("counter_pair_16k_rmw");
    group.bench_with_input(BenchmarkId::new("padded", 2), &(), |b, _| {
        let cells: Vec<CachePadded<AtomicI64>> =
            (0..2).map(|_| CachePadded::new(AtomicI64::new(0))).collect();
        b.iter(|| {
            std::thread::scope(|s| {
                for cell in &cells {
                    s.spawn(move || {
                        for _ in 0..HAMMERS {
                            cell.fetch_add(1, Ordering::AcqRel);
                        }
                    });
                }
            });
            black_box(cells[0].load(Ordering::Relaxed))
        });
    });
    group.bench_with_input(BenchmarkId::new("unpadded", 2), &(), |b, _| {
        let cells: Vec<AtomicI64> = (0..2).map(|_| AtomicI64::new(0)).collect();
        b.iter(|| {
            std::thread::scope(|s| {
                for cell in &cells {
                    s.spawn(move || {
                        for _ in 0..HAMMERS {
                            cell.fetch_add(1, Ordering::AcqRel);
                        }
                    });
                }
            });
            black_box(cells[0].load(Ordering::Relaxed))
        });
    });
    group.finish();
}

/// Per-row publishing vs the default batched publish on the same sweep:
/// the knob trades synchronization traffic against pipeline lag.
fn batched_vs_per_row(c: &mut Criterion) {
    let n = 192usize;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: n as i64,
    };
    let mut group = c.benchmark_group("pipeline_192x192_publish");
    for (name, batch) in [("batched_auto", None), ("per_row", Some(1))] {
        group.bench_with_input(BenchmarkId::new(name, 4), &batch, |b, &batch| {
            let opts = RuntimeOptions {
                pipeline_batch: batch,
                pool: PoolPolicy::Persistent,
                ..RuntimeOptions::default()
            };
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                pipeline_2d_opts(grid, 4, opts, |i, j| unsafe {
                    let p = ptr as *mut f64;
                    let (i, j) = (i as usize, j as usize);
                    *p.add(i * n + j) =
                        0.5 * (*p.add((i - 1) * n + j) + *p.add(i * n + j - 1));
                })
                .expect("pipeline sweep");
                black_box(field[n * n - 1])
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    dependent_sweep,
    doall_and_reduction,
    pooled_vs_spawn,
    padded_vs_unpadded,
    batched_vs_per_row,
);
criterion_main!(benches);
