//! Criterion benchmarks of the compiler itself: dependence analysis,
//! the DL-guided affine stage, the Pluto-like baseline scheduler, code
//! generation, and the full end-to-end flows on representative kernels.

use polymix_bench::microbench::{BenchmarkId, Criterion};
use polymix_bench::{criterion_group, criterion_main};
use polymix_codegen::from_poly::generate;
use polymix_core::{affine_stage, optimize_poly_ast, PolyAstOptions};
use polymix_deps::build_podg;
use polymix_dl::Machine;
use polymix_pluto::{optimize_pluto, schedule_pluto, Fusion, PlutoOptions};
use polymix_polybench::kernel_by_name;
use std::hint::black_box;

fn dependence_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_podg");
    for name in ["gemm", "2mm", "seidel-2d", "fdtd-2d", "adi"] {
        let scop = (kernel_by_name(name).unwrap().build)();
        group.bench_with_input(BenchmarkId::from_parameter(name), &scop, |b, s| {
            b.iter(|| black_box(build_podg(s).deps.len()));
        });
    }
    group.finish();
}

fn schedulers(c: &mut Criterion) {
    let machine = Machine::nehalem();
    let mut group = c.benchmark_group("schedulers");
    for name in ["gemm", "2mm", "jacobi-2d-imper"] {
        let scop = (kernel_by_name(name).unwrap().build)();
        group.bench_with_input(
            BenchmarkId::new("affine_stage", name),
            &scop,
            |b, s| b.iter(|| black_box(affine_stage(s, &machine).expect("affine").len())),
        );
        group.bench_with_input(
            BenchmarkId::new("pluto_smartfuse", name),
            &scop,
            |b, s| b.iter(|| black_box(schedule_pluto(s, Fusion::Smart).expect("schedule").len())),
        );
    }
    group.finish();
}

fn codegen_and_flows(c: &mut Criterion) {
    let machine = Machine::nehalem();
    let scop = (kernel_by_name("2mm").unwrap().build)();
    let schedules = affine_stage(&scop, &machine).expect("affine");
    c.bench_function("codegen_2mm", |b| {
        b.iter(|| black_box(generate(&scop, &schedules).expect("generate").body.count_stmts()));
    });
    let mut group = c.benchmark_group("end_to_end");
    for name in ["gemm", "2mm", "seidel-2d"] {
        let scop = (kernel_by_name(name).unwrap().build)();
        group.bench_with_input(BenchmarkId::new("poly_ast", name), &scop, |b, s| {
            b.iter(|| {
                let p = optimize_poly_ast(
                    s,
                    &PolyAstOptions {
                        machine: machine.clone(),
                        ..Default::default()
                    },
                )
                .expect("optimize");
                black_box(p.n_vars)
            });
        });
        group.bench_with_input(BenchmarkId::new("pluto", name), &scop, |b, s| {
            b.iter(|| {
                let p = optimize_pluto(s, &PlutoOptions::default()).expect("optimize");
                black_box(p.n_vars)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, dependence_analysis, schedulers, codegen_and_flows);
criterion_main!(benches);
