//! Criterion benchmarks of the execution substrates: the AST interpreter
//! (the semantics oracle) and the trace-driven cache simulator.

use polymix_bench::microbench::{BenchmarkId, Criterion};
use polymix_bench::{criterion_group, criterion_main};
use polymix_ast::interp::execute;
use polymix_bench::variants::{build_variant, Variant};
use polymix_cachesim::{simulate, CacheConfig};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;
use std::hint::black_box;

fn interpreter(c: &mut Criterion) {
    let machine = Machine::host();
    let mut group = c.benchmark_group("interpreter_mini");
    for name in ["gemm", "jacobi-2d-imper"] {
        let k = kernel_by_name(name).unwrap();
        let scop = (k.build)();
        let params = k.dataset("mini").params;
        for v in [Variant::Native, Variant::PolyAst] {
            let prog = build_variant(&k, v, &machine).expect("variant builds");
            group.bench_with_input(
                BenchmarkId::new(format!("{name}"), v.name()),
                &prog,
                |b, p| {
                    b.iter(|| {
                        let mut arrays = k.fresh_arrays(&scop, &params);
                        execute(p, &params, &mut arrays);
                        black_box(arrays[0][0])
                    });
                },
            );
        }
    }
    group.finish();
}

fn cache_simulation(c: &mut Criterion) {
    let machine = Machine::host();
    let k = kernel_by_name("gemm").unwrap();
    let scop = (k.build)();
    let params = k.dataset("mini").params;
    let prog = build_variant(&k, Variant::Native, &machine).expect("variant builds");
    c.bench_function("cachesim_gemm_mini_l1", |b| {
        b.iter(|| {
            let mut arrays = k.fresh_arrays(&scop, &params);
            let s = simulate(&prog, &params, &mut arrays, CacheConfig::l1_nehalem());
            black_box(s.misses)
        });
    });
}

criterion_group!(benches, interpreter, cache_simulation);
criterion_main!(benches);
