//! Task-graph runtime vs the barrier-style primitives on three tile
//! spaces (the `BENCH_taskgraph.json` sweep):
//!
//! * **rectangular** — every diagonal is long, so the per-diagonal
//!   barrier of `wavefront_2d` amortizes well; the counter graph should
//!   sit within noise of it.
//! * **triangular** — diagonals range from 1 tile to n tiles. The
//!   rectangular primitives must sweep the bounding box (guarding out
//!   the empty half) and pay a barrier per diagonal regardless of how
//!   few live tiles it holds; the task graph runs exactly the live
//!   cells with no barrier at all.
//! * **skewed** — a parallelogram tile space (the shape tiling a
//!   stencil's time dimension produces). Same story as triangular:
//!   short entry/exit diagonals, bounding-box padding for the
//!   rectangular primitives.

use polymix_bench::microbench::{BenchmarkId, Criterion};
use polymix_bench::{criterion_group, criterion_main};
use polymix_runtime::{
    pipeline_2d, taskgraph_2d, wavefront_2d, GridSweep, RuntimeOptions, TileGraph,
};
use std::collections::HashMap;
use std::hint::black_box;

/// Standard-cone dependence vectors of a 2-D sweep.
const CONE: [(i64, i64); 2] = [(1, 0), (0, 1)];

fn threads_under_test() -> Vec<usize> {
    let max_t = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    [2usize, 4].into_iter().filter(|&t| t <= max_t).collect()
}

/// Explicit counter graph over an arbitrary cell set: one edge per
/// standard-cone neighbor present in the set. This is the setup a
/// compiler does once per kernel, so it is built outside the timed
/// loop.
fn graph_over(cells: &[(i64, i64)]) -> TileGraph {
    let index: HashMap<(i64, i64), usize> =
        cells.iter().copied().enumerate().map(|(k, c)| (c, k)).collect();
    let mut edges = Vec::new();
    for (k, &(i, j)) in cells.iter().enumerate() {
        for (di, dj) in CONE {
            if let Some(&s) = index.get(&(i + di, j + dj)) {
                edges.push((k, s));
            }
        }
    }
    TileGraph::from_edges(cells.len(), Some(cells), &edges).expect("dag")
}

/// The shared per-tile workload: a 5-point-ish stencil update reading
/// the two awaited neighbors. `stride` is the row length of the backing
/// field.
unsafe fn tile_body(p: *mut f64, stride: usize, i: i64, j: i64) {
    let (i, j) = (i as usize, j as usize);
    *p.add(i * stride + j) = 0.25
        * (2.0 * *p.add(i * stride + j) + *p.add((i - 1) * stride + j) + *p.add(i * stride + j - 1));
}

/// Long diagonals: the barrier amortizes, the counter graph must not
/// lose ground.
fn rectangular(c: &mut Criterion) {
    let n = 128usize;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: n as i64,
    };
    let graph = TileGraph::from_grid_deps(grid, &CONE).expect("graph");
    let mut group = c.benchmark_group("taskgraph_rect_128");
    for t in threads_under_test() {
        group.bench_with_input(BenchmarkId::new("wavefront", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                wavefront_2d(grid, t, |i, j| unsafe { tile_body(ptr as *mut f64, n, i, j) })
                    .expect("wavefront");
                black_box(field[n * n - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("pipeline", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                pipeline_2d(grid, t, |i, j| unsafe { tile_body(ptr as *mut f64, n, i, j) })
                    .expect("pipeline");
                black_box(field[n * n - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("taskgraph", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                graph
                    .run(t, RuntimeOptions::default(), |_, i, j| unsafe {
                        tile_body(ptr as *mut f64, n, i, j)
                    })
                    .expect("taskgraph");
                black_box(field[n * n - 1])
            });
        });
        // The one-call wrapper (graph built per invocation) keeps the
        // construction cost honest in the record.
        group.bench_with_input(BenchmarkId::new("taskgraph_rebuilt", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                taskgraph_2d(grid, t, &CONE, |i, j| unsafe {
                    tile_body(ptr as *mut f64, n, i, j)
                })
                .expect("taskgraph");
                black_box(field[n * n - 1])
            });
        });
    }
    group.finish();
}

/// Lower triangle of an n x n box: diagonals of length 1..=n. The
/// rectangular primitives sweep the bounding box and guard out the dead
/// half; the task graph runs the live cells only.
fn triangular(c: &mut Criterion) {
    let n = 96usize;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: n as i64,
    };
    let cells: Vec<(i64, i64)> = (1..n as i64)
        .flat_map(|i| (1..=i).map(move |j| (i, j)))
        .collect();
    let graph = graph_over(&cells);
    let mut group = c.benchmark_group("taskgraph_tri_96");
    for t in threads_under_test() {
        group.bench_with_input(BenchmarkId::new("wavefront_boxed", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                wavefront_2d(grid, t, |i, j| unsafe {
                    if j <= i {
                        tile_body(ptr as *mut f64, n, i, j);
                    }
                })
                .expect("wavefront");
                black_box(field[n * n - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("pipeline_boxed", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                pipeline_2d(grid, t, |i, j| unsafe {
                    if j <= i {
                        tile_body(ptr as *mut f64, n, i, j);
                    }
                })
                .expect("pipeline");
                black_box(field[n * n - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("taskgraph", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * n];
                let ptr = field.as_ptr() as usize;
                graph
                    .run(t, RuntimeOptions::default(), |_, i, j| unsafe {
                        tile_body(ptr as *mut f64, n, i, j)
                    })
                    .expect("taskgraph");
                black_box(field[n * n - 1])
            });
        });
    }
    group.finish();
}

/// Parallelogram: row i owns columns i..i+m (what skewing a stencil's
/// tile space produces). Bounding box is n x (n + m), so the
/// rectangular primitives pad heavily and every diagonal is short
/// relative to the box.
fn skewed(c: &mut Criterion) {
    let n = 96usize;
    let m = 24usize;
    let stride = n + m;
    let grid = GridSweep {
        i_lo: 1,
        i_hi: n as i64,
        j_lo: 1,
        j_hi: (n + m) as i64,
    };
    let cells: Vec<(i64, i64)> = (1..n as i64)
        .flat_map(|i| (i..i + m as i64).map(move |j| (i, j)))
        .collect();
    let graph = graph_over(&cells);
    let mut group = c.benchmark_group("taskgraph_skew_96x24");
    for t in threads_under_test() {
        group.bench_with_input(BenchmarkId::new("wavefront_boxed", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * stride];
                let ptr = field.as_ptr() as usize;
                wavefront_2d(grid, t, |i, j| unsafe {
                    if j >= i && j < i + m as i64 {
                        tile_body(ptr as *mut f64, stride, i, j);
                    }
                })
                .expect("wavefront");
                black_box(field[n * stride - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("pipeline_boxed", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * stride];
                let ptr = field.as_ptr() as usize;
                pipeline_2d(grid, t, |i, j| unsafe {
                    if j >= i && j < i + m as i64 {
                        tile_body(ptr as *mut f64, stride, i, j);
                    }
                })
                .expect("pipeline");
                black_box(field[n * stride - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("taskgraph", t), &t, |b, &t| {
            b.iter(|| {
                let field = vec![1.0f64; n * stride];
                let ptr = field.as_ptr() as usize;
                graph
                    .run(t, RuntimeOptions::default(), |_, i, j| unsafe {
                        tile_body(ptr as *mut f64, stride, i, j)
                    })
                    .expect("taskgraph");
                black_box(field[n * stride - 1])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, rectangular, triangular, skewed);
criterion_main!(benches);
