//! Minimal offline bench harness with a criterion-shaped API.
//!
//! The container cannot fetch the `criterion` crate, so the benches under
//! `benches/` run on this drop-in subset instead: same `Criterion` /
//! `benchmark_group` / `bench_with_input` / `BenchmarkId` surface, but
//! measurement is a fixed warmup plus a timed batch with median-of-runs
//! reporting, printed as plain text.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long each measurement aims to run. Kept short: these benches are
/// smoke-level trend detectors, not statistically rigorous.
const TARGET: Duration = Duration::from_millis(200);
const RUNS: usize = 5;

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

#[derive(Default)]
pub struct Bencher {
    /// Median per-iteration time of the measured runs, if `iter` ran.
    ns_per_iter: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warmup + calibration: find an iteration count that fills TARGET.
        let t0 = Instant::now();
        let mut calib = 0u64;
        while t0.elapsed() < TARGET / 4 {
            std::hint::black_box(body());
            calib += 1;
        }
        let per = (TARGET.as_nanos() as u64 / RUNS as u64)
            .checked_div((t0.elapsed().as_nanos() as u64 / calib.max(1)).max(1))
            .unwrap_or(1)
            .max(1);
        let mut samples = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            let t = Instant::now();
            for _ in 0..per {
                std::hint::black_box(body());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[RUNS / 2]);
    }

    fn report(&self, id: &str) {
        match self.ns_per_iter {
            Some(ns) if ns >= 1e6 => println!("{id:<48} {:>12.3} ms/iter", ns / 1e6),
            Some(ns) if ns >= 1e3 => println!("{id:<48} {:>12.3} us/iter", ns / 1e3),
            Some(ns) => println!("{id:<48} {:>12.1} ns/iter", ns),
            None => println!("{id:<48} (no measurement)"),
        }
        if let Some(ns) = self.ns_per_iter {
            record_json(id, ns);
        }
    }
}

/// All measurements reported so far by this process, for the JSON sink.
static JSON_RECORDS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// When `POLYMIX_BENCH_JSON` names a file, every reported measurement is
/// mirrored there as a JSON array of `{"id", "ns_per_iter"}` records
/// (rewritten after each report, so the file is valid JSON even if the
/// bench process is cut short).
fn record_json(id: &str, ns: f64) {
    let Ok(path) = std::env::var("POLYMIX_BENCH_JSON") else {
        return;
    };
    let mut recs = JSON_RECORDS.lock().unwrap_or_else(|e| e.into_inner());
    recs.push((id.to_string(), ns));
    let mut out = String::from("[\n");
    for (k, (id, ns)) in recs.iter().enumerate() {
        let comma = if k + 1 < recs.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"ns_per_iter\": {ns:.1}}}{comma}\n",
            id.replace('"', "'")
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("POLYMIX_BENCH_JSON: cannot write {path}: {e}");
    }
}

/// Criterion-compatible: names a benchmark suite made of the listed
/// functions, each taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $func(&mut c); )+
        }
    };
}

/// Criterion-compatible entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
