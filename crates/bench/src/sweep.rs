//! Crash-safe parallel sweep executor.
//!
//! The paper's evaluation is measurement-heavy: every table and figure
//! is a sweep over (kernel, variant, dataset) jobs, each of which must
//! emit a standalone program, compile it with `rustc -O`, and run it.
//! This module pipelines those stages across a bounded worker pool while
//! keeping the things that must not be concurrent — the binary cache
//! (exactly-once compiles, atomic publish; see [`crate::runner`]) and
//! the *measured* runs (serialized behind a semaphore so parallel
//! compilation never perturbs timing) — safe.
//!
//! Results stream to an append-only JSONL log (one object per job), so
//! an interrupted sweep can be re-invoked with the same `--results` path
//! and resume by skipping every already-recorded job.

use crate::report::Cli;
use crate::runner::{ensure_compiled, is_kernel_failure, run_binary, RunResult, Runner};
use polymix_ir::error::PolymixError;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// What a sweep job actually executes — the backend seam.
///
/// `Rustc` is the emit → `rustc -O` → spawn round trip (full fidelity);
/// `InProcess` is a closure that measures without leaving the process
/// (the `polymix-vm` bytecode backend). The JSONL log and the resume
/// keys record which backend produced each cell, so vm and rustc
/// measurements of the same job id never cross-satisfy each other.
pub enum JobWork {
    /// Emit standalone Rust, compile, run as a subprocess.
    Rustc {
        /// Builds the emitted Rust source for this job.
        #[allow(clippy::type_complexity)]
        source: Box<dyn FnOnce() -> Result<String, PolymixError> + Send>,
        /// Builds a *sequential* (single-thread) emission of the same
        /// kernel, used as the graceful-degradation fallback: when the
        /// primary run fails at the kernel level (poisoned runtime,
        /// timeout, non-zero exit — see
        /// [`crate::runner::is_kernel_failure`]), the job re-runs this
        /// source and records a `degraded(sequential)` measurement
        /// instead of an error cell. `None` disables degradation.
        #[allow(clippy::type_complexity)]
        seq_source: Option<Box<dyn FnOnce() -> Result<String, PolymixError> + Send>>,
    },
    /// Measure in-process (no subprocess, no filesystem). The closure
    /// still runs under the measurement semaphore so in-process timing
    /// is never perturbed by concurrent measured runs; there is no
    /// retry (nothing transient to retry) and no sequential
    /// degradation (a poisoned vm run is a real, deterministic result).
    InProcess {
        /// The measurement itself.
        #[allow(clippy::type_complexity)]
        run: Box<dyn FnOnce() -> Result<RunResult, PolymixError> + Send>,
        /// Knobs active on this cell that the bytecode backend cannot
        /// model (see [`polymix_vm::UNMODELED_KNOBS`]): the vm number
        /// is blind to them, so a screened cell carrying any of these
        /// tags *needs* the rustc confirm pass before its knob setting
        /// can be trusted. Recorded on the JSONL row.
        unmodeled_knobs: Vec<&'static str>,
    },
}

impl JobWork {
    /// The backend name recorded in the JSONL log and the resume key.
    pub fn backend(&self) -> &'static str {
        match self {
            JobWork::Rustc { .. } => "rustc",
            JobWork::InProcess { .. } => "vm",
        }
    }
}

/// One (kernel, variant, dataset) measurement job.
///
/// `work` runs on a worker thread (building the variant on the way); a
/// build failure is recorded as that job's error cell without
/// disturbing other jobs.
pub struct SweepJob {
    /// Stable unique key; the resume log skips (id, backend) pairs it
    /// has already seen.
    pub id: String,
    /// Kernel name (reporting + error context).
    pub kernel: String,
    /// Variant label (reporting + error context).
    pub variant: String,
    /// Dataset name (reporting only).
    pub dataset: String,
    /// Parameter values (reporting only).
    pub params: Vec<i64>,
    /// The measurement itself (backend-specific; see [`JobWork`]).
    pub work: JobWork,
}

/// The outcome of one sweep job, in submission order.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's stable id.
    pub id: String,
    /// Kernel name.
    pub kernel: String,
    /// Variant label.
    pub variant: String,
    /// Dataset name.
    pub dataset: String,
    /// Parameter values the job ran at.
    pub params: Vec<i64>,
    /// Measurement, or the stage-tagged failure for the `error(<stage>)`
    /// cell.
    pub result: Result<RunResult, PolymixError>,
    /// `true` when the result was replayed from the JSONL log instead of
    /// re-measured.
    pub resumed: bool,
    /// `true` when the parallel run failed and `result` holds the
    /// sequential degradation re-run (rendered as a `†`-marked cell).
    pub degraded: bool,
    /// Which backend produced `result` (`"rustc"` or `"vm"`).
    pub backend: &'static str,
    /// Knob tags the measuring backend could not model (empty for
    /// rustc cells and for resumed cells; see [`JobWork::InProcess`]).
    pub unmodeled_knobs: Vec<&'static str>,
}

/// Execution policy for [`run_sweep`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker threads pipelining emit → compile → run.
    pub jobs: usize,
    /// Concurrent *measured* runs (default 1: timing fidelity).
    pub measure_jobs: usize,
    /// Wall-clock budget per `rustc` invocation.
    pub compile_timeout: Duration,
    /// Wall-clock budget per measured run.
    pub run_timeout: Duration,
    /// Retries (with exponential backoff) for transient spawn/lock
    /// failures. Deterministic failures — compile errors, timeouts,
    /// non-zero exits — are never retried.
    pub retries: usize,
    /// Append-only JSONL results log; enables resume when set.
    pub results_path: Option<PathBuf>,
}

impl SweepConfig {
    /// Policy from the shared CLI flags (`--jobs`, `--measure-jobs`,
    /// `--compile-timeout`, `--run-timeout`, `--retries`, `--results`).
    pub fn from_cli(cli: &Cli) -> SweepConfig {
        SweepConfig {
            jobs: cli.jobs.max(1),
            measure_jobs: cli.measure_jobs.max(1),
            compile_timeout: Duration::from_secs(cli.compile_timeout_s.max(1)),
            run_timeout: Duration::from_secs(cli.run_timeout_s.max(1)),
            retries: cli.retries,
            results_path: cli.results.as_ref().map(PathBuf::from),
        }
    }
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            jobs: 1,
            measure_jobs: 1,
            compile_timeout: crate::runner::DEFAULT_COMPILE_TIMEOUT,
            run_timeout: crate::runner::DEFAULT_RUN_TIMEOUT,
            retries: 2,
            results_path: None,
        }
    }
}

/// Mutex lock that shrugs off poisoning: a worker that panicked while
/// holding the queue or log lock must not wedge every other worker.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A counting semaphore gating the measured runs.
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = lock(&self.permits);
        while *p == 0 {
            p = self.cv.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        *p -= 1;
    }

    fn release(&self) {
        *lock(&self.permits) += 1;
        self.cv.notify_one();
    }
}

/// Transient failures worth a backoff-retry: the OS refused a spawn
/// (EAGAIN under load), or cache lock coordination glitched. Compile
/// errors and kernel failures are deterministic and final. Public
/// because `polymix-service` applies the same classification to its
/// optimization and cache-persistence failures.
pub fn is_transient(detail: &str) -> bool {
    detail.contains("spawn:") || detail.contains("lockfile") || detail.contains("wait:")
}

/// Runs every job through emit → compile → run on `cfg.jobs` workers and
/// returns outcomes in submission order. Never panics on job failure:
/// each failure becomes that job's `Err` outcome (and JSONL record) and
/// the sweep continues.
pub fn run_sweep(jobs: Vec<SweepJob>, runner: &Runner, cfg: &SweepConfig) -> Vec<JobOutcome> {
    #[allow(clippy::type_complexity)]
    let recorded: HashMap<(String, String), (Result<RunResult, PolymixError>, bool)> = cfg
        .results_path
        .as_deref()
        .map(load_results)
        .unwrap_or_default();
    let log = cfg.results_path.as_ref().and_then(|p| {
        if let Some(dir) = p.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        repair_log_tail(p);
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .map(Mutex::new)
            .ok()
    });
    let n = jobs.len();
    let queue: Vec<Mutex<Option<SweepJob>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let outcomes: Vec<Mutex<Option<JobOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let measure = Semaphore::new(cfg.measure_jobs.max(1));
    let workers = cfg.jobs.clamp(1, n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let Some(job) = lock(&queue[i]).take() else {
                    continue;
                };
                let backend = job.work.backend();
                let key = (job.id.clone(), backend.to_string());
                let outcome = if let Some((prior, degraded)) = recorded.get(&key) {
                    JobOutcome {
                        id: job.id,
                        kernel: job.kernel,
                        variant: job.variant,
                        dataset: job.dataset,
                        params: job.params,
                        result: prior.clone(),
                        resumed: true,
                        degraded: *degraded,
                        backend,
                        unmodeled_knobs: Vec::new(),
                    }
                } else {
                    let done = execute_job(job, runner, cfg, &measure);
                    if let Some(log) = &log {
                        let mut f = lock(log);
                        let _ = writeln!(f, "{}", record_line(&done));
                        let _ = f.flush();
                    }
                    done
                };
                *lock(&outcomes[i]) = Some(outcome);
            });
        }
    });
    outcomes
        .into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

/// One job's emit → compile → (semaphore) run pipeline, with transient
/// retry, cached-binary invalidation, and — when the kernel itself
/// fails and the job supplied a `seq_source` — a sequential degradation
/// re-run recorded as a `degraded` measurement.
fn execute_job(job: SweepJob, runner: &Runner, cfg: &SweepConfig, measure: &Semaphore) -> JobOutcome {
    let SweepJob {
        id,
        kernel,
        variant,
        dataset,
        params,
        work,
    } = job;
    let backend = work.backend();
    let label = format!("{kernel}_{variant}");
    let mut degraded = false;
    let mut unmodeled_knobs = Vec::new();
    let result = match work {
        JobWork::Rustc { source, seq_source } => {
            let mut result = run_one(source, &label, &kernel, &variant, runner, cfg, measure);
            if let (Err(e), Some(seq)) = (&result, seq_source) {
                if kernel_failed(e) {
                    eprintln!(
                        "{label}: parallel run failed ({e}); degrading to a sequential re-run"
                    );
                    let seq_label = format!("{label}_seq");
                    match run_one(seq, &seq_label, &kernel, &variant, runner, cfg, measure) {
                        Ok(r) => {
                            result = Ok(r);
                            degraded = true;
                        }
                        // Keep the original (more informative) parallel
                        // failure as the job's error cell.
                        Err(e2) => {
                            eprintln!("{label}: sequential degradation also failed: {e2}")
                        }
                    }
                }
            }
            result
        }
        JobWork::InProcess { run, unmodeled_knobs: tags } => {
            // In-process measurement still serializes behind the
            // measurement semaphore; a panic inside the closure poisons
            // this cell only, never the sweep.
            unmodeled_knobs = tags;
            measure.acquire();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run))
                .unwrap_or_else(|_| {
                    Err(PolymixError::runner(
                        &kernel,
                        &variant,
                        "runtime_error: in-process measurement panicked",
                    ))
                });
            measure.release();
            result
        }
    };
    JobOutcome {
        id,
        kernel,
        variant,
        dataset,
        params,
        result,
        resumed: false,
        degraded,
        backend,
        unmodeled_knobs,
    }
}

/// True when a job failure came from the kernel run itself (as opposed
/// to the emit/build stage or the environment), i.e. when a sequential
/// degradation re-run could still produce a measurement.
fn kernel_failed(e: &PolymixError) -> bool {
    matches!(e, PolymixError::Runner { detail, .. } if is_kernel_failure(detail))
}

/// Emit → compile → (semaphore) run for one source, with transient retry
/// and cached-binary invalidation.
#[allow(clippy::type_complexity)]
fn run_one(
    source: Box<dyn FnOnce() -> Result<String, PolymixError> + Send>,
    label: &str,
    kernel: &str,
    variant: &str,
    runner: &Runner,
    cfg: &SweepConfig,
    measure: &Semaphore,
) -> Result<RunResult, PolymixError> {
    let src = source()?;
    let err = |detail: String| PolymixError::runner(kernel, variant, detail);
    let compile = || {
        with_retries(cfg.retries, || {
            ensure_compiled(
                &src,
                &runner.work_dir,
                &runner.rustc_flags,
                label,
                cfg.compile_timeout,
            )
        })
    };
    let compiled = compile().map_err(&err)?;
    measure.acquire();
    let ran = with_retries(cfg.retries, || {
        run_binary(&compiled.bin_path, label, cfg.run_timeout)
    });
    let ran = match ran {
        // A failing *cached* binary may be a truncated artifact from
        // a killed earlier sweep: invalidate, recompile once, rerun.
        // Timeouts are real results, not cache corruption.
        Err(e) if !compiled.freshly_compiled && !e.starts_with("timeout") => {
            let _ = std::fs::remove_file(&compiled.bin_path);
            match compile() {
                Ok(rebuilt) => run_binary(&rebuilt.bin_path, label, cfg.run_timeout)
                    .map_err(|e2| format!("{e2} (cache invalidated after: {e})")),
                Err(e2) => Err(format!("{e2} (cache invalidated after: {e})")),
            }
        }
        other => other,
    };
    measure.release();
    ran.map_err(err)
}

/// Retries `f` on transient failures ([`is_transient`]) with
/// 100ms·2^k backoff. Shared with `polymix-service`.
pub fn with_retries<T>(retries: usize, f: impl Fn() -> Result<T, String>) -> Result<T, String> {
    let mut attempt = 0;
    loop {
        match f() {
            Err(e) if attempt < retries && is_transient(&e) => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(100 << attempt.min(6)));
            }
            other => return other,
        }
    }
}

// ---------------------------------------------------------------------
// JSONL results log.
// ---------------------------------------------------------------------

/// Escapes `s` for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one outcome as its JSONL record.
fn record_line(o: &JobOutcome) -> String {
    let params = o
        .params
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let head = format!(
        "{{\"id\":\"{}\",\"backend\":\"{}\",\"kernel\":\"{}\",\"variant\":\"{}\",\"dataset\":\"{}\",\"params\":[{params}]",
        json_escape(&o.id),
        o.backend,
        json_escape(&o.kernel),
        json_escape(&o.variant),
        json_escape(&o.dataset),
    );
    // Degradation only ever replaces a failure with a sequential
    // *measurement*, so the flag appears on `ok` records alone.
    let degraded = if o.degraded {
        ",\"degraded\":\"sequential\"".to_string()
    } else {
        String::new()
    };
    // The flat JSONL parser has no string arrays, so the tag list is
    // one comma-joined string field, present only when non-empty.
    let degraded = if o.unmodeled_knobs.is_empty() {
        degraded
    } else {
        format!("{degraded},\"unmodeled_knobs\":\"{}\"", o.unmodeled_knobs.join(","))
    };
    match &o.result {
        Ok(r) => format!(
            "{head},\"status\":\"ok\",\"checksum\":{:e},\"time_s\":{:e},\"gflops\":{:e}{degraded}}}",
            r.checksum, r.time_s, r.gflops
        ),
        Err(e) => format!(
            "{head},\"status\":\"error\",\"stage\":\"{}\",\"detail\":\"{}\"}}",
            e.stage(),
            json_escape(&e.to_string()),
        ),
    }
}

/// A sweep killed mid-append can leave the log without a trailing
/// newline. A later append would then glue its first record onto the
/// torn fragment, corrupting *both* — so before reopening the log for
/// append, terminate the fragment. The fragment's own line stays in
/// place; [`load_results`] skips it (with the one-time warning) and the
/// cell it belonged to re-measures.
fn repair_log_tail(path: &Path) {
    use std::io::{Read, Seek, SeekFrom};
    let Ok(mut f) = std::fs::OpenOptions::new().read(true).append(true).open(path) else {
        return;
    };
    let Ok(len) = f.seek(SeekFrom::End(0)) else {
        return;
    };
    if len == 0 || f.seek(SeekFrom::End(-1)).is_err() {
        return;
    }
    let mut last = [0u8; 1];
    if f.read_exact(&mut last).is_ok() && last[0] != b'\n' {
        let _ = f.write_all(b"\n");
    }
}

/// Loads previously recorded outcomes ((id, backend) → (result,
/// degraded)) from a JSONL log. Records without a `backend` field (logs
/// written before the vm backend existed) load as `"rustc"` cells —
/// the only backend those sweeps could have used. Unparseable lines
/// (e.g. one truncated by a crash mid-append, the torn trailing line of
/// a killed sweep) are tolerated: each is skipped with a one-time
/// warning naming how many lines were dropped, and the cells they
/// belonged to simply re-measure on resume. Later records win over
/// earlier ones with the same (id, backend).
#[allow(clippy::type_complexity)]
pub fn load_results(path: &Path) -> HashMap<(String, String), (Result<RunResult, PolymixError>, bool)> {
    let mut out = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line) {
            Some((key, entry)) => {
                out.insert(key, entry);
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!(
            "warning: results log {}: skipped {skipped} unparseable line(s) \
             (torn append from an interrupted sweep?); the affected cells \
             will be re-measured",
            path.display()
        );
    }
    out
}

/// Parses one results-log line into `((id, backend), (result,
/// degraded))`; `None` when the line is syntactically broken *or*
/// semantically incomplete (missing id / status / measurement fields) —
/// both shapes a torn append can produce. A missing `backend` field
/// reads as `"rustc"` (pre-vm logs).
#[allow(clippy::type_complexity)]
fn parse_entry(line: &str) -> Option<((String, String), (Result<RunResult, PolymixError>, bool))> {
    let rec = parse_record(line)?;
    let id = rec.str_field("id")?;
    let backend = rec.str_field("backend").unwrap_or("rustc");
    let result = match rec.str_field("status")? {
        "ok" => Ok(RunResult {
            checksum: rec.num_field("checksum")?,
            time_s: rec.num_field("time_s")?,
            gflops: rec.num_field("gflops")?,
        }),
        "error" => {
            let kernel = rec.str_field("kernel").unwrap_or("?").to_string();
            let variant = rec.str_field("variant").unwrap_or("?").to_string();
            let detail = rec.str_field("detail").unwrap_or("").to_string();
            Err(error_for_stage(
                rec.str_field("stage").unwrap_or("runner"),
                kernel,
                variant,
                detail,
            ))
        }
        _ => return None,
    };
    let degraded = rec.str_field("degraded") == Some("sequential");
    Some(((id.to_string(), backend.to_string()), (result, degraded)))
}

/// Prints the `†` legend when any outcome in the sweep was measured via
/// the sequential degradation path, so a rendered table is never left
/// with an unexplained marker.
pub fn print_degraded_legend(outcomes: &[JobOutcome]) {
    if outcomes.iter().any(|o| o.degraded) {
        println!(
            "† degraded(sequential): the parallel kernel failed and the cell \
             reports a single-thread re-run (see EXPERIMENTS.md)"
        );
    }
}

/// Reconstructs a stage-correct [`PolymixError`] from a log record, so a
/// resumed sweep renders the same `error(<stage>)` cell it did live.
fn error_for_stage(stage: &str, kernel: String, variant: String, detail: String) -> PolymixError {
    match stage {
        "build" => PolymixError::build(kernel, detail),
        "scheduling" => PolymixError::scheduling(kernel, 0, Vec::new(), detail),
        "legality" => PolymixError::Legality { kernel, detail },
        "transform" => PolymixError::transform(variant, detail),
        "codegen" => PolymixError::codegen(kernel, detail),
        _ => PolymixError::runner(kernel, variant, detail),
    }
}

/// A parsed flat JSON object (string keys; string / number / array
/// values) — exactly the shape [`record_line`] emits. Hand-rolled
/// because the workspace is offline and dependency-free by policy.
/// Shared with [`crate::autotune`] (tuned-config files) and
/// `polymix-service` (wire protocol and persistent cache entries), which
/// use the same flat-object grammar.
pub struct Record {
    fields: Vec<(String, Value)>,
}

enum Value {
    Str(String),
    Num(f64),
    Arr(Vec<f64>),
}

impl Record {
    /// The string value of `key`, if present with that type.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// The numeric value of `key`, if present with that type.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::Num(x) if k == key => Some(*x),
            _ => None,
        })
    }

    /// The numeric-array value of `key`, if present with that type.
    pub fn arr_field(&self, key: &str) -> Option<&[f64]> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::Arr(xs) if k == key => Some(xs.as_slice()),
            _ => None,
        })
    }
}

/// Parses one flat JSONL record; `None` on any syntax violation.
pub fn parse_record(line: &str) -> Option<Record> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Some(Record { fields });
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        fields.push((key, value));
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => return Some(Record { fields }),
            _ => return None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut arr = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Some(Value::Arr(arr));
                }
                loop {
                    self.skip_ws();
                    arr.push(self.number()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Some(Value::Arr(arr));
                        }
                        _ => return None,
                    }
                }
            }
            _ => self.number().map(Value::Num),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_outcome(id: &str) -> JobOutcome {
        JobOutcome {
            id: id.into(),
            kernel: "gemm".into(),
            variant: "poly+ast".into(),
            dataset: "small".into(),
            params: vec![128, 128, 128],
            result: Ok(RunResult {
                checksum: 123.456,
                time_s: 0.0042,
                gflops: 2.34,
            }),
            resumed: false,
            degraded: false,
            backend: "rustc",
            unmodeled_knobs: Vec::new(),
        }
    }

    fn key(id: &str, backend: &str) -> (String, String) {
        (id.to_string(), backend.to_string())
    }

    #[test]
    fn record_roundtrip_ok() {
        let line = record_line(&ok_outcome("gemm:poly+ast:small"));
        let map = {
            let mut m = HashMap::new();
            let rec = parse_record(&line).expect("parses");
            assert_eq!(rec.str_field("status"), Some("ok"));
            m.insert(rec.str_field("id").unwrap().to_string(), ());
            m
        };
        assert!(map.contains_key("gemm:poly+ast:small"));
        let dir = std::env::temp_dir().join(format!("polymix-jsonl-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("roundtrip.jsonl");
        std::fs::write(&path, format!("{line}\n")).unwrap();
        let loaded = load_results(&path);
        let (result, degraded) = &loaded[&key("gemm:poly+ast:small", "rustc")];
        let r = result.as_ref().expect("ok record");
        assert!((r.checksum - 123.456).abs() < 1e-9);
        assert!((r.gflops - 2.34).abs() < 1e-9);
        assert!(!*degraded, "plain ok record is not degraded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_roundtrip_degraded_preserves_flag() {
        let mut o = ok_outcome("seidel:poly+ast:small");
        o.degraded = true;
        let line = record_line(&o);
        assert!(line.contains("\"degraded\":\"sequential\""), "{line}");
        let path = std::env::temp_dir().join(format!(
            "polymix-jsonl-deg-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, format!("{line}\n")).unwrap();
        let loaded = load_results(&path);
        let (result, degraded) = &loaded[&key("seidel:poly+ast:small", "rustc")];
        assert!(result.is_ok(), "degraded record still carries a measurement");
        assert!(*degraded, "resume must replay the degraded marker");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_roundtrip_error_preserves_stage() {
        let mut o = ok_outcome("adi:pocc:small");
        o.result = Err(PolymixError::runner(
            "adi",
            "pocc",
            "timeout: adi_pocc exceeded 5s (killed)\nwith \"quotes\" and \\slashes",
        ));
        let line = record_line(&o);
        let rec = parse_record(&line).expect("parses");
        assert_eq!(rec.str_field("status"), Some("error"));
        assert_eq!(rec.str_field("stage"), Some("runner"));
        let path = std::env::temp_dir().join(format!("polymix-jsonl-err-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{line}\n")).unwrap();
        let loaded = load_results(&path);
        let e = loaded[&key("adi:pocc:small", "rustc")]
            .0
            .as_ref()
            .expect_err("error record");
        assert_eq!(e.cell(), "error(runner)");
        assert!(e.to_string().contains("timeout"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_results_skips_corrupt_lines_and_keeps_last() {
        let path = std::env::temp_dir().join(format!("polymix-jsonl-cor-{}.jsonl", std::process::id()));
        let good1 = record_line(&ok_outcome("a"));
        let mut newer = ok_outcome("a");
        if let Ok(r) = &mut newer.result {
            r.gflops = 9.0;
        }
        let good2 = record_line(&newer);
        // A line truncated mid-append (crash) plus garbage must both be
        // skipped without poisoning the rest of the log.
        let truncated = &good1[..good1.len() / 2];
        std::fs::write(&path, format!("{good1}\n{truncated}\nnot json\n{good2}\n")).unwrap();
        let loaded = load_results(&path);
        assert_eq!(loaded.len(), 1);
        let r = loaded[&key("a", "rustc")].0.as_ref().unwrap();
        assert!((r.gflops - 9.0).abs() < 1e-12, "last record wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn backend_keys_are_distinct_and_legacy_records_load_as_rustc() {
        let mut vm = ok_outcome("cell");
        vm.backend = "vm";
        if let Ok(r) = &mut vm.result {
            r.gflops = 7.0;
        }
        let line_rustc = record_line(&ok_outcome("cell"));
        let line_vm = record_line(&vm);
        assert!(line_rustc.contains("\"backend\":\"rustc\""), "{line_rustc}");
        assert!(line_vm.contains("\"backend\":\"vm\""), "{line_vm}");
        // A record written before the vm backend existed has no backend
        // field at all; it must load as a rustc cell.
        let legacy = "{\"id\":\"old\",\"kernel\":\"k\",\"variant\":\"v\",\
                      \"dataset\":\"mini\",\"params\":[4],\"status\":\"ok\",\
                      \"checksum\":1e0,\"time_s\":1e-3,\"gflops\":2e0}";
        let path = std::env::temp_dir().join(format!(
            "polymix-jsonl-bk-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, format!("{line_rustc}\n{line_vm}\n{legacy}\n")).unwrap();
        let loaded = load_results(&path);
        assert_eq!(loaded.len(), 3, "vm and rustc cells with one id stay distinct");
        let r_rustc = loaded[&key("cell", "rustc")].0.as_ref().unwrap();
        let r_vm = loaded[&key("cell", "vm")].0.as_ref().unwrap();
        assert!((r_rustc.gflops - 2.34).abs() < 1e-9);
        assert!((r_vm.gflops - 7.0).abs() < 1e-9);
        assert!(loaded.contains_key(&key("old", "rustc")), "legacy default");
        assert!(!loaded.contains_key(&key("old", "vm")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let rec = parse_record("{\"k\":\"a\\u0041\\\"b\"}").unwrap();
        assert_eq!(rec.str_field("k"), Some("aA\"b"));
    }
}
