//! The measurement-backend seam: one interface over "emit, compile with
//! `rustc -O`, run a standalone binary" (full fidelity) and "lower to
//! bytecode, interpret in-process" (`polymix-vm`, orders of magnitude
//! cheaper per cell). Both backends measure the same transformed
//! [`Program`] over identically initialized buffers and reduce the
//! written arrays with the same checksum, so their cells are directly
//! comparable — the sweep log and cache keys still record which backend
//! produced each number (see [`JobWork::backend`]).

use crate::runner::{emit_source_with, EmitKnobs, RunResult};
use crate::sweep::JobWork;
use polymix_ast::tree::Program;
use polymix_ir::PolymixError;
use polymix_polybench::Kernel;
use polymix_vm::{certify_and_apply, lower, run_opts, VmOptions};
use std::sync::Arc;
use std::time::Instant;

/// Deferred variant construction, shared between the primary and the
/// sequential-fallback emission of one rustc job — and across backends
/// when one cell is measured by both (`--backend both`).
pub type ProgBuild = Arc<dyn Fn() -> Result<Program, PolymixError> + Send + Sync>;

/// A way to turn one (kernel, params, knobs, program) cell into
/// executable sweep work.
pub trait Backend {
    /// Backend name as recorded in the JSONL log (`"rustc"` / `"vm"`).
    fn name(&self) -> &'static str;
    /// Packages the measurement of one cell. `label` is the variant
    /// name, used only for error context.
    fn work(
        &self,
        kernel: &Kernel,
        params: &[i64],
        label: &str,
        knobs: EmitKnobs,
        build: ProgBuild,
    ) -> JobWork;
}

/// The emit → `rustc -O` → spawn backend.
pub struct RustcBackend {
    /// Worker threads the emitted kernel runs with.
    pub threads: usize,
    /// Timing repetitions (best-of).
    pub reps: usize,
    /// Also package a single-thread emission as the graceful-degradation
    /// fallback (see [`JobWork::Rustc`]).
    pub seq_fallback: bool,
}

impl Backend for RustcBackend {
    fn name(&self) -> &'static str {
        "rustc"
    }

    fn work(
        &self,
        kernel: &Kernel,
        params: &[i64],
        _label: &str,
        knobs: EmitKnobs,
        build: ProgBuild,
    ) -> JobWork {
        let (threads, reps) = (self.threads, self.reps);
        let (k1, p1, b1) = (kernel.clone(), params.to_vec(), build.clone());
        let source = Box::new(move || {
            let prog = b1()?;
            Ok(emit_source_with(&k1, &prog, &p1, threads, reps, knobs))
        });
        let seq_source: Option<Box<dyn FnOnce() -> Result<String, PolymixError> + Send>> =
            if self.seq_fallback {
                let (k2, p2) = (kernel.clone(), params.to_vec());
                Some(Box::new(move || {
                    let prog = build()?;
                    Ok(emit_source_with(&k2, &prog, &p2, 1, reps, knobs))
                }))
            } else {
                None
            };
        JobWork::Rustc { source, seq_source }
    }
}

/// The in-process bytecode backend.
pub struct VmBackend {
    /// Worker threads for the interpreter's parallel regions.
    pub threads: usize,
    /// Timing repetitions (best-of).
    pub reps: usize,
}

impl Backend for VmBackend {
    fn name(&self) -> &'static str {
        "vm"
    }

    fn work(
        &self,
        kernel: &Kernel,
        params: &[i64],
        label: &str,
        knobs: EmitKnobs,
        build: ProgBuild,
    ) -> JobWork {
        let (threads, reps) = (self.threads, self.reps);
        let kernel = kernel.clone();
        let params = params.to_vec();
        let label = label.to_string();
        JobWork::InProcess {
            run: Box::new(move || {
                let prog = build()?;
                vm_measure(&kernel, &prog, &params, &label, threads, reps, knobs)
            }),
            unmodeled_knobs: vm_unmodeled_tags(&knobs),
        }
    }
}

/// The subset of this cell's knob settings the bytecode backend cannot
/// model (see [`polymix_vm::UNMODELED_KNOBS`]): active knobs in this
/// list change the rustc artifact but not the lowered bytecode, so a vm
/// screening number for the cell is blind to them. Recorded on the JSONL
/// row so downstream analysis can tell which screened cells *needed* the
/// rustc confirm pass.
pub fn vm_unmodeled_tags(knobs: &EmitKnobs) -> Vec<&'static str> {
    let mut tags = Vec::new();
    if knobs.vect && polymix_vm::UNMODELED_KNOBS.contains(&"vect") {
        tags.push("vect");
    }
    if knobs.pipeline_batch.is_some() && polymix_vm::UNMODELED_KNOBS.contains(&"pipeline_batch") {
        tags.push("pipeline_batch");
    }
    if knobs.dyn_grain.is_some() && polymix_vm::UNMODELED_KNOBS.contains(&"dyn_grain") {
        tags.push("dyn_grain");
    }
    tags
}

/// Measures one transformed program with the bytecode interpreter,
/// reproducing the emitted standalone program's measurement contract
/// exactly: buffers are allocated and initialized **once**
/// ([`Kernel::fresh_arrays`], the same policy `init_rust` emits), the
/// kernel runs `reps` times on those same buffers with best-of timing
/// (stencils keep relaxing across reps in both backends), and the
/// checksum reduces every written array with the emitted
/// `x * ((k % 31) + 1)` weighting — so a vm cell and a rustc cell of
/// the same job must agree to FP-reordering tolerance.
pub fn vm_measure(
    kernel: &Kernel,
    prog: &Program,
    params: &[i64],
    label: &str,
    threads: usize,
    reps: usize,
    knobs: EmitKnobs,
) -> Result<RunResult, PolymixError> {
    vm_measure_opts(kernel, prog, params, label, threads, reps, knobs, true)
}

/// [`vm_measure`] with the bounds checks forced back on: the
/// certification gate still applies (uncertified bytecode is never
/// measured), but every access keeps its dynamic check. Differential
/// runs use this so the checks stay the safety net being compared
/// against; `backend_bench` measures both fidelities side by side.
pub fn vm_measure_checked(
    kernel: &Kernel,
    prog: &Program,
    params: &[i64],
    label: &str,
    threads: usize,
    reps: usize,
    knobs: EmitKnobs,
) -> Result<RunResult, PolymixError> {
    vm_measure_opts(kernel, prog, params, label, threads, reps, knobs, false)
}

#[allow(clippy::too_many_arguments)]
fn vm_measure_opts(
    kernel: &Kernel,
    prog: &Program,
    params: &[i64],
    label: &str,
    threads: usize,
    reps: usize,
    knobs: EmitKnobs,
    elide: bool,
) -> Result<RunResult, PolymixError> {
    let mut vm = lower(prog, params)
        .map_err(|e| PolymixError::runner(kernel.name, label, e.to_string()))?;
    // The measurement gate: bytecode is only measured once the static
    // certifier has proven every access in-bounds and every parallel
    // dispatch race-free — and only then may the elided (proof-carrying)
    // fast path replace the dynamic bounds checks.
    certify_and_apply(&mut vm)
        .map_err(|e| PolymixError::runner(kernel.name, label, e.to_string()))?;
    let mut arrays = kernel.fresh_arrays(&prog.scop, params);
    let opts = VmOptions {
        threads,
        taskgraph: knobs.taskgraph,
        elide,
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        run_opts(&vm, &mut arrays, opts)
            .map_err(|e| PolymixError::runner(kernel.name, label, e.to_string()))?;
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    let mut written: Vec<usize> = Vec::new();
    for st in &prog.scop.statements {
        if !written.contains(&st.write.array.0) {
            written.push(st.write.array.0);
        }
    }
    written.sort_unstable();
    let mut checksum = 0.0f64;
    for ai in written {
        for (k, &x) in arrays[ai].iter().enumerate() {
            checksum += x * ((k % 31) as f64 + 1.0);
        }
    }
    Ok(RunResult {
        checksum,
        time_s: best,
        gflops: (kernel.flops)(params) as f64 / best / 1e9,
    })
}

/// Resolves `--backend rustc|vm|both` into the backend set a driver
/// should measure with. Unknown values fail loudly instead of silently
/// measuring with the default fidelity.
pub fn select_backends(
    name: &str,
    threads: usize,
    reps: usize,
    seq_fallback: bool,
) -> Vec<Box<dyn Backend>> {
    match name {
        "rustc" => vec![Box::new(RustcBackend {
            threads,
            reps,
            seq_fallback,
        })],
        "vm" => vec![Box::new(VmBackend { threads, reps })],
        "both" => vec![
            Box::new(RustcBackend {
                threads,
                reps,
                seq_fallback,
            }),
            Box::new(VmBackend { threads, reps }),
        ],
        other => {
            eprintln!("unknown --backend {other:?} (expected rustc, vm or both)");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{build_variant, Variant};
    use polymix_dl::Machine;
    use polymix_polybench::kernel_by_name;

    /// The vm backend must reproduce the emitted program's checksum
    /// convention bit-for-bit on a sequential kernel: same init, same
    /// written-array reduction. Compared against the shared sequential
    /// reference implementation.
    #[test]
    fn vm_measure_matches_reference_checksum() {
        let k = kernel_by_name("gemm").expect("kernel");
        let params = k.dataset("mini").params;
        let machine = Machine::host();
        let prog = build_variant(&k, Variant::Native, &machine).expect("native");
        let r = vm_measure(&k, &prog, &params, "native", 1, 1, EmitKnobs::default())
            .expect("vm measure");
        // Reference: run the kernel's sequential reference on fresh
        // buffers and reduce with the same checksum.
        let scop = (k.build)();
        let mut arrays = k.fresh_arrays(&scop, &params);
        (k.reference)(&params, &mut arrays);
        let mut written: Vec<usize> = Vec::new();
        for st in &scop.statements {
            if !written.contains(&st.write.array.0) {
                written.push(st.write.array.0);
            }
        }
        written.sort_unstable();
        let mut want = 0.0f64;
        for ai in written {
            for (j, &x) in arrays[ai].iter().enumerate() {
                want += x * ((j % 31) as f64 + 1.0);
            }
        }
        let rel = (r.checksum - want).abs() / want.abs().max(1.0);
        assert!(rel < 1e-9, "vm checksum {} vs reference {}", r.checksum, want);
        assert!(r.gflops > 0.0 && r.time_s > 0.0);
    }

    #[test]
    fn backend_names_and_selection() {
        assert_eq!(RustcBackend { threads: 1, reps: 1, seq_fallback: false }.name(), "rustc");
        assert_eq!(VmBackend { threads: 1, reps: 1 }.name(), "vm");
        let both = select_backends("both", 2, 3, true);
        assert_eq!(both.len(), 2);
        assert_eq!(both[0].name(), "rustc");
        assert_eq!(both[1].name(), "vm");
        assert_eq!(select_backends("vm", 1, 1, false)[0].name(), "vm");
    }
}
