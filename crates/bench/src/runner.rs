//! The measurement pipeline: emit → `rustc -O` → run → parse.
//!
//! Crash-safety invariants (relied on by the parallel [`crate::sweep`]
//! executor):
//!
//! * binaries are compiled to a private temp path and atomically renamed
//!   into the cache, so a killed `rustc` can never leave a half-written
//!   binary where the cache lookup would execute it;
//! * a per-id lockfile makes concurrent compilations of the same source
//!   collapse to exactly one `rustc` invocation;
//! * every child process (rustc and the measured kernel) runs under a
//!   wall-clock deadline and is killed — not waited on forever — when it
//!   exceeds it;
//! * a *cached* binary that fails to execute (e.g. a truncated artifact
//!   predating the atomic rename) is deleted and recompiled once instead
//!   of failing the job.

use polymix_ast::tree::Program;
use polymix_codegen::emit::{emit_rust, EmitOptions};
use polymix_ir::error::PolymixError;
use polymix_polybench::Kernel;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Default wall-clock budget for one `rustc` invocation.
pub const DEFAULT_COMPILE_TIMEOUT: Duration = Duration::from_secs(600);
/// Default wall-clock budget for one measured kernel run.
pub const DEFAULT_RUN_TIMEOUT: Duration = Duration::from_secs(600);

/// 64-bit FNV-1a. The binary cache key must be stable across rustc
/// releases and sensitive to the compile flags, which rules out
/// `DefaultHasher` (its algorithm is explicitly unspecified and has
/// changed between releases, silently invalidating or — worse —
/// aliasing cached binaries).
fn fnv1a64(data: &[u8], mut hash: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable cache key over the emitted source and the rustc flags.
fn cache_key(src: &str, rustc_flags: &[String]) -> u64 {
    let mut h = fnv1a64(src.as_bytes(), FNV_OFFSET);
    for f in rustc_flags {
        // Separator byte keeps ["-C","x"] distinct from ["-Cx"].
        h = fnv1a64(f.as_bytes(), h);
        h = fnv1a64(&[0xff], h);
    }
    h
}

/// True when a run failure is the *kernel's* fault — it ran and failed
/// (deadline overrun, a poisoned parallel runtime, a non-zero exit,
/// garbage output) — rather than the environment's (spawn refusal,
/// lockfile contention, a compile error). Only kernel failures are worth
/// a `degraded(sequential)` re-run: an environment failure would hit the
/// sequential attempt just the same, and a compile error has no working
/// binary in either configuration.
pub fn is_kernel_failure(detail: &str) -> bool {
    // Compile-stage deadlines also report `timeout:` ("rustc exceeded",
    // "waited …s for a concurrent compile"), but there is no binary to
    // degrade to — a sequential re-run would recompile and stall again.
    let compile_stage_timeout =
        detail.contains("rustc exceeded") || detail.contains("concurrent compile");
    (detail.starts_with("timeout") && !compile_stage_timeout)
        || detail.contains("runtime_error")
        || detail.contains("exited with")
        || detail.contains("unparseable output")
}

/// Parsed output of one standalone-program run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Checksum over the written arrays (for cross-variant validation).
    pub checksum: f64,
    /// Best wall time over the configured repetitions, seconds.
    pub time_s: f64,
    /// GFLOP/s derived from the kernel's FLOP formula.
    pub gflops: f64,
}

/// Compiles and runs emitted programs, caching binaries by source hash.
pub struct Runner {
    /// Working directory for sources and binaries.
    pub work_dir: PathBuf,
    /// Worker threads for parallel constructs.
    pub threads: usize,
    /// Timing repetitions per program (best is reported).
    pub reps: usize,
    /// Extra rustc flags (defaults to `-O -C target-cpu=native`).
    pub rustc_flags: Vec<String>,
    /// Wall-clock budget for one `rustc` invocation.
    pub compile_timeout: Duration,
    /// Wall-clock budget for one measured kernel run.
    pub run_timeout: Duration,
}

/// The shared binary-cache directory: `$POLYMIX_BENCH_DIR` if set,
/// otherwise `<workspace root>/target/polymix-bench`. Resolving against
/// the workspace root (the ancestor of this crate's manifest dir) rather
/// than the CWD keeps sweeps launched from different directories (e.g.
/// `ci.sh` vs a crate dir) on one cache instead of silently maintaining
/// disjoint ones.
pub fn default_work_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("POLYMIX_BENCH_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR")); // …/crates/bench
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("target/polymix-bench"))
        .unwrap_or_else(|| PathBuf::from("target/polymix-bench"))
}

impl Runner {
    /// A runner writing under [`default_work_dir`].
    pub fn new(threads: usize) -> Runner {
        Runner {
            work_dir: default_work_dir(),
            threads,
            reps: 2,
            rustc_flags: vec![
                "--edition=2021".into(),
                "-O".into(),
                "-C".into(),
                "target-cpu=native".into(),
            ],
            compile_timeout: DEFAULT_COMPILE_TIMEOUT,
            run_timeout: DEFAULT_RUN_TIMEOUT,
        }
    }

    /// Emits, compiles and runs `prog` for `kernel` at `params`. A
    /// failure is a [`PolymixError::Runner`] carrying the kernel and
    /// variant label, so sweep drivers can record it and continue.
    pub fn run(
        &self,
        kernel: &Kernel,
        prog: &Program,
        params: &[i64],
        label: &str,
    ) -> Result<RunResult, PolymixError> {
        let src = emit_source(kernel, prog, params, self.threads, self.reps);
        compile_and_run_with(
            &src,
            &self.work_dir,
            &self.rustc_flags,
            label,
            self.compile_timeout,
            self.run_timeout,
        )
        .map_err(|detail| PolymixError::runner(kernel.name, label, detail))
    }
}

/// Runtime-level knobs threaded from a tuned configuration into the
/// emitted standalone program. `Default` reproduces [`emit_source`]'s
/// behavior exactly (automatic batch, automatic grain, barrier
/// wavefronts), so existing sweeps are unaffected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmitKnobs {
    /// Pipeline publish batch (`None` = emitter's automatic choice).
    pub pipeline_batch: Option<i64>,
    /// Dynamic-schedule chunk grain for doall regions (`None` = auto).
    pub dyn_grain: Option<i64>,
    /// Lower wavefront nests to the counter-graph runtime instead of
    /// diagonal barriers.
    pub taskgraph: bool,
    /// Apply the explicit intra-tile vectorization post-pass: innermost
    /// certified-doall loops are emitted as unrolled strided groups
    /// (width 4) with a scalar remainder. Eligible loops are computed by
    /// `polymix_verify::vectorizable_inner_vars`, so the rewrite is only
    /// ever applied to dependence-free loops.
    pub vect: bool,
}

/// Emits the standalone measurement program for `kernel`/`prog` at
/// `params`. Standalone (rather than a [`Runner`] method) so sweep jobs
/// can emit on worker threads without sharing the runner.
pub fn emit_source(
    kernel: &Kernel,
    prog: &Program,
    params: &[i64],
    threads: usize,
    reps: usize,
) -> String {
    emit_source_with(kernel, prog, params, threads, reps, EmitKnobs::default())
}

/// [`emit_source`] with explicit tuned runtime knobs. The knobs feed
/// [`EmitOptions`] directly, so the emitted kernel honors the same
/// overrides the in-process runtime does — the tuner asserts this
/// round-trip via the `// PIPE_BATCH` markers and `RunStats` fields.
pub fn emit_source_with(
    kernel: &Kernel,
    prog: &Program,
    params: &[i64],
    threads: usize,
    reps: usize,
    knobs: EmitKnobs,
) -> String {
    let opts = EmitOptions {
        params: params.to_vec(),
        flops: (kernel.flops)(params),
        threads,
        init_rust: Some(kernel.init_rust(&prog.scop)),
        reps,
        pipeline_batch: knobs.pipeline_batch,
        dyn_grain: knobs.dyn_grain,
        taskgraph: knobs.taskgraph,
        vect: if knobs.vect {
            Some(polymix_verify::vectorizable_inner_vars(prog))
        } else {
            None
        },
    };
    emit_rust(prog, &opts)
}

/// Compiles `src` (cached by content hash) and executes it, parsing the
/// `checksum:` / `time_s:` / `gflops:` lines. Uses the default stage
/// timeouts; see [`compile_and_run_with`].
pub fn compile_and_run(
    src: &str,
    work_dir: &std::path::Path,
    rustc_flags: &[String],
    label: &str,
) -> Result<RunResult, String> {
    compile_and_run_with(
        src,
        work_dir,
        rustc_flags,
        label,
        DEFAULT_COMPILE_TIMEOUT,
        DEFAULT_RUN_TIMEOUT,
    )
}

/// [`compile_and_run`] with explicit per-stage wall-clock budgets.
///
/// A cached binary that fails to *execute* (spawn error, crash, garbage
/// output) is assumed to be a stale or truncated artifact from an
/// earlier, killed sweep: it is deleted, recompiled once, and rerun. A
/// run *timeout* is never retried — rebuilding an infinite loop would
/// only double the stall.
pub fn compile_and_run_with(
    src: &str,
    work_dir: &std::path::Path,
    rustc_flags: &[String],
    label: &str,
    compile_timeout: Duration,
    run_timeout: Duration,
) -> Result<RunResult, String> {
    let compiled = ensure_compiled(src, work_dir, rustc_flags, label, compile_timeout)?;
    match run_binary(&compiled.bin_path, label, run_timeout) {
        Err(e) if !compiled.freshly_compiled && !e.starts_with("timeout") => {
            let _ = std::fs::remove_file(&compiled.bin_path);
            let rebuilt = ensure_compiled(src, work_dir, rustc_flags, label, compile_timeout)?;
            run_binary(&rebuilt.bin_path, label, run_timeout)
                .map_err(|e2| format!("{e2} (cache invalidated after: {e})"))
        }
        other => other,
    }
}

/// Where [`ensure_compiled`] left the binary, and whether this call was
/// the one that ran `rustc` (exactly one caller per distinct source
/// observes `freshly_compiled`).
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// The cached binary, ready to execute.
    pub bin_path: PathBuf,
    /// `true` iff this call invoked `rustc` (cache miss it won).
    pub freshly_compiled: bool,
}

/// Stable on-disk id for one (source, flags) cache entry.
fn cache_id(src: &str, rustc_flags: &[String], label: &str) -> String {
    let clean: String = label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    format!("{clean}_{:016x}", cache_key(src, rustc_flags))
}

/// Compiles `src` into the binary cache under `work_dir` (keyed by
/// content + flags) unless already present, and returns the binary path.
///
/// Concurrency-safe across threads *and* processes sharing `work_dir`:
/// a `create_new` lockfile elects exactly one compiler per id; everyone
/// else waits for the atomic rename to land. A lockfile older than the
/// compile timeout is presumed left by a crashed process and is stolen.
pub fn ensure_compiled(
    src: &str,
    work_dir: &Path,
    rustc_flags: &[String],
    label: &str,
    timeout: Duration,
) -> Result<CompileOutcome, String> {
    std::fs::create_dir_all(work_dir).map_err(|e| e.to_string())?;
    let id = cache_id(src, rustc_flags, label);
    let src_path = work_dir.join(format!("{id}.rs"));
    let bin_path = work_dir.join(&id);
    let lock_path = work_dir.join(format!("{id}.lock"));
    // Waiters may sit behind a full compile, so their deadline is one
    // compile budget on top of their own.
    let deadline = Instant::now() + timeout + timeout;
    loop {
        if bin_path.exists() {
            return Ok(CompileOutcome {
                bin_path,
                freshly_compiled: false,
            });
        }
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(_) => {
                // Between the exists() check and winning the lock, the
                // previous holder may have finished: re-check, then
                // compile. Always release the lock, even on failure.
                let result = if bin_path.exists() {
                    Ok(CompileOutcome {
                        bin_path: bin_path.clone(),
                        freshly_compiled: false,
                    })
                } else {
                    compile_locked(src, work_dir, rustc_flags, label, timeout, &id, &src_path)
                        .map(|bin_path| CompileOutcome {
                            bin_path,
                            freshly_compiled: true,
                        })
                };
                let _ = std::fs::remove_file(&lock_path);
                return result;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if lock_is_stale(&lock_path, timeout) {
                    // Steal by *renaming* the stale lock aside, never by
                    // unlinking in place: with a bare remove_file, two
                    // stealers can both observe staleness, one wins the
                    // re-election, and the other's delayed remove then
                    // deletes the winner's *fresh* lock — electing a
                    // second concurrent compiler for the same id. The
                    // rename is atomic; exactly one stealer succeeds and
                    // the loser just re-enters the election.
                    let grave = work_dir.join(format!("{id}.lock.stale.{}", unique_suffix()));
                    if std::fs::rename(&lock_path, &grave).is_ok() {
                        let _ = std::fs::remove_file(&grave);
                        // The crashed holder may also have left a partial
                        // `.tmp.*` artifact behind; reap anything old
                        // enough that no live compile can own it.
                        clean_stale_partials(work_dir, &id, timeout);
                    }
                    continue;
                }
                if Instant::now() >= deadline {
                    return Err(format!(
                        "timeout: waited {}s for a concurrent compile of {label}",
                        (timeout + timeout).as_secs()
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(format!("lockfile {}: {e}", lock_path.display())),
        }
    }
}

/// The compile step proper, entered only while holding the id lockfile:
/// write source, run `rustc` to a temp path under a deadline, rename.
fn compile_locked(
    src: &str,
    work_dir: &Path,
    rustc_flags: &[String],
    label: &str,
    timeout: Duration,
    id: &str,
    src_path: &Path,
) -> Result<PathBuf, String> {
    std::fs::write(src_path, src).map_err(|e| e.to_string())?;
    let bin_path = work_dir.join(id);
    // The suffix must be unique per *invocation*, not per process: after
    // a stale-lock steal, a re-elected compiler in the same process (the
    // sweep's workers are threads) would otherwise share its tmp path
    // with the one it displaced and corrupt the atomic publish.
    let tmp_path = work_dir.join(format!("{id}.tmp.{}", unique_suffix()));
    let child = Command::new("rustc")
        .args(rustc_flags)
        .arg("-o")
        .arg(&tmp_path)
        .arg(src_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("rustc spawn: {e}"))?;
    let out = match wait_with_deadline(child, timeout) {
        Err(e) => {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(format!("rustc wait: {e}"));
        }
        Ok(None) => {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(format!(
                "timeout: rustc exceeded {}s for {label}",
                timeout.as_secs()
            ));
        }
        Ok(Some(out)) => out,
    };
    if !out.status.success() {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(format!(
            "rustc failed for {label}:\n{}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    // Atomic publish: the cache never exposes a partially written binary.
    std::fs::rename(&tmp_path, &bin_path).map_err(|e| format!("cache rename: {e}"))?;
    Ok(bin_path)
}

/// Process-id + per-process counter: unique across every thread of every
/// process sharing the cache directory, including re-elections within
/// one process.
fn unique_suffix() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Removes `<id>.tmp.*` partial artifacts older than the compile budget:
/// droppings of a compiler that was killed mid-`rustc`. Age-gated so a
/// *live* concurrent compile's tmp file is never reaped.
fn clean_stale_partials(work_dir: &Path, id: &str, timeout: Duration) {
    let prefix = format!("{id}.tmp.");
    let Ok(entries) = std::fs::read_dir(work_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(&prefix) {
            continue;
        }
        let old = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > timeout);
        if old {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// A lockfile whose mtime predates the compile budget belongs to a
/// process that died without cleaning up.
fn lock_is_stale(lock_path: &Path, timeout: Duration) -> bool {
    std::fs::metadata(lock_path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age > timeout)
}

/// Executes a cached binary under a wall-clock deadline and parses its
/// `checksum:` / `time_s:` / `gflops:` output. A deadline overrun kills
/// the process and reports a `timeout:`-prefixed error.
pub fn run_binary(bin_path: &Path, label: &str, timeout: Duration) -> Result<RunResult, String> {
    let child = Command::new(bin_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("run spawn: {e}"))?;
    let out = match wait_with_deadline(child, timeout) {
        Err(e) => return Err(format!("run wait: {e}")),
        Ok(None) => {
            return Err(format!(
                "timeout: {label} exceeded {}s (killed)",
                timeout.as_secs()
            ))
        }
        Ok(Some(out)) => out,
    };
    if !out.status.success() {
        return Err(format!(
            "{label} exited with {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    parse_output(&String::from_utf8_lossy(&out.stdout))
        .ok_or_else(|| format!("{label}: unparseable output"))
}

/// Waits for `child` up to `timeout`, draining its piped stdout/stderr
/// on background threads (so a chatty child never deadlocks on a full
/// pipe). Returns `Ok(None)` — after killing the child — on timeout.
fn wait_with_deadline(mut child: Child, timeout: Duration) -> std::io::Result<Option<Output>> {
    fn drain<R: Read + Send + 'static>(pipe: Option<R>) -> std::thread::JoinHandle<Vec<u8>> {
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            if let Some(mut p) = pipe {
                let _ = p.read_to_end(&mut buf);
            }
            buf
        })
    }
    let out_pipe = drain(child.stdout.take());
    let err_pipe = drain(child.stderr.take());
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait()? {
            Some(status) => {
                return Ok(Some(Output {
                    status,
                    stdout: out_pipe.join().unwrap_or_default(),
                    stderr: err_pipe.join().unwrap_or_default(),
                }))
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                // Reader threads see EOF once the child is reaped.
                let _ = out_pipe.join();
                let _ = err_pipe.join();
                return Ok(None);
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn parse_output(stdout: &str) -> Option<RunResult> {
    // Exact `<key>:` matching, value = everything after the first `:`.
    // A `starts_with(key)` scan would let a future `time_s_total:` or
    // `checksum_b:` line silently shadow the intended field.
    let grab = |key: &str| -> Option<f64> {
        stdout
            .lines()
            .find_map(|l| l.split_once(':').filter(|(k, _)| *k == key))?
            .1
            .trim()
            .parse()
            .ok()
    };
    Some(RunResult {
        checksum: grab("checksum")?,
        time_s: grab("time_s")?,
        gflops: grab("gflops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{build_variant, Variant};
    use polymix_dl::Machine;
    use polymix_polybench::kernel_by_name;

    #[test]
    fn kernel_failures_are_distinguished_from_environment_failures() {
        // Degradable: the kernel ran (or was run) and failed.
        assert!(is_kernel_failure("timeout: gemm_par exceeded 5s (killed)"));
        assert!(is_kernel_failure(
            "gemm_par exited with Some(101):\nruntime_error: worker 3 panicked"
        ));
        assert!(is_kernel_failure("gemm_par exited with Some(1):\n"));
        assert!(is_kernel_failure("gemm_par: unparseable output"));
        // Not degradable: the environment failed or the binary never
        // existed; a sequential re-run would fail identically.
        assert!(!is_kernel_failure("run spawn: Resource temporarily unavailable"));
        assert!(!is_kernel_failure("lockfile /tmp/x.lock: Permission denied"));
        assert!(!is_kernel_failure("rustc failed for gemm_par:\nerror[E0308]"));
        // Compile-stage deadlines are `timeout:`-prefixed too, but there
        // is no binary: degrading to sequential would recompile and
        // stall identically.
        assert!(!is_kernel_failure("timeout: rustc exceeded 5s for gemm_par"));
        assert!(!is_kernel_failure(
            "timeout: waited 10s for a concurrent compile of gemm_par"
        ));
    }

    #[test]
    fn parse_output_roundtrip() {
        let out = "checksum: 1.234560e2\ntime_s: 0.004200\ngflops: 2.3400\n";
        let r = parse_output(out).unwrap();
        assert!((r.checksum - 123.456).abs() < 1e-9);
        assert!((r.time_s - 0.0042).abs() < 1e-12);
        assert!((r.gflops - 2.34).abs() < 1e-12);
        assert!(parse_output("garbage").is_none());
    }

    #[test]
    fn parse_output_requires_exact_keys() {
        // Prefix look-alikes must not shadow the real fields, in either
        // order relative to them.
        let out = "checksum_b: 9.0\nchecksum: 2.0\ntime_s_total: 9.0\n\
                   time_s: 0.5\ngflops_peak: 9.0\ngflops: 1.5\n";
        let r = parse_output(out).unwrap();
        assert_eq!((r.checksum, r.time_s, r.gflops), (2.0, 0.5, 1.5));
        // A line with no `:` at all is skipped, not a parse abort.
        assert!(parse_output("checksum\ntime_s: 1\ngflops: 1").is_none());
    }

    #[test]
    fn work_dir_resolves_against_workspace_root() {
        // Independent of the CWD the sweep is launched from.
        if std::env::var("POLYMIX_BENCH_DIR").is_ok() {
            return; // explicit override in effect; nothing to check
        }
        let d = default_work_dir();
        assert!(d.is_absolute(), "work dir must not depend on CWD: {d:?}");
        assert!(d.ends_with("target/polymix-bench"), "{d:?}");
    }

    #[test]
    fn cache_key_is_stable_and_flag_sensitive() {
        // Pinned value: must never change across rustc or std releases,
        // or stale binaries would be reused / rebuilt spuriously.
        assert_eq!(cache_key("fn main() {}", &[]), 0xaa24_4faa_9019_a10f);
        let flags_o = vec!["-O".to_string()];
        let flags_none: Vec<String> = vec![];
        assert_ne!(
            cache_key("fn main() {}", &flags_o),
            cache_key("fn main() {}", &flags_none),
            "flags must feed the key"
        );
        assert_ne!(
            cache_key("fn main() {}", &["-C".into(), "x".into()]),
            cache_key("fn main() {}", &["-Cx".into()]),
            "flag boundaries must feed the key"
        );
    }

    /// End-to-end smoke test: gemm through native and poly+ast must
    /// compile, run, and agree on the checksum.
    #[test]
    fn emitted_variants_agree_on_checksum() {
        let k = kernel_by_name("gemm").unwrap();
        let params = k.dataset("small").params;
        let m = Machine::host();
        let runner = Runner {
            work_dir: std::env::temp_dir().join("polymix-bench-test"),
            threads: 2,
            reps: 1,
            rustc_flags: vec!["-O".into()],
            ..Runner::new(2)
        };
        let native = build_variant(&k, Variant::Native, &m).expect("native variant");
        let opt = build_variant(&k, Variant::PolyAst, &m).expect("poly+ast variant");
        let r1 = runner.run(&k, &native, &params, "gemm_native").unwrap();
        let r2 = runner.run(&k, &opt, &params, "gemm_polyast").unwrap();
        let rel = (r1.checksum - r2.checksum).abs() / r1.checksum.abs().max(1.0);
        assert!(rel < 1e-9, "checksums {} vs {}", r1.checksum, r2.checksum);
        assert!(r1.gflops > 0.0 && r2.gflops > 0.0);
    }
}
