//! The measurement pipeline: emit → `rustc -O` → run → parse.

use polymix_ast::tree::Program;
use polymix_codegen::emit::{emit_rust, EmitOptions};
use polymix_ir::error::PolymixError;
use polymix_polybench::Kernel;
use std::path::PathBuf;
use std::process::Command;

/// 64-bit FNV-1a. The binary cache key must be stable across rustc
/// releases and sensitive to the compile flags, which rules out
/// `DefaultHasher` (its algorithm is explicitly unspecified and has
/// changed between releases, silently invalidating or — worse —
/// aliasing cached binaries).
fn fnv1a64(data: &[u8], mut hash: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable cache key over the emitted source and the rustc flags.
fn cache_key(src: &str, rustc_flags: &[String]) -> u64 {
    let mut h = fnv1a64(src.as_bytes(), FNV_OFFSET);
    for f in rustc_flags {
        // Separator byte keeps ["-C","x"] distinct from ["-Cx"].
        h = fnv1a64(f.as_bytes(), h);
        h = fnv1a64(&[0xff], h);
    }
    h
}

/// Parsed output of one standalone-program run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Checksum over the written arrays (for cross-variant validation).
    pub checksum: f64,
    /// Best wall time over the configured repetitions, seconds.
    pub time_s: f64,
    /// GFLOP/s derived from the kernel's FLOP formula.
    pub gflops: f64,
}

/// Compiles and runs emitted programs, caching binaries by source hash.
pub struct Runner {
    /// Working directory for sources and binaries.
    pub work_dir: PathBuf,
    /// Worker threads for parallel constructs.
    pub threads: usize,
    /// Timing repetitions per program (best is reported).
    pub reps: usize,
    /// Extra rustc flags (defaults to `-O -C target-cpu=native`).
    pub rustc_flags: Vec<String>,
}

impl Runner {
    /// A runner writing under `target/polymix-bench/`.
    pub fn new(threads: usize) -> Runner {
        Runner {
            work_dir: PathBuf::from("target/polymix-bench"),
            threads,
            reps: 2,
            rustc_flags: vec![
                "--edition=2021".into(),
                "-O".into(),
                "-C".into(),
                "target-cpu=native".into(),
            ],
        }
    }

    /// Emits, compiles and runs `prog` for `kernel` at `params`. A
    /// failure is a [`PolymixError::Runner`] carrying the kernel and
    /// variant label, so sweep drivers can record it and continue.
    pub fn run(
        &self,
        kernel: &Kernel,
        prog: &Program,
        params: &[i64],
        label: &str,
    ) -> Result<RunResult, PolymixError> {
        let opts = EmitOptions {
            params: params.to_vec(),
            flops: (kernel.flops)(params),
            threads: self.threads,
            init_rust: Some(kernel.init_rust(&prog.scop)),
            reps: self.reps,
        };
        let src = emit_rust(prog, &opts);
        compile_and_run(&src, &self.work_dir, &self.rustc_flags, label)
            .map_err(|detail| PolymixError::runner(kernel.name, label, detail))
    }
}

/// Compiles `src` (cached by content hash) and executes it, parsing the
/// `checksum:` / `time_s:` / `gflops:` lines.
pub fn compile_and_run(
    src: &str,
    work_dir: &std::path::Path,
    rustc_flags: &[String],
    label: &str,
) -> Result<RunResult, String> {
    std::fs::create_dir_all(work_dir).map_err(|e| e.to_string())?;
    let clean: String = label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let id = format!("{clean}_{:016x}", cache_key(src, rustc_flags));
    let src_path = work_dir.join(format!("{id}.rs"));
    let bin_path = work_dir.join(&id);
    if !bin_path.exists() {
        std::fs::write(&src_path, src).map_err(|e| e.to_string())?;
        // Compile to a private temp path and atomically rename into
        // place: a rustc killed mid-write (or a concurrent sweep) must
        // never leave a partial binary where the existence check above
        // would find — and execute — it.
        let tmp_path = work_dir.join(format!("{id}.tmp.{}", std::process::id()));
        let out = Command::new("rustc")
            .args(rustc_flags)
            .arg("-o")
            .arg(&tmp_path)
            .arg(&src_path)
            .output()
            .map_err(|e| format!("rustc spawn: {e}"))?;
        if !out.status.success() {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(format!(
                "rustc failed for {label}:\n{}",
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        std::fs::rename(&tmp_path, &bin_path).map_err(|e| format!("cache rename: {e}"))?;
    }
    let out = Command::new(&bin_path)
        .output()
        .map_err(|e| format!("run spawn: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{label} exited with {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    parse_output(&String::from_utf8_lossy(&out.stdout))
        .ok_or_else(|| format!("{label}: unparseable output"))
}

fn parse_output(stdout: &str) -> Option<RunResult> {
    let grab = |key: &str| -> Option<f64> {
        stdout
            .lines()
            .find(|l| l.starts_with(key))?
            .split(':')
            .nth(1)?
            .trim()
            .parse()
            .ok()
    };
    Some(RunResult {
        checksum: grab("checksum")?,
        time_s: grab("time_s")?,
        gflops: grab("gflops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{build_variant, Variant};
    use polymix_dl::Machine;
    use polymix_polybench::kernel_by_name;

    #[test]
    fn parse_output_roundtrip() {
        let out = "checksum: 1.234560e2\ntime_s: 0.004200\ngflops: 2.3400\n";
        let r = parse_output(out).unwrap();
        assert!((r.checksum - 123.456).abs() < 1e-9);
        assert!((r.time_s - 0.0042).abs() < 1e-12);
        assert!((r.gflops - 2.34).abs() < 1e-12);
        assert!(parse_output("garbage").is_none());
    }

    #[test]
    fn cache_key_is_stable_and_flag_sensitive() {
        // Pinned value: must never change across rustc or std releases,
        // or stale binaries would be reused / rebuilt spuriously.
        assert_eq!(cache_key("fn main() {}", &[]), 0xaa24_4faa_9019_a10f);
        let flags_o = vec!["-O".to_string()];
        let flags_none: Vec<String> = vec![];
        assert_ne!(
            cache_key("fn main() {}", &flags_o),
            cache_key("fn main() {}", &flags_none),
            "flags must feed the key"
        );
        assert_ne!(
            cache_key("fn main() {}", &["-C".into(), "x".into()]),
            cache_key("fn main() {}", &["-Cx".into()]),
            "flag boundaries must feed the key"
        );
    }

    /// End-to-end smoke test: gemm through native and poly+ast must
    /// compile, run, and agree on the checksum.
    #[test]
    fn emitted_variants_agree_on_checksum() {
        let k = kernel_by_name("gemm").unwrap();
        let params = k.dataset("small").params;
        let m = Machine::host();
        let runner = Runner {
            work_dir: std::env::temp_dir().join("polymix-bench-test"),
            threads: 2,
            reps: 1,
            rustc_flags: vec!["-O".into()],
        };
        let native = build_variant(&k, Variant::Native, &m).expect("native variant");
        let opt = build_variant(&k, Variant::PolyAst, &m).expect("poly+ast variant");
        let r1 = runner.run(&k, &native, &params, "gemm_native").unwrap();
        let r2 = runner.run(&k, &opt, &params, "gemm_polyast").unwrap();
        let rel = (r1.checksum - r2.checksum).abs() / r1.checksum.abs().max(1.0);
        assert!(rel < 1e-9, "checksums {} vs {}", r1.checksum, r2.checksum);
        assert!(r1.gflops > 0.0 && r2.gflops > 0.0);
    }
}
