//! The measurement pipeline: emit → `rustc -O` → run → parse.

use polymix_ast::tree::Program;
use polymix_codegen::emit::{emit_rust, EmitOptions};
use polymix_polybench::Kernel;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::process::Command;

/// Parsed output of one standalone-program run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Checksum over the written arrays (for cross-variant validation).
    pub checksum: f64,
    /// Best wall time over the configured repetitions, seconds.
    pub time_s: f64,
    /// GFLOP/s derived from the kernel's FLOP formula.
    pub gflops: f64,
}

/// Compiles and runs emitted programs, caching binaries by source hash.
pub struct Runner {
    /// Working directory for sources and binaries.
    pub work_dir: PathBuf,
    /// Worker threads for parallel constructs.
    pub threads: usize,
    /// Timing repetitions per program (best is reported).
    pub reps: usize,
    /// Extra rustc flags (defaults to `-O -C target-cpu=native`).
    pub rustc_flags: Vec<String>,
}

impl Runner {
    /// A runner writing under `target/polymix-bench/`.
    pub fn new(threads: usize) -> Runner {
        Runner {
            work_dir: PathBuf::from("target/polymix-bench"),
            threads,
            reps: 2,
            rustc_flags: vec![
                "--edition=2021".into(),
                "-O".into(),
                "-C".into(),
                "target-cpu=native".into(),
            ],
        }
    }

    /// Emits, compiles and runs `prog` for `kernel` at `params`.
    pub fn run(
        &self,
        kernel: &Kernel,
        prog: &Program,
        params: &[i64],
        label: &str,
    ) -> Result<RunResult, String> {
        let opts = EmitOptions {
            params: params.to_vec(),
            flops: (kernel.flops)(params),
            threads: self.threads,
            init_rust: Some(kernel.init_rust(&prog.scop)),
            reps: self.reps,
        };
        let src = emit_rust(prog, &opts);
        compile_and_run(&src, &self.work_dir, &self.rustc_flags, label)
    }
}

/// Compiles `src` (cached by content hash) and executes it, parsing the
/// `checksum:` / `time_s:` / `gflops:` lines.
pub fn compile_and_run(
    src: &str,
    work_dir: &std::path::Path,
    rustc_flags: &[String],
    label: &str,
) -> Result<RunResult, String> {
    std::fs::create_dir_all(work_dir).map_err(|e| e.to_string())?;
    let mut h = DefaultHasher::new();
    src.hash(&mut h);
    rustc_flags.hash(&mut h);
    let clean: String = label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let id = format!("{clean}_{:016x}", h.finish());
    let src_path = work_dir.join(format!("{id}.rs"));
    let bin_path = work_dir.join(&id);
    if !bin_path.exists() {
        std::fs::write(&src_path, src).map_err(|e| e.to_string())?;
        let out = Command::new("rustc")
            .args(rustc_flags)
            .arg("-o")
            .arg(&bin_path)
            .arg(&src_path)
            .output()
            .map_err(|e| format!("rustc spawn: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "rustc failed for {label}:\n{}",
                String::from_utf8_lossy(&out.stderr)
            ));
        }
    }
    let out = Command::new(&bin_path)
        .output()
        .map_err(|e| format!("run spawn: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{label} exited with {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    parse_output(&String::from_utf8_lossy(&out.stdout))
        .ok_or_else(|| format!("{label}: unparseable output"))
}

fn parse_output(stdout: &str) -> Option<RunResult> {
    let grab = |key: &str| -> Option<f64> {
        stdout
            .lines()
            .find(|l| l.starts_with(key))?
            .split(':')
            .nth(1)?
            .trim()
            .parse()
            .ok()
    };
    Some(RunResult {
        checksum: grab("checksum")?,
        time_s: grab("time_s")?,
        gflops: grab("gflops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{build_variant, Variant};
    use polymix_dl::Machine;
    use polymix_polybench::kernel_by_name;

    #[test]
    fn parse_output_roundtrip() {
        let out = "checksum: 1.234560e2\ntime_s: 0.004200\ngflops: 2.3400\n";
        let r = parse_output(out).unwrap();
        assert!((r.checksum - 123.456).abs() < 1e-9);
        assert!((r.time_s - 0.0042).abs() < 1e-12);
        assert!((r.gflops - 2.34).abs() < 1e-12);
        assert!(parse_output("garbage").is_none());
    }

    /// End-to-end smoke test: gemm through native and poly+ast must
    /// compile, run, and agree on the checksum.
    #[test]
    fn emitted_variants_agree_on_checksum() {
        let k = kernel_by_name("gemm").unwrap();
        let params = k.dataset("small").params;
        let m = Machine::host();
        let runner = Runner {
            work_dir: std::env::temp_dir().join("polymix-bench-test"),
            threads: 2,
            reps: 1,
            rustc_flags: vec!["-O".into()],
        };
        let native = build_variant(&k, Variant::Native, &m);
        let opt = build_variant(&k, Variant::PolyAst, &m);
        let r1 = runner.run(&k, &native, &params, "gemm_native").unwrap();
        let r2 = runner.run(&k, &opt, &params, "gemm_polyast").unwrap();
        let rel = (r1.checksum - r2.checksum).abs() / r1.checksum.abs().max(1.0);
        assert!(rel < 1e-9, "checksums {} vs {}", r1.checksum, r2.checksum);
        assert!(r1.gflops > 0.0 && r2.gflops > 0.0);
    }
}
