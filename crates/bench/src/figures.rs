//! Shared driver for the group figures (Figs. 7, 8, 9): run every kernel
//! of a group through every variant on the parallel sweep executor,
//! cross-validate checksums, report GFLOP/s.

use crate::backend::{select_backends, ProgBuild};
use crate::report::{gf, Cli, Table};
use crate::runner::{EmitKnobs, Runner};
use crate::sweep::{print_degraded_legend, run_sweep, JobOutcome, SweepConfig, SweepJob};
use crate::variants::{build_variant, variant_list, Variant};
use polymix_dl::Machine;
use polymix_polybench::{all_kernels, Group};
use std::sync::Arc;

/// Runs one figure: all kernels of `group` × all variants, measured by
/// every backend `--backend` selects (default `rustc`; `both` renders
/// one table per backend and cross-checks the checksums cell by cell).
pub fn run_group_figure(title: &str, group: Group) {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let cfg = SweepConfig::from_cli(&cli);
    let variants = variant_list();
    let backends = select_backends(&cli.backend, runner.threads, runner.reps, true);

    println!("== {title} ==");
    println!(
        "dataset: {}, threads: {}, jobs: {}, backend: {}, machine: {} (GFLOP/s, higher is better)",
        cli.dataset, cli.threads, cfg.jobs, cli.backend, machine.name
    );

    let kernels: Vec<_> = all_kernels()
        .into_iter()
        .filter(|k| k.group == group)
        .collect();
    let mut jobs: Vec<SweepJob> = Vec::new();
    for k in &kernels {
        let params = k.dataset(&cli.dataset).params;
        for &v in &variants {
            let (kb, mb) = (k.clone(), machine.clone());
            let build: ProgBuild = Arc::new(move || build_variant(&kb, v, &mb));
            for b in &backends {
                jobs.push(SweepJob {
                    id: format!("{}:{}:{}", k.name, v.name(), cli.dataset),
                    kernel: k.name.to_string(),
                    variant: v.name().to_string(),
                    dataset: cli.dataset.clone(),
                    params: params.clone(),
                    work: b.work(k, &params, v.name(), EmitKnobs::default(), build.clone()),
                });
            }
        }
    }
    let outcomes = run_sweep(jobs, &runner, &cfg);
    let by_key = |kernel: &str, v: Variant, backend: &str| -> Option<&JobOutcome> {
        outcomes
            .iter()
            .find(|o| o.kernel == kernel && o.variant == v.name() && o.backend == backend)
    };

    for b in &backends {
        let mut header: Vec<&str> = vec!["kernel"];
        header.extend(variants.iter().map(|v| v.name()));
        header.push("iterative*");
        let mut table = Table::new(&header);

        for k in &kernels {
            let mut cells = vec![k.name.to_string()];
            let mut checks: Vec<(Variant, f64)> = Vec::new();
            let mut results: Vec<(Variant, f64, bool)> = Vec::new();
            for &v in &variants {
                match by_key(k.name, v, b.name()).map(|o| (&o.result, o.degraded)) {
                    Some((Ok(r), degraded)) => {
                        cells.push(format!("{}{}", gf(r.gflops), if degraded { "†" } else { "" }));
                        checks.push((v, r.checksum));
                        results.push((v, r.gflops, degraded));
                    }
                    Some((Err(e), _)) => {
                        // A failed kernel/variant records an `error(<stage>)`
                        // cell and the figure renders on (see EXPERIMENTS.md).
                        eprintln!("{}: {v:?} failed: {e}", k.name);
                        cells.push(e.cell());
                    }
                    None => cells.push("-".into()),
                }
            }
            cells.push(match iterative_best(&results) {
                Some(best) => gf(best),
                None => "-".into(),
            });
            // Cross-variant checksum validation (parallel runs may reorder
            // reductions: tolerate relative FP noise).
            if let Some((_, base)) = checks.first() {
                for (v, c) in &checks[1..] {
                    let rel = (c - base).abs() / base.abs().max(1.0);
                    assert!(
                        rel < 1e-6,
                        "{} {v:?}: checksum {c} deviates from native {base}",
                        k.name
                    );
                }
            }
            table.row(cells);
        }
        if backends.len() > 1 {
            println!("-- backend: {} --", b.name());
        }
        println!("{}", table.render());
    }
    // Inter-backend agreement: a vm cell and a rustc cell of the same
    // job measured the same program over the same buffers — their
    // checksums must agree or one backend is mis-executing.
    if backends.len() > 1 {
        let mut compared = 0usize;
        for o in outcomes.iter().filter(|o| o.backend == "rustc") {
            let (Ok(r), Some(JobOutcome { result: Ok(v), .. })) = (
                &o.result,
                outcomes
                    .iter()
                    .find(|p| p.id == o.id && p.backend == "vm"),
            ) else {
                continue;
            };
            let rel = (r.checksum - v.checksum).abs() / r.checksum.abs().max(1.0);
            assert!(
                rel < 1e-6,
                "{}: vm checksum {} deviates from rustc {}",
                o.id,
                v.checksum,
                r.checksum
            );
            compared += 1;
        }
        println!("backend agreement: {compared} cells cross-checked, all checksums match");
    }
    print_degraded_legend(&outcomes);
}

/// The `iterative*` column: best over the enumerated fusion structures
/// (pocc + iter(max) + iter(no)), as in the paper. Best means max
/// GFLOP/s, which is min wall time — the FLOP count is fixed per
/// kernel/dataset, so the two orders agree and the column can never
/// disagree with a time-ranked table. Only *healthy* cells compete: a
/// `degraded(sequential)` measurement is a different machine
/// configuration standing in for a failed parallel run, and an
/// `error(<stage>)` cell never reaches `results` at all. `None` when no
/// healthy iterative-family cell exists.
fn iterative_best(results: &[(Variant, f64, bool)]) -> Option<f64> {
    results
        .iter()
        .filter(|(v, _, degraded)| {
            !degraded
                && matches!(
                    v,
                    Variant::Pocc | Variant::IterativeMax | Variant::IterativeNo
                )
        })
        .map(|(_, g, _)| *g)
        .fold(None, |acc: Option<f64>, g| {
            Some(acc.map_or(g, |a: f64| a.max(g)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: the fastest enumerated structure is a degraded
    /// (sequential-fallback) measurement — it must not win the
    /// `iterative*` best-of; the best *healthy* structure must.
    #[test]
    fn degraded_cells_cannot_win_the_iterative_best_of() {
        let results = vec![
            (Variant::Native, 9.0, false),       // not in the family
            (Variant::Pocc, 2.0, false),         // healthy
            (Variant::IterativeMax, 8.0, true),  // fastest, but degraded
            (Variant::IterativeNo, 3.0, false),  // healthy best
        ];
        assert_eq!(iterative_best(&results), Some(3.0));
    }

    #[test]
    fn all_degraded_or_missing_yields_none() {
        assert_eq!(iterative_best(&[]), None);
        let all_degraded = vec![
            (Variant::Pocc, 2.0, true),
            (Variant::IterativeMax, 8.0, true),
        ];
        assert_eq!(iterative_best(&all_degraded), None);
        // Only out-of-family cells: still none.
        let off_family = vec![(Variant::Native, 9.0, false), (Variant::PolyAst, 7.0, false)];
        assert_eq!(iterative_best(&off_family), None);
    }

    #[test]
    fn healthy_family_max_wins() {
        let results = vec![
            (Variant::Pocc, 2.0, false),
            (Variant::IterativeMax, 8.0, false),
            (Variant::IterativeNo, 3.0, false),
            (Variant::PolyAst, 11.0, false), // out of family, ignored
        ];
        assert_eq!(iterative_best(&results), Some(8.0));
    }
}
