//! Shared driver for the group figures (Figs. 7, 8, 9): run every kernel
//! of a group through every variant, cross-validate checksums, report
//! GFLOP/s.

use crate::report::{gf, Cli, Table};
use crate::runner::Runner;
use crate::variants::{build_variant, variant_list, Variant};
use polymix_dl::Machine;
use polymix_polybench::{all_kernels, Group};

/// Runs one figure: all kernels of `group` × all variants.
pub fn run_group_figure(title: &str, group: Group) {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let variants = variant_list();

    println!("== {title} ==");
    println!(
        "dataset: {}, threads: {}, machine: {} (GFLOP/s, higher is better)",
        cli.dataset, cli.threads, machine.name
    );
    let mut header: Vec<&str> = vec!["kernel"];
    header.extend(variants.iter().map(|v| v.name()));
    header.push("iterative*");
    let mut table = Table::new(&header);

    for k in all_kernels().iter().filter(|k| k.group == group) {
        let params = k.dataset(&cli.dataset).params;
        let mut cells = vec![k.name.to_string()];
        let mut checks: Vec<(Variant, f64)> = Vec::new();
        let mut results: Vec<(Variant, f64)> = Vec::new();
        for &v in &variants {
            // A failed kernel/variant records an `error(<stage>)` cell
            // and the sweep moves on (see EXPERIMENTS.md).
            let prog = match build_variant(k, v, &machine) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}: {v:?} failed: {e}", k.name);
                    cells.push(e.cell());
                    continue;
                }
            };
            let label = format!("{}_{}", k.name.replace('-', "_"), v.name().replace(['+', '(', ')'], "_"));
            match runner.run(k, &prog, &params, &label) {
                Ok(r) => {
                    cells.push(gf(r.gflops));
                    checks.push((v, r.checksum));
                    results.push((v, r.gflops));
                }
                Err(e) => {
                    eprintln!("{}: {v:?} failed: {e}", k.name);
                    cells.push(e.cell());
                }
            }
        }
        // `iterative` is the auto-tuned best over the enumerated fusion
        // structures (pocc + iter(max) + iter(no)), as in the paper.
        let iterative = results
            .iter()
            .filter(|(v, _)| {
                matches!(
                    v,
                    Variant::Pocc | Variant::IterativeMax | Variant::IterativeNo
                )
            })
            .map(|(_, g)| *g)
            .fold(f64::NAN, f64::max);
        cells.push(if iterative.is_nan() {
            "-".into()
        } else {
            gf(iterative)
        });
        // Cross-variant checksum validation (parallel runs may reorder
        // reductions: tolerate relative FP noise).
        if let Some((_, base)) = checks.first() {
            for (v, c) in &checks[1..] {
                let rel = (c - base).abs() / base.abs().max(1.0);
                assert!(
                    rel < 1e-6,
                    "{} {v:?}: checksum {c} deviates from native {base}",
                    k.name
                );
            }
        }
        table.row(cells);
    }
    println!("{}", table.render());
}
