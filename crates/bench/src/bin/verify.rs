//! Standalone static auditor: certifies every (kernel, variant)
//! transformed program and lints its emitted kernel source *without
//! compiling or running anything* — the static half of the paper's
//! legality story, applied after the fact to exactly the artifacts the
//! sweeps measure.
//!
//! ```text
//! verify [--dataset D] [--strict] [--variant NAME] [--vect] [--backend vm] [kernel ... | file.rs ...]
//! ```
//!
//! * positional kernel names restrict the sweep (default: all 22);
//! * positional `.rs` paths are audited as cached kernel sources (lint
//!   only — the transformed AST is not recoverable from source);
//! * `--variant` restricts to one variant display name (e.g. `pocc`);
//! * `--strict` additionally fails on `unsupported` coverage notes;
//! * `--vect` emits single-threaded with the explicit-vectorization
//!   post-pass enabled, so the lint audits real `// vect region`
//!   emissions; the total region count is printed at the end (a smoke
//!   run can assert it is nonzero);
//! * `--backend vm` audits the *lowered bytecode* instead of the
//!   emitted source: each cell is lowered at the dataset's parameters
//!   and run through the bytecode certifier (bounds proofs plus
//!   effect-summary cross-check against the AST's parallel census);
//!   the total proven-access count is printed at the end — zero means
//!   the elided measurement fast path would never engage, so a smoke
//!   run should assert it is nonzero;
//! * exit status is nonzero iff any audited artifact fails.

use polymix_bench::runner::{emit_source, emit_source_with, EmitKnobs};
use polymix_bench::variants::{build_variant, Variant};
use polymix_dl::Machine;
use polymix_polybench::all_kernels;
use polymix_verify::{certify_lowering_from, verify_program, verify_source, Certificate};

fn audit(label: &str, cert: &Certificate, strict: bool, failures: &mut usize) {
    let errors = cert.errors().count();
    let notes = cert.violations.len() - errors;
    let failed = errors > 0 || (strict && notes > 0);
    if failed {
        *failures += 1;
    }
    let status = if errors > 0 {
        "FAIL"
    } else if notes > 0 {
        if strict {
            "FAIL"
        } else {
            "ok*"
        }
    } else {
        "ok"
    };
    println!(
        "{status:<5} {label:<40} deps {:>3}  pairs {:>4}  errors {errors}  notes {notes}",
        cert.deps_checked, cert.pairs_checked
    );
    for v in &cert.violations {
        if v.kind.is_error() || strict {
            println!("      {v}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let grab = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let dataset = grab("--dataset").unwrap_or_else(|| "mini".into());
    let strict = args.iter().any(|a| a == "--strict");
    let vect = args.iter().any(|a| a == "--vect");
    let variant_filter = grab("--variant");
    let backend = grab("--backend").unwrap_or_else(|| "rustc".into());
    if backend != "rustc" && backend != "vm" {
        eprintln!("verify: unknown --backend {backend} (expected rustc or vm)");
        std::process::exit(2);
    }
    let vm_audit = backend == "vm";
    let mut positional: Vec<&String> = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a == "--dataset" || a == "--variant" || a == "--backend" {
            skip = true;
            continue;
        }
        if a == "--strict" || a == "--vect" {
            continue;
        }
        let _ = i;
        positional.push(a);
    }

    let mut failures = 0usize;
    let mut vect_regions = 0usize;
    let mut vm_proven = 0usize;
    let mut vm_total = 0usize;

    // Cached kernel sources: lint-only audit.
    let (files, names): (Vec<&String>, Vec<&String>) =
        positional.iter().partition(|a| a.ends_with(".rs"));
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => audit(f, &verify_source(f, &src), strict, &mut failures),
            Err(e) => {
                println!("FAIL  {f}: unreadable: {e}");
                failures += 1;
            }
        }
    }
    if !files.is_empty() && names.is_empty() {
        std::process::exit(if failures > 0 { 1 } else { 0 });
    }

    let machine = Machine::host();
    let variants = [
        Variant::Native,
        Variant::Pocc,
        Variant::PoccVect,
        Variant::IterativeMax,
        Variant::IterativeNo,
        Variant::PolyAst,
        Variant::PolyAstDoallOnly,
        Variant::PlutoMaxFuse,
    ];
    for k in all_kernels() {
        if !names.is_empty() && !names.iter().any(|n| **n == k.name) {
            continue;
        }
        let params = k.dataset(&dataset).params;
        for v in variants {
            if let Some(f) = &variant_filter {
                if v.name() != f {
                    continue;
                }
            }
            let label = format!("{} [{}]", k.name, v.name());
            let prog = match build_variant(&k, v, &machine) {
                Ok(p) => p,
                Err(e) => {
                    println!("FAIL  {label:<40} does not build: {e}");
                    failures += 1;
                    continue;
                }
            };
            if vm_audit {
                // Bytecode audit: lower at the dataset's parameters and
                // certify the artifact the vm backend would measure.
                // A cell that refuses to lower is skipped, not failed —
                // the vm backend cannot measure it either, so there is
                // no uncertified artifact to worry about.
                let vm = match polymix_vm::lower(&prog, &params) {
                    Ok(vm) => vm,
                    Err(e) => {
                        println!("skip  {label:<40} does not lower: {e}");
                        continue;
                    }
                };
                let cert = polymix_vm::certify(&vm);
                let (proven, total) = cert.counts();
                vm_proven += proven;
                vm_total += total;
                audit(
                    &format!("{label} (bytecode)"),
                    &certify_lowering_from(k.name, &prog, &vm, &cert),
                    strict,
                    &mut failures,
                );
                continue;
            }
            // Certificates 1-2: schedule legality and annotation safety
            // re-derived from the final program.
            audit(&label, &verify_program(&prog), strict, &mut failures);
            // Certificate 3: protocol lint over the emitted source.
            // `--vect` emits single-threaded so the post-pass applies to
            // sequential innermost loops too, maximizing lint coverage
            // of the `// vect region` emission shape.
            let src = if vect {
                emit_source_with(
                    &k,
                    &prog,
                    &params,
                    1,
                    1,
                    EmitKnobs { vect: true, ..EmitKnobs::default() },
                )
            } else {
                emit_source(&k, &prog, &params, 4, 1)
            };
            vect_regions += src.matches("// vect region ").count();
            audit(
                &format!("{label} (emitted source)"),
                &verify_source(k.name, &src),
                strict,
                &mut failures,
            );
        }
    }
    if vect {
        println!("vect regions audited: {vect_regions}");
    }
    if vm_audit {
        println!("vm accesses proven: {vm_proven}/{vm_total}");
    }
    if failures > 0 {
        println!("verify: {failures} artifact(s) failed");
        std::process::exit(1);
    }
    println!("verify: all audited artifacts certified");
}
