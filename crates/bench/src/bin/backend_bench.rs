//! `backend_bench` — the committed evidence for the in-process backend
//! (`BENCH_backend.json`): per-cell cost of a vm measurement vs a full
//! rustc round-trip (emit → `rustc -O` → spawn → parse), cross-backend
//! checksum agreement on every compared cell, explicit-vec (the
//! `vect` post-pass) vs auto-vec GFLOP/s on kernels with a
//! certified-doall innermost stride-1 loop, and checked vs proof-elided
//! vm throughput (the dynamic-bounds-check tax the bytecode certifier
//! buys back) with bit-exact checksum agreement required.
//!
//! ```text
//! cargo run --release -p polymix-bench --bin backend_bench -- \
//!     --dataset mini --out BENCH_backend.json
//! ```
//!
//! The rustc cell cost is charged against a cold binary cache — the
//! compile *is* the round-trip the vm backend exists to kill; a warm
//! cache would measure the wrong thing.

use polymix_bench::backend::{vm_measure, vm_measure_checked};
use polymix_bench::report::Cli;
use polymix_bench::runner::{compile_and_run, emit_source_with, EmitKnobs, Runner};
use polymix_bench::variants::{build_variant, Variant};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;
use std::fmt::Write as _;
use std::time::Instant;

/// Kernel × variant cells for the cost/agreement matrix: one
/// compute-bound, one multi-statement, one memory-bound, two stencils —
/// each at native and one transformed structure.
const CELLS: &[(&str, Variant)] = &[
    ("gemm", Variant::Native),
    ("gemm", Variant::Pocc),
    ("2mm", Variant::Native),
    ("2mm", Variant::PolyAst),
    ("atax", Variant::Native),
    ("jacobi-1d-imper", Variant::Native),
    ("jacobi-1d-imper", Variant::Pocc),
    ("jacobi-2d-imper", Variant::Native),
];

/// Candidates for the explicit-vec comparison; kernels whose programs
/// expose no eligible loop are skipped (reported in the JSON).
const VECT_KERNELS: &[&str] = &["jacobi-1d-imper", "jacobi-2d-imper", "fdtd-2d", "gemver", "mvt"];

fn main() {
    let cli = Cli::parse();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_backend.json".into());
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let scratch = std::env::temp_dir().join(format!("polymix-backend-bench-{}", std::process::id()));

    println!(
        "== backend_bench: dataset {}, {} thread(s), {} rep(s) ==",
        cli.dataset, runner.threads, runner.reps
    );
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"dataset\":\"{}\",\"threads\":{},\"reps\":{},\"cells\":[",
        cli.dataset, runner.threads, runner.reps
    );

    // --- per-cell cost + checksum agreement -------------------------
    let mut ratios: Vec<f64> = Vec::new();
    let mut disagreements = 0usize;
    let mut first = true;
    for &(name, variant) in CELLS {
        let k = kernel_by_name(name).expect("cell kernel");
        let params = k.dataset(&cli.dataset).params;
        let prog = match build_variant(&k, variant, &machine) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name} {variant:?}: build failed, cell skipped: {e}");
                continue;
            }
        };
        // vm cell: lower + interpret, in-process.
        let t0 = Instant::now();
        let vm = match vm_measure(
            &k,
            &prog,
            &params,
            variant.name(),
            runner.threads,
            runner.reps,
            EmitKnobs::default(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name} {variant:?}: vm cell skipped: {e}");
                continue;
            }
        };
        let vm_cell_s = t0.elapsed().as_secs_f64();
        // rustc cell: emit + compile (cold cache) + spawn + parse.
        let dir = scratch.join(format!("{name}-{}", variant.name().replace(['(', ')', '+'], "_")));
        let _ = std::fs::remove_dir_all(&dir);
        let t0 = Instant::now();
        let src = emit_source_with(&k, &prog, &params, runner.threads, runner.reps, EmitKnobs::default());
        let rustc = match compile_and_run(&src, &dir, &runner.rustc_flags, name) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name} {variant:?}: rustc cell failed: {e}");
                continue;
            }
        };
        let rustc_cell_s = t0.elapsed().as_secs_f64();
        let ratio = rustc_cell_s / vm_cell_s.max(1e-12);
        // The emitted binary prints `{:.6e}`, so agreement is judged at
        // that precision.
        let rel = (vm.checksum - rustc.checksum).abs() / rustc.checksum.abs().max(1.0);
        let agree = rel < 1e-6;
        if !agree {
            disagreements += 1;
        }
        ratios.push(ratio);
        println!(
            "  {name:18} {:16} vm {vm_cell_s:9.2e}s  rustc {rustc_cell_s:8.3}s  ratio {ratio:8.0}x  agree {agree}",
            variant.name()
        );
        let _ = write!(
            json,
            "{}{{\"kernel\":\"{name}\",\"variant\":\"{}\",\"vm_cell_s\":{vm_cell_s:.6e},\
             \"rustc_cell_s\":{rustc_cell_s:.6e},\"cost_ratio\":{ratio:.1},\
             \"vm_checksum\":{:.17e},\"rustc_checksum\":{:.17e},\"agree\":{agree}}}",
            if first { "" } else { "," },
            variant.name(),
            vm.checksum,
            rustc.checksum,
        );
        first = false;
    }
    let min_ratio = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let _ = write!(
        json,
        "],\"min_cost_ratio\":{:.1},\"checksum_disagreements\":{disagreements},\"vect\":[",
        if min_ratio.is_finite() { min_ratio } else { 0.0 }
    );

    // --- explicit-vec vs auto-vec -----------------------------------
    println!("-- explicit-vec (vect post-pass) vs auto-vec, rustc backend --");
    let mut first = true;
    let mut vect_cells = 0usize;
    for &name in VECT_KERNELS {
        let k = kernel_by_name(name).expect("vect kernel");
        let params = k.dataset(&cli.dataset).params;
        let prog = match build_variant(&k, Variant::Native, &machine) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: build failed, skipped: {e}");
                continue;
            }
        };
        let vars = polymix_verify::vectorizable_inner_vars(&prog);
        if vars.is_empty() {
            println!("  {name:18} no certified-doall innermost stride-1 loop, skipped");
            continue;
        }
        let dir = scratch.join(format!("vect-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut gfs = [0.0f64; 2];
        let mut failed = false;
        for (i, vect) in [false, true].into_iter().enumerate() {
            let knobs = EmitKnobs { vect, ..EmitKnobs::default() };
            let src = emit_source_with(&k, &prog, &params, runner.threads, runner.reps, knobs);
            match compile_and_run(&src, &dir, &runner.rustc_flags, name) {
                Ok(r) => gfs[i] = r.gflops,
                Err(e) => {
                    eprintln!("{name} vect={vect}: {e}");
                    failed = true;
                }
            }
        }
        if failed {
            continue;
        }
        let ratio = gfs[1] / gfs[0].max(1e-12);
        println!(
            "  {name:18} vars {vars:?}  auto-vec {:.4} GF/s  explicit-vec {:.4} GF/s  ({ratio:.2}x)",
            gfs[0], gfs[1]
        );
        let vars_json: Vec<String> = vars.iter().map(usize::to_string).collect();
        let _ = write!(
            json,
            "{}{{\"kernel\":\"{name}\",\"vars\":[{}],\"autovec_gflops\":{:.6},\
             \"vect_gflops\":{:.6},\"ratio\":{ratio:.4}}}",
            if first { "" } else { "," },
            vars_json.join(","),
            gfs[0],
            gfs[1],
        );
        first = false;
        vect_cells += 1;
    }
    let _ = write!(json, "],\"vect_kernels_compared\":{vect_cells},\"elision\":[");

    // --- checked vs proof-elided vm throughput ----------------------
    // Same program, same interpreter: the only difference is whether
    // the dispatch loop re-validates addresses the certifier already
    // proved in-bounds. Checksums must match bit-for-bit — elision may
    // never change what executes, only what it re-checks.
    println!("-- vm backend: checked vs proof-elided dispatch --");
    let mut first = true;
    let mut elision_disagreements = 0usize;
    let mut elision_speedups: Vec<f64> = Vec::new();
    // vm cells are cheap; min-time over many interleaved rounds keeps
    // the comparison above the timer granularity at mini.
    let e_reps = runner.reps.max(2);
    const ROUNDS: usize = 12;
    for &(name, variant) in CELLS {
        let k = kernel_by_name(name).expect("cell kernel");
        let params = k.dataset(&cli.dataset).params;
        let prog = match build_variant(&k, variant, &machine) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name} {variant:?}: build failed, cell skipped: {e}");
                continue;
            }
        };
        // Interleave the two fidelities round-robin and keep each
        // side's best round: back-to-back blocks would let machine
        // drift (noisy-neighbor vCPUs) masquerade as an elision
        // effect in either direction.
        let mut checked: Option<polymix_bench::runner::RunResult> = None;
        let mut elided: Option<polymix_bench::runner::RunResult> = None;
        let mut cell_err = None;
        for _ in 0..ROUNDS {
            match vm_measure_checked(
                &k,
                &prog,
                &params,
                variant.name(),
                runner.threads,
                e_reps,
                EmitKnobs::default(),
            ) {
                Ok(r) => {
                    if checked.as_ref().is_none_or(|b| r.gflops > b.gflops) {
                        checked = Some(r);
                    }
                }
                Err(e) => {
                    cell_err = Some(e);
                    break;
                }
            }
            match vm_measure(
                &k,
                &prog,
                &params,
                variant.name(),
                runner.threads,
                e_reps,
                EmitKnobs::default(),
            ) {
                Ok(r) => {
                    if elided.as_ref().is_none_or(|b| r.gflops > b.gflops) {
                        elided = Some(r);
                    }
                }
                Err(e) => {
                    cell_err = Some(e);
                    break;
                }
            }
        }
        let (checked, elided) = match (checked, elided, cell_err) {
            (Some(c), Some(e), None) => (c, e),
            (_, _, err) => {
                eprintln!(
                    "{name} {variant:?}: elision cell skipped: {}",
                    err.map_or_else(|| "no rounds completed".to_string(), |e| e.to_string())
                );
                continue;
            }
        };
        let speedup = elided.gflops / checked.gflops.max(1e-12);
        let agree = elided.checksum == checked.checksum;
        if !agree {
            elision_disagreements += 1;
        }
        elision_speedups.push(speedup);
        println!(
            "  {name:18} {:16} checked {:.4} GF/s  elided {:.4} GF/s  ({speedup:.2}x)  agree {agree}",
            variant.name(),
            checked.gflops,
            elided.gflops
        );
        let _ = write!(
            json,
            "{}{{\"kernel\":\"{name}\",\"variant\":\"{}\",\"checked_gflops\":{:.6},\
             \"elided_gflops\":{:.6},\"speedup\":{speedup:.4},\"agree\":{agree}}}",
            if first { "" } else { "," },
            variant.name(),
            checked.gflops,
            elided.gflops,
        );
        first = false;
    }
    let mean_speedup = if elision_speedups.is_empty() {
        0.0
    } else {
        elision_speedups.iter().sum::<f64>() / elision_speedups.len() as f64
    };
    let _ = write!(
        json,
        "],\"elision_mean_speedup\":{mean_speedup:.4},\
         \"elision_checksum_disagreements\":{elision_disagreements}}}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: min cost ratio {min_ratio:.0}x, {disagreements} checksum disagreement(s), \
         {vect_cells} vect comparison(s), elision mean speedup {mean_speedup:.2}x \
         ({elision_disagreements} elision disagreement(s))"
    );
    if disagreements > 0 || elision_disagreements > 0 {
        std::process::exit(1);
    }
}
