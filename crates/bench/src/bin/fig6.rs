//! Fig. 6: point-to-point pipeline vs wavefront doall on a Seidel-style
//! dependent 2-D sweep, over a thread sweep. The pipeline construct pays
//! one fill/drain; the wavefront pays an all-to-all barrier per diagonal
//! plus ragged diagonal lengths — the gap grows with thread count.

use polymix_bench::report::{Cli, Table};
use polymix_runtime::{pipeline_2d, wavefront_2d, GridSweep, RuntimeError};
use std::time::Instant;

fn sweep(
    grid: GridSweep,
    field: &mut [f64],
    nj: usize,
    threads: usize,
    pipeline: bool,
) -> Result<f64, RuntimeError> {
    // C[i][j] = 0.2 * (C[i][j] + C[i-1][j] + C[i][j-1]) per interior cell.
    let ptr = field.as_mut_ptr() as usize;
    let body = move |i: i64, j: i64| {
        let p = ptr as *mut f64;
        let (i, j) = (i as usize, j as usize);
        unsafe {
            let v = 0.2
                * (*p.add(i * nj + j) + *p.add((i - 1) * nj + j) + *p.add(i * nj + j - 1));
            *p.add(i * nj + j) = v;
        }
    };
    let t0 = Instant::now();
    if pipeline {
        pipeline_2d(grid, threads, body)?;
    } else {
        wavefront_2d(grid, threads, body)?;
    }
    Ok(t0.elapsed().as_secs_f64())
}

fn main() {
    let cli = Cli::parse();
    let (ni, nj) = match cli.dataset.as_str() {
        "mini" => (64usize, 64usize),
        "small" => (1000, 1000),
        _ => (4000, 4000),
    };
    println!("== Fig. 6 — pipeline (p2p) vs wavefront doall ==");
    println!("grid {ni}x{nj}, 20 sweeps per measurement");
    let grid = GridSweep {
        i_lo: 1,
        i_hi: ni as i64,
        j_lo: 1,
        j_hi: nj as i64,
    };
    let cells_per_sweep = grid.cells() as f64;
    let mut t = Table::new(&["threads", "pipeline Mcell/s", "wavefront Mcell/s", "speedup"]);
    let max_threads = cli.threads;
    let mut any_degraded = false;
    let mut th = 1;
    while th <= max_threads {
        // On a RuntimeError the measurement degrades to a sequential
        // re-run of the same sweep (marked `†`), matching the sweep
        // executor's degraded(sequential) policy.
        let mut run = |pipeline: bool| -> (f64, bool) {
            let mut field = vec![1.0f64; ni * nj];
            let mut total = 0.0;
            let mut degraded = false;
            for _ in 0..20 {
                match sweep(grid, &mut field, nj, th, pipeline) {
                    Ok(dt) => total += dt,
                    Err(e) => {
                        eprintln!(
                            "fig6: {} failed at {th} threads ({e}); degrading to sequential",
                            if pipeline { "pipeline" } else { "wavefront" }
                        );
                        degraded = true;
                        any_degraded = true;
                        total += sweep(grid, &mut field, nj, 1, pipeline)
                            .expect("sequential re-run");
                    }
                }
            }
            (20.0 * cells_per_sweep / total / 1e6, degraded)
        };
        let (p, pd) = run(true);
        let (w, wd) = run(false);
        t.row(vec![
            th.to_string(),
            format!("{p:.1}{}", if pd { "†" } else { "" }),
            format!("{w:.1}{}", if wd { "†" } else { "" }),
            format!("{:.2}x", p / w),
        ]);
        th *= 2;
    }
    println!("{}", t.render());
    if any_degraded {
        println!("† degraded(sequential): parallel run failed; sequential re-run measured");
    }
    println!("(paper: pipeline outperforms wavefront due to synchronization efficiency and locality)");
}
