//! Fig. 9: pipeline-parallel (time-iterated stencil) PolyBench kernels.
fn main() {
    polymix_bench::figures::run_group_figure(
        "Fig. 9 — pipeline-parallel kernels",
        polymix_polybench::Group::Pipeline,
    );
}
