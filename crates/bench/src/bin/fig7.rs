//! Fig. 7: PolyBench kernels where doall parallelism is dominant.
fn main() {
    polymix_bench::figures::run_group_figure(
        "Fig. 7 — doall-dominant kernels",
        polymix_polybench::Group::Doall,
    );
}
