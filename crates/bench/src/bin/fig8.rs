//! Fig. 8: memory-bound / reduction-parallel PolyBench kernels.
fn main() {
    polymix_bench::figures::run_group_figure(
        "Fig. 8 — reduction / memory-bound kernels",
        polymix_polybench::Group::Reduction,
    );
}
