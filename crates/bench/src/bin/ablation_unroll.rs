//! Register-tiling ablation (Sec. IV-C: "up to 2× additional performance
//! improvement can be obtained by register tiling"): sweeps the
//! unroll-and-jam factors of the poly+AST flow on gemm and 2mm.

use polymix_bench::report::{gf, Cli};
use polymix_bench::runner::Runner;
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    println!("== Register-tiling ablation (unroll-and-jam factor sweep) ==");
    let factors: [(i64, i64); 5] = [(1, 1), (1, 2), (2, 2), (2, 4), (4, 4)];
    let mut header: Vec<String> = vec!["kernel".into()];
    header.extend(factors.iter().map(|(o, i)| format!("{o}x{i}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = polymix_bench::report::Table::new(&header_refs);
    for name in ["gemm", "2mm", "syrk"] {
        let k = kernel_by_name(name).unwrap();
        let scop = (k.build)();
        let params = k.dataset(&cli.dataset).params;
        let mut cells = vec![name.to_string()];
        for &(o, i) in &factors {
            let prog = optimize_poly_ast(
                &scop,
                &PolyAstOptions {
                    machine: machine.clone(),
                    unroll: (o, i),
                    ..Default::default()
                },
            );
            let label = format!("unroll_{name}_{o}x{i}");
            // Per-configuration failures become error cells; the sweep
            // continues with the remaining configurations.
            let prog = match prog {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{label}: {e}");
                    cells.push(e.cell());
                    continue;
                }
            };
            match runner.run(&k, &prog, &params, &label) {
                Ok(r) => cells.push(gf(r.gflops)),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    cells.push(e.cell());
                }
            }
        }
        t.row(cells);
    }
    println!("{}", t.render());
}
