//! Register-tiling ablation (Sec. IV-C: "up to 2× additional performance
//! improvement can be obtained by register tiling"): sweeps the
//! unroll-and-jam factors of the poly+AST flow on gemm and 2mm.

use polymix_bench::report::{gf, Cli};
use polymix_bench::runner::{emit_source, Runner};
use polymix_bench::sweep::{print_degraded_legend, run_sweep, JobWork, SweepConfig, SweepJob};
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    println!("== Register-tiling ablation (unroll-and-jam factor sweep) ==");
    let factors: [(i64, i64); 5] = [(1, 1), (1, 2), (2, 2), (2, 4), (4, 4)];
    let names = ["gemm", "2mm", "syrk"];
    let mut header: Vec<String> = vec!["kernel".into()];
    header.extend(factors.iter().map(|(o, i)| format!("{o}x{i}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = polymix_bench::report::Table::new(&header_refs);
    // Per-configuration failures become error cells; the sweep continues
    // with the remaining configurations.
    let cfg = SweepConfig::from_cli(&cli);
    let mut jobs: Vec<SweepJob> = Vec::new();
    for name in names {
        let Some(k) = kernel_by_name(name) else {
            continue;
        };
        let params = k.dataset(&cli.dataset).params;
        for &(o, i) in &factors {
            let (kc, mc, pc) = (k.clone(), machine.clone(), params.clone());
            let (threads, reps) = (runner.threads, runner.reps);
            let (ks, ms, ps) = (k.clone(), machine.clone(), params.clone());
            jobs.push(SweepJob {
                id: format!("unroll:{name}:{o}x{i}:{}", cli.dataset),
                kernel: name.to_string(),
                variant: format!("{o}x{i}"),
                dataset: cli.dataset.clone(),
                params: params.clone(),
                work: JobWork::Rustc {
                    source: Box::new(move || {
                    let prog = optimize_poly_ast(
                        &(kc.build)(),
                        &PolyAstOptions {
                            machine: mc,
                            unroll: (o, i),
                            ..Default::default()
                        },
                    )?;
                    Ok(emit_source(&kc, &prog, &pc, threads, reps))
                }),
                seq_source: Some(Box::new(move || {
                    let prog = optimize_poly_ast(
                        &(ks.build)(),
                        &PolyAstOptions {
                            machine: ms,
                            unroll: (o, i),
                            ..Default::default()
                        },
                    )?;
                    Ok(emit_source(&ks, &prog, &ps, 1, reps))
                })),
                },
            });
        }
    }
    let outcomes = run_sweep(jobs, &runner, &cfg);
    let mut results = outcomes.iter();
    for name in names {
        if kernel_by_name(name).is_none() {
            continue;
        }
        let mut cells = vec![name.to_string()];
        for _ in 0..factors.len() {
            cells.push(match results.next().map(|o| (&o.result, o.degraded)) {
                Some((Ok(r), degraded)) => {
                    format!("{}{}", gf(r.gflops), if degraded { "†" } else { "" })
                }
                Some((Err(e), _)) => {
                    eprintln!("{name}: {e}");
                    e.cell()
                }
                None => "-".into(),
            });
        }
        t.row(cells);
    }
    println!("{}", t.render());
    print_degraded_legend(&outcomes);
}
