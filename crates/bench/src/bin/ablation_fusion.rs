//! Fusion ablation: the poly+AST flow with Algorithm 5's DL-guided fusion
//! enabled vs disabled (per-SCC distribution only). Fusion's payoff is
//! producer–consumer locality (2mm's tmp, 3mm's intermediates), at the
//! cost of larger per-tile footprints — the trade the DL fusion
//! profitability test (Sec. III-B2) arbitrates.

use polymix_bench::report::{gf, Cli, Table};
use polymix_bench::runner::Runner;
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    println!("== Fusion ablation (poly+AST with/without Algorithm 5 fusion) ==");
    let mut t = Table::new(&["kernel", "fused GF/s", "unfused GF/s"]);
    for name in ["2mm", "3mm", "gemm", "gesummv", "atax", "correlation"] {
        let k = kernel_by_name(name).unwrap();
        let scop = (k.build)();
        let params = k.dataset(&cli.dataset).params;
        let mut cells = vec![name.to_string()];
        for fusion in [true, false] {
            let prog = optimize_poly_ast(
                &scop,
                &PolyAstOptions {
                    machine: machine.clone(),
                    fusion,
                    ..Default::default()
                },
            );
            let label = format!("fuse_{name}_{fusion}");
            // Per-configuration failures become error cells; the sweep
            // continues with the remaining configurations.
            let prog = match prog {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{label}: {e}");
                    cells.push(e.cell());
                    continue;
                }
            };
            match runner.run(&k, &prog, &params, &label) {
                Ok(r) => cells.push(gf(r.gflops)),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    cells.push(e.cell());
                }
            }
        }
        t.row(cells);
    }
    println!("{}", t.render());
}
