//! Fusion ablation: the poly+AST flow with Algorithm 5's DL-guided fusion
//! enabled vs disabled (per-SCC distribution only). Fusion's payoff is
//! producer–consumer locality (2mm's tmp, 3mm's intermediates), at the
//! cost of larger per-tile footprints — the trade the DL fusion
//! profitability test (Sec. III-B2) arbitrates.

use polymix_bench::report::{gf, Cli, Table};
use polymix_bench::runner::{emit_source, Runner};
use polymix_bench::sweep::{print_degraded_legend, run_sweep, JobWork, SweepConfig, SweepJob};
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    println!("== Fusion ablation (poly+AST with/without Algorithm 5 fusion) ==");
    let mut t = Table::new(&["kernel", "fused GF/s", "unfused GF/s"]);
    let names = ["2mm", "3mm", "gemm", "gesummv", "atax", "correlation"];
    // Both the variant build and the measurement run on sweep workers;
    // per-configuration failures become error cells and the sweep
    // continues with the remaining configurations.
    let cfg = SweepConfig::from_cli(&cli);
    let mut jobs: Vec<SweepJob> = Vec::new();
    for name in names {
        let Some(k) = kernel_by_name(name) else {
            continue;
        };
        let params = k.dataset(&cli.dataset).params;
        for fusion in [true, false] {
            let (kc, mc, pc) = (k.clone(), machine.clone(), params.clone());
            let (threads, reps) = (runner.threads, runner.reps);
            let (ks, ms, ps) = (k.clone(), machine.clone(), params.clone());
            jobs.push(SweepJob {
                id: format!("fuse:{name}:{fusion}:{}", cli.dataset),
                kernel: name.to_string(),
                variant: format!("fusion={fusion}"),
                dataset: cli.dataset.clone(),
                params: params.clone(),
                work: JobWork::Rustc {
                    source: Box::new(move || {
                    let prog = optimize_poly_ast(
                        &(kc.build)(),
                        &PolyAstOptions {
                            machine: mc,
                            fusion,
                            ..Default::default()
                        },
                    )?;
                    Ok(emit_source(&kc, &prog, &pc, threads, reps))
                }),
                seq_source: Some(Box::new(move || {
                    let prog = optimize_poly_ast(
                        &(ks.build)(),
                        &PolyAstOptions {
                            machine: ms,
                            fusion,
                            ..Default::default()
                        },
                    )?;
                    Ok(emit_source(&ks, &prog, &ps, 1, reps))
                })),
                },
            });
        }
    }
    let outcomes = run_sweep(jobs, &runner, &cfg);
    let mut results = outcomes.iter();
    for name in names {
        if kernel_by_name(name).is_none() {
            continue;
        }
        let mut cells = vec![name.to_string()];
        for _ in 0..2 {
            cells.push(match results.next().map(|o| (&o.result, o.degraded)) {
                Some((Ok(r), degraded)) => {
                    format!("{}{}", gf(r.gflops), if degraded { "†" } else { "" })
                }
                Some((Err(e), _)) => {
                    eprintln!("{name}: {e}");
                    e.cell()
                }
                None => "-".into(),
            });
        }
        t.row(cells);
    }
    println!("{}", t.render());
    print_degraded_legend(&outcomes);
}
