//! Table II: the evaluated PolyBench kernels.
use polymix_bench::report::Table;
fn main() {
    let mut t = Table::new(&["benchmark", "group", "description"]);
    for k in polymix_polybench::all_kernels() {
        t.row(vec![
            k.name.to_string(),
            format!("{:?}", k.group),
            k.description.to_string(),
        ]);
    }
    println!("== Table II — evaluated benchmarks ==\n{}", t.render());
}
