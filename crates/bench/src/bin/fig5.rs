//! Fig. 5: the poly+AST parallelization choices vs a doall-only strategy
//! on the paper's three example patterns — an elementwise copy (doall), a
//! column-sum reduction, and a vertical stencil (pipeline). The poly+AST
//! detector keeps the locality-friendly loop order and uses the
//! appropriate parallelism kind; the doall-only strategy must settle for
//! an inner (or permuted) doall loop.

use polymix_ast::pretty::render;
use polymix_bench::report::{gf, Cli, Table};
use polymix_bench::runner::{emit_source, Runner};
use polymix_bench::sweep::{print_degraded_legend, run_sweep, JobWork, SweepConfig, SweepJob};
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{BinOp, Expr, Scop};
use polymix_polybench::kernel::{Dataset, Group, InitSpec, Kernel};

fn copy_scop() -> Scop {
    let mut b = ScopBuilder::new("fig5-copy", &["N"], &[8]);
    let a = b.array("A", &["N", "N"]);
    let bb = b.array("B", &["N", "N"]);
    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("N"));
    let body = Expr::mul(Expr::Const(1.5), b.rd(bb, &[ix("i"), ix("j")]));
    b.stmt("S", a, &[ix("i"), ix("j")], body);
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

fn reduction_scop() -> Scop {
    let mut b = ScopBuilder::new("fig5-reduction", &["N"], &[8]);
    let s = b.array("S", &["N"]);
    let x = b.array("X", &["N", "N"]);
    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("N"));
    let body = Expr::mul(Expr::Const(1.5), b.rd(x, &[ix("i"), ix("j")]));
    b.stmt_update("S", s, &[ix("j")], BinOp::Add, body);
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

fn stencil_scop() -> Scop {
    let mut b = ScopBuilder::new("fig5-stencil", &["N"], &[8]);
    b.assume_params_at_least(3);
    let c = b.array("C", &["N", "N"]);
    b.enter("i", con(1), par("N"));
    b.enter("j", con(1), par("N") - con(1));
    let body = Expr::mul(
        Expr::Const(0.33),
        Expr::add(
            Expr::add(
                b.rd(c, &[ix("i") - con(1), ix("j")]),
                b.rd(c, &[ix("i"), ix("j")]),
            ),
            b.rd(c, &[ix("i"), ix("j") - con(1)]),
        ),
    );
    b.stmt("S", c, &[ix("i"), ix("j")], body);
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

fn as_kernel(name: &'static str, build: fn() -> Scop, flops: fn(&[i64]) -> u64) -> Kernel {
    Kernel {
        name,
        description: "Fig. 5 pattern",
        group: Group::Doall,
        build,
        reference: |_, _| {},
        flops,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![16] },
                Dataset { name: "small", params: vec![1024] },
                Dataset { name: "standard", params: vec![4096] },
                Dataset { name: "large", params: vec![8192] },
            ]
        },
        init: InitSpec::generic(),
    }
}

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let kernels = [
        as_kernel("fig5-copy", copy_scop, |p| (p[0] * p[0]) as u64),
        as_kernel("fig5-reduction", reduction_scop, |p| (2 * p[0] * p[0]) as u64),
        as_kernel("fig5-stencil", stencil_scop, |p| {
            (3 * (p[0] - 1) * (p[0] - 2)) as u64
        }),
    ];
    println!("== Fig. 5 — poly+AST vs doall-only parallelization ==");
    let mut t = Table::new(&["pattern", "poly+ast GF/s", "doall-only GF/s"]);
    // Build (and print) the chosen loop structures serially — the
    // renders are part of the figure — then measure everything on the
    // parallel sweep executor. A failed configuration yields an error
    // cell; the other column and the remaining patterns still run.
    let cfg = SweepConfig::from_cli(&cli);
    let mut jobs: Vec<SweepJob> = Vec::new();
    let mut cells: Vec<Vec<String>> = Vec::new(); // row-major; "" = pending job
    for k in &kernels {
        let scop = (k.build)();
        let params = k.dataset(&cli.dataset).params;
        let mut row = vec![k.name.to_string()];
        for (doall_only, suffix) in [(false, "ours"), (true, "doall")] {
            let prog = optimize_poly_ast(
                &scop,
                &PolyAstOptions {
                    machine: machine.clone(),
                    tiling: false,
                    doall_only,
                    unroll: (1, 1),
                    ..Default::default()
                },
            );
            match prog {
                Ok(p) => {
                    println!("-- {} — {suffix} chooses:\n{}", k.name, render(&p));
                    let (kc, pc) = (k.clone(), params.clone());
                    let (threads, reps) = (runner.threads, runner.reps);
                    let (ks, ps, p2) = (k.clone(), params.clone(), p.clone());
                    jobs.push(SweepJob {
                        id: format!("fig5:{}:{suffix}:{}", k.name, cli.dataset),
                        kernel: k.name.to_string(),
                        variant: suffix.to_string(),
                        dataset: cli.dataset.clone(),
                        params: params.clone(),
                        work: JobWork::Rustc {
                            source: Box::new(move || Ok(emit_source(&kc, &p, &pc, threads, reps))),
                            seq_source: Some(Box::new(move || {
                                Ok(emit_source(&ks, &p2, &ps, 1, reps))
                            })),
                        },
                    });
                    row.push(String::new());
                }
                Err(e) => {
                    eprintln!("{}: {suffix} failed: {e}", k.name);
                    row.push(e.cell());
                }
            }
        }
        cells.push(row);
    }
    let outcomes = run_sweep(jobs, &runner, &cfg);
    let mut results = outcomes.iter();
    for row in &mut cells {
        for cell in row.iter_mut().skip(1).filter(|c| c.is_empty()) {
            *cell = match results.next().map(|o| (&o.result, o.degraded)) {
                Some((Ok(r), degraded)) => {
                    format!("{}{}", gf(r.gflops), if degraded { "†" } else { "" })
                }
                Some((Err(e), _)) => {
                    eprintln!("{e}");
                    e.cell()
                }
                None => "-".into(),
            };
        }
        t.row(row.clone());
    }
    println!("{}", t.render());
    print_degraded_legend(&outcomes);
}
