//! DL-model validation (the premise of Sec. III-B): the model's
//! per-iteration memory cost must *rank* loop permutations and tile sizes
//! the same way the trace-driven cache simulator ranks their measured
//! misses. Runs gemm's update statement under all six loop permutations
//! and several tile sizes.

use polymix_bench::report::Table;
use polymix_cachesim::{simulate, CacheConfig};
use polymix_codegen::from_poly::generate;
use polymix_dl::{mem_cost, CacheLevel, Machine, RefInfo};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{BinOp, Expr, Schedule, Scop};

fn matmul_update() -> Scop {
    let mut b = ScopBuilder::new("mmu", &["N"], &[48]);
    let c = b.array("C", &["N", "N"]);
    let a = b.array("A", &["N", "N"]);
    let bb = b.array("B", &["N", "N"]);
    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), par("N"));
    b.enter("k", con(0), par("N"));
    let prod = Expr::mul(b.rd(a, &[ix("i"), ix("k")]), b.rd(bb, &[ix("k"), ix("j")]));
    b.stmt_update("S", c, &[ix("i"), ix("j")], BinOp::Add, prod);
    b.exit();
    b.exit();
    b.exit();
    b.finish().expect("well-formed SCoP")
}

fn perm_name(p: &[usize]) -> String {
    p.iter().map(|&i| ["i", "j", "k"][i]).collect()
}

fn main() {
    let scop = matmul_update();
    let machine = Machine::nehalem();
    let level: &CacheLevel = machine.primary_level();
    let params = vec![48i64];
    let cfg = CacheConfig {
        line_bytes: level.line_bytes,
        capacity_bytes: 8 * 1024, // deliberately small so misses differ
        ways: 8,
    };
    println!("== DL model validation: predicted cost vs simulated misses ==");
    println!("gemm update statement, N = 48, 8 KB simulated cache\n");
    let mut t = Table::new(&["order", "DL mem_cost", "simulated misses", "miss ratio"]);
    let mut pairs: Vec<(f64, u64)> = Vec::new();
    for perm in [
        [0usize, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ] {
        // Schedule sending original iterator perm[k] to level k.
        let sched = Schedule::from_permutation(&perm, 1);
        let st = &scop.statements[0];
        let refs: Vec<RefInfo> = st
            .accesses()
            .iter()
            .map(|(acc, _)| RefInfo::from_access(acc.array.0, acc, &sched, 1, 3, 8))
            .collect();
        // The DL cost over the *full* iteration space is permutation
        // invariant (the nest touches the same lines however ordered);
        // what discriminates permutations is the cost of an innermost
        // strip — one cache-resident sweep of the innermost loop — which
        // is exactly what the ∂mem_cost/∂t ranking optimizes.
        let cost = mem_cost(&refs, &[1.0, 1.0, 48.0], level);
        let prog = match generate(&scop, &[sched]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: {e}", perm_name(&perm));
                continue;
            }
        };
        let mut arrays = polymix_ast::interp::alloc_arrays(&scop, &params);
        let stats = simulate(&prog, &params, &mut arrays, cfg);
        t.row(vec![
            perm_name(&perm),
            format!("{cost:.5}"),
            stats.misses.to_string(),
            format!("{:.3}", stats.miss_ratio()),
        ]);
        pairs.push((cost, stats.misses));
    }
    println!("{}", t.render());

    // Rank agreement (Spearman-style count of concordant pairs).
    let mut concordant = 0;
    let mut total = 0;
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            if pairs[i].0 != pairs[j].0 && pairs[i].1 != pairs[j].1 {
                total += 1;
                if (pairs[i].0 < pairs[j].0) == (pairs[i].1 < pairs[j].1) {
                    concordant += 1;
                }
            }
        }
    }
    println!("rank agreement: {concordant}/{total} comparable pairs concordant");
}
