//! Power7 machine-model runs: this reproduction has no IBM Power7, so
//! the second evaluation platform is modeled (per DESIGN.md): every
//! variant is executed through the trace-driven cache simulator with
//! Power7-like geometry (128 B lines), and a weighted miss cost plus the
//! 32-core parallelism exposed by each variant produce a modeled
//! throughput score. Shapes (who wins, by how much) are the deliverable;
//! absolute numbers are not comparable to hardware GFLOP/s.

use polymix_ast::tree::{Node, Par};
use polymix_bench::report::{Cli, Table};
use polymix_bench::variants::{build_variant, Variant};
use polymix_cachesim::{simulate_hierarchy, CacheConfig};
use polymix_dl::Machine;
use polymix_polybench::all_kernels;

/// Fraction of the nest's work under a parallel construct, roughly: 1 if
/// any top-level loop is parallel-annotated, else 0.
fn parallel_kind(prog: &polymix_ast::tree::Program) -> (&'static str, f64) {
    let mut best = ("seq", 1.0f64);
    let mut body = prog.body.clone();
    let machine = Machine::power7();
    let cores = machine.cores as f64;
    body.visit_loops_mut(&mut |l| {
        let (name, speedup) = match l.par {
            Par::Doall => ("doall", cores),
            Par::Reduction => ("reduction", cores * 0.8),
            Par::Pipeline => ("pipeline", cores * 0.7),
            Par::Wavefront => ("wavefront", cores * 0.4),
            Par::Seq => ("seq", 1.0),
        };
        if speedup > best.1 {
            best = (name, speedup);
        }
    });
    let _ = Node::Seq(vec![]);
    best
}

fn main() {
    let cli = Cli::parse();
    let machine = Machine::power7();
    let configs = [
        CacheConfig::l1_power7(),
        CacheConfig {
            line_bytes: 128,
            capacity_bytes: 256 * 1024,
            ways: 8,
        },
    ];
    let costs = [1.0, 8.0]; // L1 miss → L2 hit; L2 miss → memory
    println!("== Power7 machine-model (cache simulation, 32-core scaling model) ==");
    println!("modeled score = FLOPs / (work + weighted miss cost) x parallel speedup (arbitrary units)");
    let variants = [Variant::Native, Variant::Pocc, Variant::PolyAst];
    let mut header: Vec<&str> = vec!["kernel"];
    header.extend(variants.iter().map(|v| v.name()));
    let mut t = Table::new(&header);
    let dataset = if cli.dataset == "small" { "mini" } else { &cli.dataset };
    for k in all_kernels() {
        let params = k.dataset(dataset).params;
        let scop = (k.build)();
        let flops = (k.flops)(&params) as f64;
        let mut cells = vec![k.name.to_string()];
        for &v in &variants {
            // Failed variants get an error cell; the sweep continues.
            let prog = match build_variant(&k, v, &machine) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}: {v:?} failed: {e}", k.name);
                    cells.push(e.cell());
                    continue;
                }
            };
            let mut arrays = k.fresh_arrays(&scop, &params);
            let h = simulate_hierarchy(&prog, &params, &mut arrays, &configs);
            let misses = h.weighted_cost(&costs);
            let (_, speedup) = parallel_kind(&prog);
            let score = flops / (flops + 4.0 * misses) * speedup;
            cells.push(format!("{score:.1}"));
        }
        t.row(cells);
    }
    println!("{}", t.render());
}
