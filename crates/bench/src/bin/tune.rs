//! `tune` — the closed-loop autotuner CLI.
//!
//! Searches fusion structure × tile sizes × unroll factors × runtime
//! knobs for each requested kernel with a two-fidelity loop: prune with
//! the cache model, screen the budgeted candidates through the
//! in-process bytecode backend (no `rustc` on the screening path), then
//! confirm the front-runners at full rustc fidelity and commit the
//! winner as `results/tuned/<kernel>.json` — unless the committed
//! config beats native and the new winner does not
//! ([`polymix_bench::autotune::TunedConfig::save_guarded`]).
//!
//! ```text
//! cargo run --release -p polymix-bench --bin tune -- \
//!     --kernels 2mm,gemm,jacobi-2d-imper --dataset small --budget 12
//! ```
//!
//! Flags beyond the shared sweep set ([`Cli`]): `--kernels` (comma
//! list, default `2mm`), `--budget` (measured candidate cells per
//! kernel, default 12), `--out` (config directory, default
//! `results/tuned`). `--results <log>` makes an interrupted search
//! resumable: re-running with the same log re-measures nothing already
//! recorded.

use polymix_bench::autotune::autotune_kernel;
use polymix_bench::report::Cli;
use polymix_bench::runner::Runner;
use polymix_bench::sweep::SweepConfig;
use polymix_dl::Machine;
use std::path::PathBuf;

fn main() {
    let cli = Cli::parse();
    let args: Vec<String> = std::env::args().collect();
    let grab = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let kernels: Vec<String> = grab("--kernels")
        .unwrap_or_else(|| "2mm".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let budget: usize = grab("--budget").and_then(|s| s.parse().ok()).unwrap_or(12);
    let out_dir = PathBuf::from(grab("--out").unwrap_or_else(|| "results/tuned".into()));

    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let cfg = SweepConfig::from_cli(&cli);
    println!(
        "== tune: {} kernel(s), dataset {}, budget {} measured cells each ==",
        kernels.len(),
        cli.dataset,
        budget
    );

    let mut failures = 0usize;
    for kernel in &kernels {
        println!("-- {kernel} --");
        match autotune_kernel(kernel, &cli.dataset, budget, &runner, &cfg, &machine) {
            Ok(outcome) => {
                let c = &outcome.config;
                println!(
                    "  space {} candidates, {} structures pruned by the cache model, \
                     {} measured fresh, {} resumed from the log",
                    outcome.total_candidates, outcome.pruned, outcome.measured, outcome.resumed
                );
                println!(
                    "  winner: {} tile {} time_tile {} unroll {}x{} pipeline_batch {} \
                     dyn_grain {} taskgraph {}",
                    c.candidate.opt.name(),
                    c.candidate.tile,
                    c.candidate.time_tile,
                    c.candidate.unroll.0,
                    c.candidate.unroll.1,
                    c.candidate
                        .pipeline_batch
                        .map_or("auto".into(), |b| b.to_string()),
                    c.candidate
                        .dyn_grain
                        .map_or("auto".into(), |g| g.to_string()),
                    c.candidate.taskgraph,
                );
                println!(
                    "  {:.4} GFLOP/s ({:.3e}s), {:.2}x vs native{}",
                    c.gflops,
                    c.time_s,
                    c.speedup_vs_native,
                    if c.beats_native {
                        ""
                    } else {
                        " [does NOT beat native]"
                    }
                );
                let path = out_dir.join(format!("{kernel}.json"));
                match c.save_guarded(&path) {
                    Ok(true) => println!("  committed {}", path.display()),
                    Ok(false) => println!(
                        "  NOT committed: {} holds a config that beats native and this \
                         winner does not",
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("  {kernel}: failed to write {}: {e}", path.display());
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("  {kernel}: tuning failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} kernel(s) failed to tune");
        std::process::exit(1);
    }
}
