//! Table I: 2mm under the original code, the maximal-fusion polyhedral
//! baseline (the paper's "PoCC" column, Fig. 2 structure), and the
//! poly+AST flow (Fig. 3 structure) — plus the rendered loop structures
//! of Figs. 1–3.

use polymix_ast::pretty::render;
use polymix_bench::report::{gf, Cli, Table};
use polymix_bench::runner::Runner;
use polymix_bench::variants::{build_variant, Variant};
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_pluto::{optimize_pluto, PlutoOptions, PlutoVariant};
use polymix_polybench::kernel_by_name;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let k = kernel_by_name("2mm").expect("2mm kernel");
    let params = k.dataset(&cli.dataset).params;
    let scop = (k.build)();

    // --- loop structures (Figs. 1–3), untiled for readability ---
    println!("== Fig. 1 — original 2mm ==");
    println!(
        "{}",
        render(&polymix_codegen::from_poly::original_program(&scop))
    );
    println!("== Fig. 2 — maximal polyhedral fusion (baseline) ==");
    let maxfuse_untiled = optimize_pluto(
        &scop,
        &PlutoOptions {
            variant: PlutoVariant::MaxFuse,
            tiling: false,
            ..Default::default()
        },
    );
    println!("{}", render(&maxfuse_untiled));
    println!("== Fig. 3 — poly+AST flow ==");
    let ours_untiled = optimize_poly_ast(
        &scop,
        &PolyAstOptions {
            machine: machine.clone(),
            tiling: false,
            unroll: (1, 1),
            ..Default::default()
        },
    );
    println!("{}", render(&ours_untiled));

    // --- Table I: measured GFLOP/s ---
    println!(
        "== Table I — 2mm performance ({} dataset, {} threads) ==",
        cli.dataset, cli.threads
    );
    let mut t = Table::new(&["variant", "GFLOP/s"]);
    for (label, variant) in [
        ("original", Variant::Native),
        ("pocc (maxfuse)", Variant::PlutoMaxFuse),
        ("pocc (smartfuse)", Variant::Pocc),
        ("our flow", Variant::PolyAst),
    ] {
        let prog = build_variant(&k, variant, &machine);
        match runner.run(&k, &prog, &params, &format!("table1_{}", variant.name())) {
            Ok(r) => t.row(vec![label.into(), gf(r.gflops)]),
            Err(e) => {
                eprintln!("{label}: {e}");
                t.row(vec![label.into(), "-".into()]);
            }
        }
    }
    println!("{}", t.render());
    println!("paper (Nehalem): original 2.4, PoCC 14, our flow 19 GF/s");
    println!("paper (Power7):  original 0.5, PoCC 29, our flow 62 GF/s");
}
