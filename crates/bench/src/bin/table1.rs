//! Table I: 2mm under the original code, the maximal-fusion polyhedral
//! baseline (the paper's "PoCC" column, Fig. 2 structure), and the
//! poly+AST flow (Fig. 3 structure) — plus the rendered loop structures
//! of Figs. 1–3.

use polymix_ast::pretty::render;
use polymix_bench::autotune::{build_candidate, default_tuned_path, TunedConfig};
use polymix_bench::backend::{select_backends, ProgBuild};
use polymix_bench::report::{gf, Cli, Table};
use polymix_bench::runner::{EmitKnobs, Runner};
use polymix_bench::sweep::{print_degraded_legend, run_sweep, SweepConfig, SweepJob};
use polymix_bench::variants::{build_variant, Variant};
use std::sync::Arc;
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_pluto::{optimize_pluto, PlutoOptions, PlutoVariant};
use polymix_polybench::kernel_by_name;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::host();
    let runner = Runner::new(cli.threads);
    let k = kernel_by_name("2mm").expect("2mm kernel");
    let params = k.dataset(&cli.dataset).params;
    let scop = (k.build)();

    // --- loop structures (Figs. 1–3), untiled for readability ---
    println!("== Fig. 1 — original 2mm ==");
    match polymix_codegen::from_poly::original_program(&scop) {
        Ok(p) => println!("{}", render(&p)),
        Err(e) => eprintln!("original program: {e}"),
    }
    println!("== Fig. 2 — maximal polyhedral fusion (baseline) ==");
    match optimize_pluto(
        &scop,
        &PlutoOptions {
            variant: PlutoVariant::MaxFuse,
            tiling: false,
            ..Default::default()
        },
    ) {
        Ok(p) => println!("{}", render(&p)),
        Err(e) => eprintln!("maxfuse baseline: {e}"),
    }
    println!("== Fig. 3 — poly+AST flow ==");
    match optimize_poly_ast(
        &scop,
        &PolyAstOptions {
            machine: machine.clone(),
            tiling: false,
            unroll: (1, 1),
            ..Default::default()
        },
    ) {
        Ok(p) => println!("{}", render(&p)),
        Err(e) => eprintln!("poly+ast flow: {e}"),
    }

    // --- Table I: measured GFLOP/s ---
    println!(
        "== Table I — 2mm performance ({} dataset, {} threads) ==",
        cli.dataset, cli.threads
    );
    let mut t = Table::new(&["variant", "GFLOP/s"]);
    let entries = [
        ("original", Variant::Native),
        ("pocc (maxfuse)", Variant::PlutoMaxFuse),
        ("pocc (smartfuse)", Variant::Pocc),
        ("our flow", Variant::PolyAst),
    ];
    // Per-variant failures become `error(<stage>)` rows via the sweep
    // executor; the table still renders with every other variant
    // measured.
    // `--tuned` appends a row measuring the committed autotuner config
    // (written by the `tune` binary; `results/tuned/2mm.json` by
    // default, overridable with `--tuned-config <path>`). Opt-in so the
    // default table keeps exactly the paper's four variants.
    let raw_args: Vec<String> = std::env::args().collect();
    let tuned: Option<TunedConfig> = if raw_args.iter().any(|a| a == "--tuned") {
        let path = raw_args
            .iter()
            .position(|a| a == "--tuned-config")
            .and_then(|i| raw_args.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| default_tuned_path("2mm"));
        let loaded = TunedConfig::load(&path);
        if loaded.is_none() {
            eprintln!(
                "--tuned: no parseable config at {} (run the `tune` binary first)",
                path.display()
            );
        }
        loaded
    } else {
        None
    };

    let cfg = SweepConfig::from_cli(&cli);
    // Default `--backend rustc` keeps exactly one job (and one JSONL
    // record) per table row; `both` doubles them and appends a vm
    // column.
    let backends = select_backends(&cli.backend, runner.threads, runner.reps, true);
    let mut jobs: Vec<SweepJob> = Vec::new();
    for &(_, variant) in &entries {
        let (kb, mb) = (k.clone(), machine.clone());
        let build: ProgBuild = Arc::new(move || build_variant(&kb, variant, &mb));
        for b in &backends {
            jobs.push(SweepJob {
                id: format!("table1:{}:{}", variant.name(), cli.dataset),
                kernel: k.name.to_string(),
                variant: variant.name().to_string(),
                dataset: cli.dataset.clone(),
                params: params.clone(),
                work: b.work(&k, &params, variant.name(), EmitKnobs::default(), build.clone()),
            });
        }
    }
    if let Some(tc) = &tuned {
        let (kb, mb, cand) = (k.clone(), machine.clone(), tc.candidate);
        let build: ProgBuild = Arc::new(move || build_candidate(&kb, &cand, &mb));
        for b in &backends {
            jobs.push(SweepJob {
                // The candidate id keys the binary cache and resume log, so
                // a re-tuned config re-measures instead of replaying.
                id: format!("table1:tuned:{}:{}", cli.dataset, cand.id("2mm", &cli.dataset)),
                kernel: k.name.to_string(),
                variant: "tuned".to_string(),
                dataset: cli.dataset.clone(),
                params: params.clone(),
                work: b.work(&k, &params, "tuned", cand.knobs(), build.clone()),
            });
        }
    }
    let outcomes = run_sweep(jobs, &runner, &cfg);
    let cell = |variant: &str, backend: &str| -> String {
        match outcomes
            .iter()
            .find(|o| o.variant == variant && o.backend == backend)
        {
            Some(o) => match &o.result {
                Ok(r) => format!("{}{}", gf(r.gflops), if o.degraded { "†" } else { "" }),
                Err(e) => {
                    eprintln!("{variant} [{backend}]: {e}");
                    e.cell()
                }
            },
            None => "-".into(),
        }
    };
    if backends.len() > 1 {
        t = Table::new(&["variant", "GFLOP/s (rustc)", "GFLOP/s (vm)"]);
        for (label, variant) in &entries {
            t.row(vec![
                (*label).into(),
                cell(variant.name(), "rustc"),
                cell(variant.name(), "vm"),
            ]);
        }
        if let Some(tc) = &tuned {
            t.row(vec![
                format!("tuned ({})", tc.candidate.opt.name()),
                cell("tuned", "rustc"),
                cell("tuned", "vm"),
            ]);
        }
    } else {
        let bk = backends[0].name();
        for (label, variant) in &entries {
            t.row(vec![(*label).into(), cell(variant.name(), bk)]);
        }
        if let Some(tc) = &tuned {
            t.row(vec![
                format!("tuned ({})", tc.candidate.opt.name()),
                cell("tuned", bk),
            ]);
        }
    }
    println!("{}", t.render());
    print_degraded_legend(&outcomes);
    println!("paper (Nehalem): original 2.4, PoCC 14, our flow 19 GF/s");
    println!("paper (Power7):  original 0.5, PoCC 29, our flow 62 GF/s");
}
