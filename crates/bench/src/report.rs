//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a GFLOP/s value compactly.
pub fn gf(x: f64) -> String {
    format!("{x:.2}")
}

/// Parses `--dataset <name>` / `--threads <n>` style CLI arguments with
/// defaults; unknown arguments are ignored. The sweep flags (`--jobs`
/// and friends) feed [`crate::sweep::SweepConfig::from_cli`].
pub struct Cli {
    /// Dataset name (default `small`).
    pub dataset: String,
    /// Worker threads for the *measured* kernels (default: available
    /// parallelism).
    pub threads: usize,
    /// Sweep worker threads pipelining emit→compile→run (`--jobs`,
    /// default 1 = the historical serial behavior).
    pub jobs: usize,
    /// Concurrent measured runs (`--measure-jobs`, default 1 so parallel
    /// compilation never perturbs timing).
    pub measure_jobs: usize,
    /// Per-`rustc` wall-clock budget in seconds (`--compile-timeout`).
    pub compile_timeout_s: u64,
    /// Per-run wall-clock budget in seconds (`--run-timeout`).
    pub run_timeout_s: u64,
    /// Transient-failure retries (`--retries`, default 2).
    pub retries: usize,
    /// JSONL results log path (`--results`); enables resume.
    pub results: Option<String>,
    /// Measurement backend (`--backend rustc|vm|both`, default `rustc`):
    /// `rustc` compiles and runs a standalone binary, `vm` interprets
    /// the lowered bytecode in-process, `both` measures each cell twice
    /// and cross-checks the checksums.
    pub backend: String,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let grab = |key: &str| -> Option<String> {
            args.iter()
                .position(|a| a == key)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let num = |key: &str, default: usize| -> usize {
            grab(key).and_then(|s| s.parse().ok()).unwrap_or(default)
        };
        Cli {
            dataset: grab("--dataset").unwrap_or_else(|| "small".into()),
            threads: grab("--threads")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                }),
            jobs: num("--jobs", 1),
            measure_jobs: num("--measure-jobs", 1),
            compile_timeout_s: num("--compile-timeout", 600) as u64,
            run_timeout_s: num("--run-timeout", 600) as u64,
            retries: num("--retries", 2),
            results: grab("--results"),
            backend: grab("--backend").unwrap_or_else(|| "rustc".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["kernel", "gflops"]);
        t.row(vec!["gemm".into(), "12.34".into()]);
        t.row(vec!["jacobi-2d-imper".into(), "5.6".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("kernel"));
        assert!(lines[3].trim_start().starts_with("jacobi-2d-imper"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn gf_formatting() {
        assert_eq!(gf(12.345), "12.35");
        assert_eq!(gf(0.5), "0.50");
    }
}
