//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a GFLOP/s value compactly.
pub fn gf(x: f64) -> String {
    format!("{x:.2}")
}

/// Parses `--dataset <name>` / `--threads <n>` style CLI arguments with
/// defaults; unknown arguments are ignored.
pub struct Cli {
    /// Dataset name (default `small`).
    pub dataset: String,
    /// Worker threads (default: available parallelism).
    pub threads: usize,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let grab = |key: &str| -> Option<String> {
            args.iter()
                .position(|a| a == key)
                .and_then(|i| args.get(i + 1).cloned())
        };
        Cli {
            dataset: grab("--dataset").unwrap_or_else(|| "small".into()),
            threads: grab("--threads")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["kernel", "gflops"]);
        t.row(vec!["gemm".into(), "12.34".into()]);
        t.row(vec!["jacobi-2d-imper".into(), "5.6".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("kernel"));
        assert!(lines[3].trim_start().starts_with("jacobi-2d-imper"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn gf_formatting() {
        assert_eq!(gf(12.345), "12.35");
        assert_eq!(gf(0.5), "0.50");
    }
}
