//! # polymix-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (see DESIGN.md's experiment index):
//!
//! * [`variants`] — the experimental variants of Sec. V-A (`native`,
//!   `pocc`, `pocc+vect`, `iterative`, `iterative+vect`, `poly+ast`, …)
//!   as functions from kernel to optimized [`polymix_ast::tree::Program`];
//! * [`runner`] — the source-to-source measurement pipeline: emit a
//!   standalone Rust program, compile it with `rustc -O`, run it, parse
//!   checksum / time / GFLOP/s (the reproduction's analogue of "compile
//!   with ICC and run on the testbed");
//! * [`backend`] — the measurement-backend seam (`--backend
//!   rustc|vm|both`): the rustc round trip above, or the `polymix-vm`
//!   bytecode interpreter measuring the same program in-process at a
//!   fraction of the per-cell cost, with the backend recorded in every
//!   results row;
//! * [`sweep`] — the crash-safe parallel sweep executor: a bounded
//!   worker pool pipelining emit→compile→run over (kernel, variant,
//!   dataset) jobs, with an exactly-once atomic binary cache, per-stage
//!   timeouts, transient-failure retries, and an append-only JSONL
//!   results log that makes interrupted sweeps resumable (`--jobs`,
//!   `--measure-jobs`, `--results`);
//! * [`report`] — plain-text table rendering for the `fig*`/`table*`
//!   binaries;
//! * [`autotune`] — the closed-loop tuner (`tune` binary): a
//!   measured-feedback search over fusion structure × tile sizes ×
//!   unroll factors × runtime knobs, pruned by the cache model before
//!   compilation and driven through the resumable sweep executor.
//!
//! Each binary under `src/bin/` regenerates one table or figure; run e.g.
//!
//! ```text
//! cargo run --release -p polymix-bench --bin fig7 -- --dataset small
//! ```

pub mod autotune;
pub mod backend;
pub mod figures;
pub mod microbench;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod variants;

pub use autotune::{autotune_kernel, default_tuned_path, TuneOutcome, TunedConfig};
pub use backend::{select_backends, Backend, RustcBackend, VmBackend};
pub use report::Table;
pub use runner::{compile_and_run, compile_and_run_with, RunResult, Runner};
pub use sweep::{run_sweep, JobOutcome, JobWork, SweepConfig, SweepJob};
pub use variants::{build_variant, variant_list, Variant};
