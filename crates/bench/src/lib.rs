//! # polymix-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (see DESIGN.md's experiment index):
//!
//! * [`variants`] — the experimental variants of Sec. V-A (`native`,
//!   `pocc`, `pocc+vect`, `iterative`, `iterative+vect`, `poly+ast`, …)
//!   as functions from kernel to optimized [`polymix_ast::tree::Program`];
//! * [`runner`] — the source-to-source measurement pipeline: emit a
//!   standalone Rust program, compile it with `rustc -O`, run it, parse
//!   checksum / time / GFLOP/s (the reproduction's analogue of "compile
//!   with ICC and run on the testbed");
//! * [`report`] — plain-text table rendering for the `fig*`/`table*`
//!   binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure; run e.g.
//!
//! ```text
//! cargo run --release -p polymix-bench --bin fig7 -- --dataset small
//! ```

pub mod figures;
pub mod microbench;
pub mod report;
pub mod runner;
pub mod variants;

pub use report::Table;
pub use runner::{compile_and_run, RunResult, Runner};
pub use variants::{build_variant, variant_list, Variant};
