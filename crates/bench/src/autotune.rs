//! Closed-loop autotuner over the sweep executor.
//!
//! The paper's iterative column enumerates three fixed fusion
//! structures; this module closes the loop properly: a measured-feedback
//! search over *fusion structure × tile sizes × unroll factors ×
//! runtime knobs* (pipeline publish batch, dynamic-schedule grain,
//! taskgraph-vs-wavefront lowering), driven through the crash-safe sweep
//! executor so every measured cell is cached, timed out, retried, and
//! appended to the resumable JSONL log.
//!
//! The search is budgeted in *measured cells*, so candidate triage
//! happens before anything is compiled:
//!
//! 1. **Prune** with the cache model: every candidate *structure* is
//!    simulated at the kernel's `mini` dataset through the
//!    [`polymix_cachesim`] hierarchy batch API; structures whose
//!    weighted miss cost exceeds [`PRUNE_FACTOR`]× the best are dropped
//!    unmeasured.
//! 2. **Rank** survivors with a transparent feature-based cost model
//!    ([`Features`] / [`score`]): simulated miss cost, loop depth,
//!    parallel-loop and synchronization-loop counts (the Par annotations
//!    summarize the dependence-vector shape each structure ended up
//!    with), and how well the tile footprint fits L1.
//! 3. **Screen** the most promising candidates with the in-process
//!    bytecode backend ([`crate::backend::vm_measure`]): each structure
//!    expands into its runtime-knob variants until `budget` cells have
//!    been chosen, and every chosen cell is interpreted without leaving
//!    the process — no emit, no `rustc`, no spawn.
//! 4. **Confirm** the union of the [`CONFIRM_TOP`] fastest *screened*
//!    candidates and the [`CONFIRM_TOP`] best *model-ranked* candidates
//!    (plus one native-baseline cell for the speedup denominator) at
//!    full fidelity through the rustc backend. The two rankings cover
//!    each other's blind spots: interpreted wall time sees dynamic
//!    behavior (fusion killing recomputation, guard overhead) that the
//!    static model can only estimate, while the model sees
//!    codegen-sensitive knobs (unroll factors feeding LLVM's
//!    vectorizer) that interpreter op counts are structurally blind to.
//!    When the vm cannot model a kernel at all, every chosen candidate
//!    falls back to rustc. The JSONL log keys on *(id, backend)*, so vm
//!    screens and rustc confirmations of the same candidate never
//!    cross-satisfy each other on resume.
//!
//! The winner — minimum wall time among healthy (non-degraded,
//! non-error) *rustc* cells — is committed as a one-line JSON config
//! (`results/tuned/<kernel>.json`) that `table1 --tuned` and future
//! sweeps can load. A winner that fails to beat the measured native
//! baseline is marked `beats_native: 0`, and
//! [`TunedConfig::save_guarded`] refuses to overwrite a beating config
//! with a losing one.

use crate::backend::vm_measure;
use crate::runner::{emit_source_with, EmitKnobs, Runner};
use crate::sweep::{self, run_sweep, JobOutcome, JobWork, SweepConfig, SweepJob};
use crate::variants::{build_variant, Variant};
use polymix_ast::tree::{Node, Par, Program};
use polymix_cachesim::{batch_weighted_cost, CacheConfig};
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_ir::error::PolymixError;
use polymix_pluto::{optimize_pluto, PlutoOptions, PlutoVariant};
use polymix_polybench::{kernel_by_name, Group, Kernel};
use std::path::{Path, PathBuf};

/// Structures costing more than this factor times the cheapest
/// simulated structure are pruned before compilation.
pub const PRUNE_FACTOR: f64 = 2.0;

/// Per-level miss costs (cycles-ish) weighting the simulated hierarchy:
/// L1 miss, L2 miss. Only ratios matter for pruning/ranking.
pub const LEVEL_COSTS: [f64; 2] = [1.0, 4.0];

/// How many candidates *per ranking* (vm screen, cache model) are
/// confirmed at full rustc fidelity; the confirmation set is the union
/// of both prefixes. Small on purpose: both rankings already ordered
/// the whole budget, so confirmation only needs to absorb their
/// respective blind spots around the top.
pub const CONFIRM_TOP: usize = 3;

/// The optimizer family of a candidate: which transformation flow and
/// which fusion structure it enumerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptFamily {
    /// The paper's poly+AST flow with Algorithm 5 fusion.
    PolyAstFuse,
    /// poly+AST with inter-SCC fusion disabled.
    PolyAstNoFuse,
    /// Pluto smart-fuse (the `pocc` baseline).
    PlutoPocc,
    /// Pluto maximal fusion.
    PlutoMaxFuse,
    /// Pluto no fusion.
    PlutoNoFuse,
}

impl OptFamily {
    /// All families the search enumerates.
    pub fn all() -> [OptFamily; 5] {
        [
            OptFamily::PolyAstFuse,
            OptFamily::PolyAstNoFuse,
            OptFamily::PlutoPocc,
            OptFamily::PlutoMaxFuse,
            OptFamily::PlutoNoFuse,
        ]
    }

    /// Stable config-file name.
    pub fn name(self) -> &'static str {
        match self {
            OptFamily::PolyAstFuse => "polyast-fuse",
            OptFamily::PolyAstNoFuse => "polyast-nofuse",
            OptFamily::PlutoPocc => "pluto-pocc",
            OptFamily::PlutoMaxFuse => "pluto-maxfuse",
            OptFamily::PlutoNoFuse => "pluto-nofuse",
        }
    }

    /// Inverse of [`OptFamily::name`].
    pub fn parse(s: &str) -> Option<OptFamily> {
        OptFamily::all().into_iter().find(|o| o.name() == s)
    }
}

/// One point of the search space: a transformation structure plus the
/// runtime knobs threaded into the emitted program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Optimizer family (fusion structure enumeration).
    pub opt: OptFamily,
    /// Rectangular tile size.
    pub tile: i64,
    /// Outer (time) tile size for pipeline-group kernels; equals `tile`
    /// elsewhere.
    pub time_tile: i64,
    /// Unroll-and-jam factors `(outer, inner)`.
    pub unroll: (i64, i64),
    /// Pipeline publish batch override (`None` = emitter's automatic).
    pub pipeline_batch: Option<i64>,
    /// Dynamic-schedule chunk grain override (`None` = automatic).
    pub dyn_grain: Option<i64>,
    /// Lower wavefront nests through the counter-graph runtime.
    pub taskgraph: bool,
}

impl Candidate {
    /// Stable sweep-job id: the resume log keys on this, so it must
    /// encode every knob.
    pub fn id(&self, kernel: &str, dataset: &str) -> String {
        let pb = self
            .pipeline_batch
            .map_or("auto".to_string(), |b| b.to_string());
        let dg = self
            .dyn_grain
            .map_or("auto".to_string(), |g| g.to_string());
        format!(
            "tune:{kernel}:{dataset}:{}:t{}:tt{}:u{}x{}:pb{pb}:dg{dg}:tg{}",
            self.opt.name(),
            self.tile,
            self.time_tile,
            self.unroll.0,
            self.unroll.1,
            u8::from(self.taskgraph),
        )
    }

    /// The emitted-program knobs this candidate requests.
    pub fn knobs(&self) -> EmitKnobs {
        EmitKnobs {
            pipeline_batch: self.pipeline_batch,
            dyn_grain: self.dyn_grain,
            taskgraph: self.taskgraph,
            vect: false,
        }
    }

    /// The structure key: candidates sharing it run the *same* program
    /// and differ only in runtime knobs, so they share one simulation.
    fn structure(&self) -> (OptFamily, i64, i64, (i64, i64)) {
        (self.opt, self.tile, self.time_tile, self.unroll)
    }
}

/// Builds the transformed program for one candidate structure.
pub fn build_candidate(
    kernel: &Kernel,
    c: &Candidate,
    machine: &Machine,
) -> Result<Program, PolymixError> {
    let scop = (kernel.build)();
    match c.opt {
        OptFamily::PolyAstFuse | OptFamily::PolyAstNoFuse => optimize_poly_ast(
            &scop,
            &PolyAstOptions {
                machine: machine.clone(),
                tile: c.tile,
                time_tile: c.time_tile,
                tiling: true,
                parallelize: true,
                doall_only: false,
                unroll: c.unroll,
                fusion: c.opt == OptFamily::PolyAstFuse,
            },
        ),
        OptFamily::PlutoPocc | OptFamily::PlutoMaxFuse | OptFamily::PlutoNoFuse => {
            let pv = match c.opt {
                OptFamily::PlutoMaxFuse => PlutoVariant::MaxFuse,
                OptFamily::PlutoNoFuse => PlutoVariant::NoFuse,
                _ => PlutoVariant::Pocc,
            };
            optimize_pluto(
                &scop,
                &PlutoOptions {
                    variant: pv,
                    tile: c.tile,
                    time_tile: c.time_tile,
                    tiling: true,
                    unroll: c.unroll,
                },
            )
        }
    }
}

/// Enumerates the full candidate space for a kernel group, structure
/// knobs crossed with runtime knobs. Deterministic order: the search
/// (and therefore the resume log) depends on it.
pub fn candidate_space(group: Group) -> Vec<Candidate> {
    let tiles: &[i64] = &[16, 32, 64];
    let time_tiles: &[i64] = if group == Group::Pipeline {
        &[4, 5, 8]
    } else {
        &[]
    };
    let unrolls: &[(i64, i64)] = &[(1, 1), (2, 2)];
    let mut out = Vec::new();
    for opt in OptFamily::all() {
        for &tile in tiles {
            let tts: Vec<i64> = if time_tiles.is_empty() {
                vec![tile]
            } else {
                time_tiles.to_vec()
            };
            for tt in tts {
                for &unroll in unrolls {
                    let base = Candidate {
                        opt,
                        tile,
                        time_tile: tt,
                        unroll,
                        pipeline_batch: None,
                        dyn_grain: None,
                        taskgraph: false,
                    };
                    out.extend(runtime_expansions(&base, group));
                }
            }
        }
    }
    out
}

/// Runtime-knob variants of one structure, defaults first. Kept small:
/// runtime knobs don't change the memory trace, so measuring more than
/// a handful per structure wastes budget the structure search needs.
fn runtime_expansions(base: &Candidate, group: Group) -> Vec<Candidate> {
    let mut out = vec![*base];
    if group == Group::Pipeline {
        out.push(Candidate {
            pipeline_batch: Some(1),
            ..*base
        });
        out.push(Candidate {
            pipeline_batch: Some(8),
            ..*base
        });
        // The counter-graph lowering only applies to the wavefront nests
        // the Pluto families produce for time-tiled stencils.
        if matches!(
            base.opt,
            OptFamily::PlutoPocc | OptFamily::PlutoMaxFuse | OptFamily::PlutoNoFuse
        ) {
            out.push(Candidate {
                taskgraph: true,
                ..*base
            });
        }
    }
    out.push(Candidate {
        dyn_grain: Some(4),
        ..*base
    });
    out
}

/// The transparent ranking features of one candidate structure. Every
/// term is printed by `tune` in verbose mode and documented in
/// EXPERIMENTS.md — no opaque learned weights.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Features {
    /// Weighted miss cost from the cache-hierarchy simulation at `mini`.
    pub sim_cost: f64,
    /// Maximum loop depth of the transformed program.
    pub depth: usize,
    /// Count of asynchronous parallel loops (doall + reduction).
    pub par_loops: usize,
    /// Count of synchronization-bearing loops (pipeline + wavefront) —
    /// the Par annotations summarize the dependence-vector shape the
    /// structure ended up with (forward-only ⇒ pipeline, diagonal ⇒
    /// wavefront).
    pub sync_loops: usize,
    /// `|ln(tile footprint / L1 capacity)|`: 0 when the working tile
    /// exactly fills L1, growing either way.
    pub tile_fit: f64,
}

/// Extracts ranking features from a transformed program.
pub fn features(prog: &Program, c: &Candidate, sim_cost: f64) -> Features {
    let mut f = Features {
        sim_cost,
        ..Features::default()
    };
    fn walk(node: &Node, depth: usize, f: &mut Features) {
        match node {
            Node::Seq(xs) => xs.iter().for_each(|x| walk(x, depth, f)),
            Node::Guard(_, b) => walk(b, depth, f),
            Node::Loop(l) => {
                f.depth = f.depth.max(depth + 1);
                match l.par {
                    Par::Doall | Par::Reduction => f.par_loops += 1,
                    Par::Pipeline | Par::Wavefront => f.sync_loops += 1,
                    Par::Seq => {}
                }
                walk(&l.body, depth + 1, f);
            }
            Node::Stmt(_) => {}
        }
    }
    walk(&prog.body, 0, &mut f);
    // Working-set proxy: a square tile of f64 per array actively tiled.
    let l1 = CacheConfig::l1_nehalem().capacity_bytes as f64;
    let footprint = (c.tile * c.tile * 8).max(1) as f64;
    f.tile_fit = (footprint / l1).ln().abs();
    f
}

/// Scalar rank (lower = more promising). Weights chosen so the
/// simulated miss cost dominates and the structural terms break ties:
/// `cost/min + 0.05·depth + 0.15·sync − 0.05·par + 0.10·tile_fit`.
pub fn score(f: &Features, min_cost: f64) -> f64 {
    let cost = if min_cost > 0.0 {
        f.sim_cost / min_cost
    } else {
        1.0
    };
    cost + 0.05 * f.depth as f64 + 0.15 * f.sync_loops as f64 - 0.05 * f.par_loops as f64
        + 0.10 * f.tile_fit
}

/// A committed tuned configuration: the winning candidate plus its
/// measurement, serialized as one flat JSON line (the schema is
/// documented in EXPERIMENTS.md).
#[derive(Clone, Debug, PartialEq)]
pub struct TunedConfig {
    /// Kernel name.
    pub kernel: String,
    /// Dataset the search measured at.
    pub dataset: String,
    /// Worker threads the search measured with.
    pub threads: usize,
    /// The winning candidate.
    pub candidate: Candidate,
    /// Winning wall time (best-of-reps), seconds.
    pub time_s: f64,
    /// Winning GFLOP/s.
    pub gflops: f64,
    /// Native-baseline wall time from the same search, seconds.
    pub native_time_s: f64,
    /// `native_time_s / time_s`.
    pub speedup_vs_native: f64,
    /// Whether the winner actually beat the measured native baseline.
    /// A losing config is still recorded (the search's honest answer)
    /// but marked, and [`TunedConfig::save_guarded`] will never replace
    /// a beating config with it.
    pub beats_native: bool,
}

impl TunedConfig {
    /// One-line JSON. Option knobs are *omitted* when `None` (absent key
    /// = automatic), `pool` is recorded for schema completeness —
    /// emitted standalone kernels always use scoped spawning, so the
    /// search holds it at `auto`.
    pub fn to_json(&self) -> String {
        let mut knobs = String::new();
        if let Some(b) = self.candidate.pipeline_batch {
            knobs.push_str(&format!(",\"pipeline_batch\":{b}"));
        }
        if let Some(g) = self.candidate.dyn_grain {
            knobs.push_str(&format!(",\"dyn_grain\":{g}"));
        }
        format!(
            "{{\"kernel\":\"{}\",\"dataset\":\"{}\",\"threads\":{},\"opt\":\"{}\",\
             \"tile\":{},\"time_tile\":{},\"unroll\":[{},{}]{knobs},\"taskgraph\":{},\
             \"pool\":\"auto\",\"time_s\":{:e},\"gflops\":{:e},\"native_time_s\":{:e},\
             \"speedup_vs_native\":{:e},\"beats_native\":{}}}",
            sweep::json_escape(&self.kernel),
            sweep::json_escape(&self.dataset),
            self.threads,
            self.candidate.opt.name(),
            self.candidate.tile,
            self.candidate.time_tile,
            self.candidate.unroll.0,
            self.candidate.unroll.1,
            u8::from(self.candidate.taskgraph),
            self.time_s,
            self.gflops,
            self.native_time_s,
            self.speedup_vs_native,
            u8::from(self.beats_native),
        )
    }

    /// Parses [`TunedConfig::to_json`] output; `None` on any violation.
    pub fn from_json(line: &str) -> Option<TunedConfig> {
        let rec = sweep::parse_record(line)?;
        let unroll = rec.arr_field("unroll")?;
        if unroll.len() != 2 {
            return None;
        }
        let candidate = Candidate {
            opt: OptFamily::parse(rec.str_field("opt")?)?,
            tile: rec.num_field("tile")? as i64,
            time_tile: rec.num_field("time_tile")? as i64,
            unroll: (unroll[0] as i64, unroll[1] as i64),
            pipeline_batch: rec.num_field("pipeline_batch").map(|b| b as i64),
            dyn_grain: rec.num_field("dyn_grain").map(|g| g as i64),
            taskgraph: rec.num_field("taskgraph") == Some(1.0),
        };
        let speedup_vs_native = rec.num_field("speedup_vs_native")?;
        Some(TunedConfig {
            kernel: rec.str_field("kernel")?.to_string(),
            dataset: rec.str_field("dataset")?.to_string(),
            threads: rec.num_field("threads")? as usize,
            candidate,
            time_s: rec.num_field("time_s")?,
            gflops: rec.num_field("gflops")?,
            native_time_s: rec.num_field("native_time_s")?,
            speedup_vs_native,
            // Configs written before the marker existed derive it from
            // the recorded speedup.
            beats_native: rec
                .num_field("beats_native")
                .map(|v| v == 1.0)
                .unwrap_or(speedup_vs_native >= 1.0),
        })
    }

    /// Writes the config (one line + newline) to `path`, creating parent
    /// directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Loads a config written by [`TunedConfig::save`].
    pub fn load(path: &Path) -> Option<TunedConfig> {
        let text = std::fs::read_to_string(path).ok()?;
        TunedConfig::from_json(text.lines().next()?)
    }

    /// The regression guard on the committed-config directory: a config
    /// that beats native always commits, but a *losing* config never
    /// replaces one that beats native — a tuned sweep loading the file
    /// would silently regress below the untransformed baseline. Returns
    /// whether the config was written.
    pub fn save_guarded(&self, path: &Path) -> std::io::Result<bool> {
        if !self.beats_native {
            if let Some(existing) = TunedConfig::load(path) {
                if existing.beats_native {
                    return Ok(false);
                }
            }
        }
        self.save(path)?;
        Ok(true)
    }
}

/// Conventional location of a kernel's committed tuned config.
pub fn default_tuned_path(kernel: &str) -> PathBuf {
    PathBuf::from("results/tuned").join(format!("{kernel}.json"))
}

/// What a search did, for reporting and tests.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The committed winner.
    pub config: TunedConfig,
    /// Candidate cells measured fresh this invocation (excludes the
    /// native baseline).
    pub measured: usize,
    /// Cells replayed from the resume log (baseline included).
    pub resumed: usize,
    /// Structures dropped by the cache-model prune.
    pub pruned: usize,
    /// Total candidates in the enumerated space.
    pub total_candidates: usize,
}

/// Runs the budgeted search for one kernel and returns the winner
/// (without writing it anywhere; callers commit via
/// [`TunedConfig::save`]).
///
/// Deterministic given a fixed results log: candidate enumeration,
/// pruning and ranking depend only on the simulated model, and measured
/// cells replay from the log by id — so re-running an interrupted search
/// with the same `cfg.results_path` re-measures nothing it already
/// recorded and converges to the same configuration.
pub fn autotune_kernel(
    kernel_name: &str,
    dataset: &str,
    budget: usize,
    runner: &Runner,
    cfg: &SweepConfig,
    machine: &Machine,
) -> Result<TuneOutcome, PolymixError> {
    let kernel = kernel_by_name(kernel_name)
        .ok_or_else(|| PolymixError::build(kernel_name, "unknown kernel"))?;
    let params = kernel.dataset(dataset).params;
    let mini = kernel.dataset("mini").params;
    let space = candidate_space(kernel.group);
    let total_candidates = space.len();

    // --- Stage 1: simulate each distinct *structure* once at mini. ---
    let mut structures: Vec<(OptFamily, i64, i64, (i64, i64))> = Vec::new();
    for c in &space {
        if !structures.contains(&c.structure()) {
            structures.push(c.structure());
        }
    }
    let mut progs: Vec<Option<Program>> = Vec::with_capacity(structures.len());
    for &(opt, tile, time_tile, unroll) in &structures {
        let c = Candidate {
            opt,
            tile,
            time_tile,
            unroll,
            pipeline_batch: None,
            dyn_grain: None,
            taskgraph: false,
        };
        progs.push(build_candidate(&kernel, &c, machine).ok());
    }
    let built: Vec<&Program> = progs.iter().flatten().collect();
    let configs = [CacheConfig::l1_nehalem(), CacheConfig::l2_nehalem()];
    let costs = batch_weighted_cost(&built, &mini, &configs, &LEVEL_COSTS);
    // Re-align costs with the (sparse) structure list.
    let mut cost_iter = costs.into_iter();
    let struct_costs: Vec<Option<f64>> = progs
        .iter()
        .map(|p| p.as_ref().map(|_| cost_iter.next().unwrap_or(f64::MAX)))
        .collect();
    let min_cost = struct_costs
        .iter()
        .flatten()
        .copied()
        .fold(f64::MAX, f64::min);

    // --- Stage 2: prune and rank structures. ---
    let mut ranked: Vec<(usize, f64)> = Vec::new(); // (structure idx, score)
    let mut pruned = 0usize;
    for (si, cost) in struct_costs.iter().enumerate() {
        let (Some(cost), Some(prog)) = (cost, &progs[si]) else {
            pruned += 1; // structures that failed to build are "pruned"
            continue;
        };
        if min_cost > 0.0 && *cost > PRUNE_FACTOR * min_cost {
            pruned += 1;
            continue;
        }
        let (opt, tile, time_tile, unroll) = structures[si];
        let c = Candidate {
            opt,
            tile,
            time_tile,
            unroll,
            pipeline_batch: None,
            dyn_grain: None,
            taskgraph: false,
        };
        let f = features(prog, &c, *cost);
        ranked.push((si, score(&f, min_cost)));
    }
    // Stable sort: ties keep enumeration order, keeping the search
    // deterministic for the resume log.
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    // --- Stage 3: expand the best structures into measured cells. ---
    let budget = budget.max(1);
    let mut chosen: Vec<Candidate> = Vec::new();
    'fill: for &(si, _) in &ranked {
        let (opt, tile, time_tile, unroll) = structures[si];
        let base = Candidate {
            opt,
            tile,
            time_tile,
            unroll,
            pipeline_batch: None,
            dyn_grain: None,
            taskgraph: false,
        };
        for c in runtime_expansions(&base, kernel.group) {
            if chosen.len() >= budget {
                break 'fill;
            }
            chosen.push(c);
        }
    }

    // --- Stage 3b: screen every chosen candidate in-process. Same job
    // ids as the rustc confirmations below: the JSONL log and resume
    // lookups key on (id, backend), so the two fidelities never
    // cross-satisfy each other.
    let vm_jobs: Vec<SweepJob> = chosen
        .iter()
        .map(|c| {
            let (kc, mc, pc, cc) = (kernel.clone(), machine.clone(), params.clone(), *c);
            let (threads, reps) = (runner.threads, runner.reps);
            SweepJob {
                id: c.id(kernel_name, dataset),
                kernel: kernel_name.to_string(),
                variant: c.opt.name().to_string(),
                dataset: dataset.to_string(),
                params: params.clone(),
                work: JobWork::InProcess {
                    unmodeled_knobs: crate::backend::vm_unmodeled_tags(&c.knobs()),
                    run: Box::new(move || {
                        let prog = build_candidate(&kc, &cc, &mc)?;
                        vm_measure(&kc, &prog, &pc, cc.opt.name(), threads, reps, cc.knobs())
                    }),
                },
            }
        })
        .collect();
    let vm_outcomes = run_sweep(vm_jobs, runner, cfg);
    // Rank the healthy screens; run_sweep returns submission order, so
    // index i is chosen[i].
    let mut screened: Vec<(usize, f64)> = vm_outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.result.as_ref().ok().map(|r| (i, r.time_s)))
        .collect();
    screened.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let confirm: Vec<usize> = if screened.is_empty() {
        // The vm cannot model this kernel's candidates (lowering
        // rejected them all): confirm everything at full fidelity.
        (0..chosen.len()).collect()
    } else {
        // Union of the two rankings' prefixes. `chosen` is already in
        // model order (most promising first), so its prefix *is* the
        // model's top picks; the screened prefix adds the vm's. Kept in
        // ascending index order so the rustc job sequence — and with it
        // the resume log — does not depend on interpreter timing noise
        // between runs.
        let mut set: Vec<usize> = screened
            .iter()
            .take(CONFIRM_TOP)
            .map(|&(i, _)| i)
            .chain(0..CONFIRM_TOP.min(chosen.len()))
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    };

    // --- Stage 4: confirm the screened front-runners with rustc. ---
    let native_id = format!("tune:{kernel_name}:{dataset}:native");
    let mut jobs: Vec<SweepJob> = Vec::with_capacity(confirm.len() + 1);
    {
        let (kc, pc) = (kernel.clone(), params.clone());
        let (threads, reps) = (runner.threads, runner.reps);
        jobs.push(SweepJob {
            id: native_id.clone(),
            kernel: kernel_name.to_string(),
            variant: "native".to_string(),
            dataset: dataset.to_string(),
            params: params.clone(),
            work: JobWork::Rustc {
                source: Box::new(move || {
                    let prog = build_variant(&kc, Variant::Native, &Machine::host())?;
                    Ok(emit_source_with(
                        &kc,
                        &prog,
                        &pc,
                        threads,
                        reps,
                        EmitKnobs::default(),
                    ))
                }),
                seq_source: None,
            },
        });
    }
    for &ci in &confirm {
        let c = &chosen[ci];
        let (kc, mc, pc, cc) = (kernel.clone(), machine.clone(), params.clone(), *c);
        let (threads, reps) = (runner.threads, runner.reps);
        jobs.push(SweepJob {
            id: c.id(kernel_name, dataset),
            kernel: kernel_name.to_string(),
            variant: c.opt.name().to_string(),
            dataset: dataset.to_string(),
            params: params.clone(),
            work: JobWork::Rustc {
                source: Box::new(move || {
                    let prog = build_candidate(&kc, &cc, &mc)?;
                    Ok(emit_source_with(&kc, &prog, &pc, threads, reps, cc.knobs()))
                }),
                // No sequential fallback: a degraded cell would not measure
                // the candidate's parallel structure, so it must not win.
                seq_source: None,
            },
        });
    }
    let rustc_outcomes = run_sweep(jobs, runner, cfg);

    // --- Stage 5: pick the winner — min wall time among healthy
    // *full-fidelity* cells only; vm screens never decide directly.
    let native = rustc_outcomes
        .iter()
        .find(|o| o.id == native_id)
        .and_then(|o| o.result.as_ref().ok())
        .ok_or_else(|| {
            PolymixError::runner(kernel_name, "native", "native baseline failed to measure")
        })?;
    let healthy = |o: &&JobOutcome| o.id != native_id && !o.degraded && o.result.is_ok();
    let winner = rustc_outcomes
        .iter()
        .filter(healthy)
        .min_by(|a, b| {
            let (ta, tb) = (
                a.result.as_ref().map(|r| r.time_s).unwrap_or(f64::MAX),
                b.result.as_ref().map(|r| r.time_s).unwrap_or(f64::MAX),
            );
            ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or_else(|| {
            PolymixError::runner(kernel_name, "tune", "no candidate measured successfully")
        })?;
    let wi = chosen
        .iter()
        .position(|c| c.id(kernel_name, dataset) == winner.id)
        .ok_or_else(|| PolymixError::runner(kernel_name, "tune", "winner id out of space"))?;
    let Ok(wr) = winner.result.clone() else {
        return Err(PolymixError::runner(
            kernel_name,
            "tune",
            "winner lost its measurement",
        ));
    };
    let native = native.clone();
    let outcomes: Vec<JobOutcome> = vm_outcomes.into_iter().chain(rustc_outcomes).collect();
    let measured = outcomes.iter().filter(|o| !o.resumed).count()
        - usize::from(outcomes.iter().any(|o| o.id == native_id && !o.resumed));
    let resumed = outcomes.iter().filter(|o| o.resumed).count();
    let speedup_vs_native = if wr.time_s > 0.0 {
        native.time_s / wr.time_s
    } else {
        0.0
    };
    Ok(TuneOutcome {
        config: TunedConfig {
            kernel: kernel_name.to_string(),
            dataset: dataset.to_string(),
            threads: runner.threads,
            candidate: chosen[wi],
            time_s: wr.time_s,
            gflops: wr.gflops,
            native_time_s: native.time_s,
            speedup_vs_native,
            beats_native: speedup_vs_native >= 1.0,
        },
        measured,
        resumed,
        pruned,
        total_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_candidate() -> Candidate {
        Candidate {
            opt: OptFamily::PolyAstFuse,
            tile: 32,
            time_tile: 5,
            unroll: (2, 2),
            pipeline_batch: Some(8),
            dyn_grain: None,
            taskgraph: true,
        }
    }

    #[test]
    fn candidate_ids_encode_every_knob() {
        let c = sample_candidate();
        let id = c.id("jacobi-2d-imper", "small");
        assert_eq!(
            id,
            "tune:jacobi-2d-imper:small:polyast-fuse:t32:tt5:u2x2:pb8:dgauto:tg1"
        );
        // Two candidates differing only in a runtime knob get distinct
        // ids — the resume log must never alias them.
        let c2 = Candidate {
            pipeline_batch: Some(1),
            ..c
        };
        assert_ne!(id, c2.id("jacobi-2d-imper", "small"));
    }

    #[test]
    fn tuned_config_json_roundtrip() {
        let cfg = TunedConfig {
            kernel: "gemm".into(),
            dataset: "small".into(),
            threads: 8,
            candidate: sample_candidate(),
            time_s: 0.0042,
            gflops: 21.5,
            native_time_s: 0.02,
            speedup_vs_native: 4.76,
            beats_native: true,
        };
        let line = cfg.to_json();
        let back = TunedConfig::from_json(&line).expect("parses");
        assert_eq!(back, cfg);
        // None knobs are omitted keys and round-trip as None.
        let mut cfg2 = cfg.clone();
        cfg2.candidate.pipeline_batch = None;
        cfg2.candidate.taskgraph = false;
        let line2 = cfg2.to_json();
        assert!(!line2.contains("pipeline_batch"), "{line2}");
        let back2 = TunedConfig::from_json(&line2).expect("parses");
        assert_eq!(back2.candidate.pipeline_batch, None);
        assert!(!back2.candidate.taskgraph);
    }

    #[test]
    fn tuned_config_save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("polymix-tuned-{}", std::process::id()));
        let path = dir.join("gemm.json");
        let cfg = TunedConfig {
            kernel: "gemm".into(),
            dataset: "small".into(),
            threads: 4,
            candidate: sample_candidate(),
            time_s: 0.001,
            gflops: 10.0,
            native_time_s: 0.004,
            speedup_vs_native: 4.0,
            beats_native: true,
        };
        cfg.save(&path).expect("save creates parents");
        assert_eq!(TunedConfig::load(&path), Some(cfg));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression (the shipped jacobi-2d config once recorded a 0.34×
    /// "winner"): a losing config must not replace a committed config
    /// that beats native, while losing-over-losing and
    /// beating-over-anything still commit.
    #[test]
    fn save_guarded_refuses_to_regress_a_beating_config() {
        let dir = std::env::temp_dir().join(format!("polymix-guard-{}", std::process::id()));
        let path = dir.join("gemm.json");
        let winning = TunedConfig {
            kernel: "gemm".into(),
            dataset: "small".into(),
            threads: 4,
            candidate: sample_candidate(),
            time_s: 0.001,
            gflops: 10.0,
            native_time_s: 0.004,
            speedup_vs_native: 4.0,
            beats_native: true,
        };
        let losing = TunedConfig {
            time_s: 0.012,
            gflops: 0.8,
            speedup_vs_native: 0.34,
            beats_native: false,
            ..winning.clone()
        };
        // A losing config commits onto an empty slot (marked, not hidden).
        assert!(losing.save_guarded(&path).expect("io"));
        assert_eq!(TunedConfig::load(&path), Some(losing.clone()));
        // A beating config replaces it.
        assert!(winning.save_guarded(&path).expect("io"));
        assert_eq!(TunedConfig::load(&path), Some(winning.clone()));
        // The losing config must now be refused.
        assert!(!losing.save_guarded(&path).expect("io"));
        assert_eq!(TunedConfig::load(&path), Some(winning));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pre-marker config lines (no `beats_native` key) derive the flag
    /// from the recorded speedup.
    #[test]
    fn legacy_configs_derive_beats_native_from_speedup() {
        let cfg = TunedConfig {
            kernel: "gemm".into(),
            dataset: "small".into(),
            threads: 4,
            candidate: sample_candidate(),
            time_s: 0.001,
            gflops: 10.0,
            native_time_s: 0.004,
            speedup_vs_native: 0.34,
            beats_native: false,
        };
        let line = cfg.to_json().replace(",\"beats_native\":0", "");
        let back = TunedConfig::from_json(&line).expect("parses");
        assert!(!back.beats_native, "0.34x must derive as losing");
        let line2 = cfg
            .to_json()
            .replace(",\"beats_native\":0", "")
            .replace("\"speedup_vs_native\":3.4e-1", "\"speedup_vs_native\":2.5e0");
        let back2 = TunedConfig::from_json(&line2).expect("parses");
        assert!(back2.beats_native, "2.5x must derive as beating");
    }

    #[test]
    fn candidate_space_is_deterministic_and_group_sensitive() {
        let a = candidate_space(Group::Doall);
        let b = candidate_space(Group::Doall);
        assert_eq!(a, b, "enumeration must be stable for the resume log");
        // Pipeline-group spaces add time tiles, batches and taskgraph.
        let p = candidate_space(Group::Pipeline);
        assert!(p.len() > a.len());
        assert!(p.iter().any(|c| c.taskgraph));
        assert!(p.iter().any(|c| c.pipeline_batch == Some(8)));
        assert!(a.iter().all(|c| !c.taskgraph), "doall: no wavefronts to lower");
        // Ids are unique across the space.
        let mut ids: Vec<String> = p.iter().map(|c| c.id("k", "d")).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), p.len(), "ids must not alias");
    }

    #[test]
    fn score_prefers_cheap_shallow_parallel_structures() {
        let cheap = Features {
            sim_cost: 100.0,
            depth: 3,
            par_loops: 2,
            sync_loops: 0,
            tile_fit: 0.1,
        };
        let expensive = Features {
            sim_cost: 190.0,
            depth: 3,
            par_loops: 2,
            sync_loops: 0,
            tile_fit: 0.1,
        };
        assert!(score(&cheap, 100.0) < score(&expensive, 100.0));
        let synchronous = Features {
            sync_loops: 2,
            par_loops: 0,
            ..cheap
        };
        assert!(score(&cheap, 100.0) < score(&synchronous, 100.0));
    }

    #[test]
    fn opt_family_names_roundtrip() {
        for o in OptFamily::all() {
            assert_eq!(OptFamily::parse(o.name()), Some(o));
        }
        assert_eq!(OptFamily::parse("nonsense"), None);
    }
}
