//! The experimental variants of Sec. V-A.

use polymix_ast::tree::Program;
use polymix_codegen::from_poly::original_program;
use polymix_core::error::PolymixError;
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_pluto::{optimize_pluto, PlutoOptions, PlutoVariant};
use polymix_polybench::{Group, Kernel};

/// One experimental variant (paper Sec. V-A names in comments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `icc-auto` / `xlc-auto` analogue: the reference loop nest compiled
    /// by the native compiler (rustc/LLVM; no auto-parallelizer).
    Native,
    /// `pocc`: Pluto smart-fuse + tiling + doall-or-wavefront.
    Pocc,
    /// `pocc+vect`: plus the intra-tile vectorization post-pass.
    PoccVect,
    /// `iterative`: best of the enumerated fusion structures (the
    /// harness runs all three and reports the best, mirroring PoCC's
    /// auto-tuning).
    IterativeMax,
    /// `iterative` member: no fusion.
    IterativeNo,
    /// `poly+ast`: the paper's flow.
    PolyAst,
    /// `poly+ast` restricted to doall parallelism (Fig. 5 comparison).
    PolyAstDoallOnly,
    /// Pluto with maximal fusion (the Fig. 2 structure for Table I).
    PlutoMaxFuse,
}

impl Variant {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Native => "native",
            Variant::Pocc => "pocc",
            Variant::PoccVect => "pocc+vect",
            Variant::IterativeMax => "iter(max)",
            Variant::IterativeNo => "iter(no)",
            Variant::PolyAst => "poly+ast",
            Variant::PolyAstDoallOnly => "poly+ast(doall)",
            Variant::PlutoMaxFuse => "pluto-maxfuse",
        }
    }
}

/// The variant set of Figs. 7–9 (iterative is reported as the max over
/// its members by the figure binaries).
pub fn variant_list() -> Vec<Variant> {
    vec![
        Variant::Native,
        Variant::Pocc,
        Variant::PoccVect,
        Variant::IterativeMax,
        Variant::IterativeNo,
        Variant::PolyAst,
    ]
}

/// Builds the optimized program for `kernel` under `variant`.
///
/// Tile sizes follow the paper: 32 everywhere, 5 for the outer time tile
/// of the pipeline group; register tiling (2, 2) is applied by the `vect`
/// and `poly+ast` configurations (the harness sweeps more factors in the
/// `ablation_unroll` experiment).
///
/// Both optimizers degrade gracefully inside (fusion fallback chain,
/// best-effort AST stages); an `Err` means the kernel could not be
/// compiled at all and the sweep should record it and continue.
pub fn build_variant(
    kernel: &Kernel,
    variant: Variant,
    machine: &Machine,
) -> Result<Program, PolymixError> {
    let scop = (kernel.build)();
    let time_tile = if kernel.group == Group::Pipeline { 5 } else { 32 };
    match variant {
        Variant::Native => original_program(&scop),
        Variant::Pocc
        | Variant::PoccVect
        | Variant::IterativeMax
        | Variant::IterativeNo
        | Variant::PlutoMaxFuse => {
            let pv = match variant {
                Variant::PoccVect => PlutoVariant::PoccVect,
                Variant::IterativeMax | Variant::PlutoMaxFuse => PlutoVariant::MaxFuse,
                Variant::IterativeNo => PlutoVariant::NoFuse,
                _ => PlutoVariant::Pocc,
            };
            optimize_pluto(
                &scop,
                &PlutoOptions {
                    variant: pv,
                    tile: 32,
                    time_tile,
                    tiling: true,
                    unroll: if variant == Variant::PoccVect {
                        (2, 2)
                    } else {
                        (1, 1)
                    },
                },
            )
        }
        Variant::PolyAst | Variant::PolyAstDoallOnly => optimize_poly_ast(
            &scop,
            &PolyAstOptions {
                machine: machine.clone(),
                tile: 32,
                time_tile,
                tiling: true,
                parallelize: true,
                doall_only: variant == Variant::PolyAstDoallOnly,
                // The paper tunes unroll-and-jam factors empirically over
                // {1,2,4,6,8}; on this reproduction's LLVM backend the
                // guarded source-level unroll defeats auto-vectorization,
                // so the tuned best is no unrolling (see the
                // `ablation_unroll` experiment and EXPERIMENTS.md).
                unroll: (1, 1),
                fusion: true,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ast::interp::execute;
    use polymix_polybench::kernel_by_name;

    #[test]
    fn all_variants_build_and_match_reference_on_gemm() {
        let k = kernel_by_name("gemm").unwrap();
        let scop = (k.build)();
        let params = k.dataset("mini").params;
        let mut expected = k.fresh_arrays(&scop, &params);
        (k.reference)(&params, &mut expected);
        let m = Machine::host();
        for v in [
            Variant::Native,
            Variant::Pocc,
            Variant::PoccVect,
            Variant::IterativeMax,
            Variant::IterativeNo,
            Variant::PolyAst,
            Variant::PolyAstDoallOnly,
            Variant::PlutoMaxFuse,
        ] {
            let prog = build_variant(&k, v, &m).expect("variant builds");
            let mut actual = k.fresh_arrays(&scop, &params);
            execute(&prog, &params, &mut actual);
            assert_eq!(actual[0], expected[0], "variant {v:?}");
        }
    }

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(Variant::Pocc.name(), "pocc");
        assert_eq!(Variant::PolyAst.name(), "poly+ast");
        assert_eq!(variant_list().len(), 6);
    }
}
