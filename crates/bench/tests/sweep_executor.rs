//! Crash-safety tests for the sweep executor and the binary cache under
//! contention: exactly-once compiles, truncated-cache recovery, run
//! timeouts that kill runaway kernels, and JSONL resume.
//!
//! These compile tiny real programs with `rustc` (no `-O`, sub-second
//! each) so they exercise the exact process-handling paths the
//! measurement harness uses.

use polymix_bench::runner::{compile_and_run, ensure_compiled, run_binary, RunResult, Runner};
use polymix_bench::sweep::{run_sweep, JobWork, SweepConfig, SweepJob};
use polymix_ir::error::Stage;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("polymix-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmp work dir");
    d
}

/// A well-formed measurement program printing the three expected keys.
fn ok_src(tag: u32) -> String {
    format!(
        "fn main() {{\n    println!(\"checksum: {tag}.5\");\n    \
         println!(\"time_s: 0.001\");\n    println!(\"gflops: 1.0\");\n}}\n"
    )
}

/// A kernel "miscompiled" into an infinite loop: never prints, never
/// exits.
const LOOP_SRC: &str = "fn main() { loop { std::hint::spin_loop() } }\n";

/// A kernel whose parallel runtime poisoned itself: it reports a
/// `runtime_error:` diagnostic on stderr and exits 101, exactly like the
/// emitted poisonable protocol (crates/codegen) does after containment.
const POISONED_SRC: &str = "fn main() {\n    \
     eprintln!(\"runtime_error: worker 1 panicked at cell (3, 4): boom\");\n    \
     std::process::exit(101);\n}\n";

fn test_runner(work_dir: PathBuf) -> Runner {
    Runner {
        work_dir,
        threads: 1,
        reps: 1,
        rustc_flags: vec![],
        ..Runner::new(1)
    }
}

fn job(id: &str, src: String) -> SweepJob {
    SweepJob {
        id: id.to_string(),
        kernel: id.to_string(),
        variant: "test".to_string(),
        dataset: "mini".to_string(),
        params: vec![4],
        work: JobWork::Rustc {
            source: Box::new(move || Ok(src)),
            seq_source: None,
        },
    }
}

/// Attach a sequential-fallback source to a rustc job.
fn set_seq(
    j: &mut SweepJob,
    f: Box<dyn FnOnce() -> Result<String, polymix_ir::error::PolymixError> + Send>,
) {
    match &mut j.work {
        JobWork::Rustc { seq_source, .. } => *seq_source = Some(f),
        JobWork::InProcess { .. } => panic!("in-process jobs have no sequential fallback"),
    }
}

/// An in-process job returning a fixed measurement without ever touching
/// `rustc` or the binary cache.
fn vm_job(id: &str, checksum: f64) -> SweepJob {
    SweepJob {
        id: id.to_string(),
        kernel: id.to_string(),
        variant: "test".to_string(),
        dataset: "mini".to_string(),
        params: vec![4],
        work: JobWork::InProcess {
            run: Box::new(move || {
                Ok(RunResult {
                    checksum,
                    time_s: 0.001,
                    gflops: 1.0,
                })
            }),
            unmodeled_knobs: Vec::new(),
        },
    }
}

#[test]
fn concurrent_identical_sources_compile_exactly_once() {
    let dir = tmp_dir("contend");
    let src = ok_src(7);
    let flags: Vec<String> = vec![];
    let fresh = AtomicUsize::new(0);
    const N: usize = 8;
    std::thread::scope(|s| {
        for _ in 0..N {
            s.spawn(|| {
                // Every thread must run successfully...
                let r = compile_and_run(&src, &dir, &flags, "contend").expect("run succeeds");
                assert!((r.checksum - 7.5).abs() < 1e-12);
                // ...and at most one observes a cache-miss compile.
                let c = ensure_compiled(&src, &dir, &flags, "contend", Duration::from_secs(120))
                    .expect("compile resolves");
                if c.freshly_compiled {
                    fresh.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(fresh.load(Ordering::Relaxed), 0, "all post-run lookups hit the cache");
    // Exactly one binary, no leftover temp or lock files.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read work dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(!names.iter().any(|n| n.contains(".tmp.")), "temp leak: {names:?}");
    assert!(!names.iter().any(|n| n.ends_with(".lock")), "lock leak: {names:?}");
    assert_eq!(
        names.iter().filter(|n| !n.ends_with(".rs")).count(),
        1,
        "exactly one cached binary: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backdate a file's mtime far into the past so it reads as stale
/// against any compile budget.
fn backdate(path: &std::path::Path) {
    let st = std::process::Command::new("touch")
        .args(["-t", "202001010000"])
        .arg(path)
        .status()
        .expect("touch spawns");
    assert!(st.success(), "touch failed for {}", path.display());
}

/// Crash-at-kill: a compiler killed by the compile deadline leaves its
/// lockfile and a partial `.tmp.*` artifact behind. A retry (or a
/// concurrent tuner worker) arriving later must steal the stale lock,
/// reap the partial, recompile, and leave a clean cache — not wedge on
/// the dead lock or trip over the corpse.
#[test]
fn killed_compile_leftovers_are_stolen_and_reaped() {
    let dir = tmp_dir("crash-at-kill");
    let src = ok_src(6);
    let flags: Vec<String> = vec![];
    // Learn the cache id by compiling once, then erase the binary to
    // restage the cache as if the original compile never finished.
    let primed = ensure_compiled(&src, &dir, &flags, "crashy", Duration::from_secs(120))
        .expect("priming compile");
    let id = primed
        .bin_path
        .file_name()
        .expect("cache id")
        .to_string_lossy()
        .into_owned();
    std::fs::remove_file(&primed.bin_path).expect("unpublish binary");
    // Plant the kill scene: a lockfile and a half-written artifact, both
    // older than any compile budget.
    let dead_lock = dir.join(format!("{id}.lock"));
    let dead_tmp = dir.join(format!("{id}.tmp.99999_0"));
    std::fs::write(&dead_lock, b"").expect("plant lock");
    std::fs::write(&dead_tmp, b"\x7fELF half a binary").expect("plant partial");
    backdate(&dead_lock);
    backdate(&dead_tmp);
    // The retry must succeed promptly (well under the waiter deadline of
    // 2x the budget) by stealing, not by waiting the lock out.
    let t0 = Instant::now();
    let c = ensure_compiled(&src, &dir, &flags, "crashy", Duration::from_secs(120))
        .expect("retry steals the stale lock and recompiles");
    assert!(c.freshly_compiled, "retry must own the recompile");
    assert!(t0.elapsed() < Duration::from_secs(60), "stole, not waited");
    let r = run_binary(&c.bin_path, "crashy", Duration::from_secs(30)).expect("binary runs");
    assert!((r.checksum - 6.5).abs() < 1e-12);
    // The scene is cleaned: no lock, no partials (dead or fresh).
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read work dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(!names.iter().any(|n| n.contains(".lock")), "lock leak: {names:?}");
    assert!(!names.iter().any(|n| n.contains(".tmp.")), "partial leak: {names:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Many workers hitting a stale lock at once: the rename-based steal
/// guarantees one re-election. With a bare `remove_file` steal, a slow
/// stealer could delete the *winner's fresh lock*, electing a second
/// compiler that shares the same tmp path — this test closes over that
/// regression by asserting exactly one fresh compile and a clean dir.
#[test]
fn concurrent_stale_lock_steal_elects_exactly_one_compiler() {
    let dir = tmp_dir("steal-race");
    let src = ok_src(8);
    let flags: Vec<String> = vec![];
    let primed = ensure_compiled(&src, &dir, &flags, "steal", Duration::from_secs(120))
        .expect("priming compile");
    let id = primed
        .bin_path
        .file_name()
        .expect("cache id")
        .to_string_lossy()
        .into_owned();
    std::fs::remove_file(&primed.bin_path).expect("unpublish binary");
    let dead_lock = dir.join(format!("{id}.lock"));
    std::fs::write(&dead_lock, b"").expect("plant lock");
    backdate(&dead_lock);
    let fresh = AtomicUsize::new(0);
    const N: usize = 8;
    std::thread::scope(|s| {
        for _ in 0..N {
            s.spawn(|| {
                let c = ensure_compiled(&src, &dir, &flags, "steal", Duration::from_secs(120))
                    .expect("every contender resolves");
                if c.freshly_compiled {
                    fresh.fetch_add(1, Ordering::Relaxed);
                }
                let r = run_binary(&c.bin_path, "steal", Duration::from_secs(30))
                    .expect("binary runs");
                assert!((r.checksum - 8.5).abs() < 1e-12);
            });
        }
    });
    assert_eq!(fresh.load(Ordering::Relaxed), 1, "exactly one re-elected compiler");
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read work dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(!names.iter().any(|n| n.contains(".lock")), "lock leak: {names:?}");
    assert!(!names.iter().any(|n| n.contains(".tmp.")), "partial leak: {names:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_cached_binary_is_recompiled_not_trusted() {
    let dir = tmp_dir("truncate");
    let src = ok_src(3);
    let flags: Vec<String> = vec![];
    let c = ensure_compiled(&src, &dir, &flags, "trunc", Duration::from_secs(120))
        .expect("initial compile");
    assert!(c.freshly_compiled);
    // Simulate a binary half-written by a pre-atomic-rename sweep that
    // was killed mid-rustc: the cache entry exists but is garbage.
    std::fs::write(&c.bin_path, b"\x7fELF garbage, not a real binary").expect("truncate");
    assert!(
        run_binary(&c.bin_path, "trunc", Duration::from_secs(10)).is_err(),
        "garbage binary must not run"
    );
    // The full pipeline detects the failing cached binary, invalidates
    // it, recompiles, and succeeds.
    let r = compile_and_run(&src, &dir, &flags, "trunc").expect("recovers by recompiling");
    assert!((r.checksum - 3.5).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn infinite_loop_times_out_without_stalling_other_jobs() {
    let dir = tmp_dir("timeout");
    let runner = test_runner(dir.clone());
    let cfg = SweepConfig {
        jobs: 2,
        run_timeout: Duration::from_secs(2),
        ..SweepConfig::default()
    };
    let t0 = Instant::now();
    let outcomes = run_sweep(
        vec![job("looper", LOOP_SRC.to_string()), job("good", ok_src(1))],
        &runner,
        &cfg,
    );
    let elapsed = t0.elapsed();
    assert_eq!(outcomes.len(), 2);
    let looper = &outcomes[0];
    let err = looper.result.as_ref().expect_err("looper must time out");
    assert_eq!(err.stage(), Stage::Runner);
    assert_eq!(err.cell(), "error(runner)");
    assert!(err.to_string().contains("timeout"), "detail: {err}");
    let good = &outcomes[1];
    assert!(good.result.is_ok(), "good job must complete: {:?}", good.result);
    // Well under the wedge-forever regime: deadline + compile + slack.
    assert!(elapsed < Duration::from_secs(60), "sweep stalled: {elapsed:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jsonl_resume_skips_recorded_jobs_with_zero_recompiles() {
    let dir = tmp_dir("resume");
    let log = dir.join("results.jsonl");
    let runner = test_runner(dir.join("cache-a"));
    let cfg = SweepConfig {
        jobs: 2,
        results_path: Some(log.clone()),
        ..SweepConfig::default()
    };
    let first = run_sweep(
        vec![job("j1", ok_src(1)), job("j2", ok_src(2))],
        &runner,
        &cfg,
    );
    assert!(first.iter().all(|o| o.result.is_ok() && !o.resumed));
    assert!(log.exists(), "sweep must write the JSONL log");

    // Re-invoke against a *fresh* cache dir: if resume works, no source
    // is ever built and no binary is ever compiled.
    let fresh_cache = dir.join("cache-b");
    let runner2 = test_runner(fresh_cache.clone());
    let built = std::sync::Arc::new(AtomicBool::new(false));
    let rebuilt_jobs: Vec<SweepJob> = [(1u32, "j1"), (2, "j2")]
        .into_iter()
        .map(|(tag, id)| SweepJob {
            id: id.to_string(),
            kernel: id.to_string(),
            variant: "test".to_string(),
            dataset: "mini".to_string(),
            params: vec![4],
            work: JobWork::Rustc {
                source: Box::new({
                    let built = built.clone();
                    let src = ok_src(tag);
                    move || {
                        built.store(true, Ordering::Relaxed);
                        Ok(src)
                    }
                }),
                seq_source: None,
            },
        })
        .collect();
    let second = run_sweep(rebuilt_jobs, &runner2, &cfg);
    assert_eq!(second.len(), 2);
    for (a, b) in first.iter().zip(&second) {
        assert!(b.resumed, "{} must be replayed from the log", b.id);
        let (ra, rb) = (a.result.as_ref().expect("ok"), b.result.as_ref().expect("ok"));
        assert_eq!(ra.checksum.to_bits(), rb.checksum.to_bits(), "bit-identical replay");
    }
    assert!(!built.load(Ordering::Relaxed), "resume must not rebuild sources");
    assert!(
        !fresh_cache.exists() || std::fs::read_dir(&fresh_cache).map(|d| d.count()).unwrap_or(0) == 0,
        "resume must not compile anything"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A poisoned parallel kernel with a `seq_source` fallback must produce
/// a `degraded(sequential)` measurement whose checksum matches the
/// sequential reference, record the marker in the JSONL log, and replay
/// it on resume without re-measuring.
#[test]
fn poisoned_kernel_degrades_to_sequential_and_resumes_degraded() {
    let dir = tmp_dir("degrade");
    let log = dir.join("results.jsonl");
    let cache = dir.join("cache");
    let runner = test_runner(cache.clone());
    let cfg = SweepConfig {
        jobs: 2,
        results_path: Some(log.clone()),
        ..SweepConfig::default()
    };
    let mut poisoned = job("poisoned", POISONED_SRC.to_string());
    set_seq(&mut poisoned, Box::new(|| Ok(ok_src(9))));
    let outcomes = run_sweep(vec![poisoned, job("good", ok_src(1))], &runner, &cfg);
    assert_eq!(outcomes.len(), 2);
    let o = &outcomes[0];
    assert!(o.degraded, "poisoned kernel must degrade, not error");
    let r = o.result.as_ref().expect("degraded run still measures");
    // The degraded measurement is exactly what the sequential reference
    // produces (same source → same cached binary → same output).
    let flags: Vec<String> = vec![];
    let reference =
        compile_and_run(&ok_src(9), &cache, &flags, "seq_ref").expect("sequential reference");
    assert_eq!(
        r.checksum.to_bits(),
        reference.checksum.to_bits(),
        "degraded checksum must match the sequential reference"
    );
    assert!(!outcomes[1].degraded, "healthy job is not marked degraded");

    // The JSONL record carries the marker...
    let text = std::fs::read_to_string(&log).expect("log written");
    let rec = text
        .lines()
        .find(|l| l.contains("\"id\":\"poisoned\""))
        .expect("poisoned record");
    assert!(rec.contains("\"degraded\":\"sequential\""), "{rec}");
    // ...and a resume replays it (flag included) without rebuilding.
    let mut resumed_poisoned = job(
        "poisoned",
        "fn main() { panic!(\"resume must not rebuild\") }".to_string(),
    );
    set_seq(
        &mut resumed_poisoned,
        Box::new(|| panic!("resume must not rebuild the fallback either")),
    );
    let second = run_sweep(vec![resumed_poisoned], &runner, &cfg);
    assert!(second[0].resumed, "must replay from the log");
    assert!(second[0].degraded, "degraded marker must survive resume");
    assert_eq!(
        second[0].result.as_ref().expect("ok").checksum.to_bits(),
        r.checksum.to_bits(),
        "bit-identical replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Partial resume over a mixed log: a sweep that recorded one degraded
/// and one healthy job is re-invoked with those two plus a job the log
/// has never seen. The recorded pair must replay (markers intact, no
/// source rebuilt) while the new job compiles and measures fresh — the
/// degraded-replay path and the run-fresh path share one executor pass.
#[test]
fn partial_resume_replays_mixed_log_and_runs_new_jobs() {
    let dir = tmp_dir("partial-resume");
    let log = dir.join("results.jsonl");
    let runner = test_runner(dir.join("cache"));
    let cfg = SweepConfig {
        jobs: 2,
        results_path: Some(log.clone()),
        ..SweepConfig::default()
    };
    let mut poisoned = job("degraded-one", POISONED_SRC.to_string());
    set_seq(&mut poisoned, Box::new(|| Ok(ok_src(9))));
    let first = run_sweep(vec![poisoned, job("healthy", ok_src(2))], &runner, &cfg);
    assert!(first[0].degraded && first[0].result.is_ok());
    assert!(!first[1].degraded && first[1].result.is_ok());

    // Second invocation: both recorded jobs wired to panic if rebuilt,
    // plus a genuinely new job.
    let mut replay_degraded = job(
        "degraded-one",
        "fn main() { panic!(\"resume must not rebuild\") }".to_string(),
    );
    set_seq(
        &mut replay_degraded,
        Box::new(|| panic!("resume must not rebuild the fallback")),
    );
    let replay_healthy = job(
        "healthy",
        "fn main() { panic!(\"resume must not rebuild\") }".to_string(),
    );
    let second = run_sweep(
        vec![replay_degraded, replay_healthy, job("newcomer", ok_src(4))],
        &runner,
        &cfg,
    );
    assert_eq!(second.len(), 3);
    assert!(second[0].resumed && second[0].degraded, "degraded replay");
    assert!(second[1].resumed && !second[1].degraded, "healthy replay");
    assert_eq!(
        second[0].result.as_ref().expect("ok").checksum.to_bits(),
        first[0].result.as_ref().expect("ok").checksum.to_bits(),
        "bit-identical degraded replay"
    );
    let newcomer = &second[2];
    assert!(!newcomer.resumed, "unseen job must run fresh");
    assert!(!newcomer.degraded);
    assert!(
        (newcomer.result.as_ref().expect("new job measures").checksum - 4.5).abs() < 1e-12
    );
    // The fresh measurement lands in the log, so a third invocation
    // replays all three.
    let third = run_sweep(vec![job("newcomer", ok_src(4))], &runner, &cfg);
    assert!(third[0].resumed, "newcomer is recorded after the mixed pass");
    let _ = std::fs::remove_dir_all(&dir);
}

/// When the sequential fallback fails too, the job keeps the original
/// (parallel) failure as its error cell and is not marked degraded.
#[test]
fn failing_fallback_keeps_the_original_error() {
    let dir = tmp_dir("degrade-fail");
    let runner = test_runner(dir.clone());
    let cfg = SweepConfig {
        jobs: 1,
        ..SweepConfig::default()
    };
    let mut j = job("both-poisoned", POISONED_SRC.to_string());
    set_seq(&mut j, Box::new(|| Ok(POISONED_SRC.to_string())));
    let outcomes = run_sweep(vec![j], &runner, &cfg);
    let o = &outcomes[0];
    assert!(!o.degraded);
    let e = o.result.as_ref().expect_err("both runs failed");
    assert_eq!(e.stage(), Stage::Runner);
    assert!(e.to_string().contains("runtime_error"), "detail: {e}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Environmental failures (here: a compile error) must NOT trigger the
/// sequential fallback — degradation is reserved for kernels that ran
/// and failed.
#[test]
fn compile_errors_do_not_degrade() {
    let dir = tmp_dir("no-degrade");
    let runner = test_runner(dir.clone());
    let cfg = SweepConfig {
        jobs: 1,
        ..SweepConfig::default()
    };
    let fallback_built = std::sync::Arc::new(AtomicBool::new(false));
    let mut j = job("bad-compile", "fn main() { not rust at all }".to_string());
    set_seq(
        &mut j,
        Box::new({
            let fallback_built = fallback_built.clone();
            move || {
                fallback_built.store(true, Ordering::Relaxed);
                Ok(ok_src(5))
            }
        }),
    );
    let outcomes = run_sweep(vec![j], &runner, &cfg);
    assert!(outcomes[0].result.is_err(), "compile error stays an error");
    assert!(!outcomes[0].degraded);
    assert!(
        !fallback_built.load(Ordering::Relaxed),
        "fallback must not even be emitted for a compile error"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn trailing JSONL line (the process died mid-append) must not
/// poison resume: the intact records replay, the torn cell is
/// re-measured, and the re-run log ends up complete again.
#[test]
fn torn_trailing_jsonl_line_is_skipped_and_remeasured() {
    let dir = tmp_dir("torn-line");
    let log = dir.join("results.jsonl");
    let runner = test_runner(dir.join("cache-a"));
    let cfg = SweepConfig {
        jobs: 2,
        results_path: Some(log.clone()),
        ..SweepConfig::default()
    };
    let first = run_sweep(
        vec![job("j1", ok_src(1)), job("j2", ok_src(2))],
        &runner,
        &cfg,
    );
    assert!(first.iter().all(|o| o.result.is_ok()));

    // Tear the last record mid-line, as if the sweep died between
    // `write` and the trailing newline reaching disk.
    let text = std::fs::read_to_string(&log).expect("log readable");
    let last_start = text.trim_end().rfind('\n').expect("two records") + 1;
    let torn_id = &text[last_start..]
        [..text[last_start..].find("\"id\"").map_or(8, |p| p + 20)];
    let cut = last_start + (text.len() - last_start) / 2;
    std::fs::write(&log, &text[..cut]).expect("truncate log");
    let _ = torn_id;

    // Identify which job the torn record belonged to so the assertion
    // below can name it: it is whichever id no longer parses from the
    // log.
    let intact: Vec<String> = std::fs::read_to_string(&log)
        .expect("log readable")
        .lines()
        .filter_map(|l| {
            polymix_bench::sweep::parse_record(l)
                .and_then(|r| r.str_field("id").map(str::to_string))
        })
        .collect();
    assert_eq!(intact.len(), 1, "exactly one record must survive the tear");

    // Resume against a fresh cache: the intact cell replays, the torn
    // cell re-measures (and therefore compiles again).
    let runner2 = test_runner(dir.join("cache-b"));
    let second = run_sweep(
        vec![job("j1", ok_src(1)), job("j2", ok_src(2))],
        &runner2,
        &cfg,
    );
    assert_eq!(second.len(), 2);
    for o in &second {
        assert!(o.result.is_ok(), "{} must succeed", o.id);
        assert_eq!(
            o.resumed,
            intact.contains(&o.id),
            "{}: only the intact record may replay; the torn cell must re-measure",
            o.id
        );
    }

    // The log is whole again: both cells parse, so a third run replays
    // everything.
    let third = run_sweep(
        vec![job("j1", ok_src(1)), job("j2", ok_src(2))],
        &test_runner(dir.join("cache-c")),
        &cfg,
    );
    assert!(third.iter().all(|o| o.resumed), "re-measured cell must be re-recorded");
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-process (vm) jobs run on the same executor without ever touching
/// `rustc` or the binary cache, and their outcomes carry the `vm`
/// backend tag.
#[test]
fn in_process_jobs_run_without_compiling() {
    let dir = tmp_dir("inproc");
    let cache = dir.join("cache");
    let runner = test_runner(cache.clone());
    let cfg = SweepConfig {
        jobs: 2,
        ..SweepConfig::default()
    };
    let outcomes = run_sweep(vec![vm_job("v1", 1.5), vm_job("v2", 2.5)], &runner, &cfg);
    assert_eq!(outcomes.len(), 2);
    for (o, want) in outcomes.iter().zip([1.5, 2.5]) {
        assert_eq!(o.backend, "vm");
        assert!(!o.degraded);
        let r = o.result.as_ref().expect("in-process job measures");
        assert!((r.checksum - want).abs() < 1e-12);
    }
    assert!(
        !cache.exists() || std::fs::read_dir(&cache).map(|d| d.count()).unwrap_or(0) == 0,
        "in-process jobs must not populate the binary cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resume keys on `(id, backend)`: a recorded rustc cell must never
/// satisfy a vm job with the same id, nor the other way round. Mixing
/// them would let a low-fidelity vm measurement masquerade as a rustc
/// confirmation (or vice versa) across an interrupted two-fidelity
/// tuning run.
#[test]
fn resume_never_crosses_backends_for_the_same_id() {
    let dir = tmp_dir("backend-resume");
    let log = dir.join("results.jsonl");
    let runner = test_runner(dir.join("cache"));
    let cfg = SweepConfig {
        jobs: 2,
        results_path: Some(log.clone()),
        ..SweepConfig::default()
    };
    // Record a rustc cell under id "shared".
    let first = run_sweep(vec![job("shared", ok_src(1))], &runner, &cfg);
    assert!(first[0].result.is_ok() && !first[0].resumed);
    assert_eq!(first[0].backend, "rustc");

    // A vm job with the *same id* must run fresh — the rustc record is a
    // different fidelity and must not cross-satisfy it.
    let second = run_sweep(vec![vm_job("shared", 42.5)], &runner, &cfg);
    assert!(
        !second[0].resumed,
        "vm job must not replay a rustc record with the same id"
    );
    assert_eq!(second[0].backend, "vm");
    assert!((second[0].result.as_ref().expect("ok").checksum - 42.5).abs() < 1e-12);

    // Both records now coexist in the log, tagged by backend.
    let text = std::fs::read_to_string(&log).expect("log written");
    let recs: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"id\":\"shared\""))
        .collect();
    assert_eq!(recs.len(), 2, "one record per (id, backend): {text}");
    assert!(recs.iter().any(|l| l.contains("\"backend\":\"rustc\"")));
    assert!(recs.iter().any(|l| l.contains("\"backend\":\"vm\"")));

    // A third pass with both jobs replays each from its *own* record:
    // the rustc replay keeps the rustc checksum, the vm replay the vm
    // one, and neither builds or runs anything.
    let rustc_again = SweepJob {
        work: JobWork::Rustc {
            source: Box::new(|| panic!("resume must not rebuild")),
            seq_source: None,
        },
        ..job("shared", String::new())
    };
    let vm_again = SweepJob {
        work: JobWork::InProcess {
            run: Box::new(|| panic!("resume must not re-execute")),
            unmodeled_knobs: Vec::new(),
        },
        ..job("shared", String::new())
    };
    let third = run_sweep(vec![rustc_again, vm_again], &runner, &cfg);
    assert!(third.iter().all(|o| o.resumed), "both fidelities replay");
    assert_eq!(third[0].backend, "rustc");
    assert_eq!(third[1].backend, "vm");
    assert!((third[0].result.as_ref().expect("ok").checksum - 1.5).abs() < 1e-12);
    assert!((third[1].result.as_ref().expect("ok").checksum - 42.5).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(&dir);
}
