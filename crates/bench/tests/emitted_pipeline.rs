//! End-to-end check of the emitted pipeline protocol. The generated
//! kernel uses cache-line-padded progress cells, batched publishes, and
//! the flush-on-block await; a protocol bug shows up here as either a
//! wrong checksum (a dependence violated) or a run timeout (a deadlock
//! between mutually waiting neighbors). On a small machine the spin
//! budget exhausts constantly, so the flush path is exercised for real.

use polymix_bench::runner::compile_and_run;
use polymix_codegen::emit::{emit_rust, EmitOptions};
use polymix_codegen::from_poly::original_program;
use polymix_ast::tree::{Par, Program};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::Expr as IExpr;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("polymix-epipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmp work dir");
    d
}

/// Seidel-style dependent sweep: `A[t][i] = 0.5*A[t-1][i] + 0.25*A[t][i-1]`.
/// Every cell depends on the previous outer step and the previous inner
/// cell, so any reordering across the pipeline boundary changes values.
fn seidel_pipeline() -> Program {
    let mut b = ScopBuilder::new("seidel1d", &["N"], &[64]);
    let a = b.array("A", &["N", "N"]);
    b.enter("t", con(1), par("N"));
    b.enter("i", con(1), par("N"));
    let up = IExpr::mul(IExpr::Const(0.5), b.rd(a, &[ix("t") - con(1), ix("i")]));
    let left = IExpr::mul(IExpr::Const(0.25), b.rd(a, &[ix("t"), ix("i") - con(1)]));
    b.stmt("S", a, &[ix("t"), ix("i")], IExpr::add(up, left));
    b.exit();
    b.exit();
    let mut prog =
        original_program(&b.finish().expect("well-formed SCoP")).expect("original program");
    let mut outer = true;
    prog.body.visit_loops_mut(&mut |l| {
        l.par = if outer { Par::Pipeline } else { Par::Seq };
        outer = false;
    });
    prog
}

fn run(prog: &Program, threads: usize, batch: Option<i64>, dir: &PathBuf) -> f64 {
    let src = emit_rust(
        prog,
        &EmitOptions {
            params: vec![64],
            flops: 2 * 63 * 63,
            threads,
            reps: 1,
            pipeline_batch: batch,
            ..Default::default()
        },
    );
    let label = format!("t{threads}b{}", batch.unwrap_or(0));
    compile_and_run(&src, dir, &[], &label)
        .unwrap_or_else(|e| panic!("emitted pipeline ({label}) failed: {e}"))
        .checksum
}

/// Triangular doall: `B[i] += A[j]` for `j < i`. Rows are independent
/// (parallel-safe) but cost grows with `i`, so codegen selects the
/// dynamic chunk-claiming schedule for this nest.
fn triangular_doall() -> Program {
    let mut b = ScopBuilder::new("tri", &["N"], &[64]);
    let a = b.array("A", &["N"]);
    let bb = b.array("B", &["N"]);
    b.enter("i", con(0), par("N"));
    b.enter("j", con(0), ix("i"));
    let rhs = b.rd(a, &[ix("j")]);
    b.stmt_update("S", bb, &[ix("i")], polymix_ir::BinOp::Add, rhs);
    b.exit();
    b.exit();
    let mut prog =
        original_program(&b.finish().expect("well-formed SCoP")).expect("original program");
    let mut outer = true;
    prog.body.visit_loops_mut(&mut |l| {
        l.par = if outer { Par::Doall } else { Par::Seq };
        outer = false;
    });
    prog
}

#[test]
fn dynamic_doall_checksum_matches_sequential() {
    let dir = tmp_dir("tri");
    let prog = triangular_doall();
    let emit = |threads: usize| {
        emit_rust(
            &prog,
            &EmitOptions {
                params: vec![64],
                flops: 64 * 63 / 2,
                threads,
                reps: 1,
                ..Default::default()
            },
        )
    };
    let par_src = emit(4);
    assert!(
        par_src.contains("(dynamic schedule)"),
        "triangular nest must take the dynamic path: {par_src}"
    );
    let reference = compile_and_run(&emit(1), &dir, &[], "seq")
        .expect("sequential run")
        .checksum;
    let got = compile_and_run(&par_src, &dir, &[], "dyn")
        .expect("dynamic doall run")
        .checksum;
    assert_eq!(
        got.to_bits(),
        reference.to_bits(),
        "dynamic doall diverged from sequential: {got} vs {reference}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_checksums_match_sequential_for_every_batch() {
    let dir = tmp_dir("batch");
    let prog = seidel_pipeline();
    let reference = run(&prog, 1, None, &dir);
    for batch in [None, Some(1), Some(3)] {
        let got = run(&prog, 4, batch, &dir);
        assert_eq!(
            got.to_bits(),
            reference.to_bits(),
            "threads=4 batch={batch:?} diverged from sequential: {got} vs {reference}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end check of the emitted counter-graph protocol: the same
/// dependent sweep annotated `Wavefront`, lowered both ways. A protocol
/// bug shows up as a wrong checksum (tile ran before its counter
/// drained) or a run timeout (a claim/decrement mismatch deadlocking
/// the cursor loop).
#[test]
fn taskgraph_checksums_match_wavefront_and_sequential() {
    let dir = tmp_dir("tg");
    let mut prog = seidel_pipeline();
    prog.body.visit_loops_mut(&mut |l| {
        if l.par == Par::Pipeline {
            l.par = Par::Wavefront;
        }
    });
    let emit = |threads: usize, taskgraph: bool| {
        emit_rust(
            &prog,
            &EmitOptions {
                params: vec![64],
                flops: 2 * 63 * 63,
                threads,
                reps: 1,
                taskgraph,
                ..Default::default()
            },
        )
    };
    let tg_src = emit(4, true);
    assert!(
        tg_src.contains("// taskgraph region"),
        "knob must lower the wavefront to the counter graph: {tg_src}"
    );
    let reference = compile_and_run(&emit(1, false), &dir, &[], "seq")
        .expect("sequential run")
        .checksum;
    let wavefront = compile_and_run(&emit(4, false), &dir, &[], "wf")
        .expect("wavefront run")
        .checksum;
    let taskgraph = compile_and_run(&tg_src, &dir, &[], "tg")
        .expect("taskgraph run")
        .checksum;
    assert_eq!(
        wavefront.to_bits(),
        reference.to_bits(),
        "wavefront diverged from sequential: {wavefront} vs {reference}"
    );
    assert_eq!(
        taskgraph.to_bits(),
        reference.to_bits(),
        "taskgraph diverged from sequential: {taskgraph} vs {reference}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
