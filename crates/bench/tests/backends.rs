//! Differential tests between the two measurement backends and the
//! shared sequential reference implementations.
//!
//! The vm backend's whole value is that its numbers are *comparable* to
//! the rustc backend's: same initialization, same transformed program,
//! same written-array checksum. These tests sweep kernels × variant
//! families at the mini dataset and require every cell the vm can
//! execute to agree with the sequential reference — and, on a sample
//! kernel, with the actual emit → `rustc` → run pipeline.

use polymix_bench::backend::{vm_measure, vm_measure_checked};
use polymix_bench::runner::{compile_and_run, emit_source_with, EmitKnobs};
use polymix_bench::variants::{build_variant, variant_list, Variant};
use polymix_dl::Machine;
use polymix_polybench::kernel_by_name;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("polymix-backends-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmp work dir");
    d
}

/// The emitted checksum convention, applied to the sequential reference
/// implementation: first-appearance-deduped written arrays, reduced with
/// `x * ((k % 31) + 1)`.
fn reference_checksum(k: &polymix_polybench::Kernel, params: &[i64]) -> f64 {
    let scop = (k.build)();
    let mut arrays = k.fresh_arrays(&scop, params);
    (k.reference)(params, &mut arrays);
    let mut written: Vec<usize> = Vec::new();
    for st in &scop.statements {
        if !written.contains(&st.write.array.0) {
            written.push(st.write.array.0);
        }
    }
    written.sort_unstable();
    let mut sum = 0.0f64;
    for ai in written {
        for (j, &x) in arrays[ai].iter().enumerate() {
            sum += x * ((j % 31) as f64 + 1.0);
        }
    }
    sum
}

/// Every kernel × variant cell the vm can lower must reproduce the
/// sequential reference checksum. Cells the optimizer rejects (a variant
/// that cannot legally transform a kernel) or the vm cannot lower are
/// skipped — but the suite must still compare a healthy floor of cells,
/// and every kernel must contribute at least one.
#[test]
fn vm_agrees_with_sequential_reference_across_the_suite() {
    let machine = Machine::host();
    let kernels = [
        "gemm",
        "2mm",
        "atax",
        "gesummv",
        "jacobi-1d-imper",
        "jacobi-2d-imper",
        "seidel-2d",
        "trisolv",
    ];
    let mut compared = 0usize;
    for name in kernels {
        let k = kernel_by_name(name).expect("suite kernel");
        let params = k.dataset("mini").params;
        let want = reference_checksum(&k, &params);
        let mut kernel_cells = 0usize;
        for v in variant_list() {
            let prog = match build_variant(&k, v, &machine) {
                Ok(p) => p,
                Err(_) => continue, // variant not legal for this kernel
            };
            // Checked fidelity is the differential baseline: every
            // dynamic bounds check stays on, so the vm itself is the
            // safety net being compared against.
            let r = match vm_measure_checked(&k, &prog, &params, v.name(), 1, 1, EmitKnobs::default())
            {
                Ok(r) => r,
                Err(e) => {
                    // Only lowering gaps may be skipped; a runtime
                    // failure inside the vm is a real bug.
                    assert!(
                        !e.to_string().contains("runtime_error"),
                        "{name} {v:?}: vm runtime failure: {e}"
                    );
                    continue;
                }
            };
            let rel = (r.checksum - want).abs() / want.abs().max(1.0);
            assert!(
                rel < 1e-6,
                "{name} {v:?}: vm checksum {} deviates from reference {}",
                r.checksum,
                want
            );
            // The proof-elided fast path must be bit-identical: same
            // instructions, same order — elision only skips checks the
            // certifier discharged statically.
            let elided = vm_measure(&k, &prog, &params, v.name(), 1, 1, EmitKnobs::default())
                .expect("a cell that ran checked must also run elided");
            assert!(
                elided.checksum == r.checksum,
                "{name} {v:?}: elided checksum {} != checked {}",
                elided.checksum,
                r.checksum
            );
            compared += 1;
            kernel_cells += 1;
        }
        assert!(
            kernel_cells > 0,
            "{name}: no variant could be vm-executed at all"
        );
    }
    assert!(
        compared >= 20,
        "differential floor: only {compared} cells compared"
    );
}

/// Full three-way agreement on one kernel: the vm backend, the emit →
/// `rustc` → run backend, and the sequential reference must all produce
/// the same checksum for the same transformed program.
#[test]
fn vm_and_rustc_backends_agree_on_gemm() {
    let dir = tmp_dir("gemm");
    let machine = Machine::host();
    let k = kernel_by_name("gemm").expect("kernel");
    let params = k.dataset("mini").params;
    let want = reference_checksum(&k, &params);
    let flags: Vec<String> = vec![]; // no -O: mini data, sub-second compile
    for v in [Variant::Native, Variant::Pocc, Variant::PolyAst] {
        let prog = build_variant(&k, v, &machine).expect("gemm variant builds");
        let vm = vm_measure(&k, &prog, &params, v.name(), 1, 1, EmitKnobs::default())
            .expect("vm executes gemm");
        let src = emit_source_with(&k, &prog, &params, 1, 1, EmitKnobs::default());
        let rustc = compile_and_run(&src, &dir, &flags, v.name()).expect("rustc cell runs");
        // The vm reports its checksum at full f64 precision; the rustc
        // binary prints `{:.6e}` (7 significant digits), so comparisons
        // against it tolerate that rounding.
        let rel_vm = (vm.checksum - want).abs() / want.abs().max(1.0);
        let rel_rustc = (rustc.checksum - want).abs() / want.abs().max(1.0);
        assert!(rel_vm < 1e-9, "{v:?}: vm {} vs reference {want}", vm.checksum);
        assert!(
            rel_rustc < 1e-6,
            "{v:?}: rustc {} vs reference {want}",
            rustc.checksum
        );
        let rel = (vm.checksum - rustc.checksum).abs() / rustc.checksum.abs().max(1.0);
        assert!(
            rel < 1e-6,
            "{v:?}: vm {} vs rustc {}",
            vm.checksum,
            rustc.checksum
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
