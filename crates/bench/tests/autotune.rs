//! Interrupted-search resume determinism for the autotuner.
//!
//! The tuner's promise is that killing it mid-search loses at most the
//! cell that was in flight: re-running with the same JSONL results log
//! replays every recorded measurement (re-measuring nothing) and
//! converges to the same tuned configuration. These tests run the real
//! two-fidelity search — in-process vm screens plus real `rustc`
//! confirmations (no `-O`, mini dataset, tiny budget) — against the
//! same log twice. With `BUDGET` candidates the log carries `BUDGET` vm
//! screen cells, the native baseline, and (when the screens are
//! healthy) `BUDGET` rustc confirmations, each keyed by `(id,
//! backend)`.

use polymix_bench::autotune::autotune_kernel;
use polymix_bench::runner::Runner;
use polymix_bench::sweep::SweepConfig;
use polymix_dl::Machine;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("polymix-tune-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmp work dir");
    d
}

fn test_runner(work_dir: PathBuf) -> Runner {
    Runner {
        work_dir,
        threads: 1,
        reps: 1,
        rustc_flags: vec![],
        ..Runner::new(1)
    }
}

const BUDGET: usize = 2;

fn cfg_with_log(log: PathBuf) -> SweepConfig {
    SweepConfig {
        // jobs=1 keeps the JSONL record order deterministic, so the
        // truncation scenario below knows which cell it re-exposed.
        jobs: 1,
        results_path: Some(log),
        ..SweepConfig::default()
    }
}

#[test]
fn interrupted_search_resumes_without_remeasuring() {
    let dir = tmp_dir("resume");
    let log = dir.join("tune.jsonl");
    let machine = Machine::host();
    let runner = test_runner(dir.clone());

    // Uninterrupted search: BUDGET vm screens, then the native baseline
    // plus BUDGET rustc confirmations (BUDGET <= CONFIRM_TOP, so every
    // screened candidate confirms). `measured` counts candidate cells at
    // both fidelities, excluding the baseline.
    let first = autotune_kernel("gemm", "mini", BUDGET, &runner, &cfg_with_log(log.clone()), &machine)
        .expect("first search succeeds");
    assert_eq!(
        first.measured,
        2 * BUDGET,
        "fresh search measures its budget at both fidelities"
    );
    assert_eq!(first.resumed, 0);

    // Scenario 1: the tuner was killed *after* the last measurement but
    // before committing the config (the log is complete). Re-running
    // with the same log must re-measure nothing and reproduce the
    // configuration bit-for-bit — every value replays from the log.
    let second = autotune_kernel("gemm", "mini", BUDGET, &runner, &cfg_with_log(log.clone()), &machine)
        .expect("resumed search succeeds");
    assert_eq!(second.measured, 0, "no candidate may be re-measured");
    assert_eq!(
        second.resumed,
        2 * BUDGET + 1,
        "all cells (vm screens, baseline, confirmations) replay"
    );
    assert_eq!(
        second.config.to_json(),
        first.config.to_json(),
        "resumed search must converge to the identical tuned config"
    );

    // Scenario 2: killed *mid-append* — the last record is lost. With
    // jobs=1 the records land in submission order, so dropping the last
    // line re-exposes exactly the final candidate cell; a re-run must
    // re-measure that one cell and nothing else.
    let text = std::fs::read_to_string(&log).expect("log readable");
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2 * BUDGET + 1, "one record per measured cell");
    lines.pop();
    let truncated = dir.join("tune-truncated.jsonl");
    std::fs::write(&truncated, format!("{}\n", lines.join("\n"))).expect("write truncated log");
    let third = autotune_kernel("gemm", "mini", BUDGET, &runner, &cfg_with_log(truncated), &machine)
        .expect("search over truncated log succeeds");
    assert_eq!(third.measured, 1, "only the lost cell is re-measured");
    assert_eq!(third.resumed, 2 * BUDGET, "every surviving record replays");
    // The re-measured cell gets fresh timing, so the winner may legally
    // differ — but the search must still commit a complete, parseable
    // config for the same kernel/dataset.
    assert_eq!(third.config.kernel, "gemm");
    assert_eq!(third.config.dataset, "mini");
    assert!(third.config.time_s > 0.0 && third.config.native_time_s > 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}
