//! Bytecode-certifier integration suite.
//!
//! Clean direction: every polybench kernel, lowered from the standard
//! variant families at mini and small parameters, certifies with *every*
//! reachable access proven in-bounds — the precondition for the elided
//! measurement hot path.
//!
//! Adversarial direction: programmatically corrupted bytecode (widened
//! bound, skewed address, relabeled annotation, mispointed accumulator)
//! is rejected with the structured violation the corruption deserves —
//! the certifier re-derives safety from the artifact, so every mutation
//! class a lowering bug could produce must be caught.

use polymix_bench::variants::{build_variant, Variant};
use polymix_dl::Machine;
use polymix_polybench::all_kernels;
use polymix_vm::{
    certify, lower, CLoop, CNode, VmProgram, VmViolationKind,
};

const FAMILIES: [Variant; 3] = [Variant::Native, Variant::Pocc, Variant::PolyAst];

#[test]
fn every_kernel_certifies_clean_with_all_accesses_proven() {
    let machine = Machine::host();
    let mut audited = 0usize;
    let mut proven_total = 0usize;
    for k in all_kernels() {
        for dataset in ["mini", "small"] {
            let params = k.dataset(dataset).params;
            for v in FAMILIES {
                let label = format!("{} [{}] {dataset}", k.name, v.name());
                let prog = match build_variant(&k, v, &machine) {
                    Ok(p) => p,
                    Err(e) => panic!("{label}: does not build: {e}"),
                };
                let vm = match lower(&prog, &params) {
                    Ok(vm) => vm,
                    Err(e) => panic!("{label}: does not lower: {e}"),
                };
                let cert = certify(&vm);
                assert!(
                    cert.is_certified(),
                    "{label}: {:?}",
                    cert.violations
                );
                let (proven, total) = cert.counts();
                assert_eq!(
                    proven, total,
                    "{label}: only {proven}/{total} accesses proven"
                );
                assert!(total > 0, "{label}: no accesses audited");
                audited += 1;
                proven_total += proven;
            }
        }
    }
    // 22 kernels × 2 datasets × 3 families.
    assert_eq!(audited, 22 * 2 * 3);
    assert!(proven_total > 500, "suspiciously few proofs: {proven_total}");
}

/// Applies `f` to every loop of the compiled tree (pre-order).
fn for_each_loop(n: &mut CNode, f: &mut dyn FnMut(&mut CLoop)) {
    match n {
        CNode::Seq(xs) => xs.iter_mut().for_each(|x| for_each_loop(x, f)),
        CNode::Guard(_, b) => for_each_loop(b, f),
        CNode::Stmt(_) => {}
        CNode::Loop(l) => {
            f(l);
            for_each_loop(&mut l.body, f);
        }
    }
}

fn lowered(kernel: &str, variant: Variant, dataset: &str) -> VmProgram {
    let machine = Machine::host();
    let k = all_kernels()
        .into_iter()
        .find(|k| k.name == kernel)
        .expect("kernel");
    let params = k.dataset(dataset).params;
    let prog = build_variant(&k, variant, &machine).expect("variant builds");
    lower(&prog, &params).expect("lowers")
}

/// Widening any gemm loop's upper bound by one pushes its last iteration
/// one past an array extent — the certifier must find the escape (with a
/// concrete witness frame) for each of the three loops independently.
#[test]
fn mutation_widened_bound_is_rejected() {
    let clean = lowered("gemm", Variant::Native, "mini");
    assert!(certify(&clean).is_certified());
    let mut n_loops = 0usize;
    for_each_loop(&mut clean.clone().body, &mut |_| n_loops += 1);
    assert!(n_loops >= 3, "gemm native has a 3-deep nest");
    for target in 0..n_loops {
        let mut vm = clean.clone();
        let mut seen = 0usize;
        for_each_loop(&mut vm.body, &mut |l| {
            if seen == target {
                for (e, _) in &mut l.hi.exprs {
                    e.c += 1;
                }
            }
            seen += 1;
        });
        let cert = certify(&vm);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.kind == VmViolationKind::OutOfBounds),
            "loop {target}: widened bound not caught: {:?}",
            cert.violations
        );
    }
}

/// A constant skew on a store address walks off the end of the array at
/// the last iteration (or before the start, for a negative skew).
#[test]
fn mutation_skewed_address_is_rejected() {
    for skew in [1i64, -1] {
        let mut vm = lowered("gemm", Variant::Native, "mini");
        vm.stmts[0].store_addr.c += skew;
        let cert = certify(&vm);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.kind == VmViolationKind::OutOfBounds),
            "skew {skew}: {:?}",
            cert.violations
        );
    }
}

/// gemm's k-loop accumulates into `C[i][j]`: every iteration writes the
/// same cell, so relabeling it doall is a race the bytecode footprints
/// expose without consulting the AST certificate.
#[test]
fn mutation_relabeled_doall_is_rejected() {
    use polymix_ast::tree::Par;
    let mut vm = lowered("gemm", Variant::Native, "mini");
    let mut deepest: Option<*mut CLoop> = None;
    for_each_loop(&mut vm.body, &mut |l| {
        deepest = Some(l as *mut CLoop);
    });
    // Safety: the raw pointer is used immediately, before the tree moves.
    unsafe {
        let l = &mut *deepest.expect("a loop");
        assert!(l.par != Par::Doall);
        l.par = Par::Doall;
    }
    let cert = certify(&vm);
    assert!(
        cert.violations
            .iter()
            .any(|v| v.kind == VmViolationKind::DoallCarriesDep),
        "{:?}",
        cert.violations
    );
}

/// Pointing a reduction loop's recorded accumulator at a different array
/// breaks the additive-self-update shape the privatization relies on.
#[test]
fn mutation_wrong_accumulator_is_rejected() {
    use polymix_ast::tree::Par;
    // poly+ast marks covariance's accumulation loop as a reduction.
    let mut vm = lowered("covariance", Variant::PolyAst, "mini");
    let mut mutated = false;
    let n_arrays = vm.array_lens.len() as u32;
    for_each_loop(&mut vm.body, &mut |l| {
        if l.par == Par::Reduction && !mutated {
            if let Some(acc) = l.reduction_array {
                l.reduction_array = Some((acc + 1) % n_arrays);
                mutated = true;
            }
        }
    });
    assert!(mutated, "covariance poly+ast carries a reduction accumulator");
    let cert = certify(&vm);
    assert!(
        cert.violations
            .iter()
            .any(|v| v.kind == VmViolationKind::ReductionUnsafe),
        "{:?}",
        cert.violations
    );
}
