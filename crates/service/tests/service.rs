//! End-to-end daemon tests: every robustness path exercised over a real
//! socket — cold miss, warm hit, coalescing, injected panic → identity,
//! breaker open, deadline expiry, load shedding, malformed requests,
//! stats, clean shutdown.

use polymix_bench::sweep::parse_record;
use polymix_service::daemon::{Service, ServiceConfig};
use polymix_service::proto::{OptimizeRequest, Served};
use polymix_service::{BreakerConfig, Client, Fault};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "polymix_service_test_{tag}_{}_{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(tag: &str, patch: impl FnOnce(&mut ServiceConfig)) -> (Service, PathBuf) {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServiceConfig {
        cache_dir: dir.clone(),
        allow_inject: true,
        ..ServiceConfig::default()
    };
    patch(&mut cfg);
    (Service::start(cfg).expect("daemon starts"), dir)
}

fn client(svc: &Service) -> Client {
    Client::connect(svc.addr, Duration::from_secs(30)).expect("connect")
}

fn req(kernel: &str) -> OptimizeRequest {
    OptimizeRequest {
        kernel: kernel.into(),
        deadline_ms: 30_000,
        ..OptimizeRequest::default()
    }
}

#[test]
fn cold_miss_then_warm_hit() {
    let (svc, dir) = start("hit", |_| {});
    let mut c = client(&svc);
    let mut r = req("gemm");
    r.emit = true;
    let miss = c.optimize(&r).expect("miss request");
    assert_eq!(miss.status, "ok");
    assert_eq!(miss.served, Some(Served::Miss));
    assert!(!miss.degraded);
    assert!(
        miss.source.as_deref().is_some_and(|s| s.contains("fn main")),
        "emit=1 must return the kernel source"
    );
    let hit = c.optimize(&r).expect("hit request");
    assert_eq!(hit.served, Some(Served::Hit));
    assert_eq!(hit.key, miss.key, "same SCoP, same canonical key");
    assert_eq!(hit.source, miss.source, "hit serves the cached source");
    svc.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_identical_misses_coalesce() {
    let (svc, dir) = start("coalesce", |cfg| cfg.workers = 1);
    let addr = svc.addr;
    // A slow flight holds the single worker so the second identical
    // request must join it rather than re-optimize.
    let spawn = |delay_ms: u64| {
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(delay_ms));
            let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
            let mut r = req("atax");
            r.inject = Fault::Slow(300);
            c.optimize(&r).expect("optimize")
        })
    };
    let first = spawn(0);
    let second = spawn(80);
    let (a, b) = (first.join().expect("a"), second.join().expect("b"));
    let mut kinds = [a.served, b.served];
    kinds.sort_by_key(|k| k.map(Served::name));
    assert_eq!(
        kinds,
        [Some(Served::Coalesced), Some(Served::Miss)],
        "one optimizes, one coalesces"
    );
    svc.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn injected_panic_degrades_then_breaker_opens() {
    let (svc, dir) = start("breaker", |cfg| {
        cfg.breaker = BreakerConfig {
            threshold: 2,
            probe_after: 1_000_000,
        };
        cfg.retries = 0;
    });
    let mut c = client(&svc);
    for strike in 0..2u64 {
        let mut r = req("bicg");
        r.tile = 100 + strike as i64; // unique fingerprint → always a miss
        r.inject = Fault::Panic;
        r.emit = true;
        let resp = c.optimize(&r).expect("well-formed despite panic");
        assert_eq!(resp.status, "ok", "panic must not leak as an error");
        assert_eq!(resp.served, Some(Served::Identity));
        assert!(resp.degraded);
        assert!(
            resp.source.as_deref().is_some_and(|s| s.contains("fn main")),
            "identity fallback is a runnable kernel"
        );
        // The full payload message, not just "a panic happened": guards
        // the `&*payload` deref in the worker's containment path (a
        // `&Box<dyn Any>` would downcast as the box and lose the text).
        assert!(
            resp.detail.contains("injected scheduler panic"),
            "detail carries the panic message, got {:?}",
            resp.detail
        );
    }
    // Threshold reached: the key is now pinned to identity without
    // touching the scheduler.
    let mut r = req("bicg");
    r.tile = 77;
    let resp = c.optimize(&r).expect("breaker response");
    assert_eq!(resp.served, Some(Served::Breaker));
    assert!(resp.degraded);
    // An unrelated SCoP is unaffected.
    let other = c.optimize(&req("gemm")).expect("other kernel");
    assert_eq!(other.served, Some(Served::Miss));
    assert!(!other.degraded);
    svc.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deadline_expiry_serves_identity_and_cancels() {
    let (svc, dir) = start("deadline", |cfg| cfg.workers = 1);
    let mut c = client(&svc);
    let mut r = req("mvt");
    r.inject = Fault::Slow(2_000);
    r.deadline_ms = 50;
    r.emit = true;
    let t0 = std::time::Instant::now();
    let resp = c.optimize(&r).expect("deadline response");
    assert_eq!(resp.served, Some(Served::Deadline));
    assert!(resp.degraded);
    assert!(resp.source.as_deref().is_some_and(|s| s.contains("fn main")));
    assert!(
        t0.elapsed() < Duration::from_millis(1_500),
        "the response must arrive at the deadline, not after the slow flight"
    );
    // The cancelled flight frees the worker well before its 2s sleep:
    // a fresh request completes promptly.
    let t1 = std::time::Instant::now();
    let ok = c.optimize(&req("gemm")).expect("post-cancel request");
    assert_eq!(ok.status, "ok");
    assert!(
        t1.elapsed() < Duration::from_millis(1_500),
        "cancellation must free the single worker at a stage boundary"
    );
    svc.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn full_queue_sheds_with_429() {
    let (svc, dir) = start("shed", |cfg| {
        cfg.workers = 1;
        cfg.queue_cap = 1;
    });
    let addr = svc.addr;
    // Occupy the worker and the single queue slot with slow flights.
    let occupy: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(40 * i));
                let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
                let mut r = req("2mm");
                r.tile = 10 + i as i64;
                r.inject = Fault::Slow(600);
                c.optimize(&r).expect("occupying flight")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(160));
    let mut c = client(&svc);
    let mut r = req("3mm");
    r.tile = 99;
    let resp = c.optimize(&r).expect("shed response is well-formed");
    assert_eq!(resp.http_status, 429);
    assert_eq!(resp.status, "shed");
    for h in occupy {
        let o = h.join().expect("occupier");
        assert_eq!(o.status, "ok");
    }
    svc.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_requests_get_400_not_a_hang() {
    let (svc, dir) = start("bad", |cfg| cfg.allow_inject = false);
    let mut c = client(&svc);
    let unknown = c.optimize(&req("not-a-kernel")).expect("response");
    assert_eq!(unknown.http_status, 400);
    assert_eq!(unknown.status, "bad-request");
    let mut bad_variant = req("gemm");
    bad_variant.variant = "quantum".into();
    let bv = c.optimize(&bad_variant).expect("response");
    assert_eq!(bv.http_status, 400);
    // Injection directives are refused when the daemon forbids them.
    let mut inj = req("gemm");
    inj.inject = Fault::Panic;
    let r = c.optimize(&inj).expect("response");
    assert_eq!(r.http_status, 400);
    assert!(r.detail.contains("disabled"));
    // The connection survives 400s: a good request still works.
    let ok = c.optimize(&req("gemm")).expect("follow-up");
    assert_eq!(ok.status, "ok");
    svc.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_health_and_clean_shutdown() {
    let (svc, dir) = start("stats", |_| {});
    let mut c = client(&svc);
    c.health().expect("health");
    let _ = c.optimize(&req("gemm")).expect("miss");
    let _ = c.optimize(&req("gemm")).expect("hit");
    let stats = c.stats().expect("stats");
    let rec = parse_record(&stats).expect("stats is flat JSON");
    assert_eq!(rec.num_field("hit"), Some(1.0));
    assert_eq!(rec.num_field("miss"), Some(1.0));
    assert_eq!(rec.num_field("panics_contained"), Some(0.0));
    c.shutdown().expect("shutdown acked");
    svc.join(); // returns promptly because /shutdown stopped the loops
    let _ = std::fs::remove_dir_all(dir);
}
