//! Crash-safety of the persistent schedule cache across daemon
//! restarts: truncated, bit-flipped and wrong-version entries must be
//! quarantined (not served, not deleted) and the affected requests must
//! re-optimize rather than error.

use polymix_service::daemon::{Service, ServiceConfig};
use polymix_service::proto::{OptimizeRequest, Served};
use polymix_service::{Client, Fault, ShardedCache};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "polymix_cachecorrupt_{tag}_{}_{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(dir: &Path) -> Service {
    Service::start(ServiceConfig {
        cache_dir: dir.to_path_buf(),
        allow_inject: true,
        ..ServiceConfig::default()
    })
    .expect("daemon starts")
}

fn req(kernel: &str) -> OptimizeRequest {
    OptimizeRequest {
        kernel: kernel.into(),
        deadline_ms: 30_000,
        ..OptimizeRequest::default()
    }
}

/// All persisted `.entry` files under the cache root, sorted for
/// determinism.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(shards) = std::fs::read_dir(dir) else {
        return out;
    };
    for s in shards.flatten() {
        if !s.file_name().to_string_lossy().starts_with('s') {
            continue;
        }
        let Ok(files) = std::fs::read_dir(s.path()) else {
            continue;
        };
        for f in files.flatten() {
            if f.path().extension().is_some_and(|e| e == "entry") {
                out.push(f.path());
            }
        }
    }
    out.sort();
    out
}

fn quarantine_files(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir.join("quarantine"))
        .map(|rd| {
            rd.flatten()
                .map(|f| f.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn corrupt_entries_are_quarantined_and_requests_reoptimize() {
    let dir = temp_dir("mixed");
    let _ = std::fs::remove_dir_all(&dir);

    // Populate three distinct entries, then stop the daemon.
    let svc = start(&dir);
    let mut c = Client::connect(svc.addr, Duration::from_secs(30)).expect("connect");
    for kernel in ["gemm", "atax", "bicg"] {
        let r = c.optimize(&req(kernel)).expect("populate");
        assert_eq!(r.served, Some(Served::Miss));
    }
    svc.stop();
    let files = entry_files(&dir);
    assert_eq!(files.len(), 3, "three persisted entries expected");

    // Corrupt all three, one per failure family.
    let truncate_victim = &files[0];
    let bytes = std::fs::read(truncate_victim).expect("read entry");
    std::fs::write(truncate_victim, &bytes[..bytes.len() / 2]).expect("truncate");

    let flip_victim = &files[1];
    let mut bytes = std::fs::read(flip_victim).expect("read entry");
    let n = bytes.len();
    bytes[n - 5] ^= 0x40;
    std::fs::write(flip_victim, &bytes).expect("bit flip");

    let version_victim = &files[2];
    let text = String::from_utf8(std::fs::read(version_victim).expect("read entry"))
        .expect("entry is utf-8");
    std::fs::write(version_victim, text.replace("polymix-cache v2", "polymix-cache v1"))
        .expect("version rewrite");

    // Restart: every corrupt entry is refused and moved aside.
    let svc = start(&dir);
    let quarantined = quarantine_files(&dir);
    assert_eq!(
        quarantined.len(),
        3,
        "all corrupt entries quarantined, got {quarantined:?}"
    );
    assert!(quarantined.iter().any(|f| f.ends_with(".truncated")));
    assert!(quarantined.iter().any(|f| f.ends_with(".checksum")));
    assert!(quarantined.iter().any(|f| f.ends_with(".wrong-version")));
    assert!(entry_files(&dir).is_empty(), "no poisoned entry remains live");

    // The affected requests re-optimize (miss, not an error) and
    // re-persist good entries.
    let mut c = Client::connect(svc.addr, Duration::from_secs(30)).expect("connect");
    for kernel in ["gemm", "atax", "bicg"] {
        let r = c.optimize(&req(kernel)).expect("re-optimize");
        assert_eq!(r.status, "ok");
        assert_eq!(r.served, Some(Served::Miss), "{kernel} must re-optimize");
        assert!(!r.degraded);
    }
    svc.stop();
    assert_eq!(entry_files(&dir).len(), 3, "fresh entries re-persisted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_torn_write_serves_now_quarantines_on_restart() {
    let dir = temp_dir("torn");
    let _ = std::fs::remove_dir_all(&dir);

    let svc = start(&dir);
    let mut c = Client::connect(svc.addr, Duration::from_secs(30)).expect("connect");
    let mut r = req("mvt");
    r.inject = Fault::TornWrite;
    let first = c.optimize(&r).expect("torn-write miss");
    assert_eq!(first.served, Some(Served::Miss));
    // Same daemon still serves the entry from memory.
    r.inject = Fault::None;
    let hit = c.optimize(&r).expect("memory hit");
    assert_eq!(hit.served, Some(Served::Hit));
    svc.stop();

    // The restart detects the short payload and quarantines it; the
    // request becomes a clean miss.
    let svc = start(&dir);
    let quarantined = quarantine_files(&dir);
    assert_eq!(quarantined.len(), 1, "torn entry quarantined: {quarantined:?}");
    assert!(quarantined[0].ends_with(".truncated") || quarantined[0].ends_with(".checksum"));
    let mut c = Client::connect(svc.addr, Duration::from_secs(30)).expect("connect");
    let again = c.optimize(&r).expect("re-optimize after quarantine");
    assert_eq!(again.served, Some(Served::Miss));
    svc.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_reports_quarantine_count_via_open() {
    // The same behavior at the ShardedCache layer, without a daemon:
    // open → corrupt → reopen → quarantined_on_load.
    let dir = temp_dir("unit");
    let _ = std::fs::remove_dir_all(&dir);
    let svc = start(&dir);
    let mut c = Client::connect(svc.addr, Duration::from_secs(30)).expect("connect");
    c.optimize(&req("gemm")).expect("populate");
    svc.stop();
    let files = entry_files(&dir);
    assert_eq!(files.len(), 1);
    let bytes = std::fs::read(&files[0]).expect("read");
    std::fs::write(&files[0], &bytes[..10]).expect("truncate");
    let cache = ShardedCache::open(&dir, 16);
    assert_eq!(cache.quarantined_on_load, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
