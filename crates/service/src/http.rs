//! Minimal HTTP/1.1 over `std::net` — just enough for a local
//! optimization service: request line + headers + `Content-Length`
//! bodies, keep-alive, hard caps on every dimension an abusive or
//! broken client could otherwise grow without bound.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted head (request/status line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Longest accepted body. Requests are small; responses carry emitted
/// sources but stay far below this.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET` / `POST` / ….
    pub method: String,
    /// Request target (path only; the service ignores query strings).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: String,
    /// Client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a read failed; `Closed` (clean EOF between keep-alive requests)
/// is the one non-error case callers must distinguish.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Peer closed the connection at a request boundary.
    Closed,
    /// Read timed out.
    TimedOut,
    /// Anything else: malformed head, oversized body, mid-request EOF,
    /// transport error.
    Bad(String),
}

/// Reads one request from a buffered stream. The caller sets socket
/// timeouts; a timeout surfaces as [`ReadError::TimedOut`].
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut head = String::new();
    let mut first = true;
    let mut method = String::new();
    let mut path = String::new();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        head.clear();
        // `take` bounds how much a single newline-free line can buffer;
        // a line cut off at the cap comes back without its '\n'.
        match reader.by_ref().take(MAX_HEAD as u64).read_line(&mut head) {
            Ok(0) => {
                return Err(if first {
                    ReadError::Closed
                } else {
                    ReadError::Bad("eof mid-head".into())
                })
            }
            Ok(n) if n >= MAX_HEAD && !head.ends_with('\n') => {
                return Err(ReadError::Bad("head line too long".into()))
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ReadError::TimedOut)
            }
            Err(e) => return Err(ReadError::Bad(format!("read: {e}"))),
        }
        let line = head.trim_end();
        if first {
            if line.is_empty() {
                continue; // tolerate a stray CRLF between pipelined requests
            }
            let mut parts = line.split_whitespace();
            method = parts.next().unwrap_or("").to_string();
            path = parts.next().unwrap_or("").to_string();
            let version = parts.next().unwrap_or("");
            if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
                return Err(ReadError::Bad(format!("malformed request line {line:?}")));
            }
            keep_alive = version != "HTTP/1.0";
            first = false;
            continue;
        }
        if line.is_empty() {
            break; // end of headers
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header {line:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad content-length {value:?}")))?;
            if content_length > MAX_BODY {
                return Err(ReadError::Bad(format!("body too large ({content_length})")));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| ReadError::Bad(format!("body read: {e}")))?;
    }
    let body = String::from_utf8(body).map_err(|_| ReadError::Bad("body not utf-8".into()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Writes one JSON response. `keep_alive` echoes the client's intent.
pub fn write_response(
    stream: &mut TcpStream,
    code: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {conn}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response (status code + body) from a buffered stream.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String), String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read: {e}"))?;
    if line.is_empty() {
        return Err("connection closed before status line".into());
    }
    let code: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("eof mid-headers".into());
        }
        let t = line.trim_end();
        if t.is_empty() {
            break;
        }
        if let Some((name, value)) = t.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
                if content_length > MAX_BODY {
                    return Err(format!("body too large ({content_length})"));
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body read: {e}"))?;
    String::from_utf8(body)
        .map(|b| (code, b))
        .map_err(|_| "body not utf-8".into())
}

/// Applies read/write timeouts, shrugging off unsupported-platform
/// errors (a stuck socket then relies on the peer's own deadline).
/// Also disables Nagle: head and body go out as separate small writes,
/// and batching them against delayed ACKs adds ~40ms to every
/// request–response turn on loopback.
pub fn set_timeouts(stream: &TcpStream, read: Duration, write: Duration) {
    let _ = stream.set_read_timeout(Some(read));
    let _ = stream.set_write_timeout(Some(write));
    let _ = stream.set_nodelay(true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn request_roundtrip_keep_alive() {
        let (mut client, server) = pipe();
        client
            .write_all(
                b"POST /optimize HTTP/1.1\r\ncontent-length: 7\r\n\r\n{\"a\":1}POST /x HTTP/1.1\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
            )
            .expect("write");
        let mut reader = BufReader::new(server);
        let r1 = read_request(&mut reader).expect("first");
        assert_eq!((r1.method.as_str(), r1.path.as_str()), ("POST", "/optimize"));
        assert_eq!(r1.body, "{\"a\":1}");
        assert!(r1.keep_alive);
        let r2 = read_request(&mut reader).expect("second");
        assert_eq!(r2.path, "/x");
        assert!(!r2.keep_alive);
        drop(client);
        assert_eq!(read_request(&mut reader), Err(ReadError::Closed));
    }

    #[test]
    fn response_roundtrip() {
        let (client, mut server) = pipe();
        write_response(&mut server, 429, "{\"status\":\"shed\"}", false).expect("write");
        let mut reader = BufReader::new(client);
        let (code, body) = read_response(&mut reader).expect("read");
        assert_eq!(code, 429);
        assert_eq!(body, "{\"status\":\"shed\"}");
    }

    #[test]
    fn oversized_and_malformed_heads_are_rejected() {
        let (mut client, server) = pipe();
        client.write_all(b"BOGUS\r\n\r\n").expect("write");
        let mut reader = BufReader::new(server);
        assert!(matches!(
            read_request(&mut reader),
            Err(ReadError::Bad(_))
        ));
        let (mut client2, server2) = pipe();
        client2
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n")
            .expect("write");
        let mut reader2 = BufReader::new(server2);
        assert!(matches!(read_request(&mut reader2), Err(ReadError::Bad(_))));
    }
}
