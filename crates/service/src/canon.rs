//! SCoP canonicalization: a structural key invariant under renaming.
//!
//! The service's cache must collapse structurally identical requests —
//! millions of clients optimizing the same GEMM shape should hit one
//! entry — so the cache key is derived from the SCoP's *structure*
//! (iteration domains, access functions, original schedules, statement
//! bodies) and never from names. Array, statement, iterator, parameter
//! and SCoP names are all excluded from the serialization; parameter
//! *positions* are normalized by minimizing the serialization over every
//! parameter-column permutation, so `gemm(NI, NJ, NK)` and the same
//! kernel written over `(P, Q, R)` in any order produce the same key.
//!
//! The dependence relation is a function of domains + accesses +
//! schedules, so including those three captures "dependence shape"
//! without re-running the dependence analysis on the request path.

use polymix_ir::{Expr, Scop};
use std::fmt::Write as _;

/// Beyond this many structure parameters the permutation search
/// (factorial) is not worth it; the key falls back to the declared
/// parameter order and canonicalization is merely rename-invariant for
/// arrays/statements/iterators. PolyBench tops out at 4 parameters.
const MAX_PERM_PARAMS: usize = 6;

/// 64-bit FNV-1a (same construction as the bench binary cache, which
/// needs stability across std releases; `DefaultHasher` is explicitly
/// unspecified).
fn fnv1a64(data: &[u8], mut hash: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
// Second, independent offset basis for the high half of the 128-bit
// key (a single 64-bit hash over millions of cached shapes is too
// collision-prone to gate replay of certified artifacts).
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;

/// The structural identity of a SCoP: 128 bits over the canonical
/// serialization. Used to shard the cache, key the circuit breaker, and
/// (together with a request fingerprint) name persistent cache entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey {
    /// High 64 bits (independent FNV basis).
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl CanonicalKey {
    /// 32-hex-digit rendering, used in entry file names.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Shard index in `0..shards` (from the high bits, which FNV mixes
    /// best).
    pub fn shard(&self, shards: usize) -> usize {
        (self.hi % shards.max(1) as u64) as usize
    }
}

/// Canonicalizes `scop` and returns its structural key.
pub fn canonical_key(scop: &Scop) -> CanonicalKey {
    let s = canonical_form(scop);
    CanonicalKey {
        hi: fnv1a64(s.as_bytes(), FNV_OFFSET_B),
        lo: fnv1a64(s.as_bytes(), FNV_OFFSET_A),
    }
}

/// The canonical serialization: the lexicographically smallest rendering
/// over all parameter-column permutations (identity only above
/// [`MAX_PERM_PARAMS`]). Exposed for tests; production callers want
/// [`canonical_key`].
pub fn canonical_form(scop: &Scop) -> String {
    let p = scop.params.len();
    let mut best: Option<String> = None;
    let mut perm: Vec<usize> = (0..p).collect();
    if p <= MAX_PERM_PARAMS {
        permute_min(scop, &mut perm, 0, &mut best);
    }
    match best {
        Some(s) => s,
        None => serialize(scop, &perm),
    }
}

/// Heap's-style recursive enumeration of parameter permutations, keeping
/// the minimal serialization.
fn permute_min(scop: &Scop, perm: &mut Vec<usize>, k: usize, best: &mut Option<String>) {
    if k == perm.len() {
        let s = serialize(scop, perm);
        if best.as_ref().is_none_or(|b| s < *b) {
            *best = Some(s);
        }
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute_min(scop, perm, k + 1, best);
        perm.swap(k, i);
    }
}

/// Serializes the SCoP structure with parameter columns reordered by
/// `perm` (`perm[j]` = the original parameter shown in column `j`).
/// Names never enter the output.
fn serialize(scop: &Scop, perm: &[usize]) -> String {
    let p = perm.len();
    let mut out = String::with_capacity(1024);
    let _ = write!(out, "scop p={p};");
    // Parameter lower bounds travel with their column.
    for &orig in perm {
        let lb = scop.param_lower_bounds.get(orig).copied().unwrap_or(1);
        let _ = write!(out, "lb{lb};");
    }
    for a in &scop.arrays {
        out.push_str("arr");
        for dim in &a.dims {
            push_param_row(&mut out, dim, perm);
        }
        let _ = write!(out, "b{};", a.elem_bytes);
    }
    for st in &scop.statements {
        let d = st.dim;
        let _ = write!(out, "stmt d={d};dom");
        // Constraint order is not structural: normalize by sorting the
        // permuted renderings.
        let mut rows: Vec<String> = st
            .domain
            .constraints()
            .iter()
            .map(|c| {
                let mut r = String::new();
                let _ = write!(r, "{:?}", c.op);
                push_stmt_row(&mut r, &c.row, d, perm);
                r
            })
            .collect();
        rows.sort();
        for r in rows {
            out.push_str(&r);
        }
        let _ = write!(out, "w{}", st.write.array.0);
        for row in &st.write.map {
            push_stmt_row(&mut out, row, d, perm);
        }
        out.push_str(";body");
        push_expr(&mut out, &st.body, d, perm);
        out.push_str(";sch b");
        for b in &st.schedule.beta {
            let _ = write!(out, "{b},");
        }
        out.push('a');
        for r in 0..st.schedule.alpha.rows() {
            push_plain_row(&mut out, st.schedule.alpha.row(r));
        }
        out.push('g');
        for row in &st.schedule.gamma {
            push_param_row(&mut out, row, perm);
        }
        out.push(';');
    }
    out
}

/// A row laid out `[params | 1]`: permute the parameter segment.
fn push_param_row(out: &mut String, row: &[i64], perm: &[usize]) {
    out.push('[');
    for &orig in perm {
        let _ = write!(out, "{},", row.get(orig).copied().unwrap_or(0));
    }
    let _ = write!(out, "|{}]", row.last().copied().unwrap_or(0));
}

/// A statement-local row `[iters | params | 1]` (or `[iters | params]`
/// for domain constraint rows whose constant rides separately — the
/// caller passes whatever tail exists): iterator columns verbatim, then
/// the permuted parameter segment, then any remaining tail columns.
fn push_stmt_row(out: &mut String, row: &[i64], d: usize, perm: &[usize]) {
    let p = perm.len();
    out.push('[');
    for c in row.iter().take(d) {
        let _ = write!(out, "{c},");
    }
    out.push('|');
    for &orig in perm {
        let _ = write!(out, "{},", row.get(d + orig).copied().unwrap_or(0));
    }
    out.push('|');
    for c in row.iter().skip(d + p) {
        let _ = write!(out, "{c},");
    }
    out.push(']');
}

/// A row with no parameter columns (schedule α rows over iterators).
fn push_plain_row(out: &mut String, row: &[i64]) {
    out.push('[');
    for c in row {
        let _ = write!(out, "{c},");
    }
    out.push(']');
}

/// Expression skeleton: operators, array ids, subscript rows, literal
/// bit patterns. Iterator indices are positional (already canonical);
/// parameter references are shown at their permuted position.
fn push_expr(out: &mut String, e: &Expr, d: usize, perm: &[usize]) {
    match e {
        Expr::Const(c) => {
            let _ = write!(out, "c{:016x}", c.to_bits());
        }
        Expr::Iter(k) => {
            let _ = write!(out, "i{k}");
        }
        Expr::Param(k) => {
            let pos = perm.iter().position(|&o| o == *k).unwrap_or(*k);
            let _ = write!(out, "p{pos}");
        }
        Expr::Read { array, subs } => {
            let _ = write!(out, "r{}", array.0);
            for row in subs {
                push_stmt_row(out, row, d, perm);
            }
        }
        Expr::Bin(op, a, b) => {
            let _ = write!(out, "({:?}", op);
            push_expr(out, a, d, perm);
            out.push(' ');
            push_expr(out, b, d, perm);
            out.push(')');
        }
        Expr::Un(op, a) => {
            let _ = write!(out, "({:?}", op);
            push_expr(out, a, d, perm);
            out.push(')');
        }
    }
}

/// A 64-bit fingerprint over the request-side knobs that select *which*
/// optimized artifact is wanted for a canonical shape: variant, tile
/// sizes, unroll factors, concrete parameter values (emitted sources are
/// parameter-specialized until the parametric-bounds work lands), thread
/// count and timing reps. Together with the [`CanonicalKey`] this names
/// one persistent cache entry.
pub fn request_fingerprint(
    variant: &str,
    tile: i64,
    time_tile: i64,
    unroll: (i64, i64),
    params: &[i64],
    threads: usize,
    reps: usize,
) -> u64 {
    let mut s = String::with_capacity(64);
    let _ = write!(
        s,
        "v={variant};t={tile};tt={time_tile};u={},{};th={threads};r={reps};p=",
        unroll.0, unroll.1
    );
    for v in params {
        let _ = write!(s, "{v},");
    }
    fnv1a64(s.as_bytes(), FNV_OFFSET_A)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ir::{con, ix, par, ScopBuilder};
    use polymix_polybench::all_kernels;

    /// `C[i][j] += A[i][k] * B[k][j]` over (rows, cols, inner) with the
    /// given parameter names and declaration order.
    fn gemm_like(names: [&str; 3], order: [usize; 3]) -> Scop {
        // `order` maps semantic roles (NI, NJ, NK) to declaration slots.
        let mut decl = ["", "", ""];
        let mut defaults = [0i64; 3];
        let sizes = [8, 9, 10];
        for (role, &slot) in order.iter().enumerate() {
            decl[slot] = names[role];
            defaults[slot] = sizes[role];
        }
        let mut b = ScopBuilder::new("anon", &decl, &defaults);
        let ni = par(names[0]);
        let nj = par(names[1]);
        let nk = par(names[2]);
        let a = b.array_dims("A", vec![ni.clone(), nk.clone()]);
        let c = b.array_dims("B", vec![nk.clone(), nj.clone()]);
        let out = b.array_dims("C", vec![ni.clone(), nj.clone()]);
        b.enter("i", con(0), ni);
        b.enter("j", con(0), nj);
        b.enter("k", con(0), nk);
        let rhs = Expr::mul(
            b.rd(a, &[ix("i"), ix("k")]),
            b.rd(c, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S", out, &[ix("i"), ix("j")], polymix_ir::BinOp::Add, rhs);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("scop builds")
    }

    #[test]
    fn key_is_invariant_under_parameter_renaming_and_reordering() {
        let base = gemm_like(["NI", "NJ", "NK"], [0, 1, 2]);
        let renamed = gemm_like(["P", "Q", "R"], [0, 1, 2]);
        let reordered = gemm_like(["NI", "NJ", "NK"], [2, 0, 1]);
        let k0 = canonical_key(&base);
        assert_eq!(k0, canonical_key(&renamed), "renaming must not change the key");
        assert_eq!(
            k0,
            canonical_key(&reordered),
            "parameter declaration order must not change the key"
        );
    }

    #[test]
    fn key_distinguishes_structure() {
        let base = gemm_like(["NI", "NJ", "NK"], [0, 1, 2]);
        // Same loop nest, different body (add instead of mul).
        let mut b = ScopBuilder::new("anon", &["NI", "NJ", "NK"], &[8, 9, 10]);
        let ni = par("NI");
        let nj = par("NJ");
        let nk = par("NK");
        let a = b.array_dims("A", vec![ni.clone(), nk.clone()]);
        let c = b.array_dims("B", vec![nk.clone(), nj.clone()]);
        let out = b.array_dims("C", vec![ni.clone(), nj.clone()]);
        b.enter("i", con(0), ni);
        b.enter("j", con(0), nj);
        b.enter("k", con(0), nk);
        let rhs = Expr::add(
            b.rd(a, &[ix("i"), ix("k")]),
            b.rd(c, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S", out, &[ix("i"), ix("j")], polymix_ir::BinOp::Add, rhs);
        b.exit();
        b.exit();
        b.exit();
        let other = b.finish().expect("scop builds");
        assert_ne!(canonical_key(&base), canonical_key(&other));
    }

    #[test]
    fn suite_kernels_have_distinct_keys() {
        let mut keys = std::collections::HashSet::new();
        for k in all_kernels() {
            let scop = (k.build)();
            assert!(
                keys.insert(canonical_key(&scop)),
                "{}: canonical key collides with another suite kernel",
                k.name
            );
        }
    }

    #[test]
    fn fingerprint_feeds_every_knob() {
        let f = |t, tt, u, p: &[i64]| request_fingerprint("poly+ast", t, tt, u, p, 4, 2);
        let base = f(32, 32, (1, 1), &[8, 8, 8]);
        assert_ne!(base, f(16, 32, (1, 1), &[8, 8, 8]));
        assert_ne!(base, f(32, 5, (1, 1), &[8, 8, 8]));
        assert_ne!(base, f(32, 32, (2, 2), &[8, 8, 8]));
        assert_ne!(base, f(32, 32, (1, 1), &[8, 8, 16]));
        assert_ne!(
            base,
            request_fingerprint("pocc", 32, 32, (1, 1), &[8, 8, 8], 4, 2)
        );
    }
}
