//! Per-canonical-key circuit breakers.
//!
//! A SCoP that repeatedly crashes or times out the optimizer must not be
//! allowed to burn a worker (and a queue slot, and a client's deadline)
//! on every arrival. After `threshold` consecutive failures the key's
//! breaker **opens**: requests short-circuit straight to the
//! identity-schedule fallback — always legal, milliseconds to produce —
//! without ever touching the scheduler. After `probe_after` short-
//! circuited requests the breaker goes **half-open** and lets exactly
//! one probe through; a success closes it, a failure re-opens it.
//!
//! The design is request-counted rather than wall-clock-based so tests
//! (and fault-injected load runs) are deterministic.

use crate::canon::CanonicalKey;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Breaker policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// Short-circuited requests after which one probe is admitted.
    pub probe_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 2,
            probe_after: 16,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum State {
    /// Healthy; counts consecutive failures.
    Closed { fails: u32 },
    /// Pinned to the identity fallback; counts short-circuits until the
    /// next probe.
    Open { shorted: u32 },
    /// One probe is in flight; everyone else still short-circuits.
    HalfOpen,
}

/// What the breaker tells the admission path to do with a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run the optimizer normally.
    Optimize,
    /// Serve the identity fallback without optimizing.
    ShortCircuit,
}

/// The breaker table (one breaker per canonical key, created lazily).
#[derive(Default)]
pub struct Breakers {
    cfg: BreakerConfig,
    table: Mutex<HashMap<CanonicalKey, State>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Breakers {
    /// A table with the given policy.
    pub fn new(cfg: BreakerConfig) -> Breakers {
        Breakers {
            cfg,
            table: Mutex::new(HashMap::new()),
        }
    }

    /// Admission decision for one arriving request, advancing the
    /// breaker's counters.
    pub fn admit(&self, key: CanonicalKey) -> Admission {
        let mut t = lock(&self.table);
        let state = t.entry(key).or_insert(State::Closed { fails: 0 });
        match *state {
            State::Closed { .. } => Admission::Optimize,
            State::HalfOpen => Admission::ShortCircuit,
            State::Open { shorted } => {
                if shorted + 1 >= self.cfg.probe_after {
                    *state = State::HalfOpen;
                    Admission::Optimize
                } else {
                    *state = State::Open {
                        shorted: shorted + 1,
                    };
                    Admission::ShortCircuit
                }
            }
        }
    }

    /// Records the outcome of an admitted optimization.
    pub fn record(&self, key: CanonicalKey, success: bool) {
        let mut t = lock(&self.table);
        let state = t.entry(key).or_insert(State::Closed { fails: 0 });
        *state = match (*state, success) {
            (_, true) => State::Closed { fails: 0 },
            (State::Closed { fails }, false) => {
                if fails + 1 >= self.cfg.threshold {
                    State::Open { shorted: 0 }
                } else {
                    State::Closed { fails: fails + 1 }
                }
            }
            // A failed half-open probe re-opens a full cooldown window.
            (State::HalfOpen, false) | (State::Open { .. }, false) => State::Open { shorted: 0 },
        };
    }

    /// True when the key is currently pinned to the fallback (open or
    /// half-open with the probe taken). Diagnostic only.
    pub fn is_open(&self, key: CanonicalKey) -> bool {
        matches!(
            lock(&self.table).get(&key),
            Some(State::Open { .. } | State::HalfOpen)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: CanonicalKey = CanonicalKey { hi: 7, lo: 9 };

    #[test]
    fn opens_after_threshold_and_probes_after_cooldown() {
        let b = Breakers::new(BreakerConfig {
            threshold: 2,
            probe_after: 3,
        });
        assert_eq!(b.admit(KEY), Admission::Optimize);
        b.record(KEY, false);
        assert_eq!(b.admit(KEY), Admission::Optimize);
        b.record(KEY, false); // second consecutive failure -> open
        assert!(b.is_open(KEY));
        assert_eq!(b.admit(KEY), Admission::ShortCircuit);
        assert_eq!(b.admit(KEY), Admission::ShortCircuit);
        // Third arrival since opening: the probe.
        assert_eq!(b.admit(KEY), Admission::Optimize);
        // While the probe is out, others still short-circuit.
        assert_eq!(b.admit(KEY), Admission::ShortCircuit);
        // Probe succeeds: closed again.
        b.record(KEY, true);
        assert!(!b.is_open(KEY));
        assert_eq!(b.admit(KEY), Admission::Optimize);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breakers::new(BreakerConfig {
            threshold: 1,
            probe_after: 2,
        });
        assert_eq!(b.admit(KEY), Admission::Optimize);
        b.record(KEY, false); // open
        assert_eq!(b.admit(KEY), Admission::ShortCircuit);
        assert_eq!(b.admit(KEY), Admission::Optimize); // probe
        b.record(KEY, false); // probe fails -> open again, fresh window
        assert_eq!(b.admit(KEY), Admission::ShortCircuit);
        assert_eq!(b.admit(KEY), Admission::Optimize);
        b.record(KEY, true);
        assert!(!b.is_open(KEY));
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let b = Breakers::new(BreakerConfig {
            threshold: 2,
            probe_after: 2,
        });
        b.record(KEY, false);
        b.record(KEY, true);
        b.record(KEY, false);
        // Never two *consecutive* failures: still closed.
        assert!(!b.is_open(KEY));
        assert_eq!(b.admit(KEY), Admission::Optimize);
    }
}
