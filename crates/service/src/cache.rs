//! The sharded, crash-safe schedule cache.
//!
//! Two layers share one namespace keyed by `(CanonicalKey, fingerprint)`:
//! an in-memory map (per-shard mutex, `Arc`-shared entries) serving the
//! hot path, and a persistent directory tree surviving restarts:
//!
//! ```text
//! <root>/s<shard>/<keyhex>-<fphex>.entry     one cache entry
//! <root>/quarantine/<file>.<reason>          corrupt entries, kept for autopsy
//! ```
//!
//! Entry files are self-verifying: a fixed header line carries the format
//! version, the FNV-64 checksum of the payload, and the payload byte
//! length, so a torn write (crash between `write` and `rename`, bit rot,
//! a partial copy) is detected on reload and **quarantined** — moved
//! aside with a reason suffix, never parsed, never served, never deleted
//! (the operator may want the evidence). The request that misses a
//! quarantined entry simply re-optimizes and re-persists.
//!
//! Writes follow the sweep executor's discipline: a `create_new`
//! lockfile elects one writer per entry, the payload goes to a unique
//! temp file, and an atomic rename publishes it — a crash at any point
//! leaves either the old entry, no entry, or a temp file that is never
//! read as an entry.

use crate::canon::CanonicalKey;
use polymix_bench::sweep::{json_escape, parse_record};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Current entry-format version. Bumping it quarantines (not deletes)
/// every older entry on reload.
pub const CACHE_VERSION: u32 = 2;

/// Header magic; anything else in position one is `NotAnEntry`.
const MAGIC: &str = "polymix-cache";

/// One certified, servable optimization result.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Structural key of the SCoP this entry answers.
    pub key: CanonicalKey,
    /// Request fingerprint (variant/knobs/params/threads/reps).
    pub fingerprint: u64,
    /// Kernel name at admission time (diagnostic only — the key is the
    /// identity).
    pub kernel: String,
    /// Variant label.
    pub variant: String,
    /// The emitted, certified kernel source.
    pub source: String,
    /// Wall-clock seconds the original optimization took (what the hit
    /// saves).
    pub sched_s: f64,
}

/// Why a persistent entry was refused and quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// The file does not even start with the magic header.
    NotAnEntry,
    /// Header version differs from [`CACHE_VERSION`].
    WrongVersion,
    /// Payload shorter than the header's byte length (torn write).
    Truncated,
    /// Payload checksum mismatch (bit flip / interleaved write).
    ChecksumMismatch,
    /// Checksum passed but the payload fields don't parse — a header
    /// copied onto the wrong payload, or an encoder bug.
    BadPayload,
}

impl Corruption {
    /// Short suffix appended to the quarantined file name.
    pub fn reason(self) -> &'static str {
        match self {
            Corruption::NotAnEntry => "not-an-entry",
            Corruption::WrongVersion => "wrong-version",
            Corruption::Truncated => "truncated",
            Corruption::ChecksumMismatch => "checksum",
            Corruption::BadPayload => "bad-payload",
        }
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Renders the on-disk bytes for `entry`.
pub fn encode_entry(entry: &CacheEntry) -> Vec<u8> {
    let mut payload = String::with_capacity(entry.source.len() + 256);
    let _ = write!(
        payload,
        "{{\"key\":\"{}\",\"fingerprint\":\"{:016x}\",\"kernel\":\"{}\",\"variant\":\"{}\",\"sched_s\":{:e},\"source\":\"{}\"}}",
        entry.key.hex(),
        entry.fingerprint,
        json_escape(&entry.kernel),
        json_escape(&entry.variant),
        entry.sched_s,
        json_escape(&entry.source),
    );
    let mut out = String::with_capacity(payload.len() + 64);
    let _ = writeln!(
        out,
        "{MAGIC} v{CACHE_VERSION} crc={:016x} len={}",
        fnv1a64(payload.as_bytes()),
        payload.len()
    );
    out.push_str(&payload);
    out.into_bytes()
}

/// Parses and verifies on-disk bytes. `Err` carries why the entry must
/// be quarantined.
pub fn decode_entry(bytes: &[u8]) -> Result<CacheEntry, Corruption> {
    let text = std::str::from_utf8(bytes).map_err(|_| Corruption::NotAnEntry)?;
    let (header, payload) = text.split_once('\n').ok_or(Corruption::NotAnEntry)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(Corruption::NotAnEntry);
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or(Corruption::NotAnEntry)?;
    if version != CACHE_VERSION {
        return Err(Corruption::WrongVersion);
    }
    let crc = parts
        .next()
        .and_then(|v| v.strip_prefix("crc="))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or(Corruption::NotAnEntry)?;
    let len = parts
        .next()
        .and_then(|v| v.strip_prefix("len="))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or(Corruption::NotAnEntry)?;
    if payload.len() < len {
        return Err(Corruption::Truncated);
    }
    let payload = &payload[..len];
    if fnv1a64(payload.as_bytes()) != crc {
        return Err(Corruption::ChecksumMismatch);
    }
    let rec = parse_record(payload).ok_or(Corruption::BadPayload)?;
    let key_hex = rec.str_field("key").ok_or(Corruption::BadPayload)?;
    if key_hex.len() != 32 {
        return Err(Corruption::BadPayload);
    }
    let (hi_hex, lo_hex) = key_hex.split_at(16);
    let key = CanonicalKey {
        hi: u64::from_str_radix(hi_hex, 16).map_err(|_| Corruption::BadPayload)?,
        lo: u64::from_str_radix(lo_hex, 16).map_err(|_| Corruption::BadPayload)?,
    };
    let fingerprint = rec
        .str_field("fingerprint")
        .and_then(|f| u64::from_str_radix(f, 16).ok())
        .ok_or(Corruption::BadPayload)?;
    Ok(CacheEntry {
        key,
        fingerprint,
        kernel: rec.str_field("kernel").unwrap_or("?").to_string(),
        variant: rec.str_field("variant").unwrap_or("?").to_string(),
        source: rec
            .str_field("source")
            .ok_or(Corruption::BadPayload)?
            .to_string(),
        sched_s: rec.num_field("sched_s").unwrap_or(0.0),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Shard {
    map: Mutex<HashMap<(CanonicalKey, u64), Arc<CacheEntry>>>,
}

/// The sharded cache: in-memory maps backed by the persistent tree.
pub struct ShardedCache {
    root: PathBuf,
    shards: Vec<Shard>,
    /// Entries refused and moved aside during [`ShardedCache::open`].
    pub quarantined_on_load: u64,
    write_failures: AtomicU64,
}

impl ShardedCache {
    /// Opens (creating directories as needed) and eagerly loads every
    /// persistent entry, quarantining corrupt ones with a warning. An
    /// unreadable root degrades to a memory-only cache rather than
    /// failing daemon startup.
    pub fn open(root: &Path, shards: usize) -> ShardedCache {
        let shards = shards.clamp(1, 256);
        let mut cache = ShardedCache {
            root: root.to_path_buf(),
            shards: (0..shards)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                })
                .collect(),
            quarantined_on_load: 0,
            write_failures: AtomicU64::new(0),
        };
        let mut quarantined = 0u64;
        for s in 0..shards {
            let dir = cache.shard_dir(s);
            if std::fs::create_dir_all(&dir).is_err() {
                continue;
            }
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for f in entries.flatten() {
                let path = f.path();
                let name = f.file_name();
                let Some(name) = name.to_str() else { continue };
                if !name.ends_with(".entry") {
                    // Leftover temp/lock files from a crashed writer are
                    // litter, not entries; reap them.
                    if name.contains(".tmp.") || name.ends_with(".lock") {
                        let _ = std::fs::remove_file(&path);
                    }
                    continue;
                }
                let Ok(bytes) = std::fs::read(&path) else {
                    continue;
                };
                match decode_entry(&bytes) {
                    Ok(entry) => {
                        let k = (entry.key, entry.fingerprint);
                        lock(&cache.shards[s].map).insert(k, Arc::new(entry));
                    }
                    Err(why) => {
                        cache.quarantine(&path, name, why);
                        quarantined += 1;
                    }
                }
            }
        }
        if quarantined > 0 {
            eprintln!(
                "warning: schedule cache {}: quarantined {quarantined} corrupt \
                 entr{} on reload; affected requests will re-optimize",
                root.display(),
                if quarantined == 1 { "y" } else { "ies" }
            );
        }
        cache.quarantined_on_load = quarantined;
        cache
    }

    fn shard_dir(&self, s: usize) -> PathBuf {
        self.root.join(format!("s{s:02}"))
    }

    fn entry_path(&self, key: CanonicalKey, fingerprint: u64) -> PathBuf {
        self.shard_dir(key.shard(self.shards.len()))
            .join(format!("{}-{fingerprint:016x}.entry", key.hex()))
    }

    /// Moves a refused entry into `quarantine/` with a reason suffix.
    /// Renames are atomic, so two daemons sharing the tree cannot both
    /// half-process one file.
    fn quarantine(&self, path: &Path, name: &str, why: Corruption) {
        let qdir = self.root.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        let dest = qdir.join(format!("{name}.{}", why.reason()));
        if std::fs::rename(path, &dest).is_err() {
            // Cross-device or permission trouble: fall back to removal so
            // the poisoned bytes can at least never be served.
            let _ = std::fs::remove_file(path);
        }
    }

    /// In-memory lookup; never touches the disk (reload happens once at
    /// [`ShardedCache::open`]).
    pub fn get(&self, key: CanonicalKey, fingerprint: u64) -> Option<Arc<CacheEntry>> {
        let shard = &self.shards[key.shard(self.shards.len())];
        lock(&shard.map).get(&(key, fingerprint)).cloned()
    }

    /// Admits `entry` to memory and (best-effort, lockfile + atomic
    /// rename) to disk. A persistence failure is counted, not fatal:
    /// the entry still serves from memory for this daemon's lifetime.
    pub fn insert(&self, entry: CacheEntry) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        let shard = &self.shards[entry.key.shard(self.shards.len())];
        lock(&shard.map).insert((entry.key, entry.fingerprint), Arc::clone(&entry));
        if let Err(e) = self.persist(&entry) {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "warning: schedule cache: could not persist {}: {e}",
                entry.key.hex()
            );
        }
        entry
    }

    /// Fault-injected torn persist ([`crate::fault::Fault::TornWrite`]):
    /// admits to memory normally but writes a truncated byte stream
    /// straight to the entry path — no temp file, no rename — modeling a
    /// daemon that died between `write` and flush. Serving continues
    /// from memory for this process; the next [`ShardedCache::open`]
    /// detects the short payload and quarantines the file.
    pub fn insert_torn(&self, entry: CacheEntry) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        let shard = &self.shards[entry.key.shard(self.shards.len())];
        lock(&shard.map).insert((entry.key, entry.fingerprint), Arc::clone(&entry));
        let path = self.entry_path(entry.key, entry.fingerprint);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let bytes = encode_entry(&entry);
        let cut = bytes.len() - bytes.len() / 3;
        let _ = std::fs::write(&path, &bytes[..cut.max(1)]);
        entry
    }

    /// Total persistence failures since open (surfaced in `/stats`).
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Number of shards (for stats / tests).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn persist(&self, entry: &CacheEntry) -> Result<(), String> {
        let path = self.entry_path(entry.key, entry.fingerprint);
        let Some(dir) = path.parent() else {
            return Err("entry path has no parent".into());
        };
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir: {e}"))?;
        let lock_path = path.with_extension("entry.lock");
        // `create_new` elects one writer; a loser simply skips — the
        // winner is writing identical certified bytes for this key.
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(()),
            Err(e) => return Err(format!("lockfile: {e}")),
        }
        let result = self.write_locked(&path, entry);
        let _ = std::fs::remove_file(&lock_path);
        result
    }

    fn write_locked(&self, path: &Path, entry: &CacheEntry) -> Result<(), String> {
        let bytes = encode_entry(entry);
        let tmp = path.with_extension(format!(
            "entry.tmp.{}_{}",
            std::process::id(),
            NEXT_TMP.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes).map_err(|e| format!("write: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("rename: {e}")
        })
    }
}

static NEXT_TMP: AtomicU64 = AtomicU64::new(0);

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kernel: &str) -> CacheEntry {
        CacheEntry {
            key: CanonicalKey {
                hi: 0x1122_3344_5566_7788,
                lo: 0x99aa_bbcc_ddee_ff00,
            },
            fingerprint: 0xdead_beef_0000_0001,
            kernel: kernel.into(),
            variant: "poly+ast".into(),
            source: "fn main() {\n    println!(\"x\\\"y\");\n}\n".into(),
            sched_s: 0.0123,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = entry("gemm");
        let bytes = encode_entry(&e);
        let back = decode_entry(&bytes).expect("decodes");
        assert_eq!(back, e);
    }

    #[test]
    fn decode_rejects_corruptions() {
        let e = entry("gemm");
        let good = encode_entry(&e);
        // Truncated payload.
        let torn = &good[..good.len() - 7];
        assert_eq!(decode_entry(torn), Err(Corruption::Truncated));
        // Single bit flip in the payload.
        let mut flipped = good.clone();
        let n = flipped.len();
        flipped[n - 10] ^= 0x01;
        assert_eq!(decode_entry(&flipped), Err(Corruption::ChecksumMismatch));
        // Wrong version.
        let text = String::from_utf8(good.clone()).unwrap();
        let old = text.replacen(&format!("v{CACHE_VERSION}"), "v1", 1);
        assert_eq!(decode_entry(old.as_bytes()), Err(Corruption::WrongVersion));
        // Not an entry at all.
        assert_eq!(decode_entry(b"hello\nworld"), Err(Corruption::NotAnEntry));
    }

    #[test]
    fn persistent_roundtrip_and_reload() {
        let dir = std::env::temp_dir().join(format!("polymix-cache-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = entry("gemm");
        {
            let cache = ShardedCache::open(&dir, 4);
            assert!(cache.get(e.key, e.fingerprint).is_none());
            cache.insert(e.clone());
            assert_eq!(cache.get(e.key, e.fingerprint).as_deref(), Some(&e));
        }
        // Fresh process image: reload from disk.
        let cache = ShardedCache::open(&dir, 4);
        assert_eq!(cache.quarantined_on_load, 0);
        assert_eq!(cache.get(e.key, e.fingerprint).as_deref(), Some(&e));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
