//! The optimization daemon: accept loop, bounded admission, request
//! coalescing, per-request deadlines with cooperative cancellation,
//! per-key circuit breakers, panic containment, and graceful
//! degradation to the identity schedule.
//!
//! # Request life cycle
//!
//! ```text
//! parse/validate ──400──▶ (bad-request)
//!   │
//!   ▼
//! canonical key + fingerprint
//!   │
//!   ├─ cache hit ───────────────▶ 200 served=hit        (no scheduler)
//!   ├─ breaker open ────────────▶ 200 served=breaker    (identity, degraded)
//!   ├─ flight in progress ──────▶ join it (served=coalesced)
//!   ├─ queue full ──────────────▶ 429 served=shed
//!   └─ enqueue new flight ──────▶ wait (served=miss)
//!         │
//!         ├─ done ok ───────────▶ 200 (entry admitted to cache)
//!         ├─ done err ──────────▶ 200 served=identity   (degraded)
//!         └─ deadline expired ──▶ 200 served=deadline   (degraded; last
//!                                  waiter cancels the flight)
//! ```
//!
//! Every outcome except a shed or a malformed request produces a
//! well-formed, runnable kernel source: degradation means *slower*, not
//! *broken*. Worker panics (real scheduler bugs or injected ones) are
//! contained per flight with `catch_unwind`; transient failures retry
//! with the sweep executor's backoff; deterministic failures strike the
//! key's circuit breaker so a poisoned SCoP stops burning workers.

use crate::breaker::{Admission, BreakerConfig, Breakers};
use crate::cache::{CacheEntry, ShardedCache};
use crate::canon::{canonical_key, request_fingerprint, CanonicalKey};
use crate::fault::Fault;
use crate::http::{self, ReadError, Request};
use crate::optimize::{identity_source, optimize, resolve_knobs, ResolvedKnobs};
use crate::proto::{OptimizeRequest, Served};
use polymix_bench::sweep::{json_escape, with_retries};
use polymix_ir::Scop;
use polymix_polybench::{kernel_by_name, Kernel};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Acquires a mutex, shrugging off poisoning (a panicking holder leaves
/// counters/maps in a consistent state here; same policy as the runtime
/// and sweep executor).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Daemon configuration. The defaults suit tests and the in-repo load
/// run; the binary exposes each as a flag.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Persistent cache root.
    pub cache_dir: PathBuf,
    /// Cache shard count.
    pub shards: usize,
    /// Optimizer worker threads.
    pub workers: usize,
    /// Bounded admission queue: flights waiting for a worker beyond
    /// this are shed with 429 instead of queued without bound.
    pub queue_cap: usize,
    /// Concurrent connection cap; excess connections get one 429.
    pub max_conns: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline_ms: u64,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Honor per-request `inject` directives (tests/load runs only).
    pub allow_inject: bool,
    /// Thread count baked into emitted kernels.
    pub emit_threads: usize,
    /// Timing reps baked into emitted kernels.
    pub reps: usize,
    /// Transient-failure retries per flight (backoff as in the sweep
    /// executor).
    pub retries: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: PathBuf::from("service_cache"),
            shards: 16,
            workers: 2,
            queue_cap: 64,
            max_conns: 64,
            default_deadline_ms: 10_000,
            breaker: BreakerConfig::default(),
            allow_inject: false,
            emit_threads: 2,
            reps: 1,
            retries: 2,
        }
    }
}

/// Monotonic outcome counters, all surfaced at `/stats`.
#[derive(Default)]
pub struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    identity: AtomicU64,
    breaker: AtomicU64,
    deadline: AtomicU64,
    shed: AtomicU64,
    bad_request: AtomicU64,
    panics_contained: AtomicU64,
}

impl Stats {
    fn bump(&self, served: Served) {
        let c = match served {
            Served::Hit => &self.hits,
            Served::Miss => &self.misses,
            Served::Coalesced => &self.coalesced,
            Served::Identity => &self.identity,
            Served::Breaker => &self.breaker,
            Served::Deadline => &self.deadline,
            Served::Shed => &self.shed,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Terminal state of one optimization flight, fanned out to every
/// waiter.
#[derive(Clone)]
enum FlightState {
    Pending,
    Done(Result<Arc<CacheEntry>, FlightError>),
}

/// Why a flight produced no entry.
#[derive(Clone)]
struct FlightError {
    detail: String,
    cancelled: bool,
}

/// One in-flight optimization, shared by every coalesced waiter.
struct Flight {
    /// Cooperative cancellation token, set by the last departing waiter.
    cancelled: AtomicBool,
    /// Requests currently waiting on this flight.
    waiters: AtomicUsize,
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            cancelled: AtomicBool::new(false),
            waiters: AtomicUsize::new(1),
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }
}

/// A queued unit of optimizer work.
struct Job {
    key: CanonicalKey,
    fingerprint: u64,
    flight: Arc<Flight>,
    kernel: Kernel,
    scop: Scop,
    knobs: ResolvedKnobs,
    fault: Fault,
}

/// Daemon state shared by the accept loop, connection threads and
/// optimizer workers.
struct Inner {
    cfg: ServiceConfig,
    addr: SocketAddr,
    cache: ShardedCache,
    breakers: Breakers,
    inflight: Mutex<HashMap<(CanonicalKey, u64), Arc<Flight>>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
    active_conns: AtomicUsize,
}

impl Inner {
    fn stats_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::with_capacity(320);
        let _ = write!(
            out,
            "{{\"status\":\"ok\",\"hit\":{},\"miss\":{},\"coalesced\":{},\"identity\":{},\
             \"breaker\":{},\"deadline\":{},\"shed\":{},\"bad_request\":{},\
             \"panics_contained\":{},\"cache_write_failures\":{},\"quarantined_on_load\":{},\
             \"queue_depth\":{},\"inflight\":{},\"shards\":{}}}",
            s.hits.load(Ordering::Relaxed),
            s.misses.load(Ordering::Relaxed),
            s.coalesced.load(Ordering::Relaxed),
            s.identity.load(Ordering::Relaxed),
            s.breaker.load(Ordering::Relaxed),
            s.deadline.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
            s.bad_request.load(Ordering::Relaxed),
            s.panics_contained.load(Ordering::Relaxed),
            self.cache.write_failures(),
            self.cache.quarantined_on_load,
            lock(&self.queue).len(),
            lock(&self.inflight).len(),
            self.cache.shard_count(),
        );
        out
    }
}

/// A running daemon. Dropping the handle does NOT stop it; call
/// [`Service::stop`] (or POST `/shutdown`) for a clean exit.
pub struct Service {
    inner: Arc<Inner>,
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Binds, loads the persistent cache, and starts the accept loop
    /// plus `cfg.workers` optimizer threads.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = ShardedCache::open(&cfg.cache_dir, cfg.shards);
        let breakers = Breakers::new(cfg.breaker);
        let inner = Arc::new(Inner {
            addr,
            cache,
            breakers,
            inflight: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            active_conns: AtomicUsize::new(0),
            cfg,
        });
        let mut workers = Vec::new();
        for i in 0..inner.cfg.workers.max(1) {
            let me = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("polymix-opt-{i}"))
                    .spawn(move || worker_loop(&me))?,
            );
        }
        let me = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("polymix-accept".into())
            .spawn(move || accept_loop(&me, &listener))?;
        Ok(Service {
            inner,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// Signals shutdown and unblocks the accept loop and idle workers.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        // Poke accept() awake so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the accept loop and every worker have exited.
    pub fn join(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// [`Service::shutdown`] + [`Service::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }

    /// Current `/stats` body (for tests without a client round-trip).
    pub fn stats_json(&self) -> String {
        self.inner.stats_json()
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if inner.active_conns.load(Ordering::SeqCst) >= inner.cfg.max_conns {
            // Over the connection cap: one polite 429, then close. The
            // body is well-formed so even a shed caller can parse it.
            inner.stats.bump(Served::Shed);
            let mut s = stream;
            http::set_timeouts(&s, Duration::from_secs(2), Duration::from_secs(2));
            let _ = http::write_response(&mut s, 429, &shed_body("connection limit"), false);
            continue;
        }
        inner.active_conns.fetch_add(1, Ordering::SeqCst);
        let me = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("polymix-conn".into())
            .spawn(move || {
                conn_loop(&me, stream);
                me.active_conns.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            inner.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn conn_loop(inner: &Arc<Inner>, stream: TcpStream) {
    http::set_timeouts(&stream, Duration::from_secs(60), Duration::from_secs(60));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Closed | ReadError::TimedOut) => break,
            Err(ReadError::Bad(detail)) => {
                inner.stats.bad_request.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    &mut stream,
                    400,
                    &error_body("bad-request", &detail),
                    false,
                );
                break;
            }
        };
        let keep = req.keep_alive && !inner.shutdown.load(Ordering::SeqCst);
        let (code, body, stop) = route(inner, &req);
        if http::write_response(&mut stream, code, &body, keep && !stop).is_err() {
            break;
        }
        if stop {
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            let _ = TcpStream::connect(inner.addr); // wake accept()
            break;
        }
        if !keep {
            break;
        }
    }
}

fn route(inner: &Arc<Inner>, req: &Request) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/optimize") => {
            let (code, body) = handle_optimize(inner, &req.body);
            (code, body, false)
        }
        ("GET", "/stats") => (200, inner.stats_json(), false),
        ("GET", "/health") => (200, "{\"status\":\"ok\"}".into(), false),
        ("POST", "/shutdown") => (
            200,
            "{\"status\":\"ok\",\"detail\":\"shutting down\"}".into(),
            true,
        ),
        ("GET" | "POST", _) => (404, error_body("error", "no such endpoint"), false),
        _ => (405, error_body("error", "method not allowed"), false),
    }
}

fn handle_optimize(inner: &Arc<Inner>, body: &str) -> (u16, String) {
    let t0 = Instant::now();
    let bad = |detail: &str| {
        inner.stats.bad_request.fetch_add(1, Ordering::Relaxed);
        (400, error_body("bad-request", detail))
    };
    let req = match OptimizeRequest::from_json(body) {
        Ok(r) => r,
        Err(d) => return bad(&d),
    };
    if req.inject != Fault::None && !inner.cfg.allow_inject {
        return bad("fault injection is disabled on this daemon");
    }
    let Some(kernel) = kernel_by_name(&req.kernel) else {
        return bad(&format!("unknown kernel {:?}", req.kernel));
    };
    let scop = (kernel.build)();
    let knobs = match resolve_knobs(&req, &kernel, &scop) {
        Ok(k) => k,
        Err(d) => return bad(&d),
    };
    let key = canonical_key(&scop);
    let fingerprint = request_fingerprint(
        knobs.variant.name(),
        knobs.tile,
        knobs.time_tile,
        knobs.unroll,
        &knobs.params,
        inner.cfg.emit_threads,
        inner.cfg.reps,
    );

    // 1. Cache: hits never touch the breaker, the queue or a worker.
    if let Some(entry) = inner.cache.get(key, fingerprint) {
        inner.stats.bump(Served::Hit);
        return ok_response(Served::Hit, key, false, &req, Some(&entry.source), t0, "");
    }

    // 2. Circuit breaker: a key that keeps failing is pinned to the
    // identity schedule until its probe window elapses.
    if inner.breakers.admit(key) == Admission::ShortCircuit {
        inner.stats.bump(Served::Breaker);
        return degrade(
            inner,
            &kernel,
            &scop,
            &knobs,
            Served::Breaker,
            key,
            &req,
            t0,
            "circuit open for this SCoP; identity schedule served",
        );
    }

    // 3. Coalesce onto an in-flight optimization of the same entry, or
    // admit a new flight into the bounded queue.
    let deadline = Duration::from_millis(if req.deadline_ms > 0 {
        req.deadline_ms
    } else {
        inner.cfg.default_deadline_ms
    });
    let (flight, created) = {
        let mut inflight = lock(&inner.inflight);
        if let Some(f) = inflight.get(&(key, fingerprint)) {
            f.waiters.fetch_add(1, Ordering::SeqCst);
            (Arc::clone(f), false)
        } else {
            let f = Arc::new(Flight::new());
            let mut q = lock(&inner.queue);
            if q.len() >= inner.cfg.queue_cap {
                inner.stats.bump(Served::Shed);
                return (429, shed_body("admission queue full"));
            }
            q.push_back(Job {
                key,
                fingerprint,
                flight: Arc::clone(&f),
                kernel: kernel.clone(),
                scop: scop.clone(),
                knobs: knobs.clone(),
                fault: req.inject,
            });
            drop(q);
            inner.queue_cv.notify_one();
            inflight.insert((key, fingerprint), Arc::clone(&f));
            (f, true)
        }
    };

    // 4. Wait for the flight, bounded by the deadline.
    let waited = Instant::now();
    let mut st = lock(&flight.state);
    let outcome = loop {
        if let FlightState::Done(r) = &*st {
            break Some(r.clone());
        }
        let elapsed = waited.elapsed();
        if elapsed >= deadline {
            break None;
        }
        st = flight
            .cv
            .wait_timeout(st, deadline - elapsed)
            .unwrap_or_else(|e| e.into_inner())
            .0;
    };
    let still_pending = matches!(&*st, FlightState::Pending);
    drop(st);
    let remaining = flight.waiters.fetch_sub(1, Ordering::SeqCst) - 1;

    match outcome {
        Some(Ok(entry)) => {
            let served = if created {
                Served::Miss
            } else {
                Served::Coalesced
            };
            inner.stats.bump(served);
            ok_response(served, key, false, &req, Some(&entry.source), t0, "")
        }
        Some(Err(fe)) => {
            inner.stats.bump(Served::Identity);
            degrade(
                inner,
                &kernel,
                &scop,
                &knobs,
                Served::Identity,
                key,
                &req,
                t0,
                &fe.detail,
            )
        }
        None => {
            // Deadline expired. The last departing waiter cancels the
            // flight so an orphaned optimization stops burning a worker
            // at its next stage boundary.
            if remaining == 0 && still_pending {
                flight.cancelled.store(true, Ordering::SeqCst);
            }
            inner.stats.bump(Served::Deadline);
            degrade(
                inner,
                &kernel,
                &scop,
                &knobs,
                Served::Deadline,
                key,
                &req,
                t0,
                "deadline expired before optimization finished",
            )
        }
    }
}

/// Serves the identity-schedule fallback: a slower but always-correct
/// answer beats an error for every degradation path.
#[allow(clippy::too_many_arguments)]
fn degrade(
    inner: &Arc<Inner>,
    kernel: &Kernel,
    scop: &Scop,
    knobs: &ResolvedKnobs,
    served: Served,
    key: CanonicalKey,
    req: &OptimizeRequest,
    t0: Instant,
    detail: &str,
) -> (u16, String) {
    match identity_source(kernel, scop, &knobs.params, inner.cfg.reps) {
        Ok(src) => (
            200,
            ok_body(served, key, true, req.emit.then_some(src.as_str()), t0, detail),
        ),
        // Identity emission is infallible in practice; if it ever breaks
        // the daemon still answers with a well-formed error body.
        Err(e) => (500, error_body("error", &e)),
    }
}

#[allow(clippy::too_many_arguments)]
fn ok_response(
    served: Served,
    key: CanonicalKey,
    degraded: bool,
    req: &OptimizeRequest,
    source: Option<&str>,
    t0: Instant,
    detail: &str,
) -> (u16, String) {
    let src = if req.emit { source } else { None };
    (200, ok_body(served, key, degraded, src, t0, detail))
}

fn ok_body(
    served: Served,
    key: CanonicalKey,
    degraded: bool,
    source: Option<&str>,
    t0: Instant,
    detail: &str,
) -> String {
    let mut s = String::with_capacity(128 + source.map_or(0, str::len));
    let _ = write!(
        s,
        "{{\"status\":\"ok\",\"served\":\"{}\",\"key\":\"{}\",\"degraded\":{},\"elapsed_ms\":{:.3}",
        served.name(),
        key.hex(),
        u8::from(degraded),
        t0.elapsed().as_secs_f64() * 1e3
    );
    if !detail.is_empty() {
        let _ = write!(s, ",\"detail\":\"{}\"", json_escape(detail));
    }
    if let Some(src) = source {
        let _ = write!(s, ",\"source\":\"{}\"", json_escape(src));
    }
    s.push('}');
    s
}

fn shed_body(why: &str) -> String {
    format!(
        "{{\"status\":\"shed\",\"served\":\"shed\",\"detail\":\"{}\"}}",
        json_escape(why)
    )
}

fn error_body(status: &str, detail: &str) -> String {
    format!(
        "{{\"status\":\"{status}\",\"detail\":\"{}\"}}",
        json_escape(detail)
    )
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                // Drain-then-exit: queued flights still complete after a
                // shutdown request so no waiter is stranded.
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = inner
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        run_job(inner, &job);
    }
}

fn run_job(inner: &Arc<Inner>, job: &Job) {
    let result = if job.flight.cancelled.load(Ordering::SeqCst) {
        Err(FlightError {
            detail: "cancelled before scheduling started".into(),
            cancelled: true,
        })
    } else {
        execute(inner, job)
    };
    // Breaker accounting: only genuine optimizer verdicts count —
    // cancellation says nothing about the SCoP.
    match &result {
        Ok(_) => inner.breakers.record(job.key, true),
        Err(e) if !e.cancelled => inner.breakers.record(job.key, false),
        Err(_) => {}
    }
    {
        let mut st = lock(&job.flight.state);
        *st = FlightState::Done(result);
    }
    job.flight.cv.notify_all();
    lock(&inner.inflight).remove(&(job.key, job.fingerprint));
}

/// Runs one optimization with panic containment and transient-failure
/// retries, admitting the certified result to the cache.
fn execute(inner: &Arc<Inner>, job: &Job) -> Result<Arc<CacheEntry>, FlightError> {
    let cancelled = || job.flight.cancelled.load(Ordering::SeqCst);
    let attempt = || -> Result<crate::optimize::Optimized, String> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            optimize(
                &job.kernel,
                &job.scop,
                &job.knobs,
                inner.cfg.emit_threads,
                inner.cfg.reps,
                job.fault,
                &cancelled,
            )
        }));
        match caught {
            Ok(Ok(o)) => Ok(o),
            Ok(Err(e)) => Err(e.detail),
            Err(payload) => {
                inner
                    .stats
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                // `&*payload`, not `&payload`: a `&Box<dyn Any>` coerces
                // to `&dyn Any` *as the box*, and the &str downcast
                // inside would then never match.
                Err(format!("scheduler panicked: {}", panic_message(&*payload)))
            }
        }
    };
    match with_retries(inner.cfg.retries, attempt) {
        Ok(out) => {
            let entry = CacheEntry {
                key: job.key,
                fingerprint: job.fingerprint,
                kernel: job.kernel.name.to_string(),
                variant: job.knobs.variant.name().to_string(),
                source: out.source,
                sched_s: out.sched_s,
            };
            Ok(if job.fault == Fault::TornWrite {
                inner.cache.insert_torn(entry)
            } else {
                inner.cache.insert(entry)
            })
        }
        Err(detail) => Err(FlightError {
            cancelled: cancelled() || detail.starts_with("cancelled at stage boundary"),
            detail,
        }),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}
