//! # polymix-service — fault-tolerant optimization-as-a-service
//!
//! A long-running daemon that accepts SCoP optimization requests over a
//! local HTTP/1.1 socket and serves **certified schedules and emitted
//! kernel sources** from a persistent cache keyed by the SCoP's
//! *canonical structure* — two requests whose domains, accesses and
//! dependences match up to parameter renaming share one cache entry
//! ([`canon`]).
//!
//! The interesting part is what happens when things go wrong:
//!
//! - **Bounded admission** — a full optimizer queue sheds load with 429
//!   instead of queueing without bound ([`daemon`]).
//! - **Deadlines + cooperative cancellation** — each request carries a
//!   deadline; expiry serves the identity-schedule fallback and the last
//!   departing waiter cancels the in-flight optimization at its next
//!   stage boundary ([`optimize`]).
//! - **Request coalescing** — concurrent misses on one entry share a
//!   single optimization flight.
//! - **Panic containment + retry** — scheduler panics are caught per
//!   flight; transient failures retry with the sweep executor's
//!   backoff and classification.
//! - **Circuit breakers** — a SCoP that keeps failing deterministically
//!   is pinned to the identity schedule until a probe succeeds
//!   ([`breaker`]).
//! - **Crash-safe cache** — checksummed entry files, atomic-rename
//!   writes, corrupt-entry quarantine on reload ([`cache`]); and nothing
//!   enters the cache without re-certification by `polymix-verify`
//!   ([`polymix_verify::certify_for_cache`]).
//! - **Deterministic fault injection** — tests and load runs inject
//!   scheduler panics, slow compiles and torn cache writes per request
//!   ([`fault`]).
//!
//! The workspace is offline and std-only, so the daemon is built on
//! `std::net` + threads (no async runtime) and the wire format is the
//! sweep executor's flat-JSON grammar ([`proto`]).

pub mod breaker;
pub mod cache;
pub mod canon;
pub mod client;
pub mod daemon;
pub mod fault;
pub mod http;
pub mod optimize;
pub mod proto;

pub use breaker::{Admission, BreakerConfig, Breakers};
pub use cache::{CacheEntry, ShardedCache};
pub use canon::{canonical_key, request_fingerprint, CanonicalKey};
pub use client::Client;
pub use daemon::{Service, ServiceConfig};
pub use fault::Fault;
pub use proto::{OptimizeRequest, OptimizeResponse, Served};
