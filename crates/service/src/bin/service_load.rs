//! `service_load` — the daemon load test (EXPERIMENTS "service" row).
//!
//! Fires a deterministic mix of 10k+ requests at a daemon — steady-state
//! repeats that should hit the schedule cache, churn misses with unique
//! tile sizes, injected scheduler panics, injected slow compiles against
//! tight deadlines, torn cache writes, and outright malformed requests —
//! and reports whether every single one came back as a *well-formed*
//! response (the acceptance bar is ≥99.9%), plus latency percentiles and
//! the served-outcome histogram, into `BENCH_service.json`.
//!
//! ```text
//! cargo run --release -p polymix-service --bin service_load -- \
//!     --requests 10000 --conns 8 --out BENCH_service.json
//! ```
//!
//! Without `--addr` the daemon runs in-process (fresh cache dir wiped at
//! start unless `--keep-cache`); with `--addr` an external daemon is
//! exercised — it must have been started with `--allow-inject`.

use polymix_polybench::all_kernels;
use polymix_service::daemon::{Service, ServiceConfig};
use polymix_service::proto::{OptimizeRequest, Served};
use polymix_service::{Client, Fault};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// What the mix generator expects back for one request.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// 200 `ok` (any served kind) — or a 429 shed under pressure.
    Ok,
    /// 400 `bad-request`.
    Bad,
}

struct Plan {
    req: OptimizeRequest,
    expect: Expect,
}

/// Deterministic request mix by global index. Prime strides keep the
/// fault families from aliasing each other.
fn plan(i: usize, kernels: &[String]) -> Plan {
    let variants = ["poly+ast", "pocc", "native", "pocc+vect"];
    let kernel = kernels[i % kernels.len()].clone();
    let variant = variants[(i / kernels.len()) % variants.len()].to_string();
    // Malformed: unknown kernel → 400.
    if i % 199 == 0 {
        return Plan {
            req: OptimizeRequest {
                kernel: "no-such-kernel".into(),
                ..OptimizeRequest::default()
            },
            expect: Expect::Bad,
        };
    }
    // Injected scheduler panic, pinned to one "poison" kernel so its
    // breaker opens while the rest of the mix stays healthy.
    if i % 101 == 0 {
        return Plan {
            req: OptimizeRequest {
                kernel: kernels[0].clone(),
                variant: "poly+ast".into(),
                tile: 1_000_000 + i as i64, // unique → always a miss
                inject: Fault::Panic,
                ..OptimizeRequest::default()
            },
            expect: Expect::Ok,
        };
    }
    // Injected slow compile against a tight deadline → served=deadline,
    // and the orphaned flight is cooperatively cancelled.
    if i % 97 == 0 {
        return Plan {
            req: OptimizeRequest {
                kernel,
                variant,
                tile: 2_000_000 + i as i64,
                inject: Fault::Slow(150),
                deadline_ms: 15,
                ..OptimizeRequest::default()
            },
            expect: Expect::Ok,
        };
    }
    // Torn cache write: the entry serves fine from memory now and is
    // quarantined at the next daemon restart.
    if i % 89 == 0 {
        return Plan {
            req: OptimizeRequest {
                kernel,
                variant,
                tile: 3_000_000 + i as i64,
                inject: Fault::TornWrite,
                ..OptimizeRequest::default()
            },
            expect: Expect::Ok,
        };
    }
    // Churn: genuine unique-knob misses keeping the optimizer queue
    // honest (these are what sheds, if any, land on).
    if i % 83 == 0 {
        return Plan {
            req: OptimizeRequest {
                kernel,
                variant,
                tile: 4_000_000 + i as i64,
                deadline_ms: 30_000,
                ..OptimizeRequest::default()
            },
            expect: Expect::Ok,
        };
    }
    // Steady state: a small kernel × variant product that warms fast and
    // then hits the cache on every repeat.
    Plan {
        req: OptimizeRequest {
            kernel,
            variant,
            deadline_ms: 30_000,
            ..OptimizeRequest::default()
        },
        expect: Expect::Ok,
    }
}

/// Per-thread tallies, merged after join.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    well_formed: u64,
    malformed: u64,
    transport_errors: u64,
    served: [u64; 7], // indexed by served_slot()
    bad_request: u64,
    unexpected: u64,
}

fn served_slot(s: Served) -> usize {
    match s {
        Served::Hit => 0,
        Served::Miss => 1,
        Served::Coalesced => 2,
        Served::Identity => 3,
        Served::Breaker => 4,
        Served::Deadline => 5,
        Served::Shed => 6,
    }
}

const SERVED_NAMES: [&str; 7] = [
    "hit",
    "miss",
    "coalesced",
    "identity",
    "breaker",
    "deadline",
    "shed",
];

fn run_thread(addr: String, indices: Vec<usize>, kernels: Vec<String>) -> Tally {
    let mut tally = Tally::default();
    let timeout = Duration::from_secs(60);
    let mut client = Client::connect(addr.as_str(), timeout).ok();
    for i in indices {
        let p = plan(i, &kernels);
        let t0 = Instant::now();
        let resp = match client.as_mut() {
            Some(c) => c.optimize(&p.req),
            None => Err("not connected".into()),
        };
        let resp = match resp {
            Ok(r) => r,
            Err(_) => {
                // One reconnect attempt per failure; a dead daemon shows
                // up as a wall of transport errors, not a hang.
                tally.transport_errors += 1;
                client = Client::connect(addr.as_str(), timeout).ok();
                match client.as_mut().map(|c| c.optimize(&p.req)) {
                    Some(Ok(r)) => r,
                    _ => {
                        tally.malformed += 1;
                        continue;
                    }
                }
            }
        };
        tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let ok_shape = match p.expect {
            Expect::Bad => resp.http_status == 400 && resp.status == "bad-request",
            Expect::Ok => {
                (resp.http_status == 200 && resp.status == "ok" && resp.served.is_some())
                    || (resp.http_status == 429 && resp.status == "shed")
            }
        };
        if ok_shape {
            tally.well_formed += 1;
        } else {
            tally.unexpected += 1;
            tally.malformed += 1;
        }
        if resp.status == "bad-request" {
            tally.bad_request += 1;
        }
        if let Some(s) = resp.served {
            tally.served[served_slot(s)] += 1;
        } else if resp.http_status == 429 {
            tally.served[served_slot(Served::Shed)] += 1;
        }
    }
    tally
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let grab = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |key: &str| args.iter().any(|a| a == key);
    let requests: usize = grab("--requests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let conns: usize = grab("--conns")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let out = grab("--out").unwrap_or_else(|| "BENCH_service.json".into());
    let cache_dir = PathBuf::from(
        grab("--cache-dir").unwrap_or_else(|| "results/service_cache_load".into()),
    );

    let (addr, service) = match grab("--addr") {
        Some(a) => (a, None),
        None => {
            if !has("--keep-cache") {
                let _ = std::fs::remove_dir_all(&cache_dir);
            }
            let cfg = ServiceConfig {
                cache_dir: cache_dir.clone(),
                allow_inject: true,
                workers: grab("--workers").and_then(|s| s.parse().ok()).unwrap_or(2),
                queue_cap: grab("--queue-cap").and_then(|s| s.parse().ok()).unwrap_or(64),
                ..ServiceConfig::default()
            };
            // Contained injected panics would otherwise spam stderr.
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected scheduler panic"));
                if !injected {
                    previous(info);
                }
            }));
            match Service::start(cfg) {
                Ok(s) => (s.addr.to_string(), Some(s)),
                Err(e) => {
                    eprintln!("error: could not start in-process daemon: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let kernels: Vec<String> = all_kernels()
        .into_iter()
        .take(8)
        .map(|k| k.name.to_string())
        .collect();
    println!(
        "== service load: {requests} requests over {conns} connection(s) against {addr} \
         ({} kernels in the mix) ==",
        kernels.len()
    );

    let wall = Instant::now();
    let mut handles = Vec::new();
    for t in 0..conns {
        let indices: Vec<usize> = (0..requests).filter(|i| i % conns == t).collect();
        let addr = addr.clone();
        let kernels = kernels.clone();
        handles.push(std::thread::spawn(move || run_thread(addr, indices, kernels)));
    }
    let mut total = Tally::default();
    for h in handles {
        let Ok(t) = h.join() else {
            eprintln!("error: load thread panicked");
            std::process::exit(1);
        };
        total.latencies_ms.extend(t.latencies_ms);
        total.well_formed += t.well_formed;
        total.malformed += t.malformed;
        total.transport_errors += t.transport_errors;
        total.bad_request += t.bad_request;
        total.unexpected += t.unexpected;
        for (a, b) in total.served.iter_mut().zip(t.served) {
            *a += b;
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();

    let daemon_stats = Client::connect(addr.as_str(), Duration::from_secs(10))
        .and_then(|mut c| c.stats())
        .unwrap_or_else(|e| format!("{{\"status\":\"unreachable\",\"detail\":\"{e}\"}}"));
    if let Some(svc) = service {
        svc.stop();
    }

    total
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let lat = &total.latencies_ms;
    let (p50, p90, p99) = (
        percentile(lat, 0.50),
        percentile(lat, 0.90),
        percentile(lat, 0.99),
    );
    let rate = total.well_formed as f64 / requests as f64;

    println!(
        "well-formed {}/{} ({:.4}%), transport errors {}, unexpected shapes {}",
        total.well_formed,
        requests,
        rate * 100.0,
        total.transport_errors,
        total.unexpected
    );
    println!("latency ms: p50 {p50:.3}  p90 {p90:.3}  p99 {p99:.3}  ({:.0} req/s)", requests as f64 / wall_s);
    for (name, n) in SERVED_NAMES.iter().zip(total.served) {
        println!("  served {name:<10} {n}");
    }
    println!("daemon stats: {daemon_stats}");

    let mut served_fields = String::new();
    for (name, n) in SERVED_NAMES.iter().zip(total.served) {
        served_fields.push_str(&format!(",\"served_{name}\":{n}"));
    }
    let record = format!(
        "[\n  {{\"id\": \"service_load\", \"requests\": {requests}, \"conns\": {conns}, \
         \"wall_s\": {wall_s:.3}, \"rps\": {:.1}, \"well_formed\": {}, \
         \"well_formed_rate\": {rate:.6}, \"transport_errors\": {}, \
         \"bad_request\": {}, \"p50_ms\": {p50:.3}, \"p90_ms\": {p90:.3}, \
         \"p99_ms\": {p99:.3}{served_fields}}},\n  {daemon_stats}\n]\n",
        requests as f64 / wall_s,
        total.well_formed,
        total.transport_errors,
        total.bad_request,
    );
    if let Err(e) = std::fs::write(&out, record) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if rate < 0.999 {
        eprintln!("error: well-formed rate {rate:.6} below the 99.9% acceptance bar");
        std::process::exit(1);
    }
}
