//! `polymix_service` — the optimization daemon CLI.
//!
//! ```text
//! # serve (blocks until /shutdown or SIGKILL; prints the bound address)
//! cargo run --release -p polymix-service --bin polymix_service -- serve \
//!     --addr 127.0.0.1:0 --cache-dir results/service_cache --workers 2 \
//!     --addr-file /tmp/polymix_service.addr --allow-inject
//!
//! # one request against a running daemon
//! cargo run --release -p polymix-service --bin polymix_service -- req \
//!     --addr 127.0.0.1:7311 --kernel gemm --variant poly+ast --emit
//!
//! # stats / health / clean shutdown
//! ... -- stats --addr 127.0.0.1:7311
//! ... -- health --addr 127.0.0.1:7311
//! ... -- shutdown --addr 127.0.0.1:7311
//! ```
//!
//! `--addr-file` writes the bound `host:port` (after binding, so port 0
//! works) for scripted discovery — the CI smoke test uses it.

use polymix_service::daemon::{Service, ServiceConfig};
use polymix_service::proto::OptimizeRequest;
use polymix_service::{Client, Fault};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("serve");
    let grab = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |key: &str| args.iter().any(|a| a == key);
    let code = match cmd {
        "serve" => serve(&grab, &has),
        "req" => req(&grab, &has),
        "stats" => client_op(&grab, |c| c.stats().map(Some)),
        "health" => client_op(&grab, |c| c.health().map(|()| Some("ok".into()))),
        "shutdown" => client_op(&grab, |c| c.shutdown().map(|()| Some("ok".into()))),
        other => {
            eprintln!("unknown subcommand {other:?} (serve | req | stats | health | shutdown)");
            2
        }
    };
    std::process::exit(code);
}

fn serve(grab: &dyn Fn(&str) -> Option<String>, has: &dyn Fn(&str) -> bool) -> i32 {
    let num = |key: &str, default: usize| -> usize {
        grab(key).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let mut cfg = ServiceConfig {
        addr: grab("--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        allow_inject: has("--allow-inject"),
        ..ServiceConfig::default()
    };
    if let Some(dir) = grab("--cache-dir") {
        cfg.cache_dir = PathBuf::from(dir);
    }
    cfg.shards = num("--shards", cfg.shards);
    cfg.workers = num("--workers", cfg.workers);
    cfg.queue_cap = num("--queue-cap", cfg.queue_cap);
    cfg.max_conns = num("--max-conns", cfg.max_conns);
    cfg.default_deadline_ms = num("--deadline-ms", cfg.default_deadline_ms as usize) as u64;
    cfg.emit_threads = num("--threads", cfg.emit_threads);
    cfg.reps = num("--reps", cfg.reps);

    // Injected scheduler panics are contained per flight; keep their
    // default-hook noise out of the daemon log while letting real
    // panics print as usual.
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected scheduler panic"));
        if !injected {
            previous(info);
        }
    }));

    let service = match Service::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not start daemon: {e}");
            return 1;
        }
    };
    println!("polymix-service listening on {}", service.addr);
    if let Some(path) = grab("--addr-file") {
        if let Err(e) = std::fs::write(&path, service.addr.to_string()) {
            eprintln!("error: could not write --addr-file {path}: {e}");
            service.stop();
            return 1;
        }
    }
    service.join();
    println!("polymix-service stopped");
    0
}

fn req(grab: &dyn Fn(&str) -> Option<String>, has: &dyn Fn(&str) -> bool) -> i32 {
    let mut request = OptimizeRequest {
        kernel: grab("--kernel").unwrap_or_else(|| "gemm".into()),
        emit: has("--emit"),
        ..OptimizeRequest::default()
    };
    if let Some(v) = grab("--variant") {
        request.variant = v;
    }
    if let Some(d) = grab("--dataset") {
        request.dataset = d;
    }
    let num = |key: &str| grab(key).and_then(|s| s.parse::<i64>().ok()).unwrap_or(0);
    request.tile = num("--tile");
    request.time_tile = num("--time-tile");
    request.unroll = (num("--unroll-o"), num("--unroll-i"));
    request.deadline_ms = num("--deadline-ms").max(0) as u64;
    if let Some(spec) = grab("--inject") {
        match Fault::parse(&spec) {
            Some(f) => request.inject = f,
            None => {
                eprintln!("error: unknown --inject directive {spec:?}");
                return 2;
            }
        }
    }
    client_op(grab, move |c| {
        let resp = c.optimize(&request)?;
        let mut line = format!(
            "status={} served={} key={} degraded={} elapsed_ms={:.3}",
            resp.status,
            resp.served.map_or("-", |s| s.name()),
            if resp.key.is_empty() { "-" } else { &resp.key },
            u8::from(resp.degraded),
            resp.elapsed_ms
        );
        if !resp.detail.is_empty() {
            line.push_str(&format!(" detail={:?}", resp.detail));
        }
        if let Some(src) = &resp.source {
            line.push_str(&format!("\n{src}"));
        }
        Ok(Some(line))
    })
}

fn client_op(
    grab: &dyn Fn(&str) -> Option<String>,
    op: impl FnOnce(&mut Client) -> Result<Option<String>, String>,
) -> i32 {
    let Some(addr) = grab("--addr") else {
        eprintln!("error: --addr <host:port> is required");
        return 2;
    };
    let timeout = grab("--timeout-s")
        .and_then(|s| s.parse().ok())
        .unwrap_or(30u64);
    let mut client = match Client::connect(addr.as_str(), Duration::from_secs(timeout)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match op(&mut client) {
        Ok(Some(out)) => {
            println!("{out}");
            0
        }
        Ok(None) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
