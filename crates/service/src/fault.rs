//! Service-layer fault injection.
//!
//! Extends the runtime's deterministic fault-injection story to the
//! daemon: tests and load runs can make the *scheduler* panic, the
//! *compile* (optimization pipeline) run slow, or the *cache write* tear
//! mid-payload — the three failure families the robustness machinery
//! (panic containment + breaker, deadlines + cancellation, checksums +
//! quarantine) exists to absorb.
//!
//! Faults arrive per request via the `inject` field, honored only when
//! the daemon was started with `allow_inject` (never in a production
//! configuration), so injection is precise and deterministic rather than
//! probabilistic: the caller decides exactly which request fails how.

use std::time::Duration;

/// A parsed injection directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault.
    #[default]
    None,
    /// Panic inside the scheduling stage (contained by the worker).
    Panic,
    /// Sleep this long inside the scheduling stage, checking the
    /// cancellation token cooperatively (exercises deadlines).
    Slow(u64),
    /// Tear the persistent cache write for this entry: the bytes are
    /// truncated mid-payload before the atomic rename, as if the daemon
    /// died between `write` and flush. The checksum catches it on
    /// reload.
    TornWrite,
}

impl Fault {
    /// Parses `""`, `"panic"`, `"slow:<ms>"`, `"torn"`. Unknown
    /// directives are a client error, reported as `None` plus `false`.
    pub fn parse(spec: &str) -> Option<Fault> {
        match spec {
            "" => Some(Fault::None),
            "panic" => Some(Fault::Panic),
            "torn" => Some(Fault::TornWrite),
            other => other
                .strip_prefix("slow:")
                .and_then(|ms| ms.parse().ok())
                .map(Fault::Slow),
        }
    }

    /// Executes the scheduling-stage side of the fault: panics for
    /// [`Fault::Panic`], sleeps in 5ms cancellable slices for
    /// [`Fault::Slow`]. `cancelled` is polled between slices; returns
    /// `false` when the sleep was cut short by cancellation.
    // The panic *is* the injected fault (contained by the worker's
    // catch_unwind); everything else in this crate is abort-free and the
    // CI clippy gate enforces that.
    #[allow(clippy::panic)]
    pub fn apply_scheduling(&self, cancelled: &dyn Fn() -> bool) -> bool {
        match self {
            Fault::Panic => panic!("injected scheduler panic"),
            Fault::Slow(ms) => {
                let mut left = *ms;
                while left > 0 {
                    if cancelled() {
                        return false;
                    }
                    let step = left.min(5);
                    std::thread::sleep(Duration::from_millis(step));
                    left -= step;
                }
                true
            }
            Fault::None | Fault::TornWrite => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives() {
        assert_eq!(Fault::parse(""), Some(Fault::None));
        assert_eq!(Fault::parse("panic"), Some(Fault::Panic));
        assert_eq!(Fault::parse("slow:250"), Some(Fault::Slow(250)));
        assert_eq!(Fault::parse("torn"), Some(Fault::TornWrite));
        assert_eq!(Fault::parse("slow:x"), None);
        assert_eq!(Fault::parse("nonsense"), None);
    }

    #[test]
    fn slow_fault_is_cancellable() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(true);
        let t = std::time::Instant::now();
        let completed = Fault::Slow(10_000).apply_scheduling(&|| flag.load(Ordering::Relaxed));
        assert!(!completed, "cancelled sleep must report interruption");
        assert!(t.elapsed() < Duration::from_secs(2));
    }
}
