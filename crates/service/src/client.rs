//! A small blocking keep-alive client for the daemon — used by the
//! CLI's `req` subcommand, the load-test binary, and the end-to-end
//! tests.

use crate::http;
use crate::proto::{OptimizeRequest, OptimizeResponse};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One persistent connection to a daemon.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with the given I/O timeout on every read/write.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, String> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve: {e}"))?
            .next()
            .ok_or("address resolved to nothing")?;
        let stream =
            TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
        http::set_timeouts(&stream, timeout, timeout);
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(Client { stream, reader })
    }

    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), String> {
        use std::io::Write as _;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: polymix\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream
            .write_all(head.as_bytes())
            .and_then(|()| self.stream.write_all(body.as_bytes()))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send: {e}"))?;
        http::read_response(&mut self.reader)
    }

    /// Sends one optimization request and parses the typed response.
    pub fn optimize(&mut self, req: &OptimizeRequest) -> Result<OptimizeResponse, String> {
        let (code, body) = self.round_trip("POST", "/optimize", &req.to_json())?;
        OptimizeResponse::from_json(code, &body)
    }

    /// Fetches the raw `/stats` body.
    pub fn stats(&mut self) -> Result<String, String> {
        let (code, body) = self.round_trip("GET", "/stats", "")?;
        if code != 200 {
            return Err(format!("stats returned {code}: {body}"));
        }
        Ok(body)
    }

    /// Health probe; `Ok` iff the daemon answered 200.
    pub fn health(&mut self) -> Result<(), String> {
        let (code, body) = self.round_trip("GET", "/health", "")?;
        if code != 200 {
            return Err(format!("health returned {code}: {body}"));
        }
        Ok(())
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let (code, body) = self.round_trip("POST", "/shutdown", "")?;
        if code != 200 {
            return Err(format!("shutdown returned {code}: {body}"));
        }
        Ok(())
    }
}
