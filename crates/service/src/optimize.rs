//! The service-side optimization pipeline: knob resolution, the staged
//! (and therefore cancellable) optimize → certify → emit flow, and the
//! identity-schedule fallback every degradation path lands on.

use crate::fault::Fault;
use crate::proto::OptimizeRequest;
use polymix_bench::runner::{emit_source_with, EmitKnobs};
use polymix_bench::variants::Variant;
use polymix_codegen::from_poly::original_program;
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_dl::Machine;
use polymix_ir::{PolymixError, Scop};
use polymix_pluto::{optimize_pluto, PlutoOptions, PlutoVariant};
use polymix_polybench::{Group, Kernel};
use std::time::Instant;

/// A request with every knob resolved against the kernel's and
/// variant's defaults — the exact inputs the optimizer will see, and
/// therefore exactly what the cache fingerprint covers.
#[derive(Clone, Debug)]
pub struct ResolvedKnobs {
    /// The experimental variant.
    pub variant: Variant,
    /// Rectangular tile size.
    pub tile: i64,
    /// Time-loop tile size.
    pub time_tile: i64,
    /// Unroll-and-jam factors.
    pub unroll: (i64, i64),
    /// Concrete parameter values.
    pub params: Vec<i64>,
}

/// Parses a wire variant label into the bench [`Variant`].
pub fn parse_variant(label: &str) -> Option<Variant> {
    [
        Variant::Native,
        Variant::Pocc,
        Variant::PoccVect,
        Variant::IterativeMax,
        Variant::IterativeNo,
        Variant::PolyAst,
        Variant::PolyAstDoallOnly,
        Variant::PlutoMaxFuse,
    ]
    .into_iter()
    .find(|&v| v.name() == label)
}

/// Resolves a request's knobs against the paper defaults (tile 32, time
/// tile 5 for the pipeline group, unroll (2,2) for `pocc+vect`). `Err`
/// is a client-facing 400 detail.
pub fn resolve_knobs(req: &OptimizeRequest, kernel: &Kernel, scop: &Scop) -> Result<ResolvedKnobs, String> {
    let variant =
        parse_variant(&req.variant).ok_or_else(|| format!("unknown variant {:?}", req.variant))?;
    let params = if req.params.is_empty() {
        kernel
            .try_dataset(&req.dataset)
            .ok_or_else(|| format!("kernel {} has no dataset {:?}", kernel.name, req.dataset))?
            .params
    } else {
        if req.params.len() != scop.params.len() {
            return Err(format!(
                "kernel {} takes {} parameter(s), got {}",
                kernel.name,
                scop.params.len(),
                req.params.len()
            ));
        }
        if let Some(bad) = req
            .params
            .iter()
            .zip(&scop.param_lower_bounds)
            .find(|(v, lb)| *v < *lb)
        {
            return Err(format!(
                "parameter value {} below the kernel's lower bound {}",
                bad.0, bad.1
            ));
        }
        req.params.clone()
    };
    let default_tt = if kernel.group == Group::Pipeline { 5 } else { 32 };
    let default_unroll = if variant == Variant::PoccVect { (2, 2) } else { (1, 1) };
    Ok(ResolvedKnobs {
        variant,
        tile: if req.tile > 0 { req.tile } else { 32 },
        time_tile: if req.time_tile > 0 { req.time_tile } else { default_tt },
        unroll: (
            if req.unroll.0 > 0 { req.unroll.0 } else { default_unroll.0 },
            if req.unroll.1 > 0 { req.unroll.1 } else { default_unroll.1 },
        ),
        params,
    })
}

/// Why an optimization flight did not produce a servable entry.
#[derive(Clone, Debug)]
pub struct OptError {
    /// Human-readable failure detail (classified by the daemon via the
    /// sweep's transient / deterministic rules).
    pub detail: String,
    /// The flight was cooperatively cancelled (deadline expiry with no
    /// remaining waiters) — not the SCoP's fault, never a breaker
    /// strike.
    pub cancelled: bool,
}

impl OptError {
    fn cancelled(stage: &str) -> OptError {
        OptError {
            detail: format!("cancelled at stage boundary: {stage}"),
            cancelled: true,
        }
    }
}

/// A successful optimization: the certified emitted source plus the
/// scheduling wall-clock it cost (what a cache hit saves).
#[derive(Clone, Debug)]
pub struct Optimized {
    /// Emitted standalone kernel source.
    pub source: String,
    /// Optimize + certify + emit seconds.
    pub sched_s: f64,
}

/// Runs the full staged pipeline: (injected fault) → schedule/transform
/// → certify-for-cache → emit → lint. `cancelled` is polled at every
/// stage boundary — cooperative cancellation for deadline expiry; a
/// cancelled flight stops burning the worker at the next boundary.
///
/// Panics (real scheduler bugs or injected ones) are NOT caught here;
/// the daemon's worker wraps this in `catch_unwind` so containment and
/// breaker accounting stay in one place.
pub fn optimize(
    kernel: &Kernel,
    scop: &Scop,
    knobs: &ResolvedKnobs,
    threads: usize,
    reps: usize,
    fault: Fault,
    cancelled: &dyn Fn() -> bool,
) -> Result<Optimized, OptError> {
    let t0 = Instant::now();
    if !fault.apply_scheduling(cancelled) {
        return Err(OptError::cancelled("scheduling (injected slow compile)"));
    }
    if cancelled() {
        return Err(OptError::cancelled("scheduling"));
    }
    let prog = build_program(scop, knobs).map_err(|e| OptError {
        detail: e.to_string(),
        cancelled: false,
    })?;
    if cancelled() {
        return Err(OptError::cancelled("certification"));
    }
    let src = emit_source_with(
        kernel,
        &prog,
        &knobs.params,
        threads,
        reps,
        EmitKnobs::default(),
    );
    if cancelled() {
        return Err(OptError::cancelled("emission"));
    }
    // The cache-admission gate: a bad entry must never be replayable.
    polymix_verify::certify_for_cache(&prog, kernel.name, &src).map_err(|e| OptError {
        detail: e.to_string(),
        cancelled: false,
    })?;
    Ok(Optimized {
        source: src,
        sched_s: t0.elapsed().as_secs_f64(),
    })
}

/// Builds the transformed program for one variant (mirrors the bench
/// harness' `build_variant`, with the tile/unroll knobs threaded through
/// instead of pinned to the paper's defaults).
fn build_program(scop: &Scop, knobs: &ResolvedKnobs) -> Result<polymix_ast::tree::Program, PolymixError> {
    match knobs.variant {
        Variant::Native => original_program(scop),
        Variant::Pocc
        | Variant::PoccVect
        | Variant::IterativeMax
        | Variant::IterativeNo
        | Variant::PlutoMaxFuse => {
            let pv = match knobs.variant {
                Variant::PoccVect => PlutoVariant::PoccVect,
                Variant::IterativeMax | Variant::PlutoMaxFuse => PlutoVariant::MaxFuse,
                Variant::IterativeNo => PlutoVariant::NoFuse,
                _ => PlutoVariant::Pocc,
            };
            optimize_pluto(
                scop,
                &PlutoOptions {
                    variant: pv,
                    tile: knobs.tile,
                    time_tile: knobs.time_tile,
                    tiling: true,
                    unroll: knobs.unroll,
                },
            )
        }
        Variant::PolyAst | Variant::PolyAstDoallOnly => optimize_poly_ast(
            scop,
            &PolyAstOptions {
                machine: Machine::host(),
                tile: knobs.tile,
                time_tile: knobs.time_tile,
                tiling: true,
                parallelize: true,
                doall_only: knobs.variant == Variant::PolyAstDoallOnly,
                unroll: knobs.unroll,
                fusion: true,
            },
        ),
    }
}

/// The identity-schedule fallback: the SCoP under its original textual
/// order, emitted sequentially. Always legal, milliseconds to produce —
/// the floor every degradation path (breaker, deadline, optimizer
/// failure) stands on. No certification needed: there is nothing to
/// get wrong in an unannotated sequential emission, and the fallback
/// must not depend on the machinery it is backstopping.
pub fn identity_source(kernel: &Kernel, scop: &Scop, params: &[i64], reps: usize) -> Result<String, String> {
    let prog = original_program(scop).map_err(|e| e.to_string())?;
    Ok(emit_source_with(kernel, &prog, params, 1, reps, EmitKnobs::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_polybench::kernel_by_name;

    #[test]
    fn resolve_applies_defaults_and_overrides() {
        let k = kernel_by_name("seidel-2d").expect("kernel");
        let scop = (k.build)();
        let req = OptimizeRequest {
            kernel: "seidel-2d".into(),
            ..Default::default()
        };
        let r = resolve_knobs(&req, &k, &scop).expect("resolves");
        assert_eq!((r.tile, r.time_tile), (32, 5), "pipeline-group default");
        let req2 = OptimizeRequest {
            tile: 16,
            time_tile: 8,
            ..req
        };
        let r2 = resolve_knobs(&req2, &k, &scop).expect("resolves");
        assert_eq!((r2.tile, r2.time_tile), (16, 8));
    }

    #[test]
    fn resolve_rejects_bad_inputs() {
        let k = kernel_by_name("gemm").expect("kernel");
        let scop = (k.build)();
        let bad_variant = OptimizeRequest {
            kernel: "gemm".into(),
            variant: "pluto9000".into(),
            ..Default::default()
        };
        assert!(resolve_knobs(&bad_variant, &k, &scop).is_err());
        let bad_dataset = OptimizeRequest {
            kernel: "gemm".into(),
            dataset: "galactic".into(),
            ..Default::default()
        };
        assert!(resolve_knobs(&bad_dataset, &k, &scop).is_err());
        let bad_arity = OptimizeRequest {
            kernel: "gemm".into(),
            params: vec![4],
            ..Default::default()
        };
        assert!(resolve_knobs(&bad_arity, &k, &scop).is_err());
    }

    #[test]
    fn optimize_and_identity_produce_source() {
        let k = kernel_by_name("gemm").expect("kernel");
        let scop = (k.build)();
        let req = OptimizeRequest {
            kernel: "gemm".into(),
            ..Default::default()
        };
        let knobs = resolve_knobs(&req, &k, &scop).expect("resolves");
        let out = optimize(&k, &scop, &knobs, 2, 1, Fault::None, &|| false).expect("optimizes");
        assert!(out.source.contains("fn main"));
        let ident = identity_source(&k, &scop, &knobs.params, 1).expect("identity");
        assert!(ident.contains("fn main"));
    }

    #[test]
    fn cancellation_stops_at_stage_boundary() {
        let k = kernel_by_name("gemm").expect("kernel");
        let scop = (k.build)();
        let req = OptimizeRequest {
            kernel: "gemm".into(),
            ..Default::default()
        };
        let knobs = resolve_knobs(&req, &k, &scop).expect("resolves");
        let e = optimize(&k, &scop, &knobs, 2, 1, Fault::None, &|| true)
            .expect_err("cancelled flight must not produce an entry");
        assert!(e.cancelled);
    }
}
