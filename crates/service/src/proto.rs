//! The wire protocol: flat-JSON request/response bodies over HTTP/1.1.
//!
//! The body grammar is the sweep executor's flat-object JSONL grammar
//! (string / number / number-array fields, no nesting), parsed by
//! [`polymix_bench::sweep::parse_record`] on both ends — one parser for
//! sweeps, tuned configs, cache entries and the service wire keeps the
//! offline workspace dependency-free.
//!
//! A request names a SCoP by kernel (the in-tree stand-in for shipping a
//! serialized SCoP; the cache key is *always* derived from the built
//! SCoP's canonical structure, never from the name), the optimization
//! variant and its knobs, concrete parameters, and robustness controls
//! (deadline, fault injection for tests).

use crate::fault::Fault;
use polymix_bench::sweep::{json_escape, parse_record};
use std::fmt::Write as _;

/// A parsed optimization request.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizeRequest {
    /// Kernel name (`polymix_polybench::kernel_by_name`).
    pub kernel: String,
    /// Variant label (the bench `Variant` names: `native`, `pocc`,
    /// `poly+ast`, …).
    pub variant: String,
    /// Dataset name; resolved to parameters server-side. Ignored when
    /// `params` is given explicitly.
    pub dataset: String,
    /// Explicit parameter values (overrides `dataset` when non-empty).
    pub params: Vec<i64>,
    /// Rectangular tile size (0 = variant default).
    pub tile: i64,
    /// Time-loop tile size (0 = variant default).
    pub time_tile: i64,
    /// Unroll-and-jam factors (0 = variant default).
    pub unroll: (i64, i64),
    /// Per-request deadline in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Include the emitted kernel source in the response body.
    pub emit: bool,
    /// Injected fault (tests only; requires the daemon's `allow_inject`).
    pub inject: Fault,
}

impl Default for OptimizeRequest {
    fn default() -> OptimizeRequest {
        OptimizeRequest {
            kernel: String::new(),
            variant: "poly+ast".into(),
            dataset: "mini".into(),
            params: Vec::new(),
            tile: 0,
            time_tile: 0,
            unroll: (0, 0),
            deadline_ms: 0,
            emit: false,
            inject: Fault::None,
        }
    }
}

impl OptimizeRequest {
    /// Renders the request body.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"kernel\":\"{}\",\"variant\":\"{}\",\"dataset\":\"{}\"",
            json_escape(&self.kernel),
            json_escape(&self.variant),
            json_escape(&self.dataset)
        );
        if !self.params.is_empty() {
            let ps: Vec<String> = self.params.iter().map(|p| p.to_string()).collect();
            let _ = write!(s, ",\"params\":[{}]", ps.join(","));
        }
        let _ = write!(
            s,
            ",\"tile\":{},\"time_tile\":{},\"unroll_o\":{},\"unroll_i\":{},\"deadline_ms\":{},\"emit\":{}",
            self.tile, self.time_tile, self.unroll.0, self.unroll.1, self.deadline_ms,
            u8::from(self.emit)
        );
        let inject = match self.inject {
            Fault::None => String::new(),
            Fault::Panic => "panic".into(),
            Fault::Slow(ms) => format!("slow:{ms}"),
            Fault::TornWrite => "torn".into(),
        };
        if !inject.is_empty() {
            let _ = write!(s, ",\"inject\":\"{inject}\"");
        }
        s.push('}');
        s
    }

    /// Parses a request body; `Err` carries a client-facing detail for
    /// the 400 response.
    pub fn from_json(body: &str) -> Result<OptimizeRequest, String> {
        let rec = parse_record(body).ok_or("body is not a flat JSON object")?;
        let kernel = rec
            .str_field("kernel")
            .ok_or("missing string field \"kernel\"")?
            .to_string();
        if kernel.is_empty() {
            return Err("empty \"kernel\"".into());
        }
        let mut req = OptimizeRequest {
            kernel,
            ..OptimizeRequest::default()
        };
        if let Some(v) = rec.str_field("variant") {
            req.variant = v.to_string();
        }
        if let Some(d) = rec.str_field("dataset") {
            req.dataset = d.to_string();
        }
        if let Some(ps) = rec.arr_field("params") {
            req.params = ps.iter().map(|&p| p as i64).collect();
        }
        let num = |k: &str| rec.num_field(k).unwrap_or(0.0);
        req.tile = num("tile") as i64;
        req.time_tile = num("time_tile") as i64;
        req.unroll = (num("unroll_o") as i64, num("unroll_i") as i64);
        if req.tile < 0 || req.time_tile < 0 || req.unroll.0 < 0 || req.unroll.1 < 0 {
            return Err("negative tile/unroll knob".into());
        }
        req.deadline_ms = num("deadline_ms").max(0.0) as u64;
        req.emit = num("emit") != 0.0;
        if let Some(spec) = rec.str_field("inject") {
            req.inject =
                Fault::parse(spec).ok_or_else(|| format!("unknown inject directive {spec:?}"))?;
        }
        Ok(req)
    }
}

/// How the response was produced — the robustness state machine's
/// externally visible outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Straight from the schedule cache; the scheduler never ran.
    Hit,
    /// Optimized on this request and admitted to the cache.
    Miss,
    /// Another in-flight request for the same entry produced it; this
    /// one waited on that flight instead of re-optimizing.
    Coalesced,
    /// The optimizer failed (panic / error / verify rejection) and the
    /// identity schedule was served instead.
    Identity,
    /// The key's circuit breaker is open; identity served without
    /// touching the scheduler.
    Breaker,
    /// The deadline expired mid-optimization; identity served, the
    /// in-flight work was cooperatively cancelled.
    Deadline,
    /// Load shed at admission (429).
    Shed,
}

impl Served {
    /// Wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Served::Hit => "hit",
            Served::Miss => "miss",
            Served::Coalesced => "coalesced",
            Served::Identity => "identity",
            Served::Breaker => "breaker",
            Served::Deadline => "deadline",
            Served::Shed => "shed",
        }
    }

    /// Inverse of [`Served::name`].
    pub fn parse(s: &str) -> Option<Served> {
        Some(match s {
            "hit" => Served::Hit,
            "miss" => Served::Miss,
            "coalesced" => Served::Coalesced,
            "identity" => Served::Identity,
            "breaker" => Served::Breaker,
            "deadline" => Served::Deadline,
            "shed" => Served::Shed,
            _ => return None,
        })
    }
}

/// A parsed service response (client side).
#[derive(Clone, Debug)]
pub struct OptimizeResponse {
    /// HTTP status code.
    pub http_status: u16,
    /// `ok` | `shed` | `bad-request` | `error`.
    pub status: String,
    /// How the result was produced (present on `ok`).
    pub served: Option<Served>,
    /// Canonical structural key, hex (present on `ok`).
    pub key: String,
    /// `true` when an identity fallback replaced the requested variant.
    pub degraded: bool,
    /// Emitted kernel source (present when requested and available).
    pub source: Option<String>,
    /// Server-side processing time for this request, milliseconds.
    pub elapsed_ms: f64,
    /// Failure detail (present on non-`ok`).
    pub detail: String,
}

impl OptimizeResponse {
    /// Parses a response body (plus its HTTP status).
    pub fn from_json(http_status: u16, body: &str) -> Result<OptimizeResponse, String> {
        let rec = parse_record(body).ok_or("response body is not a flat JSON object")?;
        let status = rec
            .str_field("status")
            .ok_or("missing \"status\"")?
            .to_string();
        Ok(OptimizeResponse {
            http_status,
            served: rec.str_field("served").and_then(Served::parse),
            key: rec.str_field("key").unwrap_or("").to_string(),
            degraded: rec.num_field("degraded").unwrap_or(0.0) != 0.0,
            source: rec.str_field("source").map(str::to_string),
            elapsed_ms: rec.num_field("elapsed_ms").unwrap_or(0.0),
            detail: rec.str_field("detail").unwrap_or("").to_string(),
            status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = OptimizeRequest {
            kernel: "gemm".into(),
            variant: "poly+ast".into(),
            dataset: "small".into(),
            params: vec![64, 64, 64],
            tile: 16,
            time_tile: 5,
            unroll: (2, 2),
            deadline_ms: 250,
            emit: true,
            inject: Fault::Slow(40),
        };
        let back = OptimizeRequest::from_json(&req.to_json()).expect("parses");
        assert_eq!(back, req);
    }

    #[test]
    fn request_rejects_garbage() {
        assert!(OptimizeRequest::from_json("not json").is_err());
        assert!(OptimizeRequest::from_json("{}").is_err(), "kernel required");
        assert!(OptimizeRequest::from_json("{\"kernel\":\"gemm\",\"inject\":\"zap\"}").is_err());
        assert!(OptimizeRequest::from_json("{\"kernel\":\"gemm\",\"tile\":-4}").is_err());
    }

    #[test]
    fn served_names_roundtrip() {
        for s in [
            Served::Hit,
            Served::Miss,
            Served::Coalesced,
            Served::Identity,
            Served::Breaker,
            Served::Deadline,
            Served::Shed,
        ] {
            assert_eq!(Served::parse(s.name()), Some(s));
        }
        assert_eq!(Served::parse("nope"), None);
    }
}
