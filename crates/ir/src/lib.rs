//! # polymix-ir
//!
//! The polyhedral intermediate representation of polymix: static control
//! parts (SCoPs) made of statements with affine iteration domains, affine
//! array access functions, expression-tree bodies, and `2d+1` schedules.
//!
//! ## Column layout conventions
//!
//! Unless stated otherwise, a statement-local affine row has the layout
//! `[i_0 … i_{d-1} | n_0 … n_{p-1} | 1]`: the statement's `d` loop
//! iterators, then the SCoP's `p` structure parameters, then the constant.
//! [`scop::Statement::domain`] is a [`polymix_math::Polyhedron`] over the
//! first `d + p` of those columns.
//!
//! ## Schedules
//!
//! A [`Schedule`] is the paper's restricted `2d+1` form (Sec. III-A):
//! interleaving scalars `β_0 … β_d`, an invertible integer matrix `α`
//! (signed permutation for the poly+AST flow, unimodular for the Pluto
//! baseline, which needs skewing), and parametric shifts `γ` (retiming).

pub mod builder;
pub mod error;
pub mod expr;
pub mod schedule;
pub mod scop;

pub use builder::{con, ix, par, ScopBuilder, SymAff};
pub use error::{PolymixError, Stage};
pub use expr::{BinOp, Expr, UnOp};
pub use schedule::Schedule;
pub use scop::{Access, ArrayId, ArrayInfo, Scop, Statement, StmtId};
