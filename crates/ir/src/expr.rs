//! Statement-body expression trees.
//!
//! Bodies are ordinary scalar expressions over array reads, loop iterators,
//! parameters and floating-point literals. Array subscripts are *affine
//! rows* (layout `[iters | params | 1]`) so the polyhedral machinery can
//! reason about them, while the expression tree carries the arithmetic the
//! interpreter and the Rust code emitter need to reproduce the kernel's
//! semantics exactly.

use crate::scop::ArrayId;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// Applies the operator to two f64 values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }

    /// Rust / C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Unary operators / intrinsic calls appearing in PolyBench kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// `sqrt` (correlation, cholesky).
    Sqrt,
    /// `exp` (fdtd-apml variants use constants; kept for completeness).
    Exp,
}

impl UnOp {
    /// Applies the operator to an f64 value.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Sqrt => a.sqrt(),
            UnOp::Exp => a.exp(),
        }
    }
}

/// A scalar expression over array elements, iterators and parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Floating-point literal.
    Const(f64),
    /// Read of `array[subs]`; each subscript is an affine row
    /// `[iters | params | 1]` of the enclosing statement.
    Read { array: ArrayId, subs: Vec<Vec<i64>> },
    /// Value of loop iterator `k` (cast to f64), used by init kernels.
    Iter(usize),
    /// Value of parameter `k` (cast to f64).
    Param(usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation / intrinsic.
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }
    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }
    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }
    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }
    /// `sqrt(a)`
    pub fn sqrt(a: Expr) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(a))
    }
    /// `-a`
    pub fn neg(a: Expr) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(a))
    }

    /// Collects every array read in evaluation order.
    pub fn reads(&self) -> Vec<(&ArrayId, &Vec<Vec<i64>>)> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<(&'a ArrayId, &'a Vec<Vec<i64>>)>) {
        match self {
            Expr::Read { array, subs } => out.push((array, subs)),
            Expr::Bin(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Un(_, a) => a.collect_reads(out),
            Expr::Const(_) | Expr::Iter(_) | Expr::Param(_) => {}
        }
    }

    /// Counts floating-point operations performed by one evaluation
    /// (adds, subs, muls, divs, sqrts each count 1; negation counts 0).
    pub fn flops(&self) -> u64 {
        match self {
            Expr::Bin(_, a, b) => 1 + a.flops() + b.flops(),
            Expr::Un(UnOp::Neg, a) => a.flops(),
            Expr::Un(_, a) => 1 + a.flops(),
            _ => 0,
        }
    }

    /// Rewrites every subscript row and `Iter` reference through `f`;
    /// used when re-expressing a body in transformed loop coordinates.
    pub fn map_subscripts(&self, f: &impl Fn(&[i64]) -> Vec<i64>) -> Expr {
        match self {
            Expr::Read { array, subs } => Expr::Read {
                array: *array,
                subs: subs.iter().map(|s| f(s)).collect(),
            },
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.map_subscripts(f)),
                Box::new(b.map_subscripts(f)),
            ),
            Expr::Un(op, a) => Expr::Un(*op, Box::new(a.map_subscripts(f))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Read { array, subs } => {
                write!(f, "A{}[", array.0)?;
                for (i, s) in subs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s:?}")?;
                }
                write!(f, "]")
            }
            Expr::Iter(k) => write!(f, "i{k}"),
            Expr::Param(k) => write!(f, "n{k}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Un(UnOp::Neg, a) => write!(f, "(-{a})"),
            Expr::Un(UnOp::Sqrt, a) => write!(f, "sqrt({a})"),
            Expr::Un(UnOp::Exp, a) => write!(f, "exp({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: usize, sub: Vec<Vec<i64>>) -> Expr {
        Expr::Read {
            array: ArrayId(id),
            subs: sub,
        }
    }

    #[test]
    fn flop_counting() {
        // alpha * A[i][k] * B[k][j] -> 2 flops.
        let e = Expr::mul(
            Expr::mul(Expr::Const(1.5), read(0, vec![vec![1, 0, 0], vec![0, 0, 0]])),
            read(1, vec![vec![0, 0, 0], vec![0, 1, 0]]),
        );
        assert_eq!(e.flops(), 2);
        assert_eq!(Expr::sqrt(Expr::Const(2.0)).flops(), 1);
        assert_eq!(Expr::neg(Expr::Const(2.0)).flops(), 0);
    }

    #[test]
    fn reads_collects_in_order() {
        let e = Expr::add(
            read(3, vec![vec![1, 0]]),
            Expr::mul(read(1, vec![vec![0, 1]]), read(2, vec![vec![1, 1]])),
        );
        let r = e.reads();
        assert_eq!(
            r.iter().map(|(a, _)| a.0).collect::<Vec<_>>(),
            vec![3, 1, 2]
        );
    }

    #[test]
    fn map_subscripts_rewrites_reads_only() {
        let e = Expr::add(read(0, vec![vec![1, 2, 3]]), Expr::Const(1.0));
        let m = e.map_subscripts(&|row| row.iter().map(|x| x * 10).collect());
        match m {
            Expr::Bin(BinOp::Add, a, _) => match *a {
                Expr::Read { subs, .. } => assert_eq!(subs, vec![vec![10, 20, 30]]),
                _ => panic!("expected read"),
            },
            _ => panic!("expected add"),
        }
    }

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(UnOp::Sqrt.apply(9.0), 3.0);
    }
}
