//! Static control parts: arrays, accesses, statements, and the SCoP
//! container.

use crate::expr::Expr;
use crate::schedule::Schedule;
use polymix_math::Polyhedron;
use std::fmt;

/// Identifier of an array within a [`Scop`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

impl fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Arr({})", self.0)
    }
}

/// Identifier of a statement within a [`Scop`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub usize);

impl fmt::Debug for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A declared array. Dimension sizes are affine rows over `[params | 1]`,
/// e.g. a `NI x NJ` matrix in a SCoP with params `[NI, NJ, NK]` has
/// `dims = [[1,0,0,0], [0,1,0,0]]`.
#[derive(Clone, Debug)]
pub struct ArrayInfo {
    /// Source-level name.
    pub name: String,
    /// One affine size row (`[params | 1]`) per dimension.
    pub dims: Vec<Vec<i64>>,
    /// Element size in bytes (8 for f64 throughout PolyBench).
    pub elem_bytes: usize,
}

impl ArrayInfo {
    /// Evaluates the extent of each dimension for concrete parameters.
    pub fn extents(&self, params: &[i64]) -> Vec<i64> {
        self.dims
            .iter()
            .map(|row| {
                assert_eq!(row.len(), params.len() + 1);
                row[..params.len()]
                    .iter()
                    .zip(params)
                    .map(|(a, n)| a * n)
                    .sum::<i64>()
                    + row[params.len()]
            })
            .collect()
    }

    /// Total number of elements for concrete parameters.
    pub fn len(&self, params: &[i64]) -> usize {
        self.extents(params).iter().product::<i64>().max(0) as usize
    }

    /// True when the array has zero dimensions (a scalar).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }
}

/// An affine array access: `array[ map · (iters, params, 1) ]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Access {
    /// The array accessed.
    pub array: ArrayId,
    /// One affine row (`[iters | params | 1]`, statement-local layout) per
    /// array dimension.
    pub map: Vec<Vec<i64>>,
}

impl Access {
    /// Evaluates the subscript vector at a concrete iteration point.
    pub fn eval(&self, iters: &[i64], params: &[i64]) -> Vec<i64> {
        self.map
            .iter()
            .map(|row| {
                assert_eq!(row.len(), iters.len() + params.len() + 1);
                let (ri, rest) = row.split_at(iters.len());
                let (rp, rc) = rest.split_at(params.len());
                ri.iter().zip(iters).map(|(a, x)| a * x).sum::<i64>()
                    + rp.iter().zip(params).map(|(a, n)| a * n).sum::<i64>()
                    + rc[0]
            })
            .collect()
    }

    /// The iterator-coefficient sub-matrix (one row per array dimension,
    /// one column per statement iterator).
    pub fn iter_coeffs(&self, d: usize) -> Vec<Vec<i64>> {
        self.map.iter().map(|r| r[..d].to_vec()).collect()
    }
}

/// One statement of a SCoP: an assignment `write = body` executed at every
/// integer point of `domain`.
#[derive(Clone, Debug)]
pub struct Statement {
    /// Source-level label (e.g. `"S"` in the paper's 2mm listing).
    pub name: String,
    /// Number of enclosing loop iterators.
    pub dim: usize,
    /// Names of the iterators, outermost first (for diagnostics/codegen).
    pub iter_names: Vec<String>,
    /// Iteration domain over `[iters | params]` (constant column implicit
    /// in the polyhedron's constraint rows).
    pub domain: Polyhedron,
    /// The written (lhs) access.
    pub write: Access,
    /// The rhs expression. For accumulations (`A[i] += e`) the rhs contains
    /// an explicit read of the lhs location.
    pub body: Expr,
    /// Original (textual-order) schedule.
    pub schedule: Schedule,
}

impl Statement {
    /// All accesses: `(access, is_write)`, the write first.
    pub fn accesses(&self) -> Vec<(Access, bool)> {
        let mut out = vec![(self.write.clone(), true)];
        for (array, subs) in self.body.reads() {
            out.push((
                Access {
                    array: *array,
                    map: subs.clone(),
                },
                false,
            ));
        }
        out
    }

    /// All read accesses.
    pub fn reads(&self) -> Vec<Access> {
        self.body
            .reads()
            .into_iter()
            .map(|(array, subs)| Access {
                array: *array,
                map: subs.clone(),
            })
            .collect()
    }

    /// Floating point operations per dynamic instance.
    pub fn flops_per_instance(&self) -> u64 {
        self.body.flops()
    }

    /// True when the statement has the shape `A[f(x)] = A[f(x)] ⊕ e` with
    /// `⊕` associative-commutative (add or mul) and `e` not reading
    /// `A[f(x)]` — the pattern the paper's reduction recognizer matches
    /// (Sec. IV-A).
    pub fn is_reduction_update(&self) -> bool {
        use crate::expr::BinOp;
        let Expr::Bin(op, lhs, rhs) = &self.body else {
            return false;
        };
        if !matches!(op, BinOp::Add | BinOp::Mul) {
            return false;
        }
        let self_read = |e: &Expr| {
            matches!(e, Expr::Read { array, subs }
                if *array == self.write.array && *subs == self.write.map)
        };
        let reads_lhs = |e: &Expr| {
            e.reads()
                .iter()
                .any(|(a, s)| **a == self.write.array && **s == self.write.map)
        };
        (self_read(lhs) && !reads_lhs(rhs)) || (self_read(rhs) && !reads_lhs(lhs))
    }
}

/// A static control part: parameters, arrays and statements in textual
/// order, each carrying its original schedule.
#[derive(Clone, Debug)]
pub struct Scop {
    /// SCoP name (e.g. the benchmark name).
    pub name: String,
    /// Structure parameter names, e.g. `["NI", "NJ", "NK"]`.
    pub params: Vec<String>,
    /// Assumed lower bound for every parameter (legality tests are made
    /// under `param >= lb`); PolyBench kernels use 1 (or 2 for stencils).
    pub param_lower_bounds: Vec<i64>,
    /// Declared arrays.
    pub arrays: Vec<ArrayInfo>,
    /// Statements in textual order; `StmtId(k)` indexes this vector.
    pub statements: Vec<Statement>,
    /// Default parameter values used by tests / the quickstart dataset.
    pub default_params: Vec<i64>,
}

impl Scop {
    /// Number of structure parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Looks up an array id by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(ArrayId)
    }

    /// Looks up a statement id by name.
    pub fn stmt_by_name(&self, name: &str) -> Option<StmtId> {
        self.statements
            .iter()
            .position(|s| s.name == name)
            .map(StmtId)
    }

    /// Borrow a statement by id.
    pub fn stmt(&self, id: StmtId) -> &Statement {
        &self.statements[id.0]
    }

    /// Maximum statement dimensionality in the SCoP.
    pub fn max_dim(&self) -> usize {
        self.statements.iter().map(|s| s.dim).max().unwrap_or(0)
    }

    /// Total floating point operations for concrete parameters, obtained
    /// by counting each statement's domain cardinality. Domain cardinality
    /// is computed by enumeration — use only for miniature datasets; the
    /// benchmark harness uses closed-form FLOP formulas instead.
    pub fn flops_by_enumeration(&self, params: &[i64]) -> u64 {
        self.statements
            .iter()
            .map(|s| {
                let dom = self.instantiate_domain(s, params);
                dom.enumerate().len() as u64 * s.flops_per_instance()
            })
            .sum()
    }

    /// Fixes the parameter dimensions of a statement's domain to concrete
    /// values (the result still has `dim + n_params` dimensions).
    pub fn instantiate_domain(&self, s: &Statement, params: &[i64]) -> Polyhedron {
        let mut dom = s.domain.clone();
        for (k, &v) in params.iter().enumerate() {
            dom = dom.fix(s.dim + k, v);
        }
        dom
    }
}

impl Scop {
    /// Validates structural well-formedness and, by exhaustive
    /// enumeration at the default parameters, that every array subscript
    /// of every statement instance lies within the declared extents.
    /// Intended for tests and kernel authoring (it is O(#instances)).
    pub fn validate(&self) -> Result<(), String> {
        let params = &self.default_params;
        if params.len() != self.params.len() {
            return Err("default_params arity mismatch".into());
        }
        let extents: Vec<Vec<i64>> = self.arrays.iter().map(|a| a.extents(params)).collect();
        for (ai, ext) in extents.iter().enumerate() {
            if ext.iter().any(|&e| e <= 0) && !self.arrays[ai].dims.is_empty() {
                return Err(format!(
                    "array {} has non-positive extent {ext:?} at default params",
                    self.arrays[ai].name
                ));
            }
        }
        for (si, st) in self.statements.iter().enumerate() {
            if st.iter_names.len() != st.dim {
                return Err(format!("S{si}: iterator name arity mismatch"));
            }
            if st.schedule.dim() != st.dim {
                return Err(format!("S{si}: schedule arity mismatch"));
            }
            st.schedule.validate();
            let dom = self.instantiate_domain(st, params);
            for point in dom.enumerate() {
                let iters = &point[..st.dim];
                for (acc, is_write) in st.accesses() {
                    let subs = acc.eval(iters, params);
                    let ext = &extents[acc.array.0];
                    if subs.len() != ext.len() {
                        return Err(format!(
                            "S{si}: rank mismatch on array {}",
                            self.arrays[acc.array.0].name
                        ));
                    }
                    for (d, (&ix, &e)) in subs.iter().zip(ext).enumerate() {
                        if ix < 0 || ix >= e {
                            return Err(format!(
                                "S{si} at {iters:?}: {} subscript {ix} out of [0,{e}) in dim {d} of {}",
                                if is_write { "write" } else { "read" },
                                self.arrays[acc.array.0].name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
