//! The shared error type of the compile pipeline.
//!
//! Every stage of the flow — Pluto-like scheduling, the DL-guided affine
//! stage, AST transformations, polyhedral code generation, and the bench
//! runner — is a heuristic that can fail to find a legal choice for a
//! given SCoP. Those failures are *data*, not bugs: drivers degrade to a
//! weaker variant (ultimately the original loop order, which is always
//! legal) and record what went wrong. [`PolymixError`] carries enough
//! context (kernel, stage, statement group, detail) to render the
//! `error(<stage>)` cells of the results tables.
//!
//! The type lives in `polymix-ir` so every layer can name it; the facade
//! re-export is `polymix_core::error::PolymixError`.

use std::fmt;

/// Pipeline stage an error originated from; used both for reporting
/// (`error(<stage>)` table cells) and for fallback-chain decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// SCoP construction (`ScopBuilder`).
    Build,
    /// Affine scheduling: Pluto-like scheduler or the DL-guided stage.
    Scheduling,
    /// A dependence-legality violation detected outside scheduling.
    Legality,
    /// A syntactic AST transformation (tiling, unrolling, skewing, …).
    Transform,
    /// Polyhedral-to-AST code generation or Rust emission.
    Codegen,
    /// The source-to-source measurement harness.
    Runner,
}

impl Stage {
    /// Short lowercase name, as printed in `error(<stage>)` cells.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Build => "build",
            Stage::Scheduling => "scheduling",
            Stage::Legality => "legality",
            Stage::Transform => "transform",
            Stage::Codegen => "codegen",
            Stage::Runner => "runner",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed, contextual failure from any stage of the compile pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolymixError {
    /// SCoP construction failed (builder misuse or malformed input).
    Build {
        /// SCoP name, if known at the point of failure.
        scop: String,
        detail: String,
    },
    /// No legal schedule choice at some level for a statement group.
    Scheduling {
        /// Kernel / SCoP name.
        kernel: String,
        /// Schedule level (loop depth) at which the search failed.
        level: usize,
        /// Indices of the statements in the failing group.
        statements: Vec<usize>,
        detail: String,
    },
    /// A schedule violates a dependence.
    Legality {
        kernel: String,
        detail: String,
    },
    /// An AST transformation could not be applied legally.
    Transform {
        /// Transform name (`tile_band`, `unroll`, …).
        transform: String,
        detail: String,
    },
    /// Code generation / emission failed.
    Codegen {
        kernel: String,
        detail: String,
    },
    /// The measurement harness failed for one kernel × variant.
    Runner {
        kernel: String,
        /// Experimental variant label, if applicable.
        variant: String,
        detail: String,
    },
}

impl PolymixError {
    /// The pipeline stage this error belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            PolymixError::Build { .. } => Stage::Build,
            PolymixError::Scheduling { .. } => Stage::Scheduling,
            PolymixError::Legality { .. } => Stage::Legality,
            PolymixError::Transform { .. } => Stage::Transform,
            PolymixError::Codegen { .. } => Stage::Codegen,
            PolymixError::Runner { .. } => Stage::Runner,
        }
    }

    /// Convenience constructor for scheduling failures.
    pub fn scheduling(
        kernel: impl Into<String>,
        level: usize,
        statements: Vec<usize>,
        detail: impl Into<String>,
    ) -> Self {
        PolymixError::Scheduling {
            kernel: kernel.into(),
            level,
            statements,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for transform failures.
    pub fn transform(transform: impl Into<String>, detail: impl Into<String>) -> Self {
        PolymixError::Transform {
            transform: transform.into(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for codegen failures.
    pub fn codegen(kernel: impl Into<String>, detail: impl Into<String>) -> Self {
        PolymixError::Codegen {
            kernel: kernel.into(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for builder failures.
    pub fn build(scop: impl Into<String>, detail: impl Into<String>) -> Self {
        PolymixError::Build {
            scop: scop.into(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for runner failures.
    pub fn runner(
        kernel: impl Into<String>,
        variant: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        PolymixError::Runner {
            kernel: kernel.into(),
            variant: variant.into(),
            detail: detail.into(),
        }
    }

    /// The `error(<stage>)` cell text used by the results tables.
    pub fn cell(&self) -> String {
        format!("error({})", self.stage())
    }
}

impl fmt::Display for PolymixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolymixError::Build { scop, detail } => {
                write!(f, "build error in SCoP `{scop}`: {detail}")
            }
            PolymixError::Scheduling {
                kernel,
                level,
                statements,
                detail,
            } => write!(
                f,
                "scheduling error in `{kernel}` at level {level} (statements {statements:?}): {detail}"
            ),
            PolymixError::Legality { kernel, detail } => {
                write!(f, "legality error in `{kernel}`: {detail}")
            }
            PolymixError::Transform { transform, detail } => {
                write!(f, "transform error in `{transform}`: {detail}")
            }
            PolymixError::Codegen { kernel, detail } => {
                write!(f, "codegen error in `{kernel}`: {detail}")
            }
            PolymixError::Runner {
                kernel,
                variant,
                detail,
            } => write!(f, "runner error in `{kernel}` ({variant}): {detail}"),
        }
    }
}

impl std::error::Error for PolymixError {}

/// Pipeline-wide result alias.
pub type Result<T> = std::result::Result<T, PolymixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_cells() {
        let e = PolymixError::scheduling("gemm", 1, vec![0, 2], "no legal row");
        assert_eq!(e.stage(), Stage::Scheduling);
        assert_eq!(e.cell(), "error(scheduling)");
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("level 1"));
    }

    #[test]
    fn display_carries_context() {
        let e = PolymixError::transform("tile_band", "band depth 1 < requested 2");
        assert_eq!(e.cell(), "error(transform)");
        assert!(e.to_string().contains("tile_band"));
        let e = PolymixError::runner("adi", "pocc", "compile failed");
        assert_eq!(e.stage().name(), "runner");
    }
}
