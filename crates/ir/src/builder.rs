//! A small imperative DSL for defining SCoPs.
//!
//! Kernels are written as a walk over their loop structure:
//!
//! ```
//! use polymix_ir::builder::{con, ix, par, ScopBuilder};
//! use polymix_ir::expr::Expr;
//!
//! // for (i = 0; i < N; i++)
//! //   for (j = 0; j <= i; j++)
//! //     C[i][j] = A[i][j] * 2.0;
//! let mut b = ScopBuilder::new("tri_scale", &["N"], &[16]);
//! let a = b.array("A", &["N", "N"]);
//! let c = b.array("C", &["N", "N"]);
//! b.enter("i", con(0), par("N"));
//! b.enter("j", con(0), ix("i") + con(1));
//! let body = Expr::mul(b.rd(a, &[ix("i"), ix("j")]), Expr::Const(2.0));
//! b.stmt("S", c, &[ix("i"), ix("j")], body);
//! b.exit();
//! b.exit();
//! let scop = b.finish().expect("well-formed SCoP");
//! assert_eq!(scop.statements.len(), 1);
//! assert_eq!(scop.statements[0].dim, 2);
//! ```
//!
//! Loop bounds and subscripts are symbolic affine forms ([`SymAff`]) over
//! iterator and parameter *names*, resolved to numeric rows when each
//! statement is created (so the row width always matches the statement's
//! depth).
//!
//! Protocol violations (unknown names, shadowed or unclosed loops) are
//! *deferred*: the builder records the first one and keeps accepting
//! calls, and [`ScopBuilder::finish`] returns it as a
//! [`PolymixError::Build`]. Static kernels whose structure is known
//! correct simply `finish().expect(...)`.

use crate::error::PolymixError;
use crate::expr::Expr;
use crate::schedule::Schedule;
use crate::scop::{Access, ArrayId, ArrayInfo, Scop, Statement};
use polymix_math::{Constraint, Polyhedron};
use std::ops::{Add, Mul, Neg, Sub};

/// A symbolic affine form `Σ cᵢ·iter + Σ cₚ·param + c`.
#[derive(Clone, Debug, Default)]
pub struct SymAff {
    iters: Vec<(String, i64)>,
    params: Vec<(String, i64)>,
    c: i64,
}

/// Symbolic reference to loop iterator `name`.
pub fn ix(name: &str) -> SymAff {
    SymAff {
        iters: vec![(name.to_string(), 1)],
        ..Default::default()
    }
}

/// Symbolic reference to structure parameter `name`.
pub fn par(name: &str) -> SymAff {
    SymAff {
        params: vec![(name.to_string(), 1)],
        ..Default::default()
    }
}

/// Constant affine form.
pub fn con(c: i64) -> SymAff {
    SymAff {
        c,
        ..Default::default()
    }
}

impl Add for SymAff {
    type Output = SymAff;
    fn add(mut self, rhs: SymAff) -> SymAff {
        self.iters.extend(rhs.iters);
        self.params.extend(rhs.params);
        self.c += rhs.c;
        self
    }
}

impl Sub for SymAff {
    type Output = SymAff;
    fn sub(self, rhs: SymAff) -> SymAff {
        self + (-rhs)
    }
}

impl Neg for SymAff {
    type Output = SymAff;
    fn neg(mut self) -> SymAff {
        for (_, c) in self.iters.iter_mut() {
            *c = -*c;
        }
        for (_, c) in self.params.iter_mut() {
            *c = -*c;
        }
        self.c = -self.c;
        self
    }
}

impl Mul<i64> for SymAff {
    type Output = SymAff;
    fn mul(mut self, k: i64) -> SymAff {
        for (_, c) in self.iters.iter_mut() {
            *c *= k;
        }
        for (_, c) in self.params.iter_mut() {
            *c *= k;
        }
        self.c *= k;
        self
    }
}

struct Frame {
    name: String,
    beta: i64,
    lo: SymAff,
    hi_excl: SymAff,
}

/// Incremental SCoP builder; see the module docs for the protocol.
pub struct ScopBuilder {
    name: String,
    params: Vec<String>,
    param_lbs: Vec<i64>,
    default_params: Vec<i64>,
    arrays: Vec<ArrayInfo>,
    statements: Vec<Statement>,
    frames: Vec<Frame>,
    sibling: Vec<i64>,
    /// First protocol violation, reported by `finish()`.
    err: Option<PolymixError>,
}

impl ScopBuilder {
    /// Starts a SCoP with the given structure parameters and the default
    /// values tests will run it with.
    pub fn new(name: &str, params: &[&str], default_params: &[i64]) -> ScopBuilder {
        let mut b = ScopBuilder {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            param_lbs: vec![1; params.len()],
            default_params: default_params.to_vec(),
            arrays: Vec::new(),
            statements: Vec::new(),
            frames: Vec::new(),
            sibling: vec![0],
            err: None,
        };
        if params.len() != default_params.len() {
            b.fail(format!(
                "{} parameters but {} default values",
                params.len(),
                default_params.len()
            ));
        }
        b
    }

    /// Records the first protocol violation; later ones are dropped.
    fn fail(&mut self, detail: String) {
        if self.err.is_none() {
            self.err = Some(PolymixError::build(&self.name, detail));
        }
    }

    /// Declares that every parameter is at least `lb` (stencil kernels use
    /// 2 or 3 so that legality reasoning knows interiors are nonempty).
    pub fn assume_params_at_least(&mut self, lb: i64) {
        for x in self.param_lbs.iter_mut() {
            *x = lb;
        }
    }

    /// Declares an f64 array whose extents are the named parameters.
    pub fn array(&mut self, name: &str, dims: &[&str]) -> ArrayId {
        let dims = dims.iter().map(|d| par(d)).collect();
        self.array_dims(name, dims)
    }

    /// Declares an f64 array with general affine extents over parameters.
    pub fn array_dims(&mut self, name: &str, dims: Vec<SymAff>) -> ArrayId {
        let p = self.params.len();
        let mut bad = Vec::new();
        let rows = dims
            .iter()
            .map(|a| {
                let mut row = vec![0i64; p + 1];
                if !a.iters.is_empty() {
                    bad.push(format!(
                        "extent of array {name} must not use iterators"
                    ));
                    return row;
                }
                for (pn, c) in &a.params {
                    match self.param_pos(pn) {
                        Some(k) => row[k] += c,
                        None => bad.push(format!("unknown parameter {pn}")),
                    }
                }
                row[p] += a.c;
                row
            })
            .collect();
        for d in bad {
            self.fail(d);
        }
        self.arrays.push(ArrayInfo {
            name: name.to_string(),
            dims: rows,
            elem_bytes: 8,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Opens a loop `lo <= name < hi_excl`.
    pub fn enter(&mut self, name: &str, lo: SymAff, hi_excl: SymAff) {
        if self.frames.iter().any(|f| f.name == name) {
            self.fail(format!("shadowed iterator {name}"));
        }
        // The sibling stack always has one entry per open scope plus the
        // root, so `last` cannot fail while the protocol is balanced.
        let beta = self.sibling.last().copied().unwrap_or(0);
        if let Some(top) = self.sibling.last_mut() {
            *top += 1;
        }
        self.frames.push(Frame {
            name: name.to_string(),
            beta,
            lo,
            hi_excl,
        });
        self.sibling.push(0);
    }

    /// Closes the innermost open loop.
    pub fn exit(&mut self) {
        if self.frames.is_empty() {
            self.fail("exit() without open loop".to_string());
            return;
        }
        self.frames.pop();
        self.sibling.pop();
    }

    /// Builds a read expression `array[subs]` resolved against the current
    /// loop nest.
    pub fn rd(&mut self, array: ArrayId, subs: &[SymAff]) -> Expr {
        let d = self.frames.len();
        let subs = subs.iter().map(|a| self.resolve_or_fail(a, d)).collect();
        Expr::Read { array, subs }
    }

    /// Adds the statement `array[subs] = body` at the current position.
    pub fn stmt(&mut self, name: &str, array: ArrayId, subs: &[SymAff], body: Expr) {
        let d = self.frames.len();
        let p = self.params.len();
        let write = Access {
            array,
            map: subs.iter().map(|a| self.resolve_or_fail(a, d)).collect(),
        };
        // Domain: loop bound rows plus parameter lower bounds.
        let mut domain = Polyhedron::universe(d + p);
        for k in 0..self.frames.len() {
            let lo = self.resolve_or_fail(&self.frames[k].lo.clone(), d);
            let hi = self.resolve_or_fail(&self.frames[k].hi_excl.clone(), d);
            // it_k - lo >= 0
            let mut low = lo.iter().map(|&x| -x).collect::<Vec<_>>();
            low[k] += 1;
            domain.add(Constraint::ge(low));
            // hi - 1 - it_k >= 0
            let mut up = hi.clone();
            up[k] -= 1;
            up[d + p] -= 1;
            domain.add(Constraint::ge(up));
        }
        for (pk, &lb) in self.param_lbs.iter().enumerate() {
            let mut row = vec![0i64; d + p + 1];
            row[d + pk] = 1;
            row[d + p] = -lb;
            domain.add(Constraint::ge(row));
        }
        let mut beta: Vec<i64> = self.frames.iter().map(|f| f.beta).collect();
        beta.push(self.sibling.last().copied().unwrap_or(0));
        if let Some(top) = self.sibling.last_mut() {
            *top += 1;
        }
        self.statements.push(Statement {
            name: name.to_string(),
            dim: d,
            iter_names: self.frames.iter().map(|f| f.name.clone()).collect(),
            domain,
            write,
            body,
            schedule: Schedule::with_beta(d, p, beta),
        });
    }

    /// Adds the accumulation `array[subs] = array[subs] ⊕ rhs` (the `+=` /
    /// `*=` pattern that the reduction recognizer understands).
    pub fn stmt_update(
        &mut self,
        name: &str,
        array: ArrayId,
        subs: &[SymAff],
        op: crate::expr::BinOp,
        rhs: Expr,
    ) {
        let lhs_read = self.rd(array, subs);
        self.stmt(name, array, subs, Expr::Bin(op, Box::new(lhs_read), Box::new(rhs)));
    }

    /// Finalizes the SCoP, reporting the first deferred protocol
    /// violation (unknown name, shadowed iterator, unclosed loop, …).
    pub fn finish(mut self) -> Result<Scop, PolymixError> {
        if !self.frames.is_empty() {
            let open: Vec<&str> = self.frames.iter().map(|f| f.name.as_str()).collect();
            self.fail(format!("unclosed loops at finish(): {open:?}"));
        }
        if let Some(e) = self.err {
            return Err(e);
        }
        Ok(Scop {
            name: self.name,
            params: self.params,
            param_lower_bounds: self.param_lbs,
            arrays: self.arrays,
            statements: self.statements,
            default_params: self.default_params,
        })
    }

    fn param_pos(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    fn iter_pos(&self, name: &str) -> Option<usize> {
        self.frames.iter().position(|f| f.name == name)
    }

    /// Resolves a symbolic form to a numeric row of width `d + p + 1`,
    /// recording (not raising) unknown-name errors; unresolvable terms
    /// contribute zero so downstream shapes stay consistent.
    fn resolve_or_fail(&mut self, a: &SymAff, d: usize) -> Vec<i64> {
        let p = self.params.len();
        let mut row = vec![0i64; d + p + 1];
        for (it, c) in &a.iters {
            match self.iter_pos(it) {
                Some(k) => row[k] += c,
                None => self.fail(format!("unknown iterator {it}")),
            }
        }
        for (pn, c) in &a.params {
            match self.param_pos(pn) {
                Some(k) => row[d + k] += c,
                None => self.fail(format!("unknown parameter {pn}")),
            }
        }
        row[d + p] += a.c;
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    /// Builds the paper's Fig. 1 2mm kernel and checks structure.
    fn build_2mm() -> Scop {
        let mut b = ScopBuilder::new("2mm", &["NI", "NJ", "NK", "NL"], &[8, 8, 8, 8]);
        let tmp = b.array("tmp", &["NI", "NJ"]);
        let a = b.array("A", &["NI", "NK"]);
        let bb = b.array("B", &["NK", "NJ"]);
        let c = b.array("C", &["NJ", "NL"]);
        let dd = b.array("D", &["NI", "NL"]);

        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NJ"));
        b.stmt("R", tmp, &[ix("i"), ix("j")], Expr::Const(0.0));
        b.enter("k", con(0), par("NK"));
        let prod = Expr::mul(
            Expr::mul(Expr::Const(1.5), b.rd(a, &[ix("i"), ix("k")])),
            b.rd(bb, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S", tmp, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();

        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NL"));
        let scale = Expr::mul(b.rd(dd, &[ix("i"), ix("j")]), Expr::Const(1.2));
        b.stmt("T", dd, &[ix("i"), ix("j")], scale);
        b.enter("k", con(0), par("NJ"));
        let prod = Expr::mul(b.rd(tmp, &[ix("i"), ix("k")]), b.rd(c, &[ix("k"), ix("j")]));
        b.stmt_update("U", dd, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    #[test]
    fn two_mm_has_expected_statements() {
        let s = build_2mm();
        assert_eq!(s.statements.len(), 4);
        let names: Vec<_> = s.statements.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["R", "S", "T", "U"]);
        assert_eq!(s.statements[0].dim, 2);
        assert_eq!(s.statements[1].dim, 3);
    }

    #[test]
    fn original_betas_encode_textual_order() {
        let s = build_2mm();
        assert_eq!(s.statements[0].schedule.beta, vec![0, 0, 0]); // R
        assert_eq!(s.statements[1].schedule.beta, vec![0, 0, 1, 0]); // S
        assert_eq!(s.statements[2].schedule.beta, vec![1, 0, 0]); // T
        assert_eq!(s.statements[3].schedule.beta, vec![1, 0, 1, 0]); // U
    }

    #[test]
    fn timestamps_order_r_before_s_in_same_iteration() {
        use crate::schedule::lex_cmp;
        use std::cmp::Ordering;
        let s = build_2mm();
        let params = [8, 8, 8, 8];
        let tr = s.statements[0].schedule.timestamp(&[2, 3], &params);
        let ts = s.statements[1].schedule.timestamp(&[2, 3, 0], &params);
        assert_eq!(lex_cmp(&tr, &ts), Ordering::Less);
        // T of the second nest comes after everything in the first.
        let tt = s.statements[2].schedule.timestamp(&[0, 0], &params);
        assert_eq!(lex_cmp(&ts, &tt), Ordering::Less);
    }

    #[test]
    fn domains_contain_expected_points() {
        let s = build_2mm();
        let st = &s.statements[1]; // S: (i,j,k) in [0,NI)x[0,NJ)x[0,NK)
        assert!(st.domain.contains(&[0, 0, 0, 8, 8, 8, 8]));
        assert!(st.domain.contains(&[7, 7, 7, 8, 8, 8, 8]));
        assert!(!st.domain.contains(&[8, 0, 0, 8, 8, 8, 8]));
    }

    #[test]
    fn reduction_pattern_recognized() {
        let s = build_2mm();
        assert!(!s.statements[0].is_reduction_update()); // R: tmp = 0
        assert!(s.statements[1].is_reduction_update()); // S: tmp += ...
        assert!(s.statements[2].is_reduction_update()); // T: D *= beta (mul update)
        assert!(s.statements[3].is_reduction_update()); // U: D += ...
    }

    #[test]
    fn triangular_bounds_resolve() {
        let mut b = ScopBuilder::new("tri", &["N"], &[6]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), ix("i") + con(1)); // j <= i
        let body = b.rd(a, &[ix("j"), ix("i")]);
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let s = b.finish().expect("well-formed SCoP");
        let st = &s.statements[0];
        assert!(st.domain.contains(&[3, 3, 6]));
        assert!(!st.domain.contains(&[3, 4, 6]));
    }

    #[test]
    fn symaff_algebra() {
        let a = ix("i") * 2 + par("N") - con(3);
        assert_eq!(a.iters, vec![("i".to_string(), 2)]);
        assert_eq!(a.params, vec![("N".to_string(), 1)]);
        assert_eq!(a.c, -3);
        let n = -a;
        assert_eq!(n.c, 3);
    }

    #[test]
    fn unknown_iterator_is_deferred_to_finish() {
        let mut b = ScopBuilder::new("bad", &["N"], &[4]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S", a, &[ix("zz")], Expr::Const(0.0));
        b.exit();
        let err = b.finish().expect_err("unknown iterator must be reported");
        assert!(err.to_string().contains("zz"), "{err}");
    }

    #[test]
    fn unclosed_loop_is_an_error_not_a_panic() {
        let mut b = ScopBuilder::new("open", &["N"], &[4]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S", a, &[ix("i")], Expr::Const(0.0));
        let err = b.finish().expect_err("unclosed loop must be reported");
        assert!(err.to_string().contains("unclosed"), "{err}");
    }

    #[test]
    fn exit_without_loop_is_an_error() {
        let mut b = ScopBuilder::new("x", &["N"], &[4]);
        b.exit();
        assert!(b.finish().is_err());
    }

    #[test]
    fn array_extent_evaluation() {
        let mut b = ScopBuilder::new("x", &["N"], &[4]);
        let _ = b.array_dims("A", vec![par("N") + con(1), con(3)]);
        let s = b.finish().expect("well-formed SCoP");
        assert_eq!(s.arrays[0].extents(&[10]), vec![11, 3]);
        assert_eq!(s.arrays[0].len(&[10]), 33);
    }
}
