//! A small imperative DSL for defining SCoPs.
//!
//! Kernels are written as a walk over their loop structure:
//!
//! ```
//! use polymix_ir::builder::{con, ix, par, ScopBuilder};
//! use polymix_ir::expr::Expr;
//!
//! // for (i = 0; i < N; i++)
//! //   for (j = 0; j <= i; j++)
//! //     C[i][j] = A[i][j] * 2.0;
//! let mut b = ScopBuilder::new("tri_scale", &["N"], &[16]);
//! let a = b.array("A", &["N", "N"]);
//! let c = b.array("C", &["N", "N"]);
//! b.enter("i", con(0), par("N"));
//! b.enter("j", con(0), ix("i") + con(1));
//! let body = Expr::mul(b.rd(a, &[ix("i"), ix("j")]), Expr::Const(2.0));
//! b.stmt("S", c, &[ix("i"), ix("j")], body);
//! b.exit();
//! b.exit();
//! let scop = b.finish();
//! assert_eq!(scop.statements.len(), 1);
//! assert_eq!(scop.statements[0].dim, 2);
//! ```
//!
//! Loop bounds and subscripts are symbolic affine forms ([`SymAff`]) over
//! iterator and parameter *names*, resolved to numeric rows when each
//! statement is created (so the row width always matches the statement's
//! depth).

use crate::expr::Expr;
use crate::schedule::Schedule;
use crate::scop::{Access, ArrayId, ArrayInfo, Scop, Statement};
use polymix_math::{Constraint, Polyhedron};
use std::ops::{Add, Mul, Neg, Sub};

/// A symbolic affine form `Σ cᵢ·iter + Σ cₚ·param + c`.
#[derive(Clone, Debug, Default)]
pub struct SymAff {
    iters: Vec<(String, i64)>,
    params: Vec<(String, i64)>,
    c: i64,
}

/// Symbolic reference to loop iterator `name`.
pub fn ix(name: &str) -> SymAff {
    SymAff {
        iters: vec![(name.to_string(), 1)],
        ..Default::default()
    }
}

/// Symbolic reference to structure parameter `name`.
pub fn par(name: &str) -> SymAff {
    SymAff {
        params: vec![(name.to_string(), 1)],
        ..Default::default()
    }
}

/// Constant affine form.
pub fn con(c: i64) -> SymAff {
    SymAff {
        c,
        ..Default::default()
    }
}

impl Add for SymAff {
    type Output = SymAff;
    fn add(mut self, rhs: SymAff) -> SymAff {
        self.iters.extend(rhs.iters);
        self.params.extend(rhs.params);
        self.c += rhs.c;
        self
    }
}

impl Sub for SymAff {
    type Output = SymAff;
    fn sub(self, rhs: SymAff) -> SymAff {
        self + (-rhs)
    }
}

impl Neg for SymAff {
    type Output = SymAff;
    fn neg(mut self) -> SymAff {
        for (_, c) in self.iters.iter_mut() {
            *c = -*c;
        }
        for (_, c) in self.params.iter_mut() {
            *c = -*c;
        }
        self.c = -self.c;
        self
    }
}

impl Mul<i64> for SymAff {
    type Output = SymAff;
    fn mul(mut self, k: i64) -> SymAff {
        for (_, c) in self.iters.iter_mut() {
            *c *= k;
        }
        for (_, c) in self.params.iter_mut() {
            *c *= k;
        }
        self.c *= k;
        self
    }
}

struct Frame {
    name: String,
    beta: i64,
    lo: SymAff,
    hi_excl: SymAff,
}

/// Incremental SCoP builder; see the module docs for the protocol.
pub struct ScopBuilder {
    name: String,
    params: Vec<String>,
    param_lbs: Vec<i64>,
    default_params: Vec<i64>,
    arrays: Vec<ArrayInfo>,
    statements: Vec<Statement>,
    frames: Vec<Frame>,
    sibling: Vec<i64>,
}

impl ScopBuilder {
    /// Starts a SCoP with the given structure parameters and the default
    /// values tests will run it with.
    pub fn new(name: &str, params: &[&str], default_params: &[i64]) -> ScopBuilder {
        assert_eq!(params.len(), default_params.len());
        ScopBuilder {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            param_lbs: vec![1; params.len()],
            default_params: default_params.to_vec(),
            arrays: Vec::new(),
            statements: Vec::new(),
            frames: Vec::new(),
            sibling: vec![0],
        }
    }

    /// Declares that every parameter is at least `lb` (stencil kernels use
    /// 2 or 3 so that legality reasoning knows interiors are nonempty).
    pub fn assume_params_at_least(&mut self, lb: i64) {
        for x in self.param_lbs.iter_mut() {
            *x = lb;
        }
    }

    /// Declares an f64 array whose extents are the named parameters.
    pub fn array(&mut self, name: &str, dims: &[&str]) -> ArrayId {
        let dims = dims.iter().map(|d| par(d)).collect();
        self.array_dims(name, dims)
    }

    /// Declares an f64 array with general affine extents over parameters.
    pub fn array_dims(&mut self, name: &str, dims: Vec<SymAff>) -> ArrayId {
        let p = self.params.len();
        let rows = dims
            .iter()
            .map(|a| {
                assert!(a.iters.is_empty(), "array extent must not use iterators");
                let mut row = vec![0i64; p + 1];
                for (pn, c) in &a.params {
                    row[self.param_pos(pn)] += c;
                }
                row[p] += a.c;
                row
            })
            .collect();
        self.arrays.push(ArrayInfo {
            name: name.to_string(),
            dims: rows,
            elem_bytes: 8,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Opens a loop `lo <= name < hi_excl`.
    pub fn enter(&mut self, name: &str, lo: SymAff, hi_excl: SymAff) {
        assert!(
            !self.frames.iter().any(|f| f.name == name),
            "shadowed iterator {name}"
        );
        let beta = *self.sibling.last().unwrap();
        *self.sibling.last_mut().unwrap() += 1;
        self.frames.push(Frame {
            name: name.to_string(),
            beta,
            lo,
            hi_excl,
        });
        self.sibling.push(0);
    }

    /// Closes the innermost open loop.
    pub fn exit(&mut self) {
        assert!(!self.frames.is_empty(), "exit() without open loop");
        self.frames.pop();
        self.sibling.pop();
    }

    /// Builds a read expression `array[subs]` resolved against the current
    /// loop nest.
    pub fn rd(&self, array: ArrayId, subs: &[SymAff]) -> Expr {
        let d = self.frames.len();
        Expr::Read {
            array,
            subs: subs.iter().map(|a| self.resolve(a, d)).collect(),
        }
    }

    /// Adds the statement `array[subs] = body` at the current position.
    pub fn stmt(&mut self, name: &str, array: ArrayId, subs: &[SymAff], body: Expr) {
        let d = self.frames.len();
        let p = self.params.len();
        let write = Access {
            array,
            map: subs.iter().map(|a| self.resolve(a, d)).collect(),
        };
        // Domain: loop bound rows plus parameter lower bounds.
        let mut domain = Polyhedron::universe(d + p);
        for (k, f) in self.frames.iter().enumerate() {
            let lo = self.resolve(&f.lo, d);
            let hi = self.resolve(&f.hi_excl, d);
            // it_k - lo >= 0
            let mut low = lo.iter().map(|&x| -x).collect::<Vec<_>>();
            low[k] += 1;
            domain.add(Constraint::ge(low));
            // hi - 1 - it_k >= 0
            let mut up = hi.clone();
            up[k] -= 1;
            up[d + p] -= 1;
            domain.add(Constraint::ge(up));
        }
        for (pk, &lb) in self.param_lbs.iter().enumerate() {
            let mut row = vec![0i64; d + p + 1];
            row[d + pk] = 1;
            row[d + p] = -lb;
            domain.add(Constraint::ge(row));
        }
        let mut beta: Vec<i64> = self.frames.iter().map(|f| f.beta).collect();
        beta.push(*self.sibling.last().unwrap());
        *self.sibling.last_mut().unwrap() += 1;
        self.statements.push(Statement {
            name: name.to_string(),
            dim: d,
            iter_names: self.frames.iter().map(|f| f.name.clone()).collect(),
            domain,
            write,
            body,
            schedule: Schedule::with_beta(d, p, beta),
        });
    }

    /// Adds the accumulation `array[subs] = array[subs] ⊕ rhs` (the `+=` /
    /// `*=` pattern that the reduction recognizer understands).
    pub fn stmt_update(
        &mut self,
        name: &str,
        array: ArrayId,
        subs: &[SymAff],
        op: crate::expr::BinOp,
        rhs: Expr,
    ) {
        let lhs_read = self.rd(array, subs);
        self.stmt(name, array, subs, Expr::Bin(op, Box::new(lhs_read), Box::new(rhs)));
    }

    /// Finalizes the SCoP. Panics if loops remain open.
    pub fn finish(self) -> Scop {
        assert!(self.frames.is_empty(), "unclosed loops at finish()");
        Scop {
            name: self.name,
            params: self.params,
            param_lower_bounds: self.param_lbs,
            arrays: self.arrays,
            statements: self.statements,
            default_params: self.default_params,
        }
    }

    fn param_pos(&self, name: &str) -> usize {
        self.params
            .iter()
            .position(|p| p == name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    fn iter_pos(&self, name: &str) -> usize {
        self.frames
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("unknown iterator {name}"))
    }

    fn resolve(&self, a: &SymAff, d: usize) -> Vec<i64> {
        let p = self.params.len();
        let mut row = vec![0i64; d + p + 1];
        for (it, c) in &a.iters {
            row[self.iter_pos(it)] += c;
        }
        for (pn, c) in &a.params {
            row[d + self.param_pos(pn)] += c;
        }
        row[d + p] += a.c;
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    /// Builds the paper's Fig. 1 2mm kernel and checks structure.
    fn build_2mm() -> Scop {
        let mut b = ScopBuilder::new("2mm", &["NI", "NJ", "NK", "NL"], &[8, 8, 8, 8]);
        let tmp = b.array("tmp", &["NI", "NJ"]);
        let a = b.array("A", &["NI", "NK"]);
        let bb = b.array("B", &["NK", "NJ"]);
        let c = b.array("C", &["NJ", "NL"]);
        let dd = b.array("D", &["NI", "NL"]);

        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NJ"));
        b.stmt("R", tmp, &[ix("i"), ix("j")], Expr::Const(0.0));
        b.enter("k", con(0), par("NK"));
        let prod = Expr::mul(
            Expr::mul(Expr::Const(1.5), b.rd(a, &[ix("i"), ix("k")])),
            b.rd(bb, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S", tmp, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();

        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NL"));
        let scale = Expr::mul(b.rd(dd, &[ix("i"), ix("j")]), Expr::Const(1.2));
        b.stmt("T", dd, &[ix("i"), ix("j")], scale);
        b.enter("k", con(0), par("NJ"));
        let prod = Expr::mul(b.rd(tmp, &[ix("i"), ix("k")]), b.rd(c, &[ix("k"), ix("j")]));
        b.stmt_update("U", dd, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish()
    }

    #[test]
    fn two_mm_has_expected_statements() {
        let s = build_2mm();
        assert_eq!(s.statements.len(), 4);
        let names: Vec<_> = s.statements.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["R", "S", "T", "U"]);
        assert_eq!(s.statements[0].dim, 2);
        assert_eq!(s.statements[1].dim, 3);
    }

    #[test]
    fn original_betas_encode_textual_order() {
        let s = build_2mm();
        assert_eq!(s.statements[0].schedule.beta, vec![0, 0, 0]); // R
        assert_eq!(s.statements[1].schedule.beta, vec![0, 0, 1, 0]); // S
        assert_eq!(s.statements[2].schedule.beta, vec![1, 0, 0]); // T
        assert_eq!(s.statements[3].schedule.beta, vec![1, 0, 1, 0]); // U
    }

    #[test]
    fn timestamps_order_r_before_s_in_same_iteration() {
        use crate::schedule::lex_cmp;
        use std::cmp::Ordering;
        let s = build_2mm();
        let params = [8, 8, 8, 8];
        let tr = s.statements[0].schedule.timestamp(&[2, 3], &params);
        let ts = s.statements[1].schedule.timestamp(&[2, 3, 0], &params);
        assert_eq!(lex_cmp(&tr, &ts), Ordering::Less);
        // T of the second nest comes after everything in the first.
        let tt = s.statements[2].schedule.timestamp(&[0, 0], &params);
        assert_eq!(lex_cmp(&ts, &tt), Ordering::Less);
    }

    #[test]
    fn domains_contain_expected_points() {
        let s = build_2mm();
        let st = &s.statements[1]; // S: (i,j,k) in [0,NI)x[0,NJ)x[0,NK)
        assert!(st.domain.contains(&[0, 0, 0, 8, 8, 8, 8]));
        assert!(st.domain.contains(&[7, 7, 7, 8, 8, 8, 8]));
        assert!(!st.domain.contains(&[8, 0, 0, 8, 8, 8, 8]));
    }

    #[test]
    fn reduction_pattern_recognized() {
        let s = build_2mm();
        assert!(!s.statements[0].is_reduction_update()); // R: tmp = 0
        assert!(s.statements[1].is_reduction_update()); // S: tmp += ...
        assert!(s.statements[2].is_reduction_update()); // T: D *= beta (mul update)
        assert!(s.statements[3].is_reduction_update()); // U: D += ...
    }

    #[test]
    fn triangular_bounds_resolve() {
        let mut b = ScopBuilder::new("tri", &["N"], &[6]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), ix("i") + con(1)); // j <= i
        let body = b.rd(a, &[ix("j"), ix("i")]);
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let s = b.finish();
        let st = &s.statements[0];
        assert!(st.domain.contains(&[3, 3, 6]));
        assert!(!st.domain.contains(&[3, 4, 6]));
    }

    #[test]
    fn symaff_algebra() {
        let a = ix("i") * 2 + par("N") - con(3);
        assert_eq!(a.iters, vec![("i".to_string(), 2)]);
        assert_eq!(a.params, vec![("N".to_string(), 1)]);
        assert_eq!(a.c, -3);
        let n = -a;
        assert_eq!(n.c, 3);
    }

    #[test]
    #[should_panic]
    fn unknown_iterator_panics() {
        let mut b = ScopBuilder::new("bad", &["N"], &[4]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S", a, &[ix("zz")], Expr::Const(0.0));
    }

    #[test]
    fn array_extent_evaluation() {
        let mut b = ScopBuilder::new("x", &["N"], &[4]);
        let _ = b.array_dims("A", vec![par("N") + con(1), con(3)]);
        let s = b.finish();
        assert_eq!(s.arrays[0].extents(&[10]), vec![11, 3]);
        assert_eq!(s.arrays[0].len(&[10]), 33);
    }
}
