//! The restricted `2d+1` schedule representation of Sec. III-A.
//!
//! A schedule assigns every dynamic instance `x` of a `d`-dimensional
//! statement the timestamp
//!
//! ```text
//! Θ(x) = ( β_0, α_1·x + γ_1(n), β_1, …, α_d·x + γ_d(n), β_d )
//! ```
//!
//! where the odd positions are the interleaving scalars `β` (fusion /
//! distribution / code motion), the even positions are the loop dimensions
//! given by the rows of the invertible matrix `α` (permutation, reversal,
//! and — for the Pluto baseline — skewing) plus parametric shifts `γ`
//! (multidimensional retiming).
//!
//! The paper restricts the poly+AST flow's `α` to *signed permutations*
//! so that `Θ⁻¹` is trivially available and the transformed loops keep
//! the original (or reversed) access patterns; the baseline uses general
//! unimodular `α`. Both are supported here, and invertibility over the
//! integers (unimodularity) is enforced at every construction site.

use polymix_math::{Constraint, IntMat, Polyhedron};
use std::cmp::Ordering;

/// A `2d+1` affine schedule (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Interleaving scalars `β_0 … β_d` (`d+1` entries).
    pub beta: Vec<i64>,
    /// Invertible `d × d` integer matrix; rows are loop dimensions.
    pub alpha: IntMat,
    /// Parametric shift rows, `d` rows over `[params | 1]`.
    pub gamma: Vec<Vec<i64>>,
}

impl Schedule {
    /// The identity schedule of a statement with `d` iterators in a SCoP
    /// with `p` parameters, with all-β given by `beta`.
    pub fn with_beta(d: usize, p: usize, beta: Vec<i64>) -> Schedule {
        assert_eq!(beta.len(), d + 1, "beta must have d+1 entries");
        Schedule {
            beta,
            alpha: IntMat::identity(d),
            gamma: vec![vec![0; p + 1]; d],
        }
    }

    /// Identity schedule with all-zero β.
    pub fn identity(d: usize, p: usize) -> Schedule {
        Schedule::with_beta(d, p, vec![0; d + 1])
    }

    /// Statement dimensionality.
    pub fn dim(&self) -> usize {
        self.alpha.rows()
    }

    /// Number of parameters the γ rows span.
    pub fn n_params(&self) -> usize {
        self.gamma.first().map_or(0, |g| g.len() - 1)
    }

    /// Checks structural well-formedness and integer invertibility,
    /// returning a description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        let d = self.dim();
        if self.beta.len() != d + 1 {
            return Err(format!(
                "beta arity: {} entries for dimension {d}",
                self.beta.len()
            ));
        }
        if self.gamma.len() != d {
            return Err(format!(
                "gamma arity: {} rows for dimension {d}",
                self.gamma.len()
            ));
        }
        if d != 0 && !self.alpha.is_unimodular() {
            return Err(format!("alpha must be unimodular: {:?}", self.alpha));
        }
        Ok(())
    }

    /// Asserts structural well-formedness and integer invertibility.
    /// Test helper; pipeline code uses [`Schedule::check`] and reports.
    pub fn validate(&self) {
        self.check().expect("valid schedule");
    }

    /// True when `α` is a signed permutation — the class the paper's
    /// poly+AST flow restricts itself to.
    pub fn is_signed_permutation(&self) -> bool {
        self.dim() == 0 || self.alpha.is_signed_permutation()
    }

    /// The full `2d+1` timestamp of the instance `iters` under parameters
    /// `params`.
    pub fn timestamp(&self, iters: &[i64], params: &[i64]) -> Vec<i64> {
        let d = self.dim();
        assert_eq!(iters.len(), d);
        let loops = self.alpha.mul_vec(iters);
        let mut out = Vec::with_capacity(2 * d + 1);
        for k in 0..d {
            out.push(self.beta[k]);
            let g = &self.gamma[k];
            let shift: i64 = g[..params.len()]
                .iter()
                .zip(params)
                .map(|(a, n)| a * n)
                .sum::<i64>()
                + g[params.len()];
            out.push(loops[k] + shift);
        }
        out.push(self.beta[d]);
        out
    }

    /// Affine row (layout `[iters | params | 1]`) computing loop dimension
    /// `k` (0-based) of the timestamp.
    pub fn loop_row(&self, k: usize) -> Vec<i64> {
        let d = self.dim();
        let p = self.n_params();
        let mut row = Vec::with_capacity(d + p + 1);
        row.extend_from_slice(self.alpha.row(k));
        row.extend_from_slice(&self.gamma[k]);
        debug_assert_eq!(row.len(), d + p + 1);
        row
    }

    /// Applies the schedule to an iteration domain: returns the domain of
    /// the *new* loop variables `y = α·x + γ(n)` as a polyhedron over
    /// `[y | params]`. Requires unimodular `α`.
    pub fn transformed_domain(&self, domain: &Polyhedron, p: usize) -> Polyhedron {
        let d = self.dim();
        assert_eq!(domain.n_dims(), d + p, "domain arity mismatch");
        if d == 0 {
            return domain.clone();
        }
        let ainv = self.alpha.inverse_unimodular();
        // x = ainv · (y - γ(n)).
        let mut out = Polyhedron::universe(d + p);
        for c in domain.constraints() {
            // c: cx · x + cn · n + c0 OP 0 becomes
            //    (cx · ainv) · y + (cn - cx·ainv·Γn) · n + (c0 - cx·ainv·γc) OP 0
            let cx = &c.row[..d];
            let mut row = vec![0i64; d + p + 1];
            // cx · ainv gives the y coefficients.
            for j in 0..d {
                row[j] = (0..d).map(|i| cx[i] * ainv[(i, j)]).sum();
            }
            // subtract (cx·ainv) · γ from the param/const part.
            for (pj, item) in row[d..d + p + 1].iter_mut().enumerate() {
                let shift: i64 = (0..d).map(|j| {
                    let cj: i64 = (0..d).map(|i| cx[i] * ainv[(i, j)]).sum();
                    cj * self.gamma[j][pj]
                })
                .sum();
                *item = c.row[d + pj] - shift;
            }
            out.add(Constraint { row, op: c.op });
        }
        out
    }

    /// Re-expresses an access row (layout `[iters | params | 1]`) in the
    /// new loop variables: `f(x) = f(α⁻¹(y - γ))`. This is the `f·Θ⁻¹`
    /// operation the paper uses to reason about post-transformation access
    /// patterns without generating code (Sec. III-A).
    pub fn transformed_access_row(&self, row: &[i64], p: usize) -> Vec<i64> {
        let d = self.dim();
        assert_eq!(row.len(), d + p + 1, "access row arity mismatch");
        if d == 0 {
            return row.to_vec();
        }
        let ainv = self.alpha.inverse_unimodular();
        let fx = &row[..d];
        let mut out = vec![0i64; d + p + 1];
        for j in 0..d {
            out[j] = (0..d).map(|i| fx[i] * ainv[(i, j)]).sum();
        }
        for (pj, item) in out[d..d + p + 1].iter_mut().enumerate() {
            let shift: i64 = (0..d).map(|j| {
                let cj: i64 = (0..d).map(|i| fx[i] * ainv[(i, j)]).sum();
                cj * self.gamma[j][pj]
            })
            .sum();
            *item = row[d + pj] - shift;
        }
        out
    }

    /// Builds the pure-permutation schedule sending original iterator
    /// `perm[k]` to loop level `k`, keeping β and γ zero.
    pub fn from_permutation(perm: &[usize], p: usize) -> Schedule {
        let d = perm.len();
        let mut alpha = IntMat::zeros(d, d);
        for (k, &src) in perm.iter().enumerate() {
            alpha[(k, src)] = 1;
        }
        let s = Schedule {
            beta: vec![0; d + 1],
            alpha,
            gamma: vec![vec![0; p + 1]; d],
        };
        s.validate();
        s
    }

    /// Reverses loop level `k` (negates the α row and γ row).
    pub fn reverse_level(&mut self, k: usize) {
        for j in 0..self.dim() {
            self.alpha[(k, j)] = -self.alpha[(k, j)];
        }
        for g in self.gamma[k].iter_mut() {
            *g = -*g;
        }
    }

    /// Adds a retiming (shift) of `c + Σ coeffs·params` to loop level `k`.
    pub fn shift_level(&mut self, k: usize, param_coeffs: &[i64], c: i64) {
        let p = self.n_params();
        assert_eq!(param_coeffs.len(), p);
        for (g, &a) in self.gamma[k][..p].iter_mut().zip(param_coeffs) {
            *g += a;
        }
        self.gamma[k][p] += c;
    }

    /// Adds `factor` times loop row `src` into loop row `dst` — loop
    /// skewing, only available to schedule classes that allow non-signed-
    /// permutation α (the Pluto baseline).
    pub fn skew(&mut self, dst: usize, src: usize, factor: i64) {
        assert_ne!(dst, src, "skew onto itself");
        for j in 0..self.dim() {
            let add = factor * self.alpha[(src, j)];
            self.alpha[(dst, j)] += add;
        }
        let p = self.n_params();
        for pj in 0..=p {
            let add = factor * self.gamma[src][pj];
            self.gamma[dst][pj] += add;
        }
    }
}

/// Lexicographic comparison of two timestamps, padding the shorter with
/// zeros (the convention for comparing statements of different depths).
pub fn lex_cmp(a: &[i64], b: &[i64]) -> Ordering {
    let n = a.len().max(b.len());
    for k in 0..n {
        let x = a.get(k).copied().unwrap_or(0);
        let y = b.get(k).copied().unwrap_or(0);
        match x.cmp(&y) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_math::Constraint;

    #[test]
    fn identity_timestamp_interleaves_beta() {
        let s = Schedule::with_beta(2, 1, vec![1, 0, 2]);
        assert_eq!(s.timestamp(&[5, 7], &[100]), vec![1, 5, 0, 7, 2]);
    }

    #[test]
    fn permutation_swaps_loops() {
        let s = Schedule::from_permutation(&[1, 0], 0);
        assert_eq!(s.timestamp(&[5, 7], &[]), vec![0, 7, 0, 5, 0]);
        assert!(s.is_signed_permutation());
    }

    #[test]
    fn shift_applies_parametric_retiming() {
        let mut s = Schedule::identity(1, 1);
        s.shift_level(0, &[1], -1); // i + N - 1
        assert_eq!(s.timestamp(&[3], &[10]), vec![0, 12, 0]);
    }

    #[test]
    fn reversal_negates_row() {
        let mut s = Schedule::identity(1, 0);
        s.reverse_level(0);
        assert_eq!(s.timestamp(&[3], &[]), vec![0, -3, 0]);
        assert!(s.is_signed_permutation());
    }

    #[test]
    fn skewing_breaks_signed_permutation_but_stays_unimodular() {
        let mut s = Schedule::identity(2, 0);
        s.skew(1, 0, 1); // (t, x) -> (t, x + t)
        s.validate();
        assert!(!s.is_signed_permutation());
        assert_eq!(s.timestamp(&[2, 3], &[]), vec![0, 2, 0, 5, 0]);
    }

    #[test]
    fn transformed_domain_of_permuted_square() {
        // Domain 0 <= i < N, 0 <= j < 4 with p = 1 params (N at col 2).
        let mut dom = Polyhedron::universe(3);
        dom.add(Constraint::ge(vec![1, 0, 0, 0])); // i >= 0
        dom.add(Constraint::ge(vec![-1, 0, 1, -1])); // i <= N-1
        dom.bound_const(1, 0, 4);
        let s = Schedule::from_permutation(&[1, 0], 1);
        let t = s.transformed_domain(&dom, 1);
        // New space (y0, y1) = (j, i): y0 in [0,4), y1 in [0,N).
        assert!(t.contains(&[3, 0, 10]));
        assert!(t.contains(&[0, 9, 10]));
        assert!(!t.contains(&[4, 0, 10]));
        assert!(!t.contains(&[0, 10, 10]));
    }

    #[test]
    fn transformed_domain_of_skewed_band() {
        // 0 <= t < 4, 0 <= x < 4; skew x by t: y = (t, t + x).
        let mut dom = Polyhedron::universe(2);
        dom.bound_const(0, 0, 4);
        dom.bound_const(1, 0, 4);
        let mut s = Schedule::identity(2, 0);
        s.skew(1, 0, 1);
        let t = s.transformed_domain(&dom, 0);
        // Points (y0, y1) valid iff 0 <= y0 < 4 and y0 <= y1 < y0 + 4.
        assert!(t.contains(&[2, 2]));
        assert!(t.contains(&[2, 5]));
        assert!(!t.contains(&[2, 1]));
        assert!(!t.contains(&[2, 6]));
        assert_eq!(t.enumerate().len(), 16);
    }

    #[test]
    fn transformed_access_row_via_shift() {
        // Access A[i] with schedule y = i + 1  =>  A[y - 1].
        let mut s = Schedule::identity(1, 0);
        s.shift_level(0, &[], 1);
        let row = s.transformed_access_row(&[1, 0], 0);
        assert_eq!(row, vec![1, -1]);
    }

    #[test]
    fn transformed_access_row_via_permutation() {
        // Access B[k][j] (rows over [i,j,k | 1]); permute loops to (k,j,i):
        // y0=k, y1=j, y2=i  =>  B[y0][y1].
        let s = Schedule::from_permutation(&[2, 1, 0], 0);
        let row_k = s.transformed_access_row(&[0, 0, 1, 0], 0);
        let row_j = s.transformed_access_row(&[0, 1, 0, 0], 0);
        assert_eq!(row_k, vec![1, 0, 0, 0]);
        assert_eq!(row_j, vec![0, 1, 0, 0]);
    }

    #[test]
    fn lex_cmp_pads_with_zeros() {
        use std::cmp::Ordering::*;
        assert_eq!(lex_cmp(&[0, 1, 0], &[0, 1, 0, 1, 0]), Less);
        assert_eq!(lex_cmp(&[0, 1], &[0, 1, 0, 0]), Equal);
        assert_eq!(lex_cmp(&[0, 2], &[0, 1, 5]), Greater);
    }

    #[test]
    #[should_panic]
    fn non_unimodular_alpha_rejected() {
        let s = Schedule {
            beta: vec![0, 0],
            alpha: IntMat::from_rows(&[vec![2]]),
            gamma: vec![vec![0]],
        };
        s.validate();
    }
}

impl std::fmt::Display for Schedule {
    /// Human-readable form: `β0 [row0 + γ0] β1 [row1 + γ1] … βd`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.dim();
        for k in 0..d {
            write!(f, "{} ", self.beta[k])?;
            let row: Vec<String> = (0..d)
                .map(|j| self.alpha[(k, j)].to_string())
                .collect();
            let g: Vec<String> = self.gamma[k].iter().map(|x| x.to_string()).collect();
            write!(f, "[{} | {}] ", row.join(","), g.join(","))?;
        }
        write!(f, "{}", self.beta[d])
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_is_compact_and_total() {
        let mut s = Schedule::with_beta(2, 1, vec![0, 1, 2]);
        s.shift_level(1, &[1], -3);
        let txt = format!("{s}");
        assert!(txt.starts_with("0 [1,0 | 0,0] 1 [0,1 | 1,-3] 2"), "{txt}");
    }
}
