//! End-to-end baseline optimization: Pluto-style schedules, polyhedral
//! code generation, tiling, wavefront-or-doall parallelization, and the
//! optional intra-tile vectorization permutation.

use crate::scheduler::{schedule_with_fallback, Fusion};
use polymix_ast::transforms::band_depth;
use polymix_ast::tree::{Node, Par, Program};
use polymix_codegen::from_poly::generate;
use polymix_codegen::opt::{mark_parallelism, nest_infos, register_tile, tile_nest, tilable_prefix};
use polymix_deps::build_podg;
use polymix_ir::error::PolymixError;
use polymix_ir::Scop;

/// Which PoCC experimental variant to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlutoVariant {
    /// `pocc`: smart-fuse + tiling + coarse-grain parallelization with
    /// wavefronting when no outer tile loop is parallel.
    Pocc,
    /// `pocc+vect`: `pocc` plus an intra-tile permutation placing the
    /// best vectorizable loop innermost.
    PoccVect,
    /// Maximal fusion (the Fig. 2 comparison structure).
    MaxFuse,
    /// No fusion across SCCs.
    NoFuse,
}

/// Baseline optimizer options.
#[derive(Clone, Debug)]
pub struct PlutoOptions {
    /// Variant to emulate.
    pub variant: PlutoVariant,
    /// Rectangular tile size (the paper uses 32).
    pub tile: i64,
    /// Tile size of the outermost (time) band dimension (the paper uses 5
    /// for the stencil group).
    pub time_tile: i64,
    /// Enable loop tiling.
    pub tiling: bool,
    /// Unroll-and-jam factors `(outer, inner)` for register tiling.
    pub unroll: (i64, i64),
}

impl Default for PlutoOptions {
    fn default() -> Self {
        PlutoOptions {
            variant: PlutoVariant::Pocc,
            tile: 32,
            time_tile: 5,
            tiling: true,
            unroll: (1, 1),
        }
    }
}

/// Runs the baseline flow and returns the optimized program.
///
/// Scheduling degrades gracefully through the fusion fallback chain
/// (`requested → maxfuse → smartfuse → nofuse → identity`), so only
/// code generation can fail here; a [`PolymixError::Codegen`] means no
/// legal program could be produced at all.
pub fn optimize_pluto(scop: &Scop, opts: &PlutoOptions) -> Result<Program, PolymixError> {
    let fusion = match opts.variant {
        PlutoVariant::MaxFuse => Fusion::Max,
        PlutoVariant::NoFuse => Fusion::None,
        _ => Fusion::Smart,
    };
    let fallback = schedule_with_fallback(scop, fusion);
    let schedules = fallback.schedules;
    let mut prog = generate(scop, &schedules)?;
    let podg = build_podg(scop);
    let infos = nest_infos(scop, &schedules, &podg, &prog);

    // Process each top-level nest independently.
    let tops: Vec<Node> = match std::mem::replace(&mut prog.body, Node::Seq(vec![])) {
        Node::Seq(xs) => xs,
        other => vec![other],
    };
    if tops.len() != infos.len() {
        return Err(PolymixError::codegen(
            &scop.name,
            format!(
                "top-level nest count {} does not match dependence info count {}",
                tops.len(),
                infos.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(tops.len());
    for (mut nest, info) in tops.into_iter().zip(&infos) {
        // 1. Parallelism detection on the *pre-tiling* loops. The
        //    baseline only exploits doall (the paper's critique): if the
        //    outermost level is not doall, it wavefronts tile loops later.
        let outer_doall = mark_parallelism(&mut nest, &info.vectors, info.depth, true)
            .map(|(k, _)| k);
        // 2. Tiling.
        let tiled_band = if opts.tiling {
            let m = tilable_prefix(&info.vectors, info.depth);
            nest = tile_nest(
                &mut prog,
                nest,
                &info.vectors,
                &info.endpoints,
                info.depth,
                opts.tile,
                opts.time_tile,
            );
            m
        } else {
            0
        };
        // 3. Wavefront when tiled but no outer doall: the two outermost
        //    tile loops execute as diagonals with a barrier per diagonal
        //    (materialized by the emitter; sequential order stays valid
        //    for the interpreter).
        if opts.tiling && tiled_band >= 2 && outer_doall != Some(0) {
            if let Node::Loop(l) = &mut nest {
                if band_depth(&l.body) >= 1 {
                    l.par = Par::Wavefront;
                }
            }
        }
        // 4. Intra-tile vectorization permutation (`vect`): handled by
        //    keeping the innermost point loop stride-1; our point loops
        //    already preserve the schedule's order, so the vect variant
        //    additionally unrolls (register-tiles) the innermost pair.
        if opts.variant == PlutoVariant::PoccVect || opts.unroll.0 > 1 || opts.unroll.1 > 1 {
            let (o, i) = if opts.variant == PlutoVariant::PoccVect && opts.unroll == (1, 1) {
                (2, 2)
            } else {
                opts.unroll
            };
            register_tile(&mut nest, o, i, &info.vectors, &info.endpoints);
        }
        out.push(nest);
    }
    prog.body = match out.len() {
        1 => out.remove(0),
        _ => Node::Seq(out),
    };
    // Mandatory debug-mode certification of the baseline's output, on
    // the same terms as the poly+AST flow.
    #[cfg(debug_assertions)]
    polymix_verify::certify(&prog)?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ast::interp::execute;
    use polymix_polybench::all_kernels;

    /// The heavyweight oracle: every variant × every kernel must match
    /// the reference bit-for-bit under sequential interpretation.
    #[test]
    fn pluto_variants_preserve_semantics_on_all_kernels() {
        for variant in [
            PlutoVariant::Pocc,
            PlutoVariant::MaxFuse,
            PlutoVariant::NoFuse,
        ] {
            for k in all_kernels() {
                let scop = (k.build)();
                let params = k.dataset("mini").params;
                let mut expected = k.fresh_arrays(&scop, &params);
                (k.reference)(&params, &mut expected);

                let opts = PlutoOptions {
                    variant,
                    tile: 4,
                    time_tile: 2,
                    ..Default::default()
                };
                let prog = optimize_pluto(&scop, &opts).expect("optimize");
                let mut actual = k.fresh_arrays(&scop, &params);
                execute(&prog, &params, &mut actual);
                for (ai, (e, a)) in expected.iter().zip(&actual).enumerate() {
                    assert_eq!(
                        e, a,
                        "{:?} {} array {} ({}) mismatch",
                        variant, k.name, ai, scop.arrays[ai].name
                    );
                }
            }
        }
    }

    #[test]
    fn wavefront_appears_for_seidel() {
        let k = polymix_polybench::kernel_by_name("seidel-2d").unwrap();
        let scop = (k.build)();
        let prog = optimize_pluto(&scop, &PlutoOptions::default()).expect("optimize");
        // The outermost tile loop must carry the wavefront annotation.
        let mut found = false;
        let mut body = prog.body.clone();
        body.visit_loops_mut(&mut |l| {
            if l.par == Par::Wavefront {
                found = true;
            }
        });
        assert!(found, "no wavefront annotation on seidel tiles");
    }

    #[test]
    fn gemm_outer_loop_is_doall() {
        let k = polymix_polybench::kernel_by_name("gemm").unwrap();
        let scop = (k.build)();
        let prog = optimize_pluto(&scop, &PlutoOptions::default()).expect("optimize");
        match &prog.body {
            Node::Loop(l) => assert_eq!(l.par, Par::Doall),
            Node::Seq(xs) => {
                if let Node::Loop(l) = &xs[0] {
                    assert_eq!(l.par, Par::Doall);
                } else {
                    panic!("unexpected shape");
                }
            }
            _ => panic!("unexpected shape"),
        }
    }
}
