//! # polymix-pluto
//!
//! The baseline optimizer — a reimplementation of the *behaviour* of the
//! PoCC/Pluto toolchain the paper compares against (its `pocc`,
//! `pocc+vect` and `iterative` experimental variants):
//!
//! * a level-by-level scheduler that **minimizes reuse distance** subject
//!   to legality, searching small candidate hyperplane sets (original
//!   iterators plus pairwise sums, i.e. skewed hyperplanes) — the
//!   restriction of Pluto's Farkas/ILP search that suffices to reproduce
//!   Pluto's output shapes on PolyBench (see DESIGN.md);
//! * **max-fuse** and **smart-fuse** fusion heuristics;
//! * rectangular tiling of the permutable bands it constructs, wavefront
//!   parallelization of the tile loops when no outer tile loop is doall,
//!   and an optional intra-tile vectorization permutation (`vect`);
//! * an `iterative` mode that enumerates fusion structures and returns
//!   every variant, for auto-tuning by the harness.
//!
//! In contrast to `polymix-core`'s flow, everything here — including
//! skewing — happens *inside* the schedule, which is exactly what
//! produces the complex loop structures (Fig. 2) the paper's approach
//! avoids.

pub mod optimizer;
pub mod scheduler;

pub use optimizer::{optimize_pluto, PlutoOptions, PlutoVariant};
pub use scheduler::{schedule_pluto, schedule_with_fallback, FallbackSchedule, Fusion};
