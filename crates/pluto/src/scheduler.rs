//! The Pluto-like level-by-level scheduler.
//!
//! At every loop level the scheduler groups statements into SCCs of the
//! *unsatisfied* dependence graph, fuses SCCs per the chosen heuristic,
//! and picks one schedule row per statement from a small candidate set —
//! unscheduled original iterators and their pairwise sums — repaired by
//! adding multiples of already-fixed rows when a dependence would go
//! backwards (schedule-embedded skewing, as Pluto does). Among legal
//! combinations it picks the one **minimizing the estimated reuse
//! distance**, Pluto's objective.

use polymix_deps::legality::{apply_loop_row, DepState, RowEffect};
use polymix_deps::vectors::classify;
use polymix_deps::{build_podg, sccs, DepElem, Podg};
use polymix_ir::error::PolymixError;
use polymix_ir::scop::StmtId;
use polymix_ir::{Schedule, Scop};
use polymix_math::IntMat;

/// Fusion heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fusion {
    /// Fuse whenever a legal row combination exists (Pluto `maxfuse`).
    Max,
    /// Fuse only groups that share an array (Pluto `smartfuse`).
    Smart,
    /// Never fuse distinct SCCs (`nofuse`).
    None,
}

/// Computes Pluto-style schedules for the SCoP. Returns a
/// [`PolymixError::Scheduling`] when some loop level admits no legal row
/// combination (even after band breaking) under the requested fusion
/// heuristic; see [`schedule_with_fallback`] for the graceful chain.
pub fn schedule_pluto(scop: &Scop, fusion: Fusion) -> Result<Vec<Schedule>, PolymixError> {
    let podg = build_podg(scop);
    let mut sched = Sched {
        scop,
        podg: &podg,
        fusion,
        states: podg
            .deps
            .iter()
            .enumerate()
            .map(|(i, d)| DepState::new(i, d))
            .collect(),
        rows: scop.statements.iter().map(|_| Vec::new()).collect(),
        betas: scop.statements.iter().map(|_| Vec::new()).collect(),
    };
    let all: Vec<StmtId> = (0..scop.statements.len()).map(StmtId).collect();
    let band = sched.states.clone();
    sched.solve(&all, 0, &band)?;
    sched.finish()
}

/// Which fusion heuristics to try, most to least aggressive, starting
/// from the requested one (duplicates removed).
fn fallback_chain(requested: Fusion) -> Vec<Fusion> {
    let mut chain = vec![requested];
    for f in [Fusion::Max, Fusion::Smart, Fusion::None] {
        if !chain.contains(&f) {
            chain.push(f);
        }
    }
    chain
}

/// Result of [`schedule_with_fallback`]: the schedules plus a record of
/// which rung of the chain produced them.
#[derive(Clone, Debug)]
pub struct FallbackSchedule {
    /// One schedule per statement, in statement order.
    pub schedules: Vec<Schedule>,
    /// The fusion heuristic that succeeded, or `None` when every
    /// heuristic failed and the statements' original (textual-order)
    /// schedules were used instead.
    pub used: Option<Fusion>,
    /// Errors of the rungs tried before the successful one, in order.
    pub errors: Vec<PolymixError>,
}

impl FallbackSchedule {
    /// True when the scheduler had to degrade below the requested
    /// heuristic (including all the way to the identity schedules).
    pub fn degraded(&self) -> bool {
        !self.errors.is_empty()
    }
}

/// Schedules the SCoP with graceful degradation: tries the requested
/// fusion heuristic, then the remaining ones in `maxfuse → smartfuse →
/// nofuse` order, and finally falls back to the statements' original
/// schedules (the untransformed loop order, which is always legal).
/// Never fails; failed rungs are recorded in
/// [`FallbackSchedule::errors`].
pub fn schedule_with_fallback(scop: &Scop, requested: Fusion) -> FallbackSchedule {
    let mut errors = Vec::new();
    for f in fallback_chain(requested) {
        match schedule_pluto(scop, f) {
            Ok(schedules) => {
                return FallbackSchedule {
                    schedules,
                    used: Some(f),
                    errors,
                }
            }
            Err(e) => errors.push(e),
        }
    }
    // Last rung: original textual-order schedules are always legal.
    let schedules = scop.statements.iter().map(|s| s.schedule.clone()).collect();
    FallbackSchedule {
        schedules,
        used: None,
        errors,
    }
}

struct Sched<'a> {
    scop: &'a Scop,
    podg: &'a Podg,
    fusion: Fusion,
    states: Vec<DepState>,
    /// Chosen α rows per statement (statement-local iterator coefficients).
    rows: Vec<Vec<Vec<i64>>>,
    betas: Vec<Vec<i64>>,
}

impl Sched<'_> {
    fn dim(&self, s: StmtId) -> usize {
        self.scop.statements[s.0].dim
    }

    fn exhausted(&self, s: StmtId) -> bool {
        self.rows[s.0].len() >= self.dim(s)
    }

    /// Recursively schedules `stmts` from loop level `level`.
    /// `band` is the dependence-state snapshot at the start of the
    /// current permutable band: rows must be non-negative on the *band*
    /// remaining polyhedra (Pluto's permutability constraint, which is
    /// what forces proactive skewing for stencils); when no candidate
    /// satisfies it, the band is broken and restarted at this level.
    /// Errors when even the broken band admits no legal combination.
    fn solve(
        &mut self,
        stmts: &[StmtId],
        level: usize,
        band: &[DepState],
    ) -> Result<(), PolymixError> {
        // Partition into SCCs of the unsatisfied subgraph.
        let edges: Vec<(StmtId, StmtId)> = self
            .podg
            .deps
            .iter()
            .zip(&self.states)
            .filter(|(_, st)| !st.satisfied)
            .map(|(d, _)| (d.src, d.dst))
            .filter(|(s, d)| stmts.contains(s) && stmts.contains(d))
            .collect();
        let comps = sccs(stmts, &edges);

        // Greedy fusion of consecutive components.
        let mut groups: Vec<Vec<StmtId>> = Vec::new();
        for comp in comps {
            let comp_exhausted = comp.iter().all(|&s| self.exhausted(s));
            let can_try = match self.fusion {
                Fusion::None => false,
                Fusion::Max => true,
                Fusion::Smart => true,
            };
            if can_try && !comp_exhausted {
                if let Some(last_idx) = groups.len().checked_sub(1) {
                    let last = &groups[last_idx];
                    let last_ok = !last.iter().any(|&s| self.exhausted(s));
                    let smart_ok = self.fusion == Fusion::Max
                        || self.shares_array(last, &comp);
                    if last_ok && smart_ok {
                        let mut merged = last.clone();
                        merged.extend(comp.iter().copied());
                        if self.find_rows(&merged, level, band).is_some()
                            || self.find_rows(&merged, level, &self.states.clone()).is_some()
                        {
                            groups[last_idx] = merged;
                            continue;
                        }
                    }
                }
            }
            groups.push(comp);
        }

        // Assign β and rows per group, then recurse.
        for (pos, group) in groups.into_iter().enumerate() {
            // β at this level.
            for &s in &group {
                self.betas[s.0].push(pos as i64);
            }
            // Apply β ordering to cross-group dependence states: peeling
            // happens implicitly — deps to later groups become satisfied,
            // deps within the group continue.
            self.apply_beta_effects(stmts, &group, level);
            if group.iter().all(|&s| self.exhausted(s)) {
                continue; // leaf (or group of leaves at identical depth 0)
            }
            // Try within the current band; on failure break the band
            // (snapshot the current states as the new band start).
            let (combo, child_band) = match self.find_rows(&group, level, band) {
                Some(c) => (c, band.to_vec()),
                None => {
                    let fresh = self.states.clone();
                    match self.find_rows(&group, level, &fresh) {
                        Some(c) => (c, fresh),
                        None => {
                            return Err(PolymixError::scheduling(
                                &self.scop.name,
                                level,
                                group.iter().map(|s| s.0).collect(),
                                "no legal row combination, even after band break",
                            ));
                        }
                    }
                }
            };
            // Commit the rows and peel the dependences.
            for (&s, row) in group.iter().zip(&combo) {
                self.rows[s.0].push(row.clone());
            }
            self.commit_rows(&group, &combo);
            self.solve(&group, level + 1, &child_band)?;
        }
        Ok(())
    }

    fn shares_array(&self, a: &[StmtId], b: &[StmtId]) -> bool {
        let arrays = |list: &[StmtId]| -> Vec<usize> {
            let mut out = Vec::new();
            for &s in list {
                for (acc, _) in self.scop.statements[s.0].accesses() {
                    if !out.contains(&acc.array.0) {
                        out.push(acc.array.0);
                    }
                }
            }
            out
        };
        let aa = arrays(a);
        arrays(b).iter().any(|x| aa.contains(x))
    }

    /// Marks dependences from this group to later groups as satisfied
    /// (β ordering). Dependences into earlier groups were satisfied when
    /// those groups were processed.
    fn apply_beta_effects(&mut self, all: &[StmtId], group: &[StmtId], _level: usize) {
        for (d, st) in self.podg.deps.iter().zip(self.states.iter_mut()) {
            if st.satisfied {
                continue;
            }
            let src_in = group.contains(&d.src);
            let dst_in = group.contains(&d.dst);
            if src_in && !dst_in && all.contains(&d.dst) {
                // Source group runs before the (later) destination group.
                st.satisfied = true;
            }
        }
    }

    /// Searches for one legal row per statement of the group at `level`.
    /// Pure (states untouched). Returns the chosen (repaired) rows.
    fn find_rows(&self, group: &[StmtId], level: usize, band: &[DepState]) -> Option<Vec<Vec<i64>>> {
        // Candidate rows per statement.
        let cands: Vec<Vec<Vec<i64>>> = group
            .iter()
            .map(|&s| self.candidates(s, group.len()))
            .collect();
        if cands.iter().any(|c| c.is_empty()) {
            return None;
        }
        // Bounded cartesian search, best score wins.
        let mut idx = vec![0usize; group.len()];
        let mut best: Option<(i64, Vec<Vec<i64>>)> = None;
        let mut explored = 0usize;
        'outer: loop {
            explored += 1;
            if explored > 20_000 {
                break;
            }
            let combo: Vec<Vec<i64>> = idx
                .iter()
                .enumerate()
                .map(|(g, &i)| cands[g][i].clone())
                .collect();
            if let Some((score, repaired)) = self.try_combo(group, &combo, level, band) {
                if best.as_ref().is_none_or(|(b, _)| score < *b) {
                    best = Some((score, repaired));
                    if score == 0 {
                        break 'outer;
                    }
                }
            }
            // Odometer.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    break 'outer;
                }
                idx[k] += 1;
                if idx[k] < cands[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
        best.map(|(_, combo)| combo)
    }

    /// Candidate rows for statement `s`: unit iterators linearly
    /// independent of the chosen rows, then (for small groups) pairwise
    /// sums of iterators, filtered for independence by rank.
    fn candidates(&self, s: StmtId, group_size: usize) -> Vec<Vec<i64>> {
        let d = self.dim(s);
        let chosen = &self.rows[s.0];
        if chosen.len() >= d {
            return Vec::new();
        }
        let independent = |r: &Vec<i64>| -> bool {
            let mut m = IntMat::zeros(0, d);
            for c in chosen {
                m.push_row(c);
            }
            let base = m.rank();
            m.push_row(r);
            m.rank() > base
        };
        let mut out: Vec<Vec<i64>> = Vec::new();
        for i in 0..d {
            let mut r = vec![0i64; d];
            r[i] = 1;
            if independent(&r) {
                out.push(r);
            }
        }
        if group_size <= 4 {
            for i in 0..d {
                for j in i + 1..d {
                    let mut r = vec![0i64; d];
                    r[i] = 1;
                    r[j] = 1;
                    if independent(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out
    }

    /// Checks the combo's legality on the current states (without
    /// mutating them), applying skew-repair when a dependence goes
    /// backwards. Returns the reuse-distance score together with the
    /// (possibly repaired) rows, or `None` if illegal even after repair.
    fn try_combo(
        &self,
        group: &[StmtId],
        combo: &[Vec<i64>],
        level: usize,
        band: &[DepState],
    ) -> Option<(i64, Vec<Vec<i64>>)> {
        let repaired = self.repair(group, combo, level, band)?;
        let mut score = 0i64;
        for (d, st) in self.podg.deps.iter().zip(&self.states) {
            if st.satisfied {
                continue;
            }
            let (Some(si), Some(di)) = (
                group.iter().position(|&s| s == d.src),
                group.iter().position(|&s| s == d.dst),
            ) else {
                continue;
            };
            let row_src = self.full_row(d.src, &repaired[si]);
            let row_dst = self.full_row(d.dst, &repaired[di]);
            let diff = d.diff_row(&row_src, &row_dst);
            score += match classify(&st.remaining, &diff, &self.scop.default_params) {
                DepElem::Const(c) => c.abs(),
                _ => 40,
            };
        }
        // Prefer plain unit rows slightly (Pluto's cost also penalizes
        // skew magnitude).
        for r in &repaired {
            score += r.iter().map(|&c| c.abs()).sum::<i64>() - 1;
        }
        Some((score, repaired))
    }

    /// Attempts to make the combo legal by adding multiples of previously
    /// fixed rows (uniform across the group). Deterministic: the caller
    /// can re-run it to commit.
    fn repair(
        &self,
        group: &[StmtId],
        combo: &[Vec<i64>],
        level: usize,
        band: &[DepState],
    ) -> Option<Vec<Vec<i64>>> {
        let mut rows: Vec<Vec<i64>> = combo.to_vec();
        'attempt: for attempt in 0..=(2 * level.min(3)) {
            if self.legal(group, &rows, band) {
                return Some(rows);
            }
            // Add one more multiple of an earlier row to every statement.
            let prev_level = attempt % level.max(1);
            if level == 0 {
                return None;
            }
            for (g, &s) in group.iter().enumerate() {
                let Some(prev) = self.rows[s.0].get(prev_level) else {
                    continue 'attempt;
                };
                for (dst, &p) in rows[g].iter_mut().zip(prev) {
                    *dst += p;
                }
            }
        }
        if self.legal(group, &rows, band) {
            Some(rows)
        } else {
            None
        }
    }

    /// Band legality: every internal dependence must be non-negative over
    /// the *band-start* remaining polyhedron (which contains the current
    /// remaining one, so ordering legality is implied).
    fn legal(&self, group: &[StmtId], rows: &[Vec<i64>], band: &[DepState]) -> bool {
        for (d, st) in self.podg.deps.iter().zip(band) {
            if st.satisfied {
                continue;
            }
            let (Some(si), Some(di)) = (
                group.iter().position(|&s| s == d.src),
                group.iter().position(|&s| s == d.dst),
            ) else {
                continue;
            };
            let mut probe = st.clone();
            let row_src = self.full_row(d.src, &rows[si]);
            let row_dst = self.full_row(d.dst, &rows[di]);
            if apply_loop_row(d, &mut probe, &row_src, &row_dst) == RowEffect::Violated {
                return false;
            }
        }
        true
    }

    /// Commits the (already repaired) rows: peels every internal dep.
    fn commit_rows(&mut self, group: &[StmtId], combo: &[Vec<i64>]) {
        for (di, d) in self.podg.deps.iter().enumerate() {
            if self.states[di].satisfied {
                continue;
            }
            let (Some(si), Some(ti)) = (
                group.iter().position(|&s| s == d.src),
                group.iter().position(|&s| s == d.dst),
            ) else {
                continue;
            };
            let row_src = self.full_row(d.src, &combo[si]);
            let row_dst = self.full_row(d.dst, &combo[ti]);
            let eff = apply_loop_row(d, &mut self.states[di], &row_src, &row_dst);
            debug_assert_ne!(eff, RowEffect::Violated, "committing illegal row");
        }
    }

    /// Widens a statement-local iterator row to `[iters | params | 1]`.
    fn full_row(&self, _s: StmtId, row: &[i64]) -> Vec<i64> {
        let p = self.scop.n_params();
        let mut out = row.to_vec();
        out.extend(std::iter::repeat(0).take(p + 1));
        out
    }

    /// Assembles the final `Schedule` per statement; the committed rows
    /// become α (with unit-completion if the search ended early), β is
    /// padded, γ stays zero (the baseline uses no parametric retiming).
    /// Errors if completion cannot produce a structurally valid schedule.
    fn finish(mut self) -> Result<Vec<Schedule>, PolymixError> {
        // The recursion only stops once every statement is exhausted, but
        // be defensive: complete any missing rows with unused units.
        let p = self.scop.n_params();
        let mut out = Vec::new();
        for (i, stmt) in self.scop.statements.iter().enumerate() {
            let d = stmt.dim;
            while self.rows[i].len() < d {
                let used: Vec<usize> = (0..d)
                    .filter(|&k| self.rows[i].iter().any(|r| r[k] != 0))
                    .collect();
                let Some(free) = (0..d).find(|k| !used.contains(k)) else {
                    return Err(PolymixError::scheduling(
                        &self.scop.name,
                        self.rows[i].len(),
                        vec![i],
                        "row completion found no free iterator",
                    ));
                };
                let mut r = vec![0i64; d];
                r[free] = 1;
                self.rows[i].push(r);
                self.betas[i].push(0);
            }
            let mut beta = self.betas[i].clone();
            beta.truncate(d + 1);
            while beta.len() < d + 1 {
                beta.push(0);
            }
            let alpha = if d == 0 {
                IntMat::zeros(0, 0)
            } else {
                IntMat::from_rows(&self.rows[i])
            };
            let sched = Schedule {
                beta,
                alpha,
                gamma: vec![vec![0; p + 1]; d],
            };
            sched.check().map_err(|msg| {
                PolymixError::scheduling(&self.scop.name, 0, vec![i], msg)
            })?;
            out.push(sched);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_codegen::from_poly::generate;
    use polymix_deps::legality::schedules_legal_for_dep;
    use polymix_polybench::{all_kernels, kernel_by_name};

    fn check_legal(scop: &Scop, schedules: &[Schedule]) {
        let podg = build_podg(scop);
        for d in &podg.deps {
            assert!(
                schedules_legal_for_dep(d, &schedules[d.src.0], &schedules[d.dst.0]),
                "illegal schedule for dep {:?} -> {:?} in {}",
                d.src,
                d.dst,
                scop.name
            );
        }
    }

    #[test]
    fn maxfuse_schedules_are_legal_for_all_kernels() {
        for k in all_kernels() {
            let scop = (k.build)();
            let schedules = schedule_pluto(&scop, Fusion::Max).expect("schedule");
            check_legal(&scop, &schedules);
        }
    }

    #[test]
    fn smartfuse_schedules_are_legal_for_all_kernels() {
        for k in all_kernels() {
            let scop = (k.build)();
            let schedules = schedule_pluto(&scop, Fusion::Smart).expect("schedule");
            check_legal(&scop, &schedules);
        }
    }

    #[test]
    fn nofuse_schedules_are_legal_for_all_kernels() {
        for k in all_kernels() {
            let scop = (k.build)();
            let schedules = schedule_pluto(&scop, Fusion::None).expect("schedule");
            check_legal(&scop, &schedules);
        }
    }

    #[test]
    fn maxfuse_2mm_fuses_the_two_nests() {
        let k = kernel_by_name("2mm").unwrap();
        let scop = (k.build)();
        let schedules = schedule_pluto(&scop, Fusion::Max).expect("schedule");
        // All four statements share β0 under maxfuse.
        let b0: Vec<i64> = schedules.iter().map(|s| s.beta[0]).collect();
        assert!(b0.iter().all(|&b| b == b0[0]), "betas: {b0:?}");
        // U's level-2 row must be skewed (j + k) to satisfy both tmp and
        // D dependences — the Fig. 2 shape.
        let u = &schedules[3];
        let row2 = u.alpha.row(1);
        assert_eq!(row2.iter().filter(|&&c| c != 0).count(), 2, "{row2:?}");
        // Codegen on the fused schedule must still succeed.
        let prog = generate(&scop, &schedules).expect("generate");
        assert!(prog.body.count_stmts() >= 4);
    }

    #[test]
    fn nofuse_keeps_nests_separate() {
        let k = kernel_by_name("2mm").unwrap();
        let scop = (k.build)();
        let schedules = schedule_pluto(&scop, Fusion::None).expect("schedule");
        let mut b0: Vec<i64> = schedules.iter().map(|s| s.beta[0]).collect();
        b0.dedup();
        assert!(b0.len() >= 2, "expected distribution, got betas {b0:?}");
    }
}
