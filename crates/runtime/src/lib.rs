//! # polymix-runtime
//!
//! The library-level parallel runtime backing the paper's Sec. IV-D
//! extensions, used by examples and benchmarked directly (Fig. 6):
//!
//! * [`doall`] — a chunked scoped-thread scheduler for fully parallel
//!   loops (the `omp parallel for` analogue);
//! * [`reduction`] — array reductions with thread-private accumulators
//!   (the proposed C array-reduction extension);
//! * [`pipeline`] — point-to-point cross-iteration synchronization over a
//!   2-D grid (the `#pragma omp await source(i-1,j) source(i,j-1)`
//!   proposal), plus the [`pipeline::wavefront_2d`] executor it is compared
//!   against in Fig. 6.
//!
//! Workers come from a process-wide **persistent pool** (`pool.rs`):
//! threads are spawned on first use and parked between jobs, so
//! sweep-shaped workloads (thousands of small-grid invocations) pay the
//! thread-spawn cost once instead of per call. A job that the pool
//! cannot field — or an explicit [`PoolPolicy::SpawnPerCall`] — falls
//! back to the original `std::thread::scope` spawn-per-call path.
//! Scheduling stays explicit (no work stealing): static blocks by
//! default, atomic chunk-claiming ([`Schedule::Dynamic`]) for
//! triangular/skewed spaces, matching the hybrid static/dynamic
//! schedules of the tiled-polyhedral literature.
//!
//! ## Fault tolerance
//!
//! Every primitive returns `Result<RunStats, RuntimeError>`. A worker
//! panic is caught at the worker boundary and broadcast as a poison
//! value through the progress counters, so no waiter spins forever on a
//! dead neighbor; the primitive reports
//! [`RuntimeError::WorkerPanic`] after all workers joined. Arming
//! [`RuntimeOptions::watchdog`] (off by default — hot paths pay
//! nothing) additionally converts a wedged pipeline into a diagnostic
//! [`RuntimeError::Stalled`] listing the cells that never advanced.
//! Adversarial grids whose extents overflow `i64` arithmetic are
//! refused with [`RuntimeError::Misuse`].
//!
//! Two cargo features support testing this machinery:
//!
//! * `fault-inject` — deterministic seeded fault injection
//!   ([`fault_inject`]): per-cell delays, adversarial yields, a finite
//!   stall at a chosen cell, a panic at a chosen cell.
//! * `order-check` — a dynamic dependence-order checker
//!   ([`order_check`]) asserting each executed cell observed its
//!   `(i-1, j)`/`(i, j-1)` sources.

pub mod doall;
pub mod error;
#[cfg(all(test, feature = "proptest"))]
mod proptests;
pub mod order_check;
pub mod pipeline;
mod pool;
pub mod reduction;
pub mod schedule;
mod sync;
pub mod taskgraph;

#[cfg(feature = "fault-inject")]
pub mod fault_inject;

/// No-op stand-ins compiled when `fault-inject` is off, so the
/// primitives can call the hooks unconditionally at zero cost.
#[cfg(not(feature = "fault-inject"))]
pub(crate) mod fault_inject {
    #[inline(always)]
    pub(crate) fn before_cell(_i: i64, _j: i64) {}
    #[inline(always)]
    pub(crate) fn on_wait() {}
    #[inline(always)]
    pub(crate) fn before_worker(_slot: usize) {}
}

pub use doall::{par_for, par_for_chunked, par_for_chunked_opts, par_for_opts};
pub use error::{PoolPolicy, RunStats, RuntimeError, RuntimeOptions};
pub use pipeline::{pipeline_2d, pipeline_2d_opts, wavefront_2d, wavefront_2d_opts, GridSweep};
pub use reduction::{reduce_array, reduce_array_opts};
pub use schedule::{partition, Partition, Schedule};
pub use sync::{CachePadded, POISON};
pub use taskgraph::{taskgraph_2d, taskgraph_2d_opts, TileGraph};
