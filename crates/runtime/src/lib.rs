//! # polymix-runtime
//!
//! The library-level parallel runtime backing the paper's Sec. IV-D
//! extensions, used by examples and benchmarked directly (Fig. 6):
//!
//! * [`doall`] — a chunked scoped-thread scheduler for fully parallel
//!   loops (the `omp parallel for` analogue);
//! * [`reduction`] — array reductions with thread-private accumulators
//!   (the proposed C array-reduction extension);
//! * [`pipeline`] — point-to-point cross-iteration synchronization over a
//!   2-D grid (the `#pragma omp await source(i-1,j) source(i,j-1)`
//!   proposal), plus the [`pipeline::wavefront_2d`] executor it is compared
//!   against in Fig. 6.
//!
//! Everything is built from `std::thread::scope` and atomics; no work-stealing pool is spun up, matching the static
//! scheduling the paper's OpenMP codes use.

pub mod doall;
pub mod pipeline;
pub mod reduction;

pub use doall::{par_for, par_for_chunked};
pub use pipeline::{pipeline_2d, wavefront_2d, GridSweep};
pub use reduction::reduce_array;
