//! Deterministic fault injection for the runtime primitives (feature
//! `fault-inject`; test/CI only).
//!
//! A [`FaultPlan`] installed through [`install`] makes the primitives
//! misbehave on purpose: seeded per-cell delays and adversarial yields
//! (to shake out ordering assumptions), a finite stall at one chosen
//! cell (to exercise the watchdog), and a panic at one chosen cell (to
//! exercise poison containment). Everything is keyed off a splitmix-
//! style hash of `(seed, i, j)`, so a failing schedule replays exactly
//! from its seed — no wall-clock or OS randomness is consulted.
//!
//! Plans are process-global; [`install`] returns a [`FaultGuard`] that
//! holds an exclusive gate (serializing concurrent tests) and clears
//! the plan on drop. Injected stalls are always finite: the runtime
//! joins its workers via `std::thread::scope`, so an infinite injected
//! sleep would turn a contained error into a real hang.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// What to inject, and where. `Default` injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for every per-cell pseudo-random decision.
    pub seed: u64,
    /// Panic just before executing this cell.
    pub panic_at: Option<(i64, i64)>,
    /// Sleep this many milliseconds just before executing this cell —
    /// a finite stall for the watchdog to catch.
    pub stall_ms_at: Option<((i64, i64), u64)>,
    /// Upper bound (exclusive) on a seeded per-cell delay in
    /// microseconds; 0 disables delays.
    pub delay_us_max: u64,
    /// Percentage of cells that yield their time slice before running,
    /// plus extra yields inside wait loops; 0 disables.
    pub yield_pct: u8,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static GATE: Mutex<()> = Mutex::new(());
static TRACE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// One recorded injection decision. Every decision is a pure function
/// of `(seed, coordinates)`, so two runs that execute the same cells on
/// the same worker count produce the same *set* of events regardless of
/// interleaving or pool policy — compare traces sorted.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceEvent {
    /// Worker `slot` started a job; the seeded start delay it was dealt.
    WorkerStart { slot: usize, delay_us: u64 },
    /// Cell `(i, j)` ran; the seeded delay and yield decision it drew.
    Cell {
        i: i64,
        j: i64,
        delay_us: u64,
        yielded: bool,
    },
}

fn record(event: TraceEvent) {
    TRACE.lock().unwrap_or_else(|e| e.into_inner()).push(event);
}

/// Drains the injection trace recorded since the plan was installed (or
/// since the last drain). Sort before comparing across runs — recording
/// order is scheduling-dependent, the event set is not.
pub fn take_trace() -> Vec<TraceEvent> {
    std::mem::take(&mut *TRACE.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Clears the installed plan when dropped, releasing the gate that
/// keeps concurrent fault-injection tests from trampling each other.
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Installs `plan` process-wide until the returned guard drops. Clears
/// any stale injection trace from a prior plan.
#[must_use = "the plan is cleared as soon as the guard drops"]
pub fn install(plan: FaultPlan) -> FaultGuard {
    let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    TRACE.lock().unwrap_or_else(|e| e.into_inner()).clear();
    FaultGuard { _gate: gate }
}

/// splitmix64-style mix of the seed and a cell coordinate.
fn mix(seed: u64, i: i64, j: i64) -> u64 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn current_plan() -> Option<FaultPlan> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Hook the primitives call immediately before executing cell `(i, j)`
/// (1-D primitives pass `(i, 0)`). Ordering: delay, then yield, then
/// stall, then panic — so a panic cell can also be delayed first.
pub fn before_cell(i: i64, j: i64) {
    let Some(plan) = current_plan() else { return };
    let us = if plan.delay_us_max > 0 {
        mix(plan.seed, i, j) % plan.delay_us_max
    } else {
        0
    };
    let yielded =
        plan.yield_pct > 0 && mix(plan.seed ^ 0xA5A5_A5A5, i, j) % 100 < u64::from(plan.yield_pct);
    record(TraceEvent::Cell {
        i,
        j,
        delay_us: us,
        yielded,
    });
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
    if yielded {
        std::thread::yield_now();
    }
    if let Some(((si, sj), ms)) = plan.stall_ms_at {
        if (si, sj) == (i, j) {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
    if plan.panic_at == Some((i, j)) {
        #[allow(clippy::panic)] // the whole point of this module
        {
            panic!("fault-inject: seeded panic at cell ({i}, {j})");
        }
    }
}

/// Hook called from the slow path of runtime wait loops; under an
/// adversarial plan it surrenders the time slice to perturb scheduling.
/// Not traced: the number of wait-loop turns is scheduling-dependent.
pub fn on_wait() {
    if current_plan().is_some_and(|p| p.yield_pct > 0) {
        std::thread::yield_now();
    }
}

/// Hook the pool calls as worker `slot` starts a job — on *both* the
/// persistent-worker and spawn-per-call paths, so the seeded start
/// perturbation (and therefore the whole injection schedule) is
/// identical under either [`crate::PoolPolicy`]. Threading the seed
/// through only the pooled path made `POLYMIX_POOL=spawn` runs diverge.
pub fn before_worker(slot: usize) {
    let Some(plan) = current_plan() else { return };
    let us = if plan.delay_us_max > 0 {
        mix(plan.seed ^ 0x5EED_B00F, slot as i64, -1) % plan.delay_us_max
    } else {
        0
    };
    record(TraceEvent::WorkerStart {
        slot,
        delay_us: us,
    });
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(7, 3, 4), mix(7, 3, 4));
        assert_ne!(mix(7, 3, 4), mix(8, 3, 4));
        assert_ne!(mix(7, 3, 4), mix(7, 4, 3));
    }

    #[test]
    fn guard_clears_plan() {
        {
            let _g = install(FaultPlan {
                seed: 1,
                ..FaultPlan::default()
            });
            assert!(current_plan().is_some());
        }
        assert!(current_plan().is_none());
    }

    #[test]
    fn before_cell_panics_only_at_the_chosen_cell() {
        let _g = install(FaultPlan {
            panic_at: Some((2, 3)),
            ..FaultPlan::default()
        });
        before_cell(0, 0);
        before_cell(3, 2);
        let caught = std::panic::catch_unwind(|| before_cell(2, 3));
        assert!(caught.is_err());
    }

    #[test]
    fn trace_records_seeded_decisions_and_drains() {
        let _g = install(FaultPlan {
            seed: 99,
            delay_us_max: 5,
            yield_pct: 50,
            ..FaultPlan::default()
        });
        before_worker(0);
        before_cell(1, 2);
        before_cell(3, 4);
        let mut a = take_trace();
        assert_eq!(a.len(), 3, "{a:?}");
        assert!(take_trace().is_empty(), "drain must clear the trace");
        // Re-running the same cells yields the same decisions.
        before_worker(0);
        before_cell(3, 4);
        before_cell(1, 2);
        let mut b = take_trace();
        a.sort();
        b.sort();
        assert_eq!(a, b, "injection decisions must be seed-deterministic");
    }
}
