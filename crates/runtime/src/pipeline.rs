//! Point-to-point pipeline parallelism and its wavefront rival (Fig. 6).
//!
//! Both executors run every cell `(i, j)` of a rectangular grid under the
//! dependence pattern `(i-1, j) → (i, j)` and `(i, j-1) → (i, j)`:
//!
//! * [`pipeline_2d`] — the paper's preferred construct: the `j` range is
//!   split into per-thread column blocks; each thread sweeps `i`
//!   ascending and, before starting row `i`, spins until its left
//!   neighbor has finished the same row (`await source(i, j-1)`;
//!   `source(i-1, j)` holds by the thread's own sweep order). No global
//!   barriers, no load-imbalanced start-up/drain phases beyond the
//!   pipeline fill.
//! * [`wavefront_2d`] — the doall-only alternative: iterate diagonals
//!   `w = i + j` sequentially with an all-to-all barrier between
//!   diagonals, running each diagonal's cells in parallel.

use crate::doall::par_for;
use std::sync::atomic::{AtomicI64, Ordering};

/// Spin iterations before a waiting pipeline thread starts yielding its
/// time slice. Pure `spin_loop()` waiting livelocks when worker threads
/// outnumber cores (an oversubscribed thread can spin a full scheduler
/// quantum while the neighbor it waits on is ready to run); a bounded
/// spin keeps the fast path cheap and `yield_now` keeps progress
/// guaranteed.
const SPIN_LIMIT: u32 = 1 << 10;

/// Waits until `cell` reaches at least `target`: spins briefly, then
/// yields to the scheduler between polls.
fn await_progress(cell: &AtomicI64, target: i64) {
    let mut spins = 0u32;
    while cell.load(Ordering::Acquire) < target {
        if spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// A half-open 2-D iteration grid `[i_lo, i_hi) × [j_lo, j_hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridSweep {
    /// First outer index.
    pub i_lo: i64,
    /// One past the last outer index.
    pub i_hi: i64,
    /// First inner index.
    pub j_lo: i64,
    /// One past the last inner index.
    pub j_hi: i64,
}

impl GridSweep {
    /// Number of cells in the grid.
    pub fn cells(&self) -> i64 {
        (self.i_hi - self.i_lo).max(0) * (self.j_hi - self.j_lo).max(0)
    }
}

/// Executes the grid with point-to-point column-block pipelining.
/// `body(i, j)` is invoked exactly once per cell, never before its
/// `(i-1, j)` and `(i, j-1)` predecessors have completed.
pub fn pipeline_2d<F>(grid: GridSweep, threads: usize, body: F)
where
    F: Fn(i64, i64) + Sync,
{
    if grid.cells() == 0 {
        return;
    }
    let span = grid.j_hi - grid.j_lo;
    let nthr = threads.clamp(1, span.max(1) as usize);
    if nthr == 1 {
        for i in grid.i_lo..grid.i_hi {
            for j in grid.j_lo..grid.j_hi {
                body(i, j);
            }
        }
        return;
    }
    let progress: Vec<AtomicI64> = (0..nthr).map(|_| AtomicI64::new(i64::MIN)).collect();
    let chunk = (span + nthr as i64 - 1) / nthr as i64;
    std::thread::scope(|s| {
        for t in 0..nthr {
            let progress = &progress;
            let body = &body;
            s.spawn(move || {
                let blk_lo = grid.j_lo + t as i64 * chunk;
                let blk_hi = (blk_lo + chunk).min(grid.j_hi);
                if blk_lo >= blk_hi {
                    // Still publish progress so right neighbors never stall.
                    for i in grid.i_lo..grid.i_hi {
                        if t > 0 {
                            await_progress(&progress[t - 1], i);
                        }
                        progress[t].store(i, Ordering::Release);
                    }
                    return;
                }
                for i in grid.i_lo..grid.i_hi {
                    if t > 0 {
                        // await source(i, blk_lo - 1)
                        await_progress(&progress[t - 1], i);
                    }
                    for j in blk_lo..blk_hi {
                        body(i, j);
                    }
                    progress[t].store(i, Ordering::Release);
                }
            });
        }
    });
}

/// Executes the grid as a skewed wavefront: diagonals `w = i + j` run
/// sequentially, the cells of each diagonal in parallel, with an implicit
/// all-to-all barrier between diagonals.
pub fn wavefront_2d<F>(grid: GridSweep, threads: usize, body: F)
where
    F: Fn(i64, i64) + Sync,
{
    if grid.cells() == 0 {
        return;
    }
    let w_lo = grid.i_lo + grid.j_lo;
    let w_hi = (grid.i_hi - 1) + (grid.j_hi - 1);
    for w in w_lo..=w_hi {
        let j_lo = grid.j_lo.max(w - (grid.i_hi - 1));
        let j_hi = grid.j_hi.min(w - grid.i_lo + 1); // exclusive
        par_for(j_lo, j_hi, threads, |j| body(w - j, j));
        // par_for joins all workers: the inter-diagonal barrier.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::collections::HashSet;

    fn grid(ni: i64, nj: i64) -> GridSweep {
        GridSweep {
            i_lo: 0,
            i_hi: ni,
            j_lo: 0,
            j_hi: nj,
        }
    }

    /// Records execution order and checks the dependence cone.
    fn check_order(events: &[(i64, i64)], ni: i64, nj: i64) {
        let mut pos = std::collections::HashMap::new();
        for (k, &c) in events.iter().enumerate() {
            assert!(pos.insert(c, k).is_none(), "cell {c:?} ran twice");
        }
        assert_eq!(events.len() as i64, ni * nj, "missing cells");
        for (&(i, j), &k) in &pos {
            if i > 0 {
                assert!(pos[&(i - 1, j)] < k, "({i},{j}) before ({},{j})", i - 1);
            }
            if j > 0 {
                assert!(pos[&(i, j - 1)] < k, "({i},{j}) before ({i},{})", j - 1);
            }
        }
    }

    #[test]
    fn pipeline_respects_dependences() {
        for threads in [1, 3, 8] {
            let log = Mutex::new(Vec::new());
            pipeline_2d(grid(9, 13), threads, |i, j| log.lock().unwrap().push((i, j)));
            check_order(&log.into_inner().unwrap(), 9, 13);
        }
    }

    #[test]
    fn wavefront_respects_dependences() {
        for threads in [1, 4] {
            let log = Mutex::new(Vec::new());
            wavefront_2d(grid(7, 11), threads, |i, j| log.lock().unwrap().push((i, j)));
            check_order(&log.into_inner().unwrap(), 7, 11);
        }
    }

    #[test]
    fn both_cover_same_cells() {
        let a = Mutex::new(HashSet::new());
        pipeline_2d(grid(5, 6), 4, |i, j| {
            a.lock().unwrap().insert((i, j));
        });
        let b = Mutex::new(HashSet::new());
        wavefront_2d(grid(5, 6), 4, |i, j| {
            b.lock().unwrap().insert((i, j));
        });
        assert_eq!(a.into_inner().unwrap(), b.into_inner().unwrap());
    }

    #[test]
    fn pipeline_computes_prefix_sums_correctly() {
        // table[i][j] = table[i-1][j] + table[i][j-1] (+1 at origin):
        // a genuinely order-sensitive computation.
        let ni = 12usize;
        let nj = 17usize;
        let run = |threads: usize, pipe: bool| -> Vec<f64> {
            let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
            let body = |i: i64, j: i64| {
                let (i, j) = (i as usize, j as usize);
                let up = if i > 0 { *table[(i - 1) * nj + j].lock().unwrap() } else { 1.0 };
                let left = if j > 0 { *table[i * nj + j - 1].lock().unwrap() } else { 0.0 };
                *table[i * nj + j].lock().unwrap() = up + left;
            };
            if pipe {
                pipeline_2d(grid(ni as i64, nj as i64), threads, body);
            } else {
                wavefront_2d(grid(ni as i64, nj as i64), threads, body);
            }
            table.into_iter().map(|m| m.into_inner().unwrap()).collect()
        };
        let seq = run(1, true);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads, true), seq, "pipeline threads={threads}");
            assert_eq!(run(threads, false), seq, "wavefront threads={threads}");
        }
    }

    #[test]
    fn degenerate_grids() {
        let count = Mutex::new(0);
        pipeline_2d(grid(0, 5), 4, |_, _| *count.lock().unwrap() += 1);
        pipeline_2d(grid(5, 0), 4, |_, _| *count.lock().unwrap() += 1);
        wavefront_2d(grid(0, 0), 4, |_, _| *count.lock().unwrap() += 1);
        assert_eq!(*count.lock().unwrap(), 0);
        // One-row / one-column grids.
        pipeline_2d(grid(1, 8), 4, |_, _| *count.lock().unwrap() += 1);
        pipeline_2d(grid(8, 1), 4, |_, _| *count.lock().unwrap() += 1);
        assert_eq!(*count.lock().unwrap(), 16);
    }

    #[test]
    fn more_threads_than_columns() {
        let log = Mutex::new(Vec::new());
        pipeline_2d(grid(4, 3), 16, |i, j| log.lock().unwrap().push((i, j)));
        check_order(&log.into_inner().unwrap(), 4, 3);
    }
}
