//! Point-to-point pipeline parallelism and its wavefront rival (Fig. 6).
//!
//! Both executors run every cell `(i, j)` of a rectangular grid under the
//! dependence pattern `(i-1, j) → (i, j)` and `(i, j-1) → (i, j)`:
//!
//! * [`pipeline_2d`] — the paper's preferred construct: the `j` range is
//!   split into per-thread column blocks; each thread sweeps `i`
//!   ascending and, before starting row `i`, waits until its left
//!   neighbor has finished the same row (`await source(i, j-1)`;
//!   `source(i-1, j)` holds by the thread's own sweep order). No global
//!   barriers, no load-imbalanced start-up/drain phases beyond the
//!   pipeline fill.
//! * [`wavefront_2d`] — the doall-only alternative: iterate diagonals
//!   `w = i + j` sequentially with an all-to-all barrier between
//!   diagonals, running each diagonal's cells in parallel.
//!
//! ## Batched synchronization
//!
//! Progress is published (and therefore awaited) every `B` rows rather
//! than every row: each publish is a `fetch_max` on a cache-line-padded
//! counter the right neighbor polls, so batching divides the hottest
//! cross-thread traffic in the runtime by `B`. Waiting on "neighbor
//! finished row `i`" with delayed publishes only ever *delays* a start,
//! never permits an early one, so the dependence order is untouched (the
//! `order-check` feature verifies this). Waits flow strictly leftward
//! (worker 0 never waits), so delayed publishes cannot deadlock: by
//! induction worker `t-1` always eventually reaches its next publish
//! row. `B` comes from [`RuntimeOptions::pipeline_batch`], the
//! `POLYMIX_PIPE_BATCH` environment variable, or an automatic choice
//! from the grid shape.
//!
//! Both are fault-tolerant: a worker panic is caught at the worker
//! boundary and broadcast as [`POISON`](crate::sync::POISON) through
//! the progress counters (pipeline) or stops the diagonal loop before
//! the next barrier releases (wavefront), and the primitive returns
//! `Err(RuntimeError::WorkerPanic { .. })` after all workers joined.
//! With [`RuntimeOptions::watchdog`] armed, a wedged pipeline turns
//! into a diagnostic [`RuntimeError::Stalled`] instead of a hang.

use crate::doall::doall_cells;
use crate::error::{RunStats, RuntimeError, RuntimeOptions};
use crate::order_check::DepChecker;
use crate::pool;
use crate::schedule::{partition, Partition};
use crate::sync::{await_progress, payload_text, CachePadded, Fabric, Wait, POISON};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// A half-open 2-D iteration grid `[i_lo, i_hi) × [j_lo, j_hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridSweep {
    /// First outer index.
    pub i_lo: i64,
    /// One past the last outer index.
    pub i_hi: i64,
    /// First inner index.
    pub j_lo: i64,
    /// One past the last inner index.
    pub j_hi: i64,
}

impl GridSweep {
    /// Number of cells in the grid, saturating at `i64::MAX` on
    /// adversarial extents (a plain `i64` multiply here used to wrap).
    pub fn cells(&self) -> i64 {
        let ni = self.i_hi.saturating_sub(self.i_lo).max(0);
        let nj = self.j_hi.saturating_sub(self.j_lo).max(0);
        ni.saturating_mul(nj)
    }

    /// Exact cell count, or [`RuntimeError::Misuse`] when the extents
    /// overflow `i64` arithmetic — the executors refuse such grids
    /// instead of silently iterating a wrapped range.
    pub fn cells_checked(&self) -> Result<u64, RuntimeError> {
        let overflow = || {
            RuntimeError::Misuse(format!(
                "grid [{}, {}) x [{}, {}) overflows i64 arithmetic",
                self.i_lo, self.i_hi, self.j_lo, self.j_hi
            ))
        };
        let ni = self.i_hi.checked_sub(self.i_lo).ok_or_else(overflow)?.max(0) as u64;
        let nj = self.j_hi.checked_sub(self.j_lo).ok_or_else(overflow)?.max(0) as u64;
        ni.checked_mul(nj).ok_or_else(overflow)
    }
}

/// Cached `POLYMIX_PIPE_BATCH` override (values below 1 are ignored).
fn env_batch() -> Option<i64> {
    static BATCH: OnceLock<Option<i64>> = OnceLock::new();
    *BATCH.get_or_init(|| {
        std::env::var("POLYMIX_PIPE_BATCH")
            .ok()
            .and_then(|s| s.trim().parse::<i64>().ok())
            .filter(|b| *b >= 1)
    })
}

/// The publish batch for a run: explicit option, else environment, else
/// an automatic choice — deep grids afford coarser batches, but the
/// batch is capped so the pipeline fill delay (`(nthr - 1) × B` rows)
/// stays small against the sweep depth.
fn resolve_batch(opts: &RuntimeOptions, ni: i64, nthr: usize) -> i64 {
    if let Some(b) = opts.pipeline_batch {
        return b.max(1);
    }
    if let Some(b) = env_batch() {
        return b;
    }
    (ni / (nthr as i64 * 4)).clamp(1, 8)
}

/// Executes the grid with point-to-point column-block pipelining.
/// `body(i, j)` is invoked at most once per cell, never before its
/// `(i-1, j)` and `(i, j-1)` predecessors have completed; exactly once
/// per cell when the run returns `Ok`.
pub fn pipeline_2d<F>(grid: GridSweep, threads: usize, body: F) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    pipeline_2d_opts(grid, threads, RuntimeOptions::default(), body)
}

/// [`pipeline_2d`] with explicit [`RuntimeOptions`] (watchdog policy,
/// publish batch, pool provisioning).
pub fn pipeline_2d_opts<F>(
    grid: GridSweep,
    threads: usize,
    opts: RuntimeOptions,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    let cells = grid.cells_checked()?;
    if cells == 0 {
        return Ok(RunStats::default());
    }
    let span = grid.j_hi - grid.j_lo; // in-range: cells_checked passed
    let nthr = threads.clamp(1, span.min(isize::MAX as i64) as usize);
    let batch = resolve_batch(&opts, grid.i_hi - grid.i_lo, nthr);
    let checker = DepChecker::new(grid);
    if nthr == 1 {
        let current: Cell<Option<(i64, i64)>> = Cell::new(None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for i in grid.i_lo..grid.i_hi {
                for j in grid.j_lo..grid.j_hi {
                    current.set(Some((i, j)));
                    crate::fault_inject::before_cell(i, j);
                    checker.before(i, j);
                    body(i, j);
                    checker.after(i, j);
                }
            }
        }));
        return match outcome {
            Ok(()) => {
                let order_check_disarmed = checker.disarmed();
                checker.finish()?;
                Ok(RunStats {
                    cells,
                    workers: 1,
                    pooled: false,
                    order_check_disarmed,
                    pipeline_batch: Some(batch),
                    dyn_grain: None,
                })
            }
            Err(payload) => Err(RuntimeError::WorkerPanic {
                worker: 0,
                cell: current.get(),
                payload: payload_text(payload.as_ref()),
            }),
        };
    }

    let progress: Vec<CachePadded<AtomicI64>> = (0..nthr)
        .map(|_| CachePadded::new(AtomicI64::new(i64::MIN)))
        .collect();
    let fabric = Fabric::new(opts.watchdog.is_some(), nthr);
    let part = partition(grid.j_lo, grid.j_hi, nthr);
    let worker = |t: usize| {
        fabric.worker_online();
        let (blk_lo, blk_hi) = part.span(t);
        let current: Cell<Option<(i64, i64)>> = Cell::new(None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for i in grid.i_lo..grid.i_hi {
                if fabric.is_poisoned() {
                    return Wait::Poisoned;
                }
                if t > 0 {
                    // await source(i, blk_lo - 1)
                    match await_progress(&progress[t - 1], i, &fabric, opts.watchdog) {
                        Wait::Ready => {}
                        other => return other,
                    }
                }
                for j in blk_lo..blk_hi {
                    current.set(Some((i, j)));
                    crate::fault_inject::before_cell(i, j);
                    checker.before(i, j);
                    body(i, j);
                    checker.after(i, j);
                }
                current.set(None);
                // Publish every `batch` rows (and always the last row):
                // empty blocks still publish, so right neighbors never
                // stall. fetch_max never overwrites POISON.
                if (i - grid.i_lo + 1) % batch == 0 || i + 1 == grid.i_hi {
                    progress[t].fetch_max(i, Ordering::AcqRel);
                    fabric.bump();
                }
            }
            Wait::Ready
        }));
        match outcome {
            Ok(Wait::Ready) | Ok(Wait::Poisoned) => {}
            Ok(Wait::Stalled) => {
                // Snapshot the frontier before flooding POISON.
                let stalled_cells = stalled_snapshot(&progress, grid, &part);
                fabric.poison(RuntimeError::Stalled { stalled_cells }, &progress);
            }
            Err(payload) => {
                fabric.poison(
                    RuntimeError::WorkerPanic {
                        worker: t,
                        cell: current.get(),
                        payload: payload_text(payload.as_ref()),
                    },
                    &progress,
                );
            }
        }
    };
    let pooled = pool::execute(nthr, opts.pool, &worker);
    match fabric.into_failure() {
        Some(err) => Err(err),
        None => {
            let order_check_disarmed = checker.disarmed();
            checker.finish()?;
            Ok(RunStats {
                cells,
                workers: nthr,
                pooled,
                order_check_disarmed,
                pipeline_batch: Some(batch),
                dyn_grain: None,
            })
        }
    }
}

/// For each worker still behind, the next cell after its last *publish*:
/// the frontier that stopped advancing. With a publish batch above 1 the
/// reported row can trail the wedged worker's true position by up to
/// `batch - 1` rows — the diagnostic names the start of the silent
/// window, which is where investigation should begin anyway.
fn stalled_snapshot(
    progress: &[CachePadded<AtomicI64>],
    grid: GridSweep,
    part: &Partition,
) -> Vec<(i64, i64)> {
    let mut cells = Vec::new();
    for (t, counter) in progress.iter().enumerate() {
        let done_row = counter.load(Ordering::Acquire);
        if done_row == POISON || done_row >= grid.i_hi - 1 {
            continue;
        }
        let next_i = if done_row == i64::MIN {
            grid.i_lo
        } else {
            done_row + 1
        };
        let (blk_lo, _) = part.span(t);
        cells.push((next_i, blk_lo));
    }
    cells
}

/// Executes the grid as a skewed wavefront: diagonals `w = i + j` run
/// sequentially, the cells of each diagonal in parallel, with an implicit
/// all-to-all barrier between diagonals. A failure on diagonal `w`
/// returns before diagonal `w + 1` begins — the barrier does not
/// release past a poisoned diagonal.
pub fn wavefront_2d<F>(grid: GridSweep, threads: usize, body: F) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    wavefront_2d_opts(grid, threads, RuntimeOptions::default(), body)
}

/// [`wavefront_2d`] with explicit [`RuntimeOptions`]: the schedule and
/// pool policy govern each diagonal's doall (the wavefront has no
/// point-to-point waits, so the watchdog has nothing to arm).
pub fn wavefront_2d_opts<F>(
    grid: GridSweep,
    threads: usize,
    opts: RuntimeOptions,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    let cells = grid.cells_checked()?;
    if cells == 0 {
        return Ok(RunStats::default());
    }
    let misuse = || {
        RuntimeError::Misuse(format!(
            "wavefront diagonals of grid [{}, {}) x [{}, {}) overflow i64",
            grid.i_lo, grid.i_hi, grid.j_lo, grid.j_hi
        ))
    };
    let w_lo = grid.i_lo.checked_add(grid.j_lo).ok_or_else(misuse)?;
    let w_hi = (grid.i_hi - 1).checked_add(grid.j_hi - 1).ok_or_else(misuse)?;
    let checker = DepChecker::new(grid);
    let workers = threads.max(1);
    let mut pooled = false;
    for w in w_lo..=w_hi {
        // Diagonal bounds in i128 to dodge intermediate overflow; the
        // max/min clamps make saturation exact.
        let j_lo = grid
            .j_lo
            .max(clamp_i64(w as i128 - (grid.i_hi as i128 - 1)));
        let j_hi = grid
            .j_hi
            .min(clamp_i64(w as i128 - grid.i_lo as i128 + 1)); // exclusive
        let checker = &checker;
        let body = &body;
        let stats = doall_cells(j_lo, j_hi, threads, opts, |j| (w - j, j), |j| {
            let (ci, cj) = (w - j, j);
            checker.before(ci, cj);
            body(ci, cj);
            checker.after(ci, cj);
        })?;
        pooled |= stats.pooled;
        // doall_cells joins all workers (the inter-diagonal barrier) and
        // `?` stops before diagonal w + 1 if anything on w failed.
    }
    let order_check_disarmed = checker.disarmed();
    checker.finish()?;
    Ok(RunStats {
        cells,
        workers,
        pooled,
        order_check_disarmed,
        pipeline_batch: None,
        dyn_grain: opts.schedule.resolved_grain(),
    })
}

fn clamp_i64(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PoolPolicy;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn grid(ni: i64, nj: i64) -> GridSweep {
        GridSweep {
            i_lo: 0,
            i_hi: ni,
            j_lo: 0,
            j_hi: nj,
        }
    }

    /// Records execution order and checks the dependence cone.
    fn check_order(events: &[(i64, i64)], ni: i64, nj: i64) {
        let mut pos = std::collections::HashMap::new();
        for (k, &c) in events.iter().enumerate() {
            assert!(pos.insert(c, k).is_none(), "cell {c:?} ran twice");
        }
        assert_eq!(events.len() as i64, ni * nj, "missing cells");
        for (&(i, j), &k) in &pos {
            if i > 0 {
                assert!(pos[&(i - 1, j)] < k, "({i},{j}) before ({},{j})", i - 1);
            }
            if j > 0 {
                assert!(pos[&(i, j - 1)] < k, "({i},{j}) before ({i},{})", j - 1);
            }
        }
    }

    #[test]
    fn pipeline_respects_dependences() {
        for threads in [1, 3, 8] {
            let log = Mutex::new(Vec::new());
            let stats = pipeline_2d(grid(9, 13), threads, |i, j| {
                log.lock().unwrap().push((i, j));
            })
            .expect("clean run");
            assert_eq!(stats.cells, 9 * 13);
            check_order(&log.into_inner().unwrap(), 9, 13);
        }
    }

    #[test]
    fn pipeline_respects_dependences_across_batch_sizes() {
        for batch in [1, 2, 3, 8, 64] {
            let opts = RuntimeOptions {
                pipeline_batch: Some(batch),
                ..RuntimeOptions::default()
            };
            let log = Mutex::new(Vec::new());
            let stats = pipeline_2d_opts(grid(17, 11), 4, opts, |i, j| {
                log.lock().unwrap().push((i, j));
            })
            .expect("clean run");
            check_order(&log.into_inner().unwrap(), 17, 11);
            assert_eq!(
                stats.pipeline_batch,
                Some(batch),
                "requested batch must round-trip into the stats"
            );
        }
    }

    #[test]
    fn pipeline_batch_round_trips_on_every_path() {
        // Single-thread path: the resolved batch is still reported, so a
        // tuned config can be verified even when the grid degenerates.
        let opts = RuntimeOptions {
            pipeline_batch: Some(5),
            ..RuntimeOptions::default()
        };
        let stats = pipeline_2d_opts(grid(6, 1), 4, opts, |_, _| {}).expect("clean run");
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.pipeline_batch, Some(5));
        // No explicit batch: the automatic choice is reported (never a
        // silent None), clamped to [1, 8].
        let stats = pipeline_2d(grid(64, 16), 2, |_, _| {}).expect("clean run");
        let auto = stats.pipeline_batch.expect("auto batch reported");
        assert!((1..=8).contains(&auto), "auto batch {auto} out of range");
        // A non-positive explicit batch clamps to the floor of 1.
        let opts = RuntimeOptions {
            pipeline_batch: Some(0),
            ..RuntimeOptions::default()
        };
        let stats = pipeline_2d_opts(grid(8, 8), 2, opts, |_, _| {}).expect("clean run");
        assert_eq!(stats.pipeline_batch, Some(1));
    }

    #[test]
    fn wavefront_reports_schedule_grain_not_batch() {
        let opts = RuntimeOptions {
            schedule: crate::schedule::Schedule::Dynamic { grain: 2 },
            ..RuntimeOptions::default()
        };
        let stats = wavefront_2d_opts(grid(6, 6), 4, opts, |_, _| {}).expect("clean run");
        assert_eq!(stats.dyn_grain, Some(2));
        assert_eq!(stats.pipeline_batch, None, "wavefronts have no publishes");
    }

    #[test]
    fn wavefront_respects_dependences() {
        for threads in [1, 4] {
            let log = Mutex::new(Vec::new());
            wavefront_2d(grid(7, 11), threads, |i, j| log.lock().unwrap().push((i, j)))
                .expect("clean run");
            check_order(&log.into_inner().unwrap(), 7, 11);
        }
    }

    #[test]
    fn both_cover_same_cells() {
        let a = Mutex::new(HashSet::new());
        pipeline_2d(grid(5, 6), 4, |i, j| {
            a.lock().unwrap().insert((i, j));
        })
        .expect("clean run");
        let b = Mutex::new(HashSet::new());
        wavefront_2d(grid(5, 6), 4, |i, j| {
            b.lock().unwrap().insert((i, j));
        })
        .expect("clean run");
        assert_eq!(a.into_inner().unwrap(), b.into_inner().unwrap());
    }

    #[test]
    fn pipeline_computes_prefix_sums_correctly() {
        // table[i][j] = table[i-1][j] + table[i][j-1] (+1 at origin):
        // a genuinely order-sensitive computation.
        let ni = 12usize;
        let nj = 17usize;
        let run = |threads: usize, pipe: bool| -> Vec<f64> {
            let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
            let body = |i: i64, j: i64| {
                let (i, j) = (i as usize, j as usize);
                let up = if i > 0 { *table[(i - 1) * nj + j].lock().unwrap() } else { 1.0 };
                let left = if j > 0 { *table[i * nj + j - 1].lock().unwrap() } else { 0.0 };
                *table[i * nj + j].lock().unwrap() = up + left;
            };
            if pipe {
                pipeline_2d(grid(ni as i64, nj as i64), threads, body).expect("clean run");
            } else {
                wavefront_2d(grid(ni as i64, nj as i64), threads, body).expect("clean run");
            }
            table.into_iter().map(|m| m.into_inner().unwrap()).collect()
        };
        let seq = run(1, true);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads, true), seq, "pipeline threads={threads}");
            assert_eq!(run(threads, false), seq, "wavefront threads={threads}");
        }
    }

    #[test]
    fn pooled_and_spawned_pipelines_agree() {
        let run = |policy: PoolPolicy| -> (Vec<(i64, i64)>, bool) {
            let opts = RuntimeOptions {
                pool: policy,
                ..RuntimeOptions::default()
            };
            let log = Mutex::new(Vec::new());
            let stats = pipeline_2d_opts(grid(9, 12), 3, opts, |i, j| {
                log.lock().unwrap().push((i, j));
            })
            .expect("clean run");
            let mut cells = log.into_inner().unwrap();
            cells.sort_unstable();
            (cells, stats.pooled)
        };
        let (pooled_cells, was_pooled) = run(PoolPolicy::Persistent);
        let (spawned_cells, was_spawned_pooled) = run(PoolPolicy::SpawnPerCall);
        assert!(was_pooled);
        assert!(!was_spawned_pooled);
        assert_eq!(pooled_cells, spawned_cells);
    }

    #[test]
    fn degenerate_grids() {
        let count = Mutex::new(0);
        pipeline_2d(grid(0, 5), 4, |_, _| *count.lock().unwrap() += 1).expect("empty");
        pipeline_2d(grid(5, 0), 4, |_, _| *count.lock().unwrap() += 1).expect("empty");
        wavefront_2d(grid(0, 0), 4, |_, _| *count.lock().unwrap() += 1).expect("empty");
        assert_eq!(*count.lock().unwrap(), 0);
        // One-row / one-column grids.
        pipeline_2d(grid(1, 8), 4, |_, _| *count.lock().unwrap() += 1).expect("clean run");
        pipeline_2d(grid(8, 1), 4, |_, _| *count.lock().unwrap() += 1).expect("clean run");
        assert_eq!(*count.lock().unwrap(), 16);
    }

    #[test]
    fn more_threads_than_columns() {
        let log = Mutex::new(Vec::new());
        pipeline_2d(grid(4, 3), 16, |i, j| log.lock().unwrap().push((i, j)))
            .expect("clean run");
        check_order(&log.into_inner().unwrap(), 4, 3);
    }

    #[test]
    fn cells_saturates_instead_of_wrapping() {
        let g = GridSweep {
            i_lo: i64::MIN,
            i_hi: i64::MAX,
            j_lo: 0,
            j_hi: 2,
        };
        // The old `(i_hi - i_lo) * (j_hi - j_lo)` wrapped here.
        assert_eq!(g.cells(), i64::MAX);
        assert!(matches!(g.cells_checked(), Err(RuntimeError::Misuse(_))));
        let big = GridSweep {
            i_lo: 0,
            i_hi: 1 << 40,
            j_lo: 0,
            j_hi: 1 << 40,
        };
        // 2^80 cells: wraps any fixed width; both paths must refuse.
        assert_eq!(big.cells(), i64::MAX);
        assert!(matches!(big.cells_checked(), Err(RuntimeError::Misuse(_))));
        let large_but_fine = GridSweep {
            i_lo: 0,
            i_hi: 1 << 31,
            j_lo: 0,
            j_hi: 1 << 31,
        };
        assert_eq!(large_but_fine.cells(), 1 << 62);
        assert_eq!(large_but_fine.cells_checked(), Ok(1u64 << 62));
    }

    #[test]
    fn overflowing_grids_are_rejected_not_run() {
        let count = Mutex::new(0u64);
        let g = GridSweep {
            i_lo: i64::MIN,
            i_hi: i64::MAX,
            j_lo: 0,
            j_hi: 1,
        };
        let err = pipeline_2d(g, 4, |_, _| *count.lock().unwrap() += 1)
            .expect_err("must refuse");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
        let err = wavefront_2d(g, 4, |_, _| *count.lock().unwrap() += 1)
            .expect_err("must refuse");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
        assert_eq!(*count.lock().unwrap(), 0, "no cell may run");
    }

    #[test]
    fn pipeline_panic_poisons_all_waiters() {
        for threads in [2, 4, 8] {
            let err = pipeline_2d(grid(64, 64), threads, |i, j| {
                if (i, j) == (32, 0) {
                    panic!("pipeline boom");
                }
            })
            .expect_err("panic must surface");
            match err {
                RuntimeError::WorkerPanic { cell, payload, .. } => {
                    assert_eq!(cell, Some((32, 0)));
                    assert!(payload.contains("pipeline boom"), "{payload}");
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn wavefront_stops_at_poisoned_diagonal() {
        // A panic on diagonal w must prevent any cell of diagonal w+1
        // from running (the barrier may not release past the failure).
        let max_seen_w = Mutex::new(i64::MIN);
        let boom_w = 6i64;
        let err = wavefront_2d(grid(12, 12), 4, |i, j| {
            let w = i + j;
            let mut seen = max_seen_w.lock().unwrap();
            *seen = (*seen).max(w);
            drop(seen);
            if w == boom_w && j == 3 {
                panic!("wavefront boom");
            }
        })
        .expect_err("panic must surface");
        assert!(matches!(err, RuntimeError::WorkerPanic { .. }), "{err:?}");
        assert!(
            *max_seen_w.lock().unwrap() <= boom_w,
            "diagonal after the poisoned one ran"
        );
    }
}
