//! The runtime error model: every parallel primitive returns
//! `Result<RunStats, RuntimeError>` instead of deadlocking or unwinding
//! across the thread scope.
//!
//! A worker panic is *contained*: the panicking worker broadcasts a
//! poison flag through the progress-counter array so every waiter exits
//! promptly, and the primitive returns [`RuntimeError::WorkerPanic`]. A
//! wedged pipeline under an enabled watchdog (see
//! [`RuntimeOptions::watchdog`]) is converted into a diagnostic
//! [`RuntimeError::Stalled`] listing the cells that never advanced.

use crate::schedule::Schedule;
use std::fmt;
use std::sync::OnceLock;
use std::time::Duration;

/// Why a parallel primitive failed. All variants are *contained*
/// failures: the primitive has already joined its workers (none are left
/// running) by the time the error is returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A worker's body panicked. The panic was caught at the worker
    /// boundary and the failure broadcast to all other workers.
    WorkerPanic {
        /// Index of the panicking worker thread.
        worker: usize,
        /// The grid cell being executed when the panic unwound, when
        /// known. 1-D primitives report `(i, 0)`; `None` means the panic
        /// happened outside any cell body (e.g. in chunk setup).
        cell: Option<(i64, i64)>,
        /// The panic payload rendered as text (`&str`/`String` payloads
        /// verbatim, anything else a placeholder).
        payload: String,
    },
    /// The watchdog observed no global progress for the configured
    /// deadline: the pipeline is wedged.
    Stalled {
        /// For each behind worker, the next cell it never finished —
        /// the frontier that stopped advancing.
        stalled_cells: Vec<(i64, i64)>,
    },
    /// The caller handed the primitive an unusable configuration (e.g. a
    /// grid whose extents overflow `i64` arithmetic).
    Misuse(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WorkerPanic {
                worker,
                cell,
                payload,
            } => {
                write!(f, "worker {worker} panicked")?;
                if let Some((i, j)) = cell {
                    write!(f, " at cell ({i}, {j})")?;
                }
                write!(f, ": {payload}")
            }
            RuntimeError::Stalled { stalled_cells } => {
                write!(f, "pipeline stalled; cells never advanced: ")?;
                for (k, (i, j)) in stalled_cells.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "({i}, {j})")?;
                }
                Ok(())
            }
            RuntimeError::Misuse(detail) => write!(f, "runtime misuse: {detail}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// What a successful primitive invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Cell (or index) bodies executed.
    pub cells: u64,
    /// Worker threads that carried them.
    pub workers: usize,
    /// Whether the persistent worker pool carried the run (`false` for
    /// sequential runs and the spawn-per-call fallback).
    pub pooled: bool,
    /// Whether a requested dynamic order check silently stood down
    /// (`order-check` builds only: the grid exceeded the shadow budget,
    /// so *no* dependence-order assertions ran). Always `false` when the
    /// feature is off or the checker was armed — a clean run with this
    /// flag set certifies nothing.
    pub order_check_disarmed: bool,
    /// The publish batch the pipeline executor resolved for this run
    /// (explicit option / environment / automatic choice), `None` for
    /// primitives with no point-to-point publishes. Tuned configurations
    /// assert on this to catch silently-dropped knob overrides.
    pub pipeline_batch: Option<i64>,
    /// The chunk-claiming grain the dynamic schedule resolved for this
    /// run, `None` under the static schedule. Same round-trip contract
    /// as [`RunStats::pipeline_batch`].
    pub dyn_grain: Option<i64>,
}

/// Whether parallel primitives run on the persistent worker pool or on
/// freshly spawned scoped threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Use the pool unless the `POLYMIX_POOL=spawn` environment override
    /// is set (read once per process). The default.
    #[default]
    Auto,
    /// Always try the pool (still falls back to spawning if the pool
    /// cannot field enough workers).
    Persistent,
    /// Always spawn fresh scoped threads — the pre-pool behavior, kept
    /// for A/B benchmarking and as a hard escape hatch.
    SpawnPerCall,
}

impl PoolPolicy {
    /// Whether this policy wants the pooled path.
    pub(crate) fn use_pool(self) -> bool {
        match self {
            PoolPolicy::Persistent => true,
            PoolPolicy::SpawnPerCall => false,
            PoolPolicy::Auto => {
                static ENV: OnceLock<bool> = OnceLock::new();
                *ENV.get_or_init(|| {
                    !std::env::var("POLYMIX_POOL")
                        .map(|v| v.trim().eq_ignore_ascii_case("spawn"))
                        .unwrap_or(false)
                })
            }
        }
    }
}

/// Execution policy knobs shared by the parallel primitives.
///
/// The default keeps every safety net that costs anything on the hot
/// path *off*; tests and benches turn the watchdog on.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeOptions {
    /// Global-progress deadline: when set, a waiter that observes no
    /// progress anywhere in the grid (a monotonic epoch counter is
    /// bumped on every publish) for this long poisons the run and the
    /// primitive returns [`RuntimeError::Stalled`]. `None` (default)
    /// disables the watchdog — correct runs never pay for it.
    pub watchdog: Option<Duration>,
    /// How doall-style ranges are divided among workers. The static
    /// default is right for rectangular spaces; pass
    /// [`Schedule::Dynamic`] (or [`Schedule::dynamic_for`]) for
    /// triangular/skewed spaces where static blocks load-imbalance.
    pub schedule: Schedule,
    /// Pipeline progress is published/awaited every this-many rows
    /// instead of every row, cutting cross-thread synchronization
    /// traffic by the same factor. `None` (default) picks a batch from
    /// the grid shape; `Some(b)` forces `b` (clamped to at least 1).
    /// The `POLYMIX_PIPE_BATCH` environment variable overrides the
    /// automatic choice when this is `None`.
    pub pipeline_batch: Option<i64>,
    /// Worker provisioning: persistent pool vs spawn-per-call.
    pub pool: PoolPolicy,
}

impl RuntimeOptions {
    /// The policy used by tests and benches: a watchdog generous enough
    /// to never fire on a healthy run, tight enough to fail fast.
    pub fn watched() -> RuntimeOptions {
        RuntimeOptions {
            watchdog: Some(Duration::from_secs(30)),
            ..RuntimeOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_diagnostic() {
        let e = RuntimeError::WorkerPanic {
            worker: 3,
            cell: Some((7, 2)),
            payload: "boom".into(),
        };
        assert_eq!(e.to_string(), "worker 3 panicked at cell (7, 2): boom");
        let e = RuntimeError::Stalled {
            stalled_cells: vec![(1, 0), (2, 4)],
        };
        assert!(e.to_string().contains("(1, 0), (2, 4)"), "{e}");
        let e = RuntimeError::Misuse("bad grid".into());
        assert!(e.to_string().contains("bad grid"));
    }

    #[test]
    fn default_options_disable_watchdog() {
        assert!(RuntimeOptions::default().watchdog.is_none());
        assert!(RuntimeOptions::watched().watchdog.is_some());
    }
}
