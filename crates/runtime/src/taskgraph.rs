//! Tile-level task-graph execution: dependence counters between tiles,
//! work-stealing deques between workers (Sec. IV-D meets the hybrid
//! static/dynamic schedules of the tiled-polyhedral literature).
//!
//! The fixed-shape executors force a choice: `pipeline_2d` hard-codes
//! the `(i-1, j)/(i, j-1)` cone onto column blocks, and `wavefront_2d`
//! serializes whole diagonals behind a barrier even when the dependence
//! cone is far narrower. A [`TileGraph`] instead lowers the tiled
//! iteration space to an explicit dependence DAG over tiles:
//!
//! * every tile carries a cache-padded atomic **dependence counter**
//!   initialized to its in-graph predecessor count (derived from the
//!   inter-tile dependence vectors for grid graphs, or given explicitly
//!   for imperfect/multi-statement tile graphs);
//! * tiles whose counter hits zero enter per-worker **work-stealing
//!   deques** (owner pops LIFO for cache locality, thieves steal FIFO
//!   so the oldest — most-unblocking — tiles travel);
//! * completing a tile decrements each successor's counter and
//!   publishes any successor that reached zero. Scheduling is static
//!   *inside* a tile (the body runs the tile's cells in program order)
//!   and dynamic *between* tiles.
//!
//! The diagonal barrier of `wavefront_2d` is subsumed as a special
//! case: [`TileGraph::diagonal`] builds the full-cone counter graph in
//! which every tile depends on all tiles of the previous diagonal —
//! same order, but workers flow across diagonals without a gang-wide
//! barrier (or a fresh `doall` dispatch) per diagonal.
//!
//! ## Fault model
//!
//! The graph speaks the existing poison/progress protocol. A tile-body
//! panic is caught at the worker boundary and poisons the fabric; idle
//! workers observe the flag and exit, and — structurally — a failed
//! tile never decrements its successors, so every transitive successor
//! keeps a nonzero counter and can never run. The caller gets
//! [`RuntimeError::WorkerPanic`] with the failing tile. Under
//! [`RuntimeOptions::watchdog`] an idle worker that sees no global
//! progress (tile completions, workers coming online, or — until the
//! gang is fully online — pool job-lifecycle heartbeats) for the whole
//! deadline reports [`RuntimeError::Stalled`] with the ready-but-stuck
//! frontier tiles. Fault injection targets tiles through the same
//! `before_cell` hook as every other primitive.

use crate::error::{RunStats, RuntimeError, RuntimeOptions};
use crate::order_check::DepChecker;
use crate::pipeline::GridSweep;
use crate::pool;
use crate::sync::{payload_text, spin_limit, Backoff, CachePadded, Fabric, StallWatch, Wait};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// Hard ceiling on graph nodes: each tile carries a 64-byte padded
/// counter, so 2^20 tiles cost 64 MiB of counters — tiles are coarse,
/// and a graph this size already indicates untiled input.
const MAX_TILES: u64 = 1 << 20;

/// Hard ceiling on total edges (successor-list entries), reached only
/// by adversarial dense graphs such as huge diagonal cones.
const MAX_EDGES: usize = 1 << 24;

/// How many ready-but-never-run tiles a stall diagnostic lists.
const STALL_SNAPSHOT_LIMIT: usize = 8;

/// A dependence-counter task graph over tiles. Build one with
/// [`TileGraph::from_grid_deps`] (2-D tile grid + dependence vectors),
/// [`TileGraph::diagonal`] (the wavefront-barrier special case), or
/// [`TileGraph::from_edges`] (an explicit DAG for imperfect or
/// multi-statement tile structures), then execute it with
/// [`TileGraph::run`]. Construction validates acyclicity, so a built
/// graph always makes progress when run.
#[derive(Debug)]
pub struct TileGraph {
    /// Successor lists, indexed by node id.
    succs: Vec<Vec<u32>>,
    /// Initial dependence-counter value (in-degree) per node.
    indeg: Vec<i64>,
    /// Diagnostic tile coordinate per node: the tile's `(i, j)` for
    /// grid graphs, the caller-supplied cell or `(id, 0)` for explicit
    /// graphs. Reported in errors and targeted by fault injection.
    cells: Vec<(i64, i64)>,
    /// The tile grid this graph was derived from, when there is one.
    grid: Option<GridSweep>,
    /// Whether the graph orders each tile after its `(i-1, j)` and
    /// `(i, j-1)` neighbors — the relation the dynamic `order-check`
    /// shadow can cross-validate.
    covers_standard_cone: bool,
}

impl TileGraph {
    /// Builds the counter graph of the tile grid `grid` under the
    /// inter-tile dependence vectors `deps`: tile `t` has an edge to
    /// `t + d` for every `d` in `deps` (targets outside the grid are
    /// dropped). Each vector must be lexicographically positive
    /// (`di > 0`, or `di == 0 && dj > 0`), which makes the graph a DAG
    /// by construction; anything else is [`RuntimeError::Misuse`].
    ///
    /// The standard cone `&[(1, 0), (0, 1)]` reproduces the dependence
    /// pattern of `pipeline_2d`; wider cones (e.g. `(1, 1)`, or the
    /// `(1, -1)` anti-diagonal vector of skewed stencils) express
    /// relations the fixed-shape primitives cannot.
    pub fn from_grid_deps(grid: GridSweep, deps: &[(i64, i64)]) -> Result<TileGraph, RuntimeError> {
        let cells_u = grid.cells_checked()?;
        if cells_u > MAX_TILES {
            return Err(RuntimeError::Misuse(format!(
                "tile grid [{}, {}) x [{}, {}) has {cells_u} tiles, over the {MAX_TILES} \
                 task-graph ceiling — tile coarser",
                grid.i_lo, grid.i_hi, grid.j_lo, grid.j_hi
            )));
        }
        let mut vectors: Vec<(i64, i64)> = Vec::new();
        for &(di, dj) in deps {
            if !(di > 0 || (di == 0 && dj > 0)) {
                return Err(RuntimeError::Misuse(format!(
                    "dependence vector ({di}, {dj}) is not lexicographically positive; \
                     the tile graph would not be acyclic"
                )));
            }
            if !vectors.contains(&(di, dj)) {
                vectors.push((di, dj));
            }
        }
        let n = cells_u as usize;
        let nj = grid.j_hi.saturating_sub(grid.j_lo).max(0);
        let ni = grid.i_hi.saturating_sub(grid.i_lo).max(0);
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indeg = vec![0i64; n];
        let mut cells = Vec::with_capacity(n);
        let mut edge_total = 0usize;
        for i in grid.i_lo..grid.i_hi {
            for j in grid.j_lo..grid.j_hi {
                cells.push((i, j));
            }
        }
        for k in 0..n {
            let (i, j) = cells[k];
            for &(di, dj) in &vectors {
                let (Some(ti), Some(tj)) = (i.checked_add(di), j.checked_add(dj)) else {
                    continue;
                };
                if ti < grid.i_lo || ti >= grid.i_hi || tj < grid.j_lo || tj >= grid.j_hi {
                    continue;
                }
                let s = ((ti - grid.i_lo) * nj + (tj - grid.j_lo)) as usize;
                succs[k].push(s as u32);
                indeg[s] += 1;
                edge_total += 1;
                if edge_total > MAX_EDGES {
                    return Err(RuntimeError::Misuse(format!(
                        "tile graph exceeds {MAX_EDGES} edges — tile coarser or thin the \
                         dependence vector set"
                    )));
                }
            }
        }
        // Conservative: membership, not transitive closure. Sufficient
        // for the standard and widened cones the emitter produces.
        let covers_standard_cone = (ni <= 1 || vectors.contains(&(1, 0)))
            && (nj <= 1 || vectors.contains(&(0, 1)));
        Ok(TileGraph {
            succs,
            indeg,
            cells,
            grid: Some(grid),
            covers_standard_cone,
        })
    }

    /// The diagonal-barrier special case: every tile depends on *all*
    /// tiles of the previous diagonal `i + j - 1`, i.e. exactly the
    /// order `wavefront_2d` enforces with a gang barrier, expressed as
    /// a (dense) full-cone counter graph. It covers every dependence
    /// wavefront legality covers — any vector moving strictly forward
    /// across diagonals — at the cost of `Σ |diag_w| · |diag_w+1|`
    /// edges, so it is the fallback for spaces whose true cone is
    /// unknown; prefer [`TileGraph::from_grid_deps`] when it is known.
    pub fn diagonal(grid: GridSweep) -> Result<TileGraph, RuntimeError> {
        let cells_u = grid.cells_checked()?;
        if cells_u > MAX_TILES {
            return Err(RuntimeError::Misuse(format!(
                "tile grid [{}, {}) x [{}, {}) has {cells_u} tiles, over the {MAX_TILES} \
                 task-graph ceiling — tile coarser",
                grid.i_lo, grid.i_hi, grid.j_lo, grid.j_hi
            )));
        }
        let n = cells_u as usize;
        let nj = grid.j_hi.saturating_sub(grid.j_lo).max(0);
        let mut cells = Vec::with_capacity(n);
        for i in grid.i_lo..grid.i_hi {
            for j in grid.j_lo..grid.j_hi {
                cells.push((i, j));
            }
        }
        // Group node ids by diagonal; w is grid-local so it never
        // overflows (extents already passed cells_checked).
        let mut diagonals: Vec<Vec<u32>> = Vec::new();
        for (k, &(i, j)) in cells.iter().enumerate() {
            let w = ((i - grid.i_lo) + (j - grid.j_lo)) as usize;
            if diagonals.len() <= w {
                diagonals.resize(w + 1, Vec::new());
            }
            diagonals[w].push(k as u32);
        }
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indeg = vec![0i64; n];
        let mut edge_total = 0usize;
        for pair in diagonals.windows(2) {
            edge_total += pair[0].len() * pair[1].len();
            if edge_total > MAX_EDGES {
                return Err(RuntimeError::Misuse(format!(
                    "diagonal cone of grid [{}, {}) x [{}, {}) exceeds {MAX_EDGES} edges; \
                     use from_grid_deps with the true dependence vectors",
                    grid.i_lo, grid.i_hi, grid.j_lo, grid.j_hi
                )));
            }
            for &src in &pair[0] {
                for &dst in &pair[1] {
                    succs[src as usize].push(dst);
                    indeg[dst as usize] += 1;
                }
            }
        }
        let _ = nj;
        Ok(TileGraph {
            succs,
            indeg,
            cells,
            grid: Some(grid),
            covers_standard_cone: true,
        })
    }

    /// An explicit task DAG over `n` nodes — the imperfect or
    /// multi-statement tile graphs the fixed-shape primitives reject.
    /// Each `(src, dst)` edge means `dst` waits for `src`. `cells`
    /// optionally attaches a diagnostic tile coordinate to each node
    /// (defaults to `(id, 0)`). Out-of-range endpoints, self-loops,
    /// and cycles are refused with [`RuntimeError::Misuse`].
    pub fn from_edges(
        n: usize,
        cells: Option<&[(i64, i64)]>,
        edges: &[(usize, usize)],
    ) -> Result<TileGraph, RuntimeError> {
        if n as u64 > MAX_TILES {
            return Err(RuntimeError::Misuse(format!(
                "task graph of {n} nodes is over the {MAX_TILES} ceiling"
            )));
        }
        if edges.len() > MAX_EDGES {
            return Err(RuntimeError::Misuse(format!(
                "task graph of {} edges is over the {MAX_EDGES} ceiling",
                edges.len()
            )));
        }
        if let Some(cs) = cells {
            if cs.len() != n {
                return Err(RuntimeError::Misuse(format!(
                    "task graph has {n} nodes but {} diagnostic cells",
                    cs.len()
                )));
            }
        }
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indeg = vec![0i64; n];
        for &(src, dst) in edges {
            if src >= n || dst >= n {
                return Err(RuntimeError::Misuse(format!(
                    "edge ({src}, {dst}) is out of range for a {n}-node task graph"
                )));
            }
            if src == dst {
                return Err(RuntimeError::Misuse(format!(
                    "edge ({src}, {dst}) is a self-loop; the node could never become ready"
                )));
            }
            succs[src].push(dst as u32);
            indeg[dst] += 1;
        }
        // Kahn's pass: every node must drain, or the graph has a cycle
        // whose members would deadlock at run time. O(V + E), once, at
        // build — run() then never needs a liveness check.
        let mut remaining = indeg.clone();
        let mut stack: Vec<u32> = (0..n as u32).filter(|&k| remaining[k as usize] == 0).collect();
        let mut drained = 0usize;
        while let Some(k) = stack.pop() {
            drained += 1;
            for &s in &succs[k as usize] {
                remaining[s as usize] -= 1;
                if remaining[s as usize] == 0 {
                    stack.push(s);
                }
            }
        }
        if drained != n {
            return Err(RuntimeError::Misuse(format!(
                "task graph contains a dependence cycle ({} of {n} nodes unreachable \
                 from the roots)",
                n - drained
            )));
        }
        let cells = match cells {
            Some(cs) => cs.to_vec(),
            None => (0..n as i64).map(|k| (k, 0)).collect(),
        };
        Ok(TileGraph {
            succs,
            indeg,
            cells,
            grid: None,
            covers_standard_cone: false,
        })
    }

    /// Number of nodes (tiles) in the graph.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// The diagnostic tile coordinate of `node`.
    pub fn cell_of(&self, node: usize) -> Option<(i64, i64)> {
        self.cells.get(node).copied()
    }

    /// Every `(src, dst)` edge of the counter graph, for external
    /// certification (`polymix-verify` re-derives the inter-tile
    /// dependence relation and proves this edge set covers it).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (src, ss) in self.succs.iter().enumerate() {
            for &dst in ss {
                out.push((src, dst as usize));
            }
        }
        out
    }

    /// Executes the graph: `body(node, i, j)` runs exactly once per
    /// node (its id plus its diagnostic tile coordinate), never before
    /// all of the node's predecessors completed. Tiles are claimed
    /// dynamically from per-worker stealing deques; workers come from
    /// the persistent pool under [`RuntimeOptions::pool`].
    pub fn run<F>(
        &self,
        threads: usize,
        opts: RuntimeOptions,
        body: F,
    ) -> Result<RunStats, RuntimeError>
    where
        F: Fn(usize, i64, i64) + Sync,
    {
        let n = self.succs.len();
        if n == 0 {
            return Ok(RunStats::default());
        }
        let nthr = threads.clamp(1, n);
        let checker = match (self.covers_standard_cone, self.grid) {
            (true, Some(grid)) => DepChecker::new(grid),
            _ => DepChecker::unmodeled("task-graph dependence set"),
        };
        let pending: Vec<CachePadded<AtomicI64>> = self
            .indeg
            .iter()
            .map(|&d| CachePadded::new(AtomicI64::new(d)))
            .collect();
        let remaining = CachePadded::new(AtomicI64::new(n as i64));
        let deques: Vec<CachePadded<Mutex<VecDeque<u32>>>> = (0..nthr)
            .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
            .collect();
        // Seed the roots round-robin so the gang starts balanced; the
        // build-time acyclicity checks guarantee at least one root.
        {
            let mut t = 0usize;
            for (k, &d) in self.indeg.iter().enumerate() {
                if d == 0 {
                    deques[t]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push_back(k as u32);
                    t = (t + 1) % nthr;
                }
            }
        }
        let fabric = Fabric::new(opts.watchdog.is_some(), nthr);
        let worker = |t: usize| {
            fabric.worker_online();
            let current: Cell<Option<(i64, i64)>> = Cell::new(None);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut backoff = Backoff::new(spin_limit());
                let mut watch = StallWatch::new(opts.watchdog);
                loop {
                    if fabric.is_poisoned() {
                        return Wait::Poisoned;
                    }
                    if remaining.load(Ordering::Acquire) <= 0 {
                        return Wait::Ready;
                    }
                    let Some(k) = pop_or_steal(&deques, t) else {
                        // Idle: nothing ready anywhere yet. Back off,
                        // and under a watchdog watch for a global
                        // freeze (tile completions bump the epoch).
                        crate::fault_inject::on_wait();
                        if watch.stalled(&fabric) {
                            return Wait::Stalled;
                        }
                        if !backoff.spin() {
                            backoff.wait();
                        }
                        continue;
                    };
                    backoff = Backoff::new(spin_limit());
                    watch = StallWatch::new(opts.watchdog);
                    let ku = k as usize;
                    let (ci, cj) = self.cells[ku];
                    current.set(Some((ci, cj)));
                    crate::fault_inject::before_cell(ci, cj);
                    checker.before(ci, cj);
                    body(ku, ci, cj);
                    checker.after(ci, cj);
                    current.set(None);
                    // Completion protocol: mark this node done (-1
                    // distinguishes "done" from "ready" for the stall
                    // snapshot), then decrement successors, publishing
                    // any that hit zero onto our own deque (thieves
                    // redistribute), then retire it from the global
                    // count and bump the watchdog epoch.
                    pending[ku].store(-1, Ordering::Release);
                    for &s in &self.succs[ku] {
                        if pending[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                            deques[t]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_back(s);
                        }
                    }
                    remaining.fetch_sub(1, Ordering::AcqRel);
                    fabric.bump();
                }
            }));
            match outcome {
                Ok(Wait::Ready) | Ok(Wait::Poisoned) => {}
                Ok(Wait::Stalled) => {
                    let stalled_cells = self.stalled_snapshot(&pending);
                    fabric.poison(RuntimeError::Stalled { stalled_cells }, &[]);
                }
                Err(payload) => {
                    // Poison releases the gang; the failed tile never
                    // decremented its successors, so every transitive
                    // successor stays structurally unreachable.
                    fabric.poison(
                        RuntimeError::WorkerPanic {
                            worker: t,
                            cell: current.get(),
                            payload: payload_text(payload.as_ref()),
                        },
                        &[],
                    );
                }
            }
        };
        let pooled = if nthr == 1 {
            worker(0);
            false
        } else {
            pool::execute(nthr, opts.pool, &worker)
        };
        match fabric.into_failure() {
            Some(err) => Err(err),
            None => {
                let order_check_disarmed = checker.disarmed();
                checker.finish()?;
                Ok(RunStats {
                    cells: n as u64,
                    workers: nthr,
                    pooled,
                    order_check_disarmed,
                    pipeline_batch: None,
                    dyn_grain: None,
                })
            }
        }
    }

    /// The ready-but-never-run frontier for a stall diagnostic: tiles
    /// whose counter reached zero (including one wedged mid-body) but
    /// which never completed. Falls back to the first blocked tile for
    /// the degenerate case of an instantly-frozen run.
    fn stalled_snapshot(&self, pending: &[CachePadded<AtomicI64>]) -> Vec<(i64, i64)> {
        let mut frontier = Vec::new();
        let mut blocked = None;
        for (k, c) in pending.iter().enumerate() {
            let v = c.load(Ordering::Acquire);
            if v == 0 && frontier.len() < STALL_SNAPSHOT_LIMIT {
                frontier.push(self.cells[k]);
            }
            if v > 0 && blocked.is_none() {
                blocked = Some(self.cells[k]);
            }
        }
        if frontier.is_empty() {
            blocked.into_iter().collect()
        } else {
            frontier
        }
    }
}

/// Pop from our own deque (LIFO — the tile we just unblocked is
/// cache-warm), else steal the oldest tile from a sibling (FIFO — the
/// longest-ready tile unblocks the most downstream work).
fn pop_or_steal(deques: &[CachePadded<Mutex<VecDeque<u32>>>], t: usize) -> Option<u32> {
    if let Some(k) = deques[t]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_back()
    {
        return Some(k);
    }
    let n = deques.len();
    for off in 1..n {
        let victim = (t + off) % n;
        if let Some(k) = deques[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(k);
        }
    }
    None
}

/// Runs `body(i, j)` over every tile of `grid` under the inter-tile
/// dependence vectors `deps` (see [`TileGraph::from_grid_deps`]). With
/// the standard cone `&[(1, 0), (0, 1)]` this is a drop-in replacement
/// for `pipeline_2d`/`wavefront_2d` that schedules tiles dynamically.
pub fn taskgraph_2d<F>(
    grid: GridSweep,
    threads: usize,
    deps: &[(i64, i64)],
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    taskgraph_2d_opts(grid, threads, RuntimeOptions::default(), deps, body)
}

/// [`taskgraph_2d`] with explicit [`RuntimeOptions`] (watchdog, pool
/// provisioning; the schedule knob is unused — tile scheduling is
/// always dynamic between tiles).
pub fn taskgraph_2d_opts<F>(
    grid: GridSweep,
    threads: usize,
    opts: RuntimeOptions,
    deps: &[(i64, i64)],
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    let graph = TileGraph::from_grid_deps(grid, deps)?;
    graph.run(threads, opts, |_, i, j| body(i, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PoolPolicy;
    use std::collections::{HashMap, HashSet};
    use std::sync::Mutex;

    fn grid(ni: i64, nj: i64) -> GridSweep {
        GridSweep {
            i_lo: 0,
            i_hi: ni,
            j_lo: 0,
            j_hi: nj,
        }
    }

    /// Asserts each cell ran exactly once, after every in-grid `deps`
    /// source.
    fn check_order(events: &[(i64, i64)], g: GridSweep, deps: &[(i64, i64)]) {
        let mut pos = HashMap::new();
        for (k, &c) in events.iter().enumerate() {
            assert!(pos.insert(c, k).is_none(), "cell {c:?} ran twice");
        }
        assert_eq!(events.len() as i64, g.cells(), "missing cells");
        for (&(i, j), &k) in &pos {
            for &(di, dj) in deps {
                let (si, sj) = (i - di, j - dj);
                if si >= g.i_lo && si < g.i_hi && sj >= g.j_lo && sj < g.j_hi {
                    assert!(
                        pos[&(si, sj)] < k,
                        "({i}, {j}) ran before its source ({si}, {sj})"
                    );
                }
            }
        }
    }

    #[test]
    fn standard_cone_respects_dependences() {
        for threads in [1, 3, 8] {
            let log = Mutex::new(Vec::new());
            let stats = taskgraph_2d(grid(9, 13), threads, &[(1, 0), (0, 1)], |i, j| {
                log.lock().unwrap().push((i, j));
            })
            .expect("clean run");
            assert_eq!(stats.cells, 9 * 13);
            check_order(&log.into_inner().unwrap(), grid(9, 13), &[(1, 0), (0, 1)]);
        }
    }

    #[test]
    fn anti_diagonal_vector_is_expressible_and_respected() {
        // (1, -1) is outside every fixed-shape primitive's cone.
        let deps = [(1, 0), (0, 1), (1, -1)];
        let log = Mutex::new(Vec::new());
        taskgraph_2d(grid(8, 8), 4, &deps, |i, j| {
            log.lock().unwrap().push((i, j));
        })
        .expect("clean run");
        check_order(&log.into_inner().unwrap(), grid(8, 8), &deps);
    }

    #[test]
    fn matches_pipeline_on_order_sensitive_prefix_sums() {
        let ni = 12usize;
        let nj = 17usize;
        let run = |threads: usize| -> Vec<f64> {
            let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
            taskgraph_2d(grid(ni as i64, nj as i64), threads, &[(1, 0), (0, 1)], |i, j| {
                let (i, j) = (i as usize, j as usize);
                let up = if i > 0 {
                    *table[(i - 1) * nj + j].lock().unwrap()
                } else {
                    1.0
                };
                let left = if j > 0 {
                    *table[i * nj + j - 1].lock().unwrap()
                } else {
                    0.0
                };
                *table[i * nj + j].lock().unwrap() = up + left;
            })
            .expect("clean run");
            table.into_iter().map(|m| m.into_inner().unwrap()).collect()
        };
        let seq = run(1);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn diagonal_graph_subsumes_wavefront_order() {
        // The full-cone graph must order every pair of tiles on
        // adjacent diagonals — including (1, -1)-shaped pairs that the
        // standard cone leaves unordered.
        let g = grid(7, 9);
        let graph = TileGraph::diagonal(g).expect("build");
        let log = Mutex::new(Vec::new());
        graph
            .run(4, RuntimeOptions::default(), |_, i, j| {
                log.lock().unwrap().push((i, j));
            })
            .expect("clean run");
        let events = log.into_inner().unwrap();
        let mut pos = HashMap::new();
        for (k, &c) in events.iter().enumerate() {
            assert!(pos.insert(c, k).is_none(), "cell {c:?} ran twice");
        }
        assert_eq!(events.len() as i64, g.cells());
        for (&(i, j), &k) in &pos {
            for (&(si, sj), &sk) in &pos {
                if si + sj < i + j {
                    assert!(sk < k, "diagonal order violated: ({si},{sj}) vs ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn covers_same_cells_as_wavefront() {
        let a = Mutex::new(HashSet::new());
        taskgraph_2d(grid(5, 6), 4, &[(1, 0), (0, 1)], |i, j| {
            a.lock().unwrap().insert((i, j));
        })
        .expect("clean run");
        let b = Mutex::new(HashSet::new());
        crate::pipeline::wavefront_2d(grid(5, 6), 4, |i, j| {
            b.lock().unwrap().insert((i, j));
        })
        .expect("clean run");
        assert_eq!(a.into_inner().unwrap(), b.into_inner().unwrap());
    }

    #[test]
    fn explicit_dag_runs_each_node_once_in_order() {
        // A diamond with a tail: 0 -> {1, 2} -> 3 -> 4.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)];
        let graph = TileGraph::from_edges(5, None, &edges).expect("build");
        for threads in [1, 2, 4] {
            let log = Mutex::new(Vec::new());
            let stats = graph
                .run(threads, RuntimeOptions::default(), |node, _, _| {
                    log.lock().unwrap().push(node);
                })
                .expect("clean run");
            assert_eq!(stats.cells, 5);
            let order = log.into_inner().unwrap();
            let pos: HashMap<usize, usize> =
                order.iter().enumerate().map(|(k, &n)| (n, k)).collect();
            assert_eq!(pos.len(), 5, "every node exactly once");
            for &(src, dst) in &edges {
                assert!(pos[&src] < pos[&dst], "edge ({src}, {dst}) violated");
            }
        }
    }

    #[test]
    fn imperfect_two_statement_tile_graph() {
        // Two statements per tile column — S-tiles feed their own next
        // tile and the T-tile of the same column (imperfect nest shape
        // the fixed primitives reject). Node 2k = S_k, 2k+1 = T_k.
        let n = 8usize;
        let mut edges = Vec::new();
        for k in 0..n / 2 {
            edges.push((2 * k, 2 * k + 1)); // S_k -> T_k
            if k + 1 < n / 2 {
                edges.push((2 * k, 2 * (k + 1))); // S_k -> S_{k+1}
            }
        }
        let graph = TileGraph::from_edges(n, None, &edges).expect("build");
        let log = Mutex::new(Vec::new());
        graph
            .run(3, RuntimeOptions::default(), |node, _, _| {
                log.lock().unwrap().push(node);
            })
            .expect("clean run");
        let order = log.into_inner().unwrap();
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        for &(src, dst) in &edges {
            assert!(pos[&src] < pos[&dst]);
        }
    }

    #[test]
    fn cycle_is_rejected_at_build_time() {
        let err = TileGraph::from_edges(3, None, &[(0, 1), (1, 2), (2, 0)])
            .expect_err("cycle must be refused");
        assert!(matches!(err, RuntimeError::Misuse(ref m) if m.contains("cycle")), "{err:?}");
        let err = TileGraph::from_edges(2, None, &[(1, 1)]).expect_err("self-loop");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
        let err = TileGraph::from_edges(2, None, &[(0, 5)]).expect_err("range");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
    }

    #[test]
    fn non_lex_positive_vectors_are_rejected() {
        for bad in [(0, 0), (-1, 0), (0, -1), (-1, 2)] {
            let err = taskgraph_2d(grid(4, 4), 2, &[bad], |_, _| {})
                .expect_err("must refuse non-forward vector");
            assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
        }
    }

    #[test]
    fn empty_and_degenerate_grids() {
        let count = Mutex::new(0);
        let stats = taskgraph_2d(grid(0, 5), 4, &[(1, 0)], |_, _| {
            *count.lock().unwrap() += 1;
        })
        .expect("empty");
        assert_eq!(stats.cells, 0);
        taskgraph_2d(grid(1, 8), 4, &[(1, 0), (0, 1)], |_, _| {
            *count.lock().unwrap() += 1;
        })
        .expect("one row");
        taskgraph_2d(grid(8, 1), 4, &[(1, 0), (0, 1)], |_, _| {
            *count.lock().unwrap() += 1;
        })
        .expect("one column");
        assert_eq!(*count.lock().unwrap(), 16);
    }

    #[test]
    fn overflowing_grids_are_rejected() {
        let g = GridSweep {
            i_lo: i64::MIN,
            i_hi: i64::MAX,
            j_lo: 0,
            j_hi: 1,
        };
        let err = taskgraph_2d(g, 4, &[(1, 0)], |_, _| {}).expect_err("must refuse");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
        let err = TileGraph::diagonal(grid(1 << 20, 1 << 20)).expect_err("over tile cap");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
    }

    #[test]
    fn panic_surfaces_and_successors_never_run() {
        let ran: Mutex<HashSet<(i64, i64)>> = Mutex::new(HashSet::new());
        let err = taskgraph_2d(grid(16, 16), 4, &[(1, 0), (0, 1)], |i, j| {
            if (i, j) == (4, 4) {
                panic!("taskgraph boom");
            }
            ran.lock().unwrap().insert((i, j));
        })
        .expect_err("panic must surface");
        match err {
            RuntimeError::WorkerPanic { cell, payload, .. } => {
                assert_eq!(cell, Some((4, 4)));
                assert!(payload.contains("taskgraph boom"), "{payload}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Structural guarantee: no transitive successor of (4, 4) can
        // have run — its counter chain was never decremented.
        let ran = ran.into_inner().unwrap();
        for i in 4..16 {
            for j in 4..16 {
                assert!(
                    !ran.contains(&(i, j)),
                    "transitive successor ({i}, {j}) of the panicked tile ran"
                );
            }
        }
    }

    #[test]
    fn pooled_and_spawned_runs_agree() {
        let run = |policy: PoolPolicy| -> (Vec<(i64, i64)>, bool) {
            let opts = RuntimeOptions {
                pool: policy,
                ..RuntimeOptions::default()
            };
            let log = Mutex::new(Vec::new());
            let stats = taskgraph_2d_opts(grid(9, 12), 3, opts, &[(1, 0), (0, 1)], |i, j| {
                log.lock().unwrap().push((i, j));
            })
            .expect("clean run");
            let mut cells = log.into_inner().unwrap();
            cells.sort_unstable();
            (cells, stats.pooled)
        };
        let (pooled_cells, was_pooled) = run(PoolPolicy::Persistent);
        let (spawned_cells, was_spawned_pooled) = run(PoolPolicy::SpawnPerCall);
        assert!(was_pooled);
        assert!(!was_spawned_pooled);
        assert_eq!(pooled_cells, spawned_cells);
    }

    #[test]
    fn watchdog_passes_healthy_runs() {
        let stats = taskgraph_2d_opts(
            grid(32, 32),
            4,
            RuntimeOptions::watched(),
            &[(1, 0), (0, 1)],
            |_, _| {},
        )
        .expect("healthy watched run");
        assert_eq!(stats.cells, 32 * 32);
    }

    #[test]
    fn edges_accessor_matches_structure() {
        let graph = TileGraph::from_grid_deps(grid(2, 2), &[(1, 0), (0, 1)]).expect("build");
        let mut edges = graph.edges();
        edges.sort_unstable();
        // Node ids row-major: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.cell_of(2), Some((1, 0)));
    }
}
