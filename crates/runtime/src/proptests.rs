//! Property-based tests for the shared partition arithmetic
//! (`schedule::partition`), which every parallel primitive trusts for
//! worker span bounds. The properties: spans are in-bounds, mutually
//! disjoint, and complete (they tile `[lo, hi)` exactly) — including at
//! the extreme ends of `i64` where the old copy-pasted `lo + t * chunk`
//! arithmetic could overflow.

use crate::schedule::{partition, Schedule, WorkPlan};
use proptest::prelude::*;

/// `i64` values biased toward the overflow-prone regions: near the two
/// extremes, near zero, and at large power-of-two magnitudes.
fn wild_i64() -> impl Strategy<Value = i64> {
    (0i64..6, 0i64..1000).prop_map(|(zone, off)| match zone {
        0 => off - 500,
        1 => i64::MAX - off,
        2 => i64::MIN + off,
        3 => (1 << 62) - off,
        4 => -(1 << 62) + off,
        _ => off.wrapping_mul(1 << 40),
    })
}

proptest! {
    #[test]
    fn partition_tiles_the_range_exactly(
        a in wild_i64(),
        b in wild_i64(),
        threads in 1usize..64,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // partition()'s contract: callers have already validated that
        // the extent fits i64 (the primitives refuse such grids).
        prop_assume!(hi.checked_sub(lo).is_some());
        let p = partition(lo, hi, threads);
        let mut covered: i128 = 0;
        let mut prev_end = lo;
        for t in 0..threads {
            let (sa, sb) = p.span(t);
            if sa >= sb {
                continue; // empty span
            }
            prop_assert!(sa >= lo && sb <= hi, "span ({sa}, {sb}) out of [{lo}, {hi})");
            prop_assert!(sa >= prev_end, "span ({sa}, {sb}) overlaps previous end {prev_end}");
            covered += (sb - sa) as i128;
            prev_end = sb;
        }
        prop_assert_eq!(covered, (hi - lo) as i128, "spans must cover [{lo}, {hi}) exactly");
    }

    #[test]
    fn partition_chunk_is_ceil_div(
        n in 0i64..10_000,
        threads in 1usize..64,
    ) {
        let p = partition(0, n, threads);
        let t = threads as i64;
        prop_assert_eq!(p.chunk(), n / t + i64::from(n % t != 0));
    }

    #[test]
    fn dynamic_plan_claims_each_index_once(
        lo in -1000i64..1000,
        n in 0i64..500,
        threads in 1usize..8,
        grain in 1i64..40,
    ) {
        let plan = WorkPlan::new(lo, lo + n, n, threads, Schedule::Dynamic { grain });
        let mut seen = vec![false; n as usize];
        let mut sources: Vec<_> = (0..threads).map(|t| plan.spans(t)).collect();
        let mut live = true;
        while live {
            live = false;
            for s in &mut sources {
                if let Some((a, b)) = s.next() {
                    live = true;
                    prop_assert!(a >= lo && b <= lo + n, "claim ({a}, {b}) out of range");
                    for i in a..b {
                        let k = (i - lo) as usize;
                        prop_assert!(!seen[k], "index {i} claimed twice");
                        seen[k] = true;
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x), "indices left unclaimed");
    }
}
