//! Dynamic dependence-order checking (feature `order-check`): a
//! lightweight race detector asserting that every executed cell
//! `(i, j)` observed its `(i-1, j)` and `(i, j-1)` sources first.
//!
//! The real checker only exists with the feature on; the primitives
//! embed a [`DepChecker`] wrapper that compiles to nothing otherwise,
//! so release/hot paths carry zero cost. Violations are collected, not
//! panicked on, and surface as a `RuntimeError::Misuse` after the run —
//! panicking inside a worker would be reported as a `WorkerPanic` and
//! hide the actual diagnosis.

use crate::error::RuntimeError;
use crate::pipeline::GridSweep;

#[cfg(feature = "order-check")]
mod imp {
    use super::GridSweep;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Largest grid (in cells) the checker will shadow; beyond this the
    /// checker opts out rather than allocate gigabytes in a test build.
    const MAX_SHADOW_CELLS: u64 = 1 << 24;

    /// One executed-cell shadow bit per grid cell plus a violation log.
    pub struct OrderChecker {
        grid: GridSweep,
        nj: usize,
        done: Vec<AtomicBool>,
        /// (cell_i, cell_j, src_i, src_j) for every missed source.
        violations: Mutex<Vec<(i64, i64, i64, i64)>>,
    }

    impl OrderChecker {
        /// `None` when the grid is degenerate, overflowing, or too big
        /// to shadow.
        pub fn try_new(grid: GridSweep) -> Option<OrderChecker> {
            let cells = grid.cells_checked().ok()?;
            if cells == 0 || cells > MAX_SHADOW_CELLS {
                return None;
            }
            let nj = (grid.j_hi - grid.j_lo) as usize;
            let done = (0..cells).map(|_| AtomicBool::new(false)).collect();
            Some(OrderChecker {
                grid,
                nj,
                done,
                violations: Mutex::new(Vec::new()),
            })
        }

        fn idx(&self, i: i64, j: i64) -> usize {
            (i - self.grid.i_lo) as usize * self.nj + (j - self.grid.j_lo) as usize
        }

        /// Records a violation for every in-grid source of `(i, j)` that
        /// has not completed yet.
        pub fn check_sources(&self, i: i64, j: i64) {
            let mut missed: Vec<(i64, i64)> = Vec::new();
            if i > self.grid.i_lo && !self.done[self.idx(i - 1, j)].load(Ordering::Acquire) {
                missed.push((i - 1, j));
            }
            if j > self.grid.j_lo && !self.done[self.idx(i, j - 1)].load(Ordering::Acquire) {
                missed.push((i, j - 1));
            }
            if !missed.is_empty() {
                let mut log = self.violations.lock().unwrap_or_else(|e| e.into_inner());
                for (si, sj) in missed {
                    log.push((i, j, si, sj));
                }
            }
        }

        /// Marks `(i, j)` complete.
        pub fn mark_done(&self, i: i64, j: i64) {
            self.done[self.idx(i, j)].store(true, Ordering::Release);
        }

        /// Drains the violation log.
        pub fn violations(&self) -> Vec<(i64, i64, i64, i64)> {
            std::mem::take(&mut *self.violations.lock().unwrap_or_else(|e| e.into_inner()))
        }
    }
}

#[cfg(feature = "order-check")]
pub use imp::OrderChecker;

/// The one-time disarm warning, shared process-wide by *every*
/// primitive (a mixed doall/pipeline/taskgraph stress run used to warn
/// once per primitive-local flag; now the whole process warns once).
#[cfg(feature = "order-check")]
pub(crate) fn warn_order_check_disarmed(detail: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "order-check: {detail}; dependence-order checking is DISARMED for this run \
             (RunStats::order_check_disarmed is set)"
        );
    });
}

/// The wrapper the primitives embed: forwards to [`OrderChecker`] when
/// `order-check` is enabled, compiles to a no-op otherwise.
pub(crate) struct DepChecker {
    #[cfg(feature = "order-check")]
    inner: Option<OrderChecker>,
}

impl DepChecker {
    pub(crate) fn new(grid: GridSweep) -> DepChecker {
        #[cfg(not(feature = "order-check"))]
        let _ = grid;
        let checker = DepChecker {
            #[cfg(feature = "order-check")]
            inner: OrderChecker::try_new(grid),
        };
        #[cfg(feature = "order-check")]
        if checker.disarmed() {
            warn_order_check_disarmed(&format!(
                "grid [{}, {}) x [{}, {}) exceeds the shadow budget",
                grid.i_lo, grid.i_hi, grid.j_lo, grid.j_hi
            ));
        }
        checker
    }

    /// A checker for runs whose dependence relation is *not* the
    /// standard `(i-1, j)`/`(i, j-1)` cone (an explicit task DAG, or a
    /// tile graph over a different vector set): under `order-check` it
    /// stands down — asserting the wrong relation would report phantom
    /// violations — and reports [`DepChecker::disarmed`] so
    /// `RunStats::order_check_disarmed` surfaces the gap consistently.
    pub(crate) fn unmodeled(what: &str) -> DepChecker {
        #[cfg(not(feature = "order-check"))]
        let _ = what;
        #[cfg(feature = "order-check")]
        warn_order_check_disarmed(&format!(
            "{what} is outside the checker's (i-1, j)/(i, j-1) source model"
        ));
        DepChecker {
            #[cfg(feature = "order-check")]
            inner: None,
        }
    }

    /// True when this build checks order but this grid was too large to
    /// shadow: the run is *not* covered by the dynamic checker.
    pub(crate) fn disarmed(&self) -> bool {
        #[cfg(feature = "order-check")]
        {
            self.inner.is_none()
        }
        #[cfg(not(feature = "order-check"))]
        false
    }

    /// Call immediately before a cell body runs.
    #[inline(always)]
    pub(crate) fn before(&self, i: i64, j: i64) {
        #[cfg(feature = "order-check")]
        if let Some(c) = &self.inner {
            c.check_sources(i, j);
        }
        #[cfg(not(feature = "order-check"))]
        let _ = (i, j);
    }

    /// Call immediately after a cell body returns.
    #[inline(always)]
    pub(crate) fn after(&self, i: i64, j: i64) {
        #[cfg(feature = "order-check")]
        if let Some(c) = &self.inner {
            c.mark_done(i, j);
        }
        #[cfg(not(feature = "order-check"))]
        let _ = (i, j);
    }

    /// Converts any recorded violations into a diagnostic error. Call
    /// after all workers joined, on otherwise-successful runs.
    pub(crate) fn finish(self) -> Result<(), RuntimeError> {
        #[cfg(feature = "order-check")]
        if let Some(c) = &self.inner {
            let violations = c.violations();
            if let Some(&(i, j, si, sj)) = violations.first() {
                return Err(RuntimeError::Misuse(format!(
                    "dependence order violated: cell ({i}, {j}) ran before its source \
                     ({si}, {sj}) completed ({} violation(s) total)",
                    violations.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(all(test, feature = "order-check"))]
mod tests {
    use super::*;

    fn grid(ni: i64, nj: i64) -> GridSweep {
        GridSweep {
            i_lo: 0,
            i_hi: ni,
            j_lo: 0,
            j_hi: nj,
        }
    }

    #[test]
    fn clean_sweep_has_no_violations() {
        let c = OrderChecker::try_new(grid(3, 4)).expect("shadow fits");
        for i in 0..3 {
            for j in 0..4 {
                c.check_sources(i, j);
                c.mark_done(i, j);
            }
        }
        assert!(c.violations().is_empty());
    }

    #[test]
    fn skipped_source_is_reported() {
        let c = OrderChecker::try_new(grid(2, 2)).expect("shadow fits");
        c.check_sources(0, 0);
        c.mark_done(0, 0);
        // (1, 1) runs before either of its sources finished.
        c.check_sources(1, 1);
        let v = c.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.contains(&(1, 1, 0, 1)));
        assert!(v.contains(&(1, 1, 1, 0)));
    }

    #[test]
    fn oversized_grids_opt_out() {
        assert!(OrderChecker::try_new(grid(1 << 20, 1 << 20)).is_none());
        assert!(OrderChecker::try_new(grid(0, 5)).is_none());
    }

    #[test]
    fn oversized_grid_disarms_dep_checker() {
        let big = DepChecker::new(grid(1 << 20, 1 << 20));
        assert!(big.disarmed(), "shadow budget exceeded, must stand down");
        big.finish().expect("a disarmed checker asserts nothing");
        assert!(!DepChecker::new(grid(8, 8)).disarmed());
    }

    #[test]
    fn unmodeled_relation_disarms_dep_checker() {
        let c = DepChecker::unmodeled("explicit task DAG");
        assert!(c.disarmed(), "unmodeled relations must stand down");
        c.finish().expect("a disarmed checker asserts nothing");
    }

    #[test]
    fn finish_surfaces_misuse() {
        let checker = DepChecker::new(grid(2, 2));
        checker.before(1, 1); // sources never ran
        let err = checker.finish().expect_err("must flag");
        match err {
            RuntimeError::Misuse(msg) => assert!(msg.contains("dependence order"), "{msg}"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
