//! Doall scheduling policies and the shared partition arithmetic.
//!
//! Two schedules, in the spirit of the hybrid static/dynamic mix of
//! Jin et al. ("Hybrid Static/Dynamic Schedules for Tiled Polyhedral
//! Programs"):
//!
//! * [`Schedule::Static`] — one contiguous block per worker, the
//!   `schedule(static)` OpenMP analogue. Zero coordination; right for
//!   rectangular spaces where every index costs the same.
//! * [`Schedule::Dynamic`] — workers claim `grain`-sized chunks from a
//!   shared cache-padded cursor (`schedule(dynamic, grain)`). One
//!   `fetch_add` per chunk; right for triangular/skewed spaces — the
//!   shapes our own skewing pass emits — where a static block partition
//!   load-imbalances by design.
//!
//! [`partition`] is the single home of the ceil-div block arithmetic
//! that used to be copy-pasted across `doall.rs` and `pipeline.rs`,
//! hardened against the `lo + t * chunk` overflows of extreme `i64`
//! ranges (saturation only ever produces empty, skipped spans).

use crate::sync::CachePadded;
use std::sync::atomic::{AtomicI64, Ordering};

/// How a doall-style index range is divided among workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous ceil-div block per worker (default).
    Static,
    /// Workers repeatedly claim `grain` indices from a shared atomic
    /// cursor until the range is exhausted. `grain < 1` is treated as 1.
    Dynamic {
        /// Indices claimed per `fetch_add`; the load-balance vs
        /// contention knob (one RMW on a shared line per chunk).
        grain: i64,
    },
}

impl Default for Schedule {
    fn default() -> Schedule {
        Schedule::Static
    }
}

impl Schedule {
    /// A dynamic schedule whose grain targets ~8 chunks per worker:
    /// fine enough to rebalance a triangular space, coarse enough that
    /// the claim cursor stays off the profile. Callers that know better
    /// (e.g. a tile size from the DL model) should pass their own grain.
    pub fn dynamic_for(n: i64, threads: usize) -> Schedule {
        let grain = (n / (threads.max(1) as i64 * 8)).max(1);
        Schedule::Dynamic { grain }
    }

    /// The chunk grain this schedule will actually claim with (`None`
    /// for the static schedule). This is the value reported back in
    /// [`RunStats::dyn_grain`](crate::error::RunStats), so callers that
    /// requested a grain can verify it was not silently dropped.
    pub fn resolved_grain(self) -> Option<i64> {
        match self {
            Schedule::Static => None,
            Schedule::Dynamic { grain } => Some(grain.max(1)),
        }
    }
}

/// A static ceil-div block partition of the half-open range `[lo, hi)`
/// into `threads` spans: the one shared implementation of the
/// `chunk = ceil(n / threads)` arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    lo: i64,
    hi: i64,
    chunk: i64,
}

/// Builds the block partition of `[lo, hi)` across `threads` workers.
/// `hi - lo` must not overflow (callers validate via `checked_sub`);
/// empty/negative ranges produce all-empty spans.
pub fn partition(lo: i64, hi: i64, threads: usize) -> Partition {
    let n = hi.saturating_sub(lo).max(0);
    let t = threads.max(1) as i64;
    // ceil(n / t) without the `n + t - 1` overflow.
    let chunk = n / t + i64::from(n % t != 0);
    Partition { lo, hi, chunk }
}

impl Partition {
    /// Worker `t`'s half-open span `[a, b)`; `a >= b` means empty.
    /// Saturation can only occur past `hi`, where the span is empty.
    pub fn span(&self, t: usize) -> (i64, i64) {
        let a = self
            .lo
            .saturating_add((t as i64).saturating_mul(self.chunk))
            .min(self.hi);
        let b = a.saturating_add(self.chunk).min(self.hi);
        (a, b)
    }

    /// The block width (0 for empty ranges).
    pub fn chunk(&self) -> i64 {
        self.chunk
    }
}

/// The shared state of one doall invocation's schedule: a static
/// partition, plus a claim cursor used only by the dynamic mode. The
/// cursor holds an *offset* from `lo` so claims can be bounds-checked
/// against `n` without `lo + grain` overflow concerns.
pub(crate) struct WorkPlan {
    lo: i64,
    n: i64,
    part: Partition,
    sched: Schedule,
    cursor: CachePadded<AtomicI64>,
}

impl WorkPlan {
    /// `n` must equal `hi - lo` (already checked by the caller).
    pub(crate) fn new(lo: i64, hi: i64, n: i64, threads: usize, sched: Schedule) -> WorkPlan {
        // The dynamic cursor can overrun `n` by at most `threads *
        // grain` (one overshooting claim per worker). Ranges long
        // enough for that sum to wrap i64 could mis-claim, so they fall
        // back to the static partition — executing ~2^63 iterations is
        // unreachable anyway, but the schedule must not be the bug.
        let sched = match sched {
            Schedule::Dynamic { grain } => {
                let grain = grain.max(1);
                let slack = (threads.max(1) as i64).saturating_mul(grain);
                if n > i64::MAX - slack {
                    Schedule::Static
                } else {
                    Schedule::Dynamic { grain }
                }
            }
            Schedule::Static => Schedule::Static,
        };
        WorkPlan {
            lo,
            n,
            part: partition(lo, hi, threads),
            sched,
            cursor: CachePadded::new(AtomicI64::new(0)),
        }
    }

    /// Worker `t`'s span source.
    pub(crate) fn spans(&self, t: usize) -> SpanSource<'_> {
        match self.sched {
            Schedule::Static => SpanSource::Static {
                span: Some(self.part.span(t)),
            },
            Schedule::Dynamic { grain } => SpanSource::Dynamic {
                lo: self.lo,
                n: self.n,
                grain,
                cursor: &self.cursor,
            },
        }
    }
}

/// Iterator-like source of `[a, b)` spans for one worker. Static mode
/// yields the worker's single block; dynamic mode claims chunks from
/// the shared cursor until the range is exhausted.
pub(crate) enum SpanSource<'a> {
    Static {
        span: Option<(i64, i64)>,
    },
    Dynamic {
        lo: i64,
        n: i64,
        grain: i64,
        cursor: &'a CachePadded<AtomicI64>,
    },
}

impl SpanSource<'_> {
    /// The next non-empty span, or `None` when this worker is done.
    pub(crate) fn next(&mut self) -> Option<(i64, i64)> {
        match self {
            SpanSource::Static { span } => {
                let (a, b) = span.take()?;
                (a < b).then_some((a, b))
            }
            SpanSource::Dynamic {
                lo,
                n,
                grain,
                cursor,
            } => {
                let off = cursor.fetch_add(*grain, Ordering::Relaxed);
                if off >= *n {
                    return None;
                }
                let len = (*n - off).min(*grain);
                let a = *lo + off;
                Some((a, a + len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_spans(lo: i64, hi: i64, threads: usize) -> Vec<(i64, i64)> {
        let p = partition(lo, hi, threads);
        (0..threads)
            .map(|t| p.span(t))
            .filter(|(a, b)| a < b)
            .collect()
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        for (lo, hi, t) in [
            (0, 100, 7),
            (10, 1000, 8),
            (-50, 50, 3),
            (0, 3, 64),
            (5, 5, 4),
            (5, 2, 4),
            (i64::MAX - 10, i64::MAX, 4),
            (i64::MIN, i64::MIN + 17, 5),
        ] {
            let spans = collect_spans(lo, hi, t);
            let mut covered = 0i64;
            let mut prev_end = lo;
            for &(a, b) in &spans {
                assert!(a >= prev_end, "overlap at ({a}, {b}) for {lo}..{hi}x{t}");
                assert!(a >= lo && b <= hi, "out of bounds for {lo}..{hi}x{t}");
                covered += b - a;
                prev_end = b;
            }
            assert_eq!(covered, (hi - lo).max(0), "incomplete for {lo}..{hi}x{t}");
        }
    }

    #[test]
    fn dynamic_spans_cover_exactly_once() {
        let plan = WorkPlan::new(10, 110, 100, 4, Schedule::Dynamic { grain: 7 });
        let mut seen = vec![false; 100];
        // Drain from several simulated workers interleaved.
        let mut sources: Vec<SpanSource> = (0..4).map(|t| plan.spans(t)).collect();
        let mut live = true;
        while live {
            live = false;
            for s in &mut sources {
                if let Some((a, b)) = s.next() {
                    live = true;
                    for i in a..b {
                        let k = (i - 10) as usize;
                        assert!(!seen[k], "index {i} claimed twice");
                        seen[k] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "indices left unclaimed");
    }

    #[test]
    fn dynamic_near_overflow_falls_back_to_static() {
        let plan = WorkPlan::new(0, i64::MAX, i64::MAX, 8, Schedule::Dynamic { grain: 1 << 40 });
        // A static fallback yields exactly one span per worker.
        let mut s = plan.spans(0);
        assert!(s.next().is_some());
        assert!(s.next().is_none(), "static fallback has a single span");
    }

    #[test]
    fn dynamic_grain_floor_is_one() {
        let plan = WorkPlan::new(0, 5, 5, 2, Schedule::Dynamic { grain: -3 });
        let mut total = 0;
        let mut s = plan.spans(0);
        while let Some((a, b)) = s.next() {
            assert_eq!(b - a, 1, "grain clamps to 1");
            total += b - a;
        }
        assert_eq!(total, 5);
    }

    #[test]
    fn triangular_load_dynamic_spread_is_tighter_than_static() {
        // Regression for the motivating load-imbalance case: a
        // triangular space where iteration i costs i+1 units (the inner
        // loop `for j in 0..=i`). A static block partition concentrates
        // the expensive tail in the last worker; dynamic chunk-claiming
        // (drained round-robin, the fair-interleaving schedule) must
        // spread the work strictly tighter.
        let (n, threads) = (256i64, 4usize);
        let cost = |i: i64| i + 1;
        let spread = |work: &[i64]| work.iter().max().unwrap() - work.iter().min().unwrap();

        let part = partition(0, n, threads);
        let mut static_work = vec![0i64; threads];
        for (t, w) in static_work.iter_mut().enumerate() {
            let (a, b) = part.span(t);
            *w = (a..b).map(cost).sum();
        }

        let plan = WorkPlan::new(0, n, n, threads, Schedule::dynamic_for(n, threads));
        let mut dyn_work = vec![0i64; threads];
        let mut sources: Vec<SpanSource> = (0..threads).map(|t| plan.spans(t)).collect();
        let mut live = true;
        while live {
            live = false;
            for (t, s) in sources.iter_mut().enumerate() {
                if let Some((a, b)) = s.next() {
                    live = true;
                    dyn_work[t] += (a..b).map(cost).sum::<i64>();
                }
            }
        }

        assert_eq!(
            static_work.iter().sum::<i64>(),
            dyn_work.iter().sum::<i64>(),
            "both schedules must cover the whole triangle"
        );
        assert!(
            spread(&dyn_work) < spread(&static_work),
            "dynamic spread {} must beat static spread {} (work: {dyn_work:?} vs {static_work:?})",
            spread(&dyn_work),
            spread(&static_work),
        );
    }

    #[test]
    fn dynamic_for_targets_eight_chunks_per_worker() {
        match Schedule::dynamic_for(6400, 8) {
            Schedule::Dynamic { grain } => assert_eq!(grain, 100),
            other => panic!("unexpected: {other:?}"),
        }
        match Schedule::dynamic_for(3, 8) {
            Schedule::Dynamic { grain } => assert_eq!(grain, 1, "grain floors at 1"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
