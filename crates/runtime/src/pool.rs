//! The persistent worker pool behind the parallel primitives.
//!
//! The first parallel invocation spawns workers; afterwards they park on
//! their mailboxes between jobs, so a sweep that calls `pipeline_2d`
//! thousands of times on small grids pays the thread-spawn tax once per
//! process instead of once per invocation (`threads × ~50µs` each).
//!
//! ## Gang scheduling, not work stealing
//!
//! Pipeline workers block on each other's progress counters, so a job's
//! `k` workers must all run concurrently — a task queue that ran 3 of 4
//! pipeline workers would deadlock. Reservation is therefore
//! all-or-nothing: [`execute`] atomically reserves `k` idle workers
//! (growing the pool up to [`MAX_POOL_THREADS`]) or falls back to the
//! old spawn-per-call `std::thread::scope` path. No partial holds means
//! no reservation deadlock between concurrent invocations.
//!
//! ## Safety of scoped closures on persistent threads
//!
//! A job hands workers a borrowed `&dyn Fn(usize)` with its lifetime
//! erased. This is sound because the submitter blocks on the job's
//! completion latch before returning: a worker's last touch of the task
//! pointer happens strictly before its latch arrival, and the borrow
//! outlives the submitting call. The latch itself is `Arc`-shared so a
//! worker finishing *after* the submitter wakes never touches freed
//! memory.
//!
//! ## Fault containment
//!
//! Workers run tasks under `catch_unwind` and arrive at the latch on
//! every path, so a panicking job can neither kill a pool thread nor
//! hang its submitter; the pool is reusable immediately afterwards.
//! (The primitives additionally contain panics *inside* their tasks to
//! record the failing cell — this boundary is the backstop.)

use crate::error::PoolPolicy;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-global job-lifecycle heartbeat: bumped when a worker picks a
/// job out of its mailbox, when it finishes one, and when a
/// spawn-per-call worker starts or ends. The watchdog
/// ([`crate::sync::StallWatch`]) consults it while an invocation's gang
/// is still coming online, so workers parked between jobs (or threads
/// still being spawned) read as start-up latency instead of a stall.
static HEARTBEAT: AtomicU64 = AtomicU64::new(0);

/// Current heartbeat value (monotonic, process-wide).
pub(crate) fn heartbeat() -> u64 {
    HEARTBEAT.load(Ordering::Relaxed)
}

/// Records one job-lifecycle transition.
pub(crate) fn bump_heartbeat() {
    HEARTBEAT.fetch_add(1, Ordering::Relaxed);
}

/// Hard ceiling on pool threads; requests beyond it (or past a failed
/// thread spawn) use the spawn-per-call fallback. Generous because the
/// fault-tolerance suite deliberately oversubscribes (128 workers on a
/// single core) and parked threads cost only stack address space.
const MAX_POOL_THREADS: usize = 256;

/// Completion latch for one job, `Arc`-shared with its workers.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(k: usize) -> Latch {
        Latch {
            remaining: Mutex::new(k),
            cv: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *left > 0 {
            left = self
                .cv
                .wait(left)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One job assignment delivered to one worker.
struct Assignment {
    /// Lifetime-erased borrow of the submitter's task closure; valid
    /// until the latch arrival (see module docs).
    task: *const (dyn Fn(usize) + Sync),
    slot: usize,
    latch: Arc<Latch>,
}

// SAFETY: the pointee is `Sync` (shared by all workers of the job) and
// the pointer's validity is enforced by the latch protocol above.
unsafe impl Send for Assignment {}

/// A worker's single-slot job queue.
struct Mailbox {
    slot: Mutex<Option<Assignment>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn deliver(&self, job: Assignment) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(job);
        self.cv.notify_one();
    }

    fn take_job(&self) -> Assignment {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = slot.take() {
                return job;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct PoolInner {
    idle: Mutex<Vec<Arc<Mailbox>>>,
    spawned: AtomicUsize,
}

/// The process-wide pool. Lives for the process lifetime — workers are
/// never shut down, only parked — so there is no drop protocol to race.
pub(crate) struct WorkerPool {
    inner: Arc<PoolInner>,
}

fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool {
        inner: Arc::new(PoolInner {
            idle: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        }),
    })
}

fn worker_loop(mailbox: Arc<Mailbox>, pool: Arc<PoolInner>) {
    loop {
        let job = mailbox.take_job();
        bump_heartbeat();
        // SAFETY: the submitter blocks on `job.latch` until after this
        // call returns, so the borrow behind `task` is still live.
        let task = unsafe { &*job.task };
        let slot = job.slot;
        let _ = catch_unwind(AssertUnwindSafe(|| task(slot)));
        // Done touching the task: make this worker reservable again,
        // then release the submitter. A new job delivered between these
        // two steps just waits in the mailbox for the next loop turn.
        {
            let mut idle = pool.idle.lock().unwrap_or_else(|e| e.into_inner());
            idle.push(Arc::clone(&mailbox));
        }
        bump_heartbeat();
        job.latch.arrive();
    }
}

impl WorkerPool {
    /// Reserves `k` workers all-or-nothing and runs `task(0..k)` on
    /// them, blocking until every worker finished. Returns `false`
    /// (running nothing) if the pool cannot field `k` workers — the
    /// caller should use the spawn path.
    fn try_run(&self, k: usize, task: &(dyn Fn(usize) + Sync)) -> bool {
        let mut got: Vec<Arc<Mailbox>> = {
            let mut idle = self.inner.idle.lock().unwrap_or_else(|e| e.into_inner());
            let keep = idle.len() - idle.len().min(k);
            idle.split_off(keep)
        };
        while got.len() < k {
            match self.spawn_worker() {
                Some(mb) => got.push(mb),
                None => {
                    // Cap or OS spawn failure: release what we held.
                    let mut idle =
                        self.inner.idle.lock().unwrap_or_else(|e| e.into_inner());
                    idle.append(&mut got);
                    return false;
                }
            }
        }
        let latch = Arc::new(Latch::new(k));
        // SAFETY: lifetime erasure justified by the latch protocol (see
        // module docs): `latch.wait()` below outlives every dereference.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        for (slot, mb) in got.into_iter().enumerate() {
            mb.deliver(Assignment {
                task,
                slot,
                latch: Arc::clone(&latch),
            });
        }
        latch.wait();
        true
    }

    /// Spawns one more parked worker, or `None` at the cap / on OS
    /// failure. The count is reserved optimistically and returned on
    /// failure so racing growers never overshoot the cap.
    fn spawn_worker(&self) -> Option<Arc<Mailbox>> {
        if self.inner.spawned.fetch_add(1, Ordering::Relaxed) >= MAX_POOL_THREADS {
            self.inner.spawned.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        let mailbox = Arc::new(Mailbox::new());
        let mb = Arc::clone(&mailbox);
        let pool = Arc::clone(&self.inner);
        match std::thread::Builder::new()
            .name("polymix-pool".into())
            .spawn(move || worker_loop(mb, pool))
        {
            Ok(_) => Some(mailbox),
            Err(_) => {
                self.inner.spawned.fetch_sub(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// Runs `task(t)` for every `t in 0..k` concurrently — on the
/// persistent pool when `policy` allows and capacity exists, otherwise
/// on freshly spawned scoped threads. Returns `true` when the pooled
/// path ran. `task` must contain its own panics (the primitives do);
/// the pool adds a backstop `catch_unwind` either way.
///
/// Both paths run the seeded per-worker fault-injection hook before the
/// task, so `fault-inject` schedules replay identically under
/// [`PoolPolicy::Persistent`] and [`PoolPolicy::SpawnPerCall`].
pub(crate) fn execute(k: usize, policy: PoolPolicy, task: &(dyn Fn(usize) + Sync)) -> bool {
    let seeded = |t: usize| {
        crate::fault_inject::before_worker(t);
        task(t)
    };
    if policy.use_pool() && global().try_run(k, &seeded) {
        return true;
    }
    let seeded = &seeded;
    std::thread::scope(|s| {
        for t in 0..k {
            s.spawn(move || {
                bump_heartbeat();
                seeded(t);
                bump_heartbeat();
            });
        }
    });
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_all_slots_and_is_reusable() {
        let pool = global();
        for round in 0..10u64 {
            let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            assert!(pool.try_run(4, &|t| {
                hits[t].fetch_add(round + 1, Ordering::Relaxed);
            }));
            assert!(hits
                .iter()
                .all(|h| h.load(Ordering::Relaxed) == round + 1));
        }
    }

    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        let pool = global();
        assert!(pool.try_run(3, &|t| {
            if t == 1 {
                std::panic::panic_any("pool boom");
            }
        }));
        // The pool must still field all three workers afterwards.
        let count = AtomicU64::new(0);
        assert!(pool.try_run(3, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn spawn_policy_bypasses_pool() {
        let count = AtomicU64::new(0);
        let pooled = execute(3, PoolPolicy::SpawnPerCall, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!pooled);
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn oversized_requests_fall_back() {
        let count = AtomicU64::new(0);
        let pooled = execute(MAX_POOL_THREADS + 1, PoolPolicy::Persistent, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!pooled, "past the cap the spawn path must serve");
        assert_eq!(count.load(Ordering::Relaxed), (MAX_POOL_THREADS + 1) as u64);
    }
}
