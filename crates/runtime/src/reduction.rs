//! Array reductions with thread-private accumulators — the C array-
//! reduction OpenMP extension of Sec. IV-D.

use crate::error::{RunStats, RuntimeError, RuntimeOptions};
use crate::pool;
use crate::schedule::WorkPlan;
use crate::sync::{payload_text, CachePadded, Fabric};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Reduces into `target` over the iteration range `lo..hi`: each worker
/// gets a zeroed private copy of `target`'s length, `body(i, local)`
/// accumulates into it, and the private copies are summed into `target`
/// under a lock after each worker finishes.
///
/// A worker panic is contained and returned as
/// [`RuntimeError::WorkerPanic`]; on error, `target` may hold the
/// contributions of workers that completed before the failure — callers
/// that need a clean value should rebuild it from scratch (the bench
/// layer re-runs sequentially).
pub fn reduce_array<F>(
    target: &mut [f64],
    lo: i64,
    hi: i64,
    threads: usize,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, &mut [f64]) + Sync,
{
    reduce_array_opts(target, lo, hi, threads, RuntimeOptions::default(), body)
}

/// [`reduce_array`] with explicit [`RuntimeOptions`]. The private copy
/// is allocated once per *worker* (not per claimed chunk), so a dynamic
/// schedule costs no extra allocation or merging.
pub fn reduce_array_opts<F>(
    target: &mut [f64],
    lo: i64,
    hi: i64,
    threads: usize,
    opts: RuntimeOptions,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, &mut [f64]) + Sync,
{
    let n = match hi.checked_sub(lo) {
        Some(n) => n,
        None => {
            return Err(RuntimeError::Misuse(format!(
                "index range [{lo}, {hi}) overflows i64 arithmetic"
            )))
        }
    };
    if n <= 0 {
        return Ok(RunStats::default());
    }
    let cap = u64::try_from(n)
        .unwrap_or(u64::MAX)
        .min(usize::MAX as u64) as usize;
    let threads = threads.clamp(1, cap);
    let len = target.len();
    let global = Mutex::new(target);
    let fabric = Fabric::new(false, threads);
    let plan = WorkPlan::new(lo, hi, n, threads, opts.schedule);
    let worker = |t: usize| {
        // The accumulator header sits on its own cache line; the heap
        // buffer behind it is per-worker anyway, so no two workers write
        // the same line during accumulation.
        let mut local: CachePadded<Vec<f64>> = CachePadded::new(vec![0.0f64; len]);
        let current: Cell<Option<i64>> = Cell::new(None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut spans = plan.spans(t);
            while let Some((a, b)) = spans.next() {
                for i in a..b {
                    current.set(Some(i));
                    crate::fault_inject::before_cell(i, 0);
                    body(i, &mut local);
                }
            }
        }));
        match outcome {
            Ok(()) => {
                let mut g = global.lock().unwrap_or_else(|e| e.into_inner());
                for (dst, src) in g.iter_mut().zip(local.iter()) {
                    *dst += src;
                }
            }
            Err(payload) => {
                // A panicked worker's partial accumulator is discarded,
                // never merged.
                fabric.poison(
                    RuntimeError::WorkerPanic {
                        worker: t,
                        cell: current.get().map(|i| (i, 0)),
                        payload: payload_text(payload.as_ref()),
                    },
                    &[],
                );
            }
        }
    };
    let pooled = if threads == 1 {
        worker(0);
        false
    } else {
        pool::execute(threads, opts.pool, &worker)
    };
    match fabric.into_failure() {
        Some(err) => Err(err),
        None => Ok(RunStats {
            cells: n as u64,
            workers: threads,
            pooled,
            order_check_disarmed: false,
            pipeline_batch: None,
            dyn_grain: opts.schedule.resolved_grain(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn column_sum_matches_sequential() {
        // S[j] += X[i][j] over a 40x8 matrix.
        let n = 40usize;
        let m = 8usize;
        let x: Vec<f64> = (0..n * m).map(|k| (k % 13) as f64).collect();
        let mut s_par = vec![0.0; m];
        reduce_array(&mut s_par, 0, n as i64, 4, |i, local| {
            for j in 0..m {
                local[j] += x[i as usize * m + j];
            }
        })
        .expect("clean run");
        let mut s_seq = vec![0.0; m];
        for i in 0..n {
            for j in 0..m {
                s_seq[j] += x[i * m + j];
            }
        }
        assert_eq!(s_par, s_seq);
    }

    #[test]
    fn dynamic_schedule_matches_static() {
        let opts = RuntimeOptions {
            schedule: Schedule::Dynamic { grain: 5 },
            ..RuntimeOptions::default()
        };
        let mut acc = vec![0.0];
        reduce_array_opts(&mut acc, 1, 101, 4, opts, |i, local| local[0] += i as f64)
            .expect("clean run");
        assert_eq!(acc[0], 5050.0);
    }

    #[test]
    fn preserves_prior_contents() {
        let mut t = vec![10.0, 20.0];
        reduce_array(&mut t, 0, 5, 2, |_, local| {
            local[0] += 1.0;
            local[1] += 2.0;
        })
        .expect("clean run");
        assert_eq!(t, vec![15.0, 30.0]);
    }

    #[test]
    fn empty_range_leaves_target_untouched() {
        let mut t = vec![1.0, 2.0, 3.0];
        reduce_array(&mut t, 3, 3, 4, |_, _| panic!("must not run")).expect("empty range");
        assert_eq!(t, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_reduction_via_len_one_array() {
        let mut acc = vec![0.0];
        reduce_array(&mut acc, 1, 101, 8, |i, local| local[0] += i as f64).expect("clean run");
        assert_eq!(acc[0], 5050.0);
    }

    #[test]
    fn body_panic_is_contained() {
        let mut acc = vec![0.0];
        let err = reduce_array(&mut acc, 0, 64, 4, |i, local| {
            if i == 17 {
                panic!("reduce boom");
            }
            local[0] += 1.0;
        })
        .expect_err("panic must surface");
        match err {
            RuntimeError::WorkerPanic { cell, payload, .. } => {
                assert_eq!(cell, Some((17, 0)));
                assert!(payload.contains("reduce boom"), "{payload}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
