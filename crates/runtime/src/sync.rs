//! The poisonable progress fabric shared by the parallel primitives.
//!
//! Every primitive that blocks on a progress counter routes its waiting
//! through [`await_progress`], which layers three things on top of the
//! plain "spin until the counter reaches the target" loop:
//!
//! 1. **Poison**: a failing worker floods every counter with [`POISON`]
//!    (`i64::MAX`, which satisfies any target) and raises a shared flag,
//!    so waiters exit promptly instead of spinning forever.
//! 2. **Watchdog**: under [`RuntimeOptions::watchdog`], a waiter that
//!    sees the global progress epoch frozen for the whole deadline
//!    reports a stall instead of waiting forever.
//! 3. **Backoff**: spin → `yield_now` → `park_timeout` with exponential
//!    timeouts, so oversubscribed waiters stop burning scheduler quanta
//!    (no `unpark` is ever sent; the timeout bounds the wake latency).
//!
//! [`RuntimeOptions::watchdog`]: crate::error::RuntimeOptions

use crate::error::RuntimeError;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sentinel flooded into every progress counter when a run fails. It is
/// the maximum `i64`, so it satisfies any `await` target and releases
/// every waiter; workers always publish real progress with `fetch_max`,
/// which can never overwrite it.
pub const POISON: i64 = i64::MAX;

/// Spin iterations before a waiter starts yielding, unless overridden by
/// the `POLYMIX_SPIN_LIMIT` environment variable (read once per
/// process). Pure spinning livelocks when workers outnumber cores; a
/// bounded spin keeps the fast path cheap.
const DEFAULT_SPIN_LIMIT: u32 = 1 << 10;

/// Yields between the spin phase and the parking phase.
const YIELD_LIMIT: u32 = 64;

/// First and maximum `park_timeout` intervals of the exponential tail.
const PARK_START: Duration = Duration::from_micros(50);
const PARK_CAP: Duration = Duration::from_millis(2);

/// Cached `POLYMIX_SPIN_LIMIT` (or the default).
pub(crate) fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| parse_spin_limit(std::env::var("POLYMIX_SPIN_LIMIT").ok().as_deref()))
}

/// Parses a `POLYMIX_SPIN_LIMIT` value; anything unparseable falls back
/// to the default (misconfiguration must not change semantics).
fn parse_spin_limit(raw: Option<&str>) -> u32 {
    raw.and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(DEFAULT_SPIN_LIMIT)
}

/// Renders a caught panic payload as text.
pub(crate) fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Shared failure state for one primitive invocation: the poison flag,
/// the first recorded error, and the watchdog's progress epoch.
pub(crate) struct Fabric {
    poisoned: AtomicBool,
    /// Monotonic counter bumped on every progress publish; only
    /// maintained when a watchdog is armed (`watching`), so unwatched
    /// hot paths pay nothing.
    epoch: AtomicU64,
    watching: bool,
    failure: Mutex<Option<RuntimeError>>,
}

impl Fabric {
    pub(crate) fn new(watching: bool) -> Fabric {
        Fabric {
            poisoned: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            watching,
            failure: Mutex::new(None),
        }
    }

    #[inline]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Publishes one unit of global progress for the watchdog.
    #[inline]
    pub(crate) fn bump(&self) {
        if self.watching {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `err` (first failure wins), raises the poison flag, and
    /// floods `progress` so every waiter is released.
    pub(crate) fn poison(&self, err: RuntimeError, progress: &[AtomicI64]) {
        {
            let mut slot = self.failure.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.poisoned.store(true, Ordering::Release);
        for cell in progress {
            cell.store(POISON, Ordering::Release);
        }
        // Poisoning counts as progress: it un-wedges watchdog timers so
        // released waiters report Poisoned, not a second Stalled.
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The recorded failure, if any (call after all workers joined).
    pub(crate) fn into_failure(self) -> Option<RuntimeError> {
        self.failure.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// How a wait on a progress counter ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    /// The counter reached the target.
    Ready,
    /// The run was poisoned by another worker; exit without working.
    Poisoned,
    /// The watchdog deadline elapsed with no global progress anywhere:
    /// the caller should declare the run stalled.
    Stalled,
}

/// Waits until `cell` reaches at least `target`, with poison checks,
/// the optional global-progress watchdog, and spin/yield/park backoff.
pub(crate) fn await_progress(
    cell: &AtomicI64,
    target: i64,
    fabric: &Fabric,
    deadline: Option<Duration>,
) -> Wait {
    let limit = spin_limit();
    let mut spins = 0u32;
    let mut yields = 0u32;
    let mut park = PARK_START;
    // Armed lazily on entering the slow path: (epoch last seen, when).
    let mut watch: Option<(u64, Instant)> = None;
    loop {
        let v = cell.load(Ordering::Acquire);
        if v == POISON {
            return Wait::Poisoned;
        }
        if v >= target {
            return Wait::Ready;
        }
        if spins < limit {
            spins += 1;
            std::hint::spin_loop();
            continue;
        }
        // Slow path: the neighbor is genuinely behind (or wedged).
        if fabric.is_poisoned() {
            return Wait::Poisoned;
        }
        crate::fault_inject::on_wait();
        if let Some(dl) = deadline {
            let epoch_now = fabric.epoch.load(Ordering::Relaxed);
            match &mut watch {
                None => watch = Some((epoch_now, Instant::now())),
                Some((epoch_seen, since)) => {
                    if epoch_now != *epoch_seen {
                        *epoch_seen = epoch_now;
                        *since = Instant::now();
                    } else if since.elapsed() >= dl {
                        return Wait::Stalled;
                    }
                }
            }
        }
        if yields < YIELD_LIMIT {
            yields += 1;
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(park);
            park = (park * 2).min(PARK_CAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_limit_parsing() {
        assert_eq!(parse_spin_limit(None), DEFAULT_SPIN_LIMIT);
        assert_eq!(parse_spin_limit(Some("64")), 64);
        assert_eq!(parse_spin_limit(Some(" 8 ")), 8);
        assert_eq!(parse_spin_limit(Some("0")), 0);
        assert_eq!(parse_spin_limit(Some("not-a-number")), DEFAULT_SPIN_LIMIT);
        assert_eq!(parse_spin_limit(Some("-3")), DEFAULT_SPIN_LIMIT);
    }

    #[test]
    fn await_sees_ready_and_poison() {
        let fabric = Fabric::new(false);
        let cell = AtomicI64::new(5);
        assert_eq!(await_progress(&cell, 5, &fabric, None), Wait::Ready);
        assert_eq!(await_progress(&cell, 3, &fabric, None), Wait::Ready);
        cell.store(POISON, Ordering::Release);
        assert_eq!(await_progress(&cell, 100, &fabric, None), Wait::Poisoned);
    }

    #[test]
    fn await_reports_stall_on_frozen_epoch() {
        let fabric = Fabric::new(true);
        let cell = AtomicI64::new(0);
        let started = Instant::now();
        let got = await_progress(&cell, 1, &fabric, Some(Duration::from_millis(50)));
        assert_eq!(got, Wait::Stalled);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "stall detection took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn poison_floods_counters_and_keeps_first_error() {
        let progress: Vec<AtomicI64> = (0..4).map(|_| AtomicI64::new(0)).collect();
        let fabric = Fabric::new(false);
        fabric.poison(RuntimeError::Misuse("first".into()), &progress);
        fabric.poison(RuntimeError::Misuse("second".into()), &progress);
        assert!(fabric.is_poisoned());
        assert!(progress.iter().all(|c| c.load(Ordering::Acquire) == POISON));
        assert_eq!(
            fabric.into_failure(),
            Some(RuntimeError::Misuse("first".into()))
        );
    }

    #[test]
    fn payloads_render() {
        let b: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(payload_text(b.as_ref()), "boom");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(payload_text(b.as_ref()), "owned");
        let b: Box<dyn std::any::Any + Send> = Box::new(42i32);
        assert_eq!(payload_text(b.as_ref()), "<non-string panic payload>");
    }
}
