//! The poisonable progress fabric shared by the parallel primitives,
//! plus the cache-layout and backoff building blocks they sit on.
//!
//! Every primitive that blocks on a progress counter routes its waiting
//! through [`await_progress`], which layers three things on top of the
//! plain "spin until the counter reaches the target" loop:
//!
//! 1. **Poison**: a failing worker floods every counter with [`POISON`]
//!    (`i64::MAX`, which satisfies any target) and raises a shared flag,
//!    so waiters exit promptly instead of spinning forever.
//! 2. **Watchdog**: under [`RuntimeOptions::watchdog`], a waiter that
//!    sees the global progress epoch frozen for the whole deadline
//!    reports a stall instead of waiting forever.
//! 3. **Backoff**: spin → `yield_now` → `park_timeout` with exponential
//!    timeouts, so oversubscribed waiters stop burning scheduler quanta
//!    (no `unpark` is ever sent; the timeout bounds the wake latency).
//!
//! Per-worker progress counters are wrapped in [`CachePadded`] so two
//! workers publishing progress never write the same cache line: the
//! pipeline's `fetch_max` publish is the hottest cross-thread store in
//! the runtime, and unpadded `Vec<AtomicI64>` counters put eight of them
//! on one line.
//!
//! [`RuntimeOptions::watchdog`]: crate::error::RuntimeOptions

use crate::error::RuntimeError;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sentinel flooded into every progress counter when a run fails. It is
/// the maximum `i64`, so it satisfies any `await` target and releases
/// every waiter; workers always publish real progress with `fetch_max`,
/// which can never overwrite it.
pub const POISON: i64 = i64::MAX;

/// Pads and aligns `T` to a 64-byte cache line so neighboring values in
/// an array never share a line. Used for per-worker progress counters,
/// the [`Fabric`]'s shared flags, dynamic-schedule claim cursors, and
/// reduction accumulator headers — everything two workers touch at once.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` on its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Spin iterations before a waiter starts yielding, unless overridden by
/// the `POLYMIX_SPIN_LIMIT` environment variable (read once per
/// process). Pure spinning livelocks when workers outnumber cores; a
/// bounded spin keeps the fast path cheap.
const DEFAULT_SPIN_LIMIT: u32 = 1 << 10;

/// Yields between the spin phase and the parking phase.
const YIELD_LIMIT: u32 = 64;

/// First and maximum `park_timeout` intervals of the exponential tail.
const PARK_START: Duration = Duration::from_micros(50);
const PARK_CAP: Duration = Duration::from_millis(2);

/// Cached `POLYMIX_SPIN_LIMIT` (or the default).
pub(crate) fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| parse_spin_limit(std::env::var("POLYMIX_SPIN_LIMIT").ok().as_deref()))
}

/// Parses a `POLYMIX_SPIN_LIMIT` value; anything unparseable falls back
/// to the default (misconfiguration must not change semantics). `0` is
/// a *valid* setting: it disables the spin phase entirely.
fn parse_spin_limit(raw: Option<&str>) -> u32 {
    raw.and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(DEFAULT_SPIN_LIMIT)
}

/// The spin → yield → park backoff ladder, one per wait. Each phase has
/// a budget; `spin()` consumes the spin budget and reports whether the
/// caller is still on the cheap in-core path, `wait()` runs one step of
/// the slow ladder. A zero spin limit is honored exactly: the budget
/// starts empty and the first `spin()` returns `false` (no decrement, so
/// a zero budget can never underflow into a near-infinite spin phase).
pub(crate) struct Backoff {
    spins_left: u32,
    yields_left: u32,
    park: Duration,
}

impl Backoff {
    pub(crate) fn new(spin_limit: u32) -> Backoff {
        Backoff {
            spins_left: spin_limit,
            yields_left: YIELD_LIMIT,
            park: PARK_START,
        }
    }

    /// One step of the cheap phase; `false` once the budget is spent
    /// (immediately when the limit is 0 — skip straight to yielding).
    #[inline]
    pub(crate) fn spin(&mut self) -> bool {
        if self.spins_left == 0 {
            return false;
        }
        self.spins_left -= 1;
        std::hint::spin_loop();
        true
    }

    /// One step of the slow ladder: a bounded run of yields, then
    /// exponentially growing parks.
    pub(crate) fn wait(&mut self) {
        if self.yields_left > 0 {
            self.yields_left -= 1;
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(self.park);
            self.park = (self.park * 2).min(PARK_CAP);
        }
    }

    #[cfg(test)]
    fn in_spin_phase(&self) -> bool {
        self.spins_left > 0
    }
}

/// Renders a caught panic payload as text.
pub(crate) fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Shared failure state for one primitive invocation: the poison flag,
/// the first recorded error, and the watchdog's progress epoch. The two
/// atomics live on separate cache lines: the poison flag is read on
/// every waiter's slow path while the epoch is written on every publish,
/// and sharing a line would make each publish invalidate every waiter.
pub(crate) struct Fabric {
    poisoned: CachePadded<AtomicBool>,
    /// Monotonic counter bumped on every progress publish; only
    /// maintained when a watchdog is armed (`watching`), so unwatched
    /// hot paths pay nothing.
    epoch: CachePadded<AtomicU64>,
    watching: bool,
    /// Workers the invocation expects; until `started` catches up the
    /// watchdog keeps deferring to the pool's job-lifecycle heartbeat
    /// (a gang still being delivered to parked mailboxes is start-up
    /// latency, not an in-job stall).
    expected: usize,
    /// Workers that have come online (see [`Fabric::worker_online`]);
    /// only maintained when a watchdog is armed.
    started: CachePadded<AtomicUsize>,
    failure: Mutex<Option<RuntimeError>>,
}

impl Fabric {
    pub(crate) fn new(watching: bool, expected: usize) -> Fabric {
        Fabric {
            poisoned: CachePadded::new(AtomicBool::new(false)),
            epoch: CachePadded::new(AtomicU64::new(0)),
            watching,
            expected,
            started: CachePadded::new(AtomicUsize::new(0)),
            failure: Mutex::new(None),
        }
    }

    #[inline]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Publishes one unit of global progress for the watchdog.
    #[inline]
    pub(crate) fn bump(&self) {
        if self.watching {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Called by each worker as its closure starts running: coming
    /// online is progress (it resets stall timers), and once all
    /// `expected` workers checked in the watchdog stops consulting the
    /// pool heartbeat and watches the progress epoch alone.
    #[inline]
    pub(crate) fn worker_online(&self) {
        if self.watching {
            self.started.fetch_add(1, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether every expected worker has come online. Vacuously true
    /// when the watchdog is off (nobody consults the answer then).
    #[inline]
    pub(crate) fn all_online(&self) -> bool {
        !self.watching || self.started.load(Ordering::Relaxed) >= self.expected
    }

    /// Records `err` (first failure wins), raises the poison flag, and
    /// floods `progress` so every waiter is released.
    pub(crate) fn poison(&self, err: RuntimeError, progress: &[CachePadded<AtomicI64>]) {
        {
            let mut slot = self.failure.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.poisoned.store(true, Ordering::Release);
        for cell in progress {
            cell.store(POISON, Ordering::Release);
        }
        // Poisoning counts as progress: it un-wedges watchdog timers so
        // released waiters report Poisoned, not a second Stalled.
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The recorded failure, if any (call after all workers joined).
    pub(crate) fn into_failure(self) -> Option<RuntimeError> {
        self.failure.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// How a wait on a progress counter ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    /// The counter reached the target.
    Ready,
    /// The run was poisoned by another worker; exit without working.
    Poisoned,
    /// The watchdog deadline elapsed with no global progress anywhere:
    /// the caller should declare the run stalled.
    Stalled,
}

/// The watchdog ledger shared by every waiting slow path (progress
/// awaits and the task graph's idle loop): reports a stall when the
/// fabric's progress epoch stayed frozen for the whole deadline.
///
/// Until the invocation's gang is fully online ([`Fabric::all_online`])
/// the pool's job-lifecycle heartbeat also counts as progress: a
/// persistent-pool gang is delivered to parked mailboxes one worker at
/// a time, and a waiter must not report `Stalled` while its peers are
/// still being woken up — only a *genuine in-job* freeze fires.
pub(crate) struct StallWatch {
    deadline: Option<Duration>,
    /// Armed lazily on the first slow-path observation:
    /// (epoch seen, pool heartbeat seen, when).
    seen: Option<(u64, u64, Instant)>,
}

impl StallWatch {
    pub(crate) fn new(deadline: Option<Duration>) -> StallWatch {
        StallWatch {
            deadline,
            seen: None,
        }
    }

    /// One slow-path observation; `true` means the deadline elapsed
    /// with no progress anywhere and the caller should declare a stall.
    pub(crate) fn stalled(&mut self, fabric: &Fabric) -> bool {
        let Some(dl) = self.deadline else {
            return false;
        };
        let epoch_now = fabric.epoch.load(Ordering::Relaxed);
        let hb_now = crate::pool::heartbeat();
        match &mut self.seen {
            None => {
                self.seen = Some((epoch_now, hb_now, Instant::now()));
                false
            }
            Some((epoch_seen, hb_seen, since)) => {
                let progressed = epoch_now != *epoch_seen
                    || (!fabric.all_online() && hb_now != *hb_seen);
                if progressed {
                    *epoch_seen = epoch_now;
                    *hb_seen = hb_now;
                    *since = Instant::now();
                    false
                } else {
                    since.elapsed() >= dl
                }
            }
        }
    }
}

/// Waits until `cell` reaches at least `target`, with poison checks,
/// the optional global-progress watchdog, and spin/yield/park backoff.
pub(crate) fn await_progress(
    cell: &AtomicI64,
    target: i64,
    fabric: &Fabric,
    deadline: Option<Duration>,
) -> Wait {
    await_progress_with_limit(cell, target, fabric, deadline, spin_limit())
}

/// [`await_progress`] with an explicit spin budget (testable without
/// mutating process environment).
pub(crate) fn await_progress_with_limit(
    cell: &AtomicI64,
    target: i64,
    fabric: &Fabric,
    deadline: Option<Duration>,
    spin_limit: u32,
) -> Wait {
    let mut backoff = Backoff::new(spin_limit);
    let mut watch = StallWatch::new(deadline);
    loop {
        let v = cell.load(Ordering::Acquire);
        if v == POISON {
            return Wait::Poisoned;
        }
        if v >= target {
            return Wait::Ready;
        }
        if backoff.spin() {
            continue;
        }
        // Slow path: the neighbor is genuinely behind (or wedged).
        if fabric.is_poisoned() {
            return Wait::Poisoned;
        }
        crate::fault_inject::on_wait();
        if watch.stalled(fabric) {
            return Wait::Stalled;
        }
        backoff.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_limit_parsing() {
        assert_eq!(parse_spin_limit(None), DEFAULT_SPIN_LIMIT);
        assert_eq!(parse_spin_limit(Some("64")), 64);
        assert_eq!(parse_spin_limit(Some(" 8 ")), 8);
        assert_eq!(parse_spin_limit(Some("0")), 0);
        assert_eq!(parse_spin_limit(Some("not-a-number")), DEFAULT_SPIN_LIMIT);
        assert_eq!(parse_spin_limit(Some("-3")), DEFAULT_SPIN_LIMIT);
    }

    #[test]
    fn zero_spin_limit_skips_straight_to_yield_phase() {
        // The regression this pins: a zero POLYMIX_SPIN_LIMIT must mean
        // "no spin phase at all" — the first spin() is refused without
        // touching the (unsigned) budget, so it can never underflow into
        // a ~2^32-iteration spin.
        let mut b = Backoff::new(0);
        assert!(!b.in_spin_phase());
        assert!(!b.spin());
        assert!(!b.spin(), "repeated spin() must stay refused");
    }

    #[test]
    fn spin_budget_is_exact() {
        let mut b = Backoff::new(2);
        assert!(b.spin());
        assert!(b.spin());
        assert!(!b.spin(), "budget of 2 allows exactly 2 spins");
    }

    #[test]
    fn await_with_zero_spin_limit_still_completes() {
        // A waiter with no spin budget must reach the target through the
        // yield/park ladder once another thread publishes it.
        let fabric = Fabric::new(false, 1);
        let cell = AtomicI64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                cell.store(7, Ordering::Release);
            });
            let got = await_progress_with_limit(&cell, 7, &fabric, None, 0);
            assert_eq!(got, Wait::Ready);
        });
    }

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicI64>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicI64>>() >= 64);
        let v: Vec<CachePadded<AtomicI64>> =
            (0..4).map(|_| CachePadded::new(AtomicI64::new(0))).collect();
        let a = &*v[0] as *const AtomicI64 as usize;
        let b = &*v[1] as *const AtomicI64 as usize;
        assert!(b - a >= 64, "adjacent counters must not share a line");
        let padded = CachePadded::new(AtomicI64::new(9));
        assert_eq!(padded.load(Ordering::Relaxed), 9);
        assert_eq!(padded.into_inner().into_inner(), 9);
    }

    #[test]
    fn await_sees_ready_and_poison() {
        let fabric = Fabric::new(false, 1);
        let cell = AtomicI64::new(5);
        assert_eq!(await_progress(&cell, 5, &fabric, None), Wait::Ready);
        assert_eq!(await_progress(&cell, 3, &fabric, None), Wait::Ready);
        cell.store(POISON, Ordering::Release);
        assert_eq!(await_progress(&cell, 100, &fabric, None), Wait::Poisoned);
    }

    #[test]
    fn await_reports_stall_on_frozen_epoch() {
        // expected = 0: the gang counts as fully online, so the pool
        // heartbeat is ignored and only the frozen epoch matters (other
        // tests' pool activity must not reset this timer).
        let fabric = Fabric::new(true, 0);
        let cell = AtomicI64::new(0);
        let started = Instant::now();
        let got = await_progress(&cell, 1, &fabric, Some(Duration::from_millis(50)));
        assert_eq!(got, Wait::Stalled);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "stall detection took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn pool_heartbeat_defers_stall_until_gang_is_online() {
        // The watchdog regression this pins: one worker of a two-worker
        // gang starts waiting while its peer is still being delivered by
        // the pool. Pool heartbeats must keep resetting the stall timer
        // (start-up latency is not an in-job stall), so the waiter sees
        // the late publish instead of reporting Stalled.
        let fabric = Fabric::new(true, 2);
        fabric.worker_online(); // the waiter itself; peer not yet online
        assert!(!fabric.all_online());
        let cell = AtomicI64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Simulated mailbox/latch traffic while the peer spins
                // up, then the peer's publish — well past the deadline.
                for _ in 0..20 {
                    std::thread::sleep(Duration::from_millis(10));
                    crate::pool::bump_heartbeat();
                }
                cell.store(1, Ordering::Release);
            });
            let got = await_progress_with_limit(
                &cell,
                1,
                &fabric,
                Some(Duration::from_millis(50)),
                0,
            );
            assert_eq!(got, Wait::Ready, "heartbeat must defer the watchdog");
        });
    }

    #[test]
    fn heartbeat_does_not_mask_stalls_once_gang_is_online() {
        // Once every expected worker checked in, only the progress epoch
        // counts: job-lifecycle traffic from unrelated invocations must
        // not hide a genuinely wedged gang.
        let fabric = Fabric::new(true, 1);
        fabric.worker_online();
        assert!(fabric.all_online());
        let cell = AtomicI64::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    crate::pool::bump_heartbeat();
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            let got = await_progress_with_limit(
                &cell,
                1,
                &fabric,
                Some(Duration::from_millis(50)),
                0,
            );
            stop.store(true, Ordering::Relaxed);
            assert_eq!(got, Wait::Stalled, "heartbeat must not mask a real stall");
        });
    }

    #[test]
    fn poison_floods_counters_and_keeps_first_error() {
        let progress: Vec<CachePadded<AtomicI64>> =
            (0..4).map(|_| CachePadded::new(AtomicI64::new(0))).collect();
        let fabric = Fabric::new(false, 4);
        fabric.poison(RuntimeError::Misuse("first".into()), &progress);
        fabric.poison(RuntimeError::Misuse("second".into()), &progress);
        assert!(fabric.is_poisoned());
        assert!(progress.iter().all(|c| c.load(Ordering::Acquire) == POISON));
        assert_eq!(
            fabric.into_failure(),
            Some(RuntimeError::Misuse("first".into()))
        );
    }

    #[test]
    fn payloads_render() {
        let b: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(payload_text(b.as_ref()), "boom");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(payload_text(b.as_ref()), "owned");
        let b: Box<dyn std::any::Any + Send> = Box::new(42i32);
        assert_eq!(payload_text(b.as_ref()), "<non-string panic payload>");
    }
}
