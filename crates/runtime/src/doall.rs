//! Static-schedule doall execution.

/// Runs `body(i)` for every `i` in `lo..hi` across `threads` workers with
/// a static block distribution (the `schedule(static)` OpenMP analogue).
///
/// `body` only receives disjoint indices, so it may mutate shared state
/// partitioned by `i`; Rust-level sharing is the caller's problem — the
/// closure must be `Sync` (it is called concurrently from many threads).
pub fn par_for<F>(lo: i64, hi: i64, threads: usize, body: F)
where
    F: Fn(i64) + Sync,
{
    par_for_chunked(lo, hi, threads, |a, b| {
        for i in a..b {
            body(i);
        }
    });
}

/// Runs `body(chunk_lo, chunk_hi)` once per worker over a static block
/// partition of `lo..hi`. Empty ranges spawn nothing.
pub fn par_for_chunked<F>(lo: i64, hi: i64, threads: usize, body: F)
where
    F: Fn(i64, i64) + Sync,
{
    let n = hi - lo;
    if n <= 0 {
        return;
    }
    let threads = threads.clamp(1, n.max(1) as usize);
    if threads == 1 {
        body(lo, hi);
        return;
    }
    let chunk = (n + threads as i64 - 1) / threads as i64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let body = &body;
            let a = lo + t as i64 * chunk;
            let b = (a + chunk).min(hi);
            if a < b {
                s.spawn(move || body(a, b));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        par_for(0, 100, 7, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_negative_ranges_are_noops() {
        let count = AtomicUsize::new(0);
        par_for(5, 5, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        par_for(5, 2, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn more_threads_than_iterations() {
        let count = AtomicUsize::new(0);
        par_for(0, 3, 64, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn chunked_partitions_are_disjoint_and_complete() {
        let total = AtomicI64::new(0);
        par_for_chunked(10, 1000, 8, |a, b| {
            assert!(a < b);
            total.fetch_add(b - a, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 990);
    }

    #[test]
    fn single_thread_gets_whole_range() {
        let seen = AtomicI64::new(-1);
        par_for_chunked(0, 4, 1, |a, b| {
            assert_eq!((a, b), (0, 4));
            seen.store(b - a, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }
}
