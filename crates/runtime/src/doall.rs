//! Doall execution over the persistent worker pool.
//!
//! Scheduling is the caller's choice via [`RuntimeOptions::schedule`]:
//! static blocks by default, atomic chunk-claiming
//! ([`Schedule::Dynamic`](crate::schedule::Schedule)) for spaces where
//! static blocks load-imbalance. Workers come from the process-wide
//! persistent pool (see [`crate::pool`]) unless
//! [`RuntimeOptions::pool`] says otherwise.
//!
//! Worker panics are contained at the worker boundary: the failing
//! worker records a [`RuntimeError::WorkerPanic`] (first failure wins)
//! and the primitive returns it after every worker has joined. Doall
//! workers never wait on each other, so no poison broadcast is needed —
//! the surviving workers simply finish their bounded spans.

use crate::error::{RunStats, RuntimeError, RuntimeOptions};
use crate::pool;
use crate::schedule::WorkPlan;
use crate::sync::{payload_text, Fabric};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `body(i)` for every `i` in `lo..hi` across `threads` workers with
/// a static block distribution (the `schedule(static)` OpenMP analogue).
///
/// `body` only receives disjoint indices, so it may mutate shared state
/// partitioned by `i`; Rust-level sharing is the caller's problem — the
/// closure must be `Sync` (it is called concurrently from many threads).
pub fn par_for<F>(lo: i64, hi: i64, threads: usize, body: F) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64) + Sync,
{
    par_for_opts(lo, hi, threads, RuntimeOptions::default(), body)
}

/// [`par_for`] with explicit [`RuntimeOptions`] (scheduling policy and
/// pool provisioning).
pub fn par_for_opts<F>(
    lo: i64,
    hi: i64,
    threads: usize,
    opts: RuntimeOptions,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64) + Sync,
{
    doall_cells(lo, hi, threads, opts, |i| (i, 0), body)
}

/// [`par_for`] generalized with a mapping from the flat index to the
/// logical grid cell reported in diagnostics (and targeted by fault
/// injection) — the wavefront executor runs diagonals through this.
pub(crate) fn doall_cells<C, F>(
    lo: i64,
    hi: i64,
    threads: usize,
    opts: RuntimeOptions,
    cell_of: C,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    C: Fn(i64) -> (i64, i64) + Sync,
    F: Fn(i64) + Sync,
{
    let n = match hi.checked_sub(lo) {
        Some(n) => n,
        None => {
            return Err(RuntimeError::Misuse(format!(
                "index range [{lo}, {hi}) overflows i64 arithmetic"
            )))
        }
    };
    if n <= 0 {
        return Ok(RunStats::default());
    }
    let cap = u64::try_from(n)
        .unwrap_or(u64::MAX)
        .min(usize::MAX as u64) as usize;
    let threads = threads.clamp(1, cap);
    let fabric = Fabric::new(false, threads);
    let plan = WorkPlan::new(lo, hi, n, threads, opts.schedule);
    let pooled = if threads == 1 {
        span_worker(0, &plan, &cell_of, &body, &fabric);
        false
    } else {
        pool::execute(threads, opts.pool, &|t| {
            span_worker(t, &plan, &cell_of, &body, &fabric)
        })
    };
    match fabric.into_failure() {
        Some(err) => Err(err),
        None => Ok(RunStats {
            cells: n as u64,
            workers: threads,
            pooled,
            order_check_disarmed: false,
            pipeline_batch: None,
            dyn_grain: opts.schedule.resolved_grain(),
        }),
    }
}

/// Executes every span the plan hands worker `t`, catching unwinds at
/// the worker boundary and recording which cell was live when the panic
/// unwound.
fn span_worker<C, F>(worker: usize, plan: &WorkPlan, cell_of: &C, body: &F, fabric: &Fabric)
where
    C: Fn(i64) -> (i64, i64) + Sync,
    F: Fn(i64) + Sync,
{
    let current: Cell<Option<(i64, i64)>> = Cell::new(None);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut spans = plan.spans(worker);
        while let Some((a, b)) = spans.next() {
            for i in a..b {
                let (ci, cj) = cell_of(i);
                current.set(Some((ci, cj)));
                crate::fault_inject::before_cell(ci, cj);
                body(i);
            }
        }
    }));
    if let Err(payload) = outcome {
        fabric.poison(
            RuntimeError::WorkerPanic {
                worker,
                cell: current.get(),
                payload: payload_text(payload.as_ref()),
            },
            &[],
        );
    }
}

/// Runs `body(span_lo, span_hi)` for every span of a partition of
/// `lo..hi`: once per worker under the static schedule, once per claimed
/// chunk under a dynamic one. Empty ranges run nothing. Worker panics
/// are contained like [`par_for`]'s, but reported with `cell: None` —
/// the span body is opaque, so the failing index is unknown.
pub fn par_for_chunked<F>(
    lo: i64,
    hi: i64,
    threads: usize,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    par_for_chunked_opts(lo, hi, threads, RuntimeOptions::default(), body)
}

/// [`par_for_chunked`] with explicit [`RuntimeOptions`].
pub fn par_for_chunked_opts<F>(
    lo: i64,
    hi: i64,
    threads: usize,
    opts: RuntimeOptions,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    let n = match hi.checked_sub(lo) {
        Some(n) => n,
        None => {
            return Err(RuntimeError::Misuse(format!(
                "index range [{lo}, {hi}) overflows i64 arithmetic"
            )))
        }
    };
    if n <= 0 {
        return Ok(RunStats::default());
    }
    let cap = u64::try_from(n)
        .unwrap_or(u64::MAX)
        .min(usize::MAX as u64) as usize;
    let threads = threads.clamp(1, cap);
    let fabric = Fabric::new(false, threads);
    let plan = WorkPlan::new(lo, hi, n, threads, opts.schedule);
    let chunk_worker = |worker: usize| {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            let mut spans = plan.spans(worker);
            while let Some((a, b)) = spans.next() {
                body(a, b);
            }
        })) {
            fabric.poison(
                RuntimeError::WorkerPanic {
                    worker,
                    cell: None,
                    payload: payload_text(payload.as_ref()),
                },
                &[],
            );
        }
    };
    let pooled = if threads == 1 {
        chunk_worker(0);
        false
    } else {
        pool::execute(threads, opts.pool, &chunk_worker)
    };
    match fabric.into_failure() {
        Some(err) => Err(err),
        None => Ok(RunStats {
            cells: n as u64,
            workers: threads,
            pooled,
            order_check_disarmed: false,
            pipeline_batch: None,
            dyn_grain: opts.schedule.resolved_grain(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PoolPolicy;
    use crate::schedule::Schedule;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let stats = par_for(0, 100, 7, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.cells, 100);
        assert_eq!(stats.workers, 7);
    }

    #[test]
    fn dynamic_schedule_covers_every_index_exactly_once() {
        let opts = RuntimeOptions {
            schedule: Schedule::Dynamic { grain: 3 },
            ..RuntimeOptions::default()
        };
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let stats = par_for_opts(0, 100, 7, opts, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.dyn_grain, Some(3), "requested grain must round-trip");
        assert_eq!(stats.pipeline_batch, None, "doalls publish nothing");
    }

    #[test]
    fn requested_knobs_round_trip_into_stats() {
        // A config naming `dyn_grain` must see exactly that grain in the
        // stats (clamped to the executable floor of 1), and the static
        // default must report no grain at all.
        let dynamic = RuntimeOptions {
            schedule: Schedule::Dynamic { grain: -5 },
            ..RuntimeOptions::default()
        };
        let stats = par_for_opts(0, 32, 4, dynamic, |_| {}).expect("clean run");
        assert_eq!(stats.dyn_grain, Some(1), "grain clamps to 1, not dropped");
        let stats = par_for(0, 32, 4, |_| {}).expect("clean run");
        assert_eq!(stats.dyn_grain, None);
        // The chunked entry point threads the same schedule through.
        let chunked = RuntimeOptions {
            schedule: Schedule::Dynamic { grain: 7 },
            ..RuntimeOptions::default()
        };
        let stats = par_for_chunked_opts(0, 64, 4, chunked, |_, _| {}).expect("clean run");
        assert_eq!(stats.dyn_grain, Some(7));
    }

    #[test]
    fn pooled_and_spawned_paths_agree() {
        for policy in [PoolPolicy::Persistent, PoolPolicy::SpawnPerCall] {
            let opts = RuntimeOptions {
                pool: policy,
                ..RuntimeOptions::default()
            };
            let sum = AtomicI64::new(0);
            let stats = par_for_opts(1, 101, 4, opts, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            })
            .expect("clean run");
            assert_eq!(sum.load(Ordering::Relaxed), 5050);
            assert_eq!(stats.pooled, policy == PoolPolicy::Persistent);
        }
    }

    #[test]
    fn empty_and_negative_ranges_are_noops() {
        let count = AtomicUsize::new(0);
        par_for(5, 5, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("empty");
        par_for(5, 2, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("negative");
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn more_threads_than_iterations() {
        let count = AtomicUsize::new(0);
        let stats = par_for(0, 3, 64, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run");
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(stats.workers, 3, "threads clamp to iteration count");
    }

    #[test]
    fn chunked_partitions_are_disjoint_and_complete() {
        let total = AtomicI64::new(0);
        par_for_chunked(10, 1000, 8, |a, b| {
            assert!(a < b);
            total.fetch_add(b - a, Ordering::Relaxed);
        })
        .expect("clean run");
        assert_eq!(total.load(Ordering::Relaxed), 990);
    }

    #[test]
    fn single_thread_gets_whole_range() {
        let seen = AtomicI64::new(-1);
        par_for_chunked(0, 4, 1, |a, b| {
            assert_eq!((a, b), (0, 4));
            seen.store(b - a, Ordering::Relaxed);
        })
        .expect("clean run");
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_contained_with_cell() {
        let err = par_for(0, 100, 4, |i| {
            if i == 42 {
                panic!("doall boom");
            }
        })
        .expect_err("panic must surface");
        match err {
            RuntimeError::WorkerPanic {
                cell, ref payload, ..
            } => {
                assert_eq!(cell, Some((42, 0)));
                assert!(payload.contains("doall boom"), "{payload}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn chunked_panic_reports_no_cell() {
        let err = par_for_chunked(0, 16, 4, |a, _| {
            if a == 0 {
                panic!("chunk boom");
            }
        })
        .expect_err("panic must surface");
        match err {
            RuntimeError::WorkerPanic { cell, .. } => {
                assert_eq!(cell, None);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn overflowing_range_is_misuse() {
        let err = par_for(i64::MIN, i64::MAX, 4, |_| {}).expect_err("overflow");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
    }

    #[test]
    fn sequential_panic_contained_too() {
        let err = par_for(0, 10, 1, |i| {
            if i == 3 {
                panic!("seq boom");
            }
        })
        .expect_err("panic must surface");
        assert!(
            matches!(
                err,
                RuntimeError::WorkerPanic {
                    worker: 0,
                    cell: Some((3, 0)),
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
