//! Static-schedule doall execution.
//!
//! Worker panics are contained at the worker boundary: the failing
//! worker records a [`RuntimeError::WorkerPanic`] (first failure wins)
//! and the primitive returns it after every worker has joined. Doall
//! workers never wait on each other, so no poison broadcast is needed —
//! the surviving workers simply finish their bounded spans.

use crate::error::{RunStats, RuntimeError};
use crate::sync::{payload_text, Fabric};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `body(i)` for every `i` in `lo..hi` across `threads` workers with
/// a static block distribution (the `schedule(static)` OpenMP analogue).
///
/// `body` only receives disjoint indices, so it may mutate shared state
/// partitioned by `i`; Rust-level sharing is the caller's problem — the
/// closure must be `Sync` (it is called concurrently from many threads).
pub fn par_for<F>(lo: i64, hi: i64, threads: usize, body: F) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64) + Sync,
{
    doall_cells(lo, hi, threads, |i| (i, 0), body)
}

/// [`par_for`] generalized with a mapping from the flat index to the
/// logical grid cell reported in diagnostics (and targeted by fault
/// injection) — the wavefront executor runs diagonals through this.
pub(crate) fn doall_cells<C, F>(
    lo: i64,
    hi: i64,
    threads: usize,
    cell_of: C,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    C: Fn(i64) -> (i64, i64) + Sync,
    F: Fn(i64) + Sync,
{
    let n = match hi.checked_sub(lo) {
        Some(n) => n,
        None => {
            return Err(RuntimeError::Misuse(format!(
                "index range [{lo}, {hi}) overflows i64 arithmetic"
            )))
        }
    };
    if n <= 0 {
        return Ok(RunStats::default());
    }
    let cap = u64::try_from(n)
        .unwrap_or(u64::MAX)
        .min(usize::MAX as u64) as usize;
    let threads = threads.clamp(1, cap);
    let fabric = Fabric::new(false);
    if threads == 1 {
        span_worker(0, lo, hi, &cell_of, &body, &fabric);
    } else {
        // ceil(n / threads) without the `n + threads - 1` overflow.
        let chunk = n / threads as i64 + i64::from(n % threads as i64 != 0);
        std::thread::scope(|s| {
            for t in 0..threads {
                // Saturation only affects spans past `hi`, which are
                // empty and skipped.
                let a = lo.saturating_add((t as i64).saturating_mul(chunk));
                let b = a.saturating_add(chunk).min(hi);
                if a >= b {
                    continue;
                }
                let (fabric, cell_of, body) = (&fabric, &cell_of, &body);
                s.spawn(move || span_worker(t, a, b, cell_of, body, fabric));
            }
        });
    }
    match fabric.into_failure() {
        Some(err) => Err(err),
        None => Ok(RunStats {
            cells: n as u64,
            workers: threads,
        }),
    }
}

/// Executes one worker's span `[a, b)`, catching unwinds at the worker
/// boundary and recording which cell was live when the panic unwound.
fn span_worker<C, F>(worker: usize, a: i64, b: i64, cell_of: &C, body: &F, fabric: &Fabric)
where
    C: Fn(i64) -> (i64, i64) + Sync,
    F: Fn(i64) + Sync,
{
    let current: Cell<Option<(i64, i64)>> = Cell::new(None);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for i in a..b {
            let (ci, cj) = cell_of(i);
            current.set(Some((ci, cj)));
            crate::fault_inject::before_cell(ci, cj);
            body(i);
        }
    }));
    if let Err(payload) = outcome {
        fabric.poison(
            RuntimeError::WorkerPanic {
                worker,
                cell: current.get(),
                payload: payload_text(payload.as_ref()),
            },
            &[],
        );
    }
}

/// Runs `body(chunk_lo, chunk_hi)` once per worker over a static block
/// partition of `lo..hi`. Empty ranges spawn nothing. Worker panics are
/// contained like [`par_for`]'s, but reported with `cell: None` — the
/// chunk body is opaque, so the failing index is unknown.
pub fn par_for_chunked<F>(
    lo: i64,
    hi: i64,
    threads: usize,
    body: F,
) -> Result<RunStats, RuntimeError>
where
    F: Fn(i64, i64) + Sync,
{
    let n = match hi.checked_sub(lo) {
        Some(n) => n,
        None => {
            return Err(RuntimeError::Misuse(format!(
                "index range [{lo}, {hi}) overflows i64 arithmetic"
            )))
        }
    };
    if n <= 0 {
        return Ok(RunStats::default());
    }
    let cap = u64::try_from(n)
        .unwrap_or(u64::MAX)
        .min(usize::MAX as u64) as usize;
    let threads = threads.clamp(1, cap);
    let fabric = Fabric::new(false);
    let chunk_worker = |worker: usize, a: i64, b: i64, fabric: &Fabric| {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(a, b))) {
            fabric.poison(
                RuntimeError::WorkerPanic {
                    worker,
                    cell: None,
                    payload: payload_text(payload.as_ref()),
                },
                &[],
            );
        }
    };
    if threads == 1 {
        chunk_worker(0, lo, hi, &fabric);
    } else {
        let chunk = n / threads as i64 + i64::from(n % threads as i64 != 0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let a = lo.saturating_add((t as i64).saturating_mul(chunk));
                let b = a.saturating_add(chunk).min(hi);
                if a >= b {
                    continue;
                }
                let (fabric, chunk_worker) = (&fabric, &chunk_worker);
                s.spawn(move || chunk_worker(t, a, b, fabric));
            }
        });
    }
    match fabric.into_failure() {
        Some(err) => Err(err),
        None => Ok(RunStats {
            cells: n as u64,
            workers: threads,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let stats = par_for(0, 100, 7, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.cells, 100);
        assert_eq!(stats.workers, 7);
    }

    #[test]
    fn empty_and_negative_ranges_are_noops() {
        let count = AtomicUsize::new(0);
        par_for(5, 5, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("empty");
        par_for(5, 2, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("negative");
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn more_threads_than_iterations() {
        let count = AtomicUsize::new(0);
        let stats = par_for(0, 3, 64, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run");
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(stats.workers, 3, "threads clamp to iteration count");
    }

    #[test]
    fn chunked_partitions_are_disjoint_and_complete() {
        let total = AtomicI64::new(0);
        par_for_chunked(10, 1000, 8, |a, b| {
            assert!(a < b);
            total.fetch_add(b - a, Ordering::Relaxed);
        })
        .expect("clean run");
        assert_eq!(total.load(Ordering::Relaxed), 990);
    }

    #[test]
    fn single_thread_gets_whole_range() {
        let seen = AtomicI64::new(-1);
        par_for_chunked(0, 4, 1, |a, b| {
            assert_eq!((a, b), (0, 4));
            seen.store(b - a, Ordering::Relaxed);
        })
        .expect("clean run");
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_contained_with_cell() {
        let err = par_for(0, 100, 4, |i| {
            if i == 42 {
                panic!("doall boom");
            }
        })
        .expect_err("panic must surface");
        match err {
            RuntimeError::WorkerPanic {
                cell, ref payload, ..
            } => {
                assert_eq!(cell, Some((42, 0)));
                assert!(payload.contains("doall boom"), "{payload}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn chunked_panic_reports_no_cell() {
        let err = par_for_chunked(0, 16, 4, |a, _| {
            if a == 0 {
                panic!("chunk boom");
            }
        })
        .expect_err("panic must surface");
        match err {
            RuntimeError::WorkerPanic { worker, cell, .. } => {
                assert_eq!(worker, 0);
                assert_eq!(cell, None);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn overflowing_range_is_misuse() {
        let err = par_for(i64::MIN, i64::MAX, 4, |_| {}).expect_err("overflow");
        assert!(matches!(err, RuntimeError::Misuse(_)), "{err:?}");
    }

    #[test]
    fn sequential_panic_contained_too() {
        let err = par_for(0, 10, 1, |i| {
            if i == 3 {
                panic!("seq boom");
            }
        })
        .expect_err("panic must surface");
        assert!(
            matches!(
                err,
                RuntimeError::WorkerPanic {
                    worker: 0,
                    cell: Some((3, 0)),
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
