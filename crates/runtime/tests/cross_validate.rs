//! Cross-validation of the static certifier against the dynamic order
//! checker (`--features fault-inject`, which implies `order-check`).
//!
//! The two tools claim the same contract from opposite ends: the
//! certifier proves every carried dependence of a `Pipeline` loop lies
//! inside the await cone `{(-1, 0), (0, -1)}`, and the order checker
//! asserts at runtime that each executed cell observed exactly those
//! sources. This harness checks both directions on real compiler
//! output:
//!
//! * programs the certifier accepts run clean through `pipeline_2d` —
//!   with adversarial seeded delays and yields injected — and the
//!   checker stays armed (`RunStats::order_check_disarmed == false`);
//! * the mislabeling the certifier rejects (`Pipeline` relabeled
//!   `Doall`) really races: executing the same grid as an unsynchronized
//!   doall trips the order checker.

#![cfg(all(feature = "order-check", feature = "fault-inject"))]

use polymix_ast::tree::Par;
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_polybench::kernel_by_name;
use polymix_runtime::fault_inject::{install, FaultPlan};
use polymix_runtime::order_check::OrderChecker;
use polymix_runtime::{par_for, pipeline_2d, GridSweep, RuntimeError};
use polymix_verify::{verify_program, ViolationKind};
use std::sync::Mutex;

fn grid(ni: i64, nj: i64) -> GridSweep {
    GridSweep {
        i_lo: 0,
        i_hi: ni,
        j_lo: 0,
        j_hi: nj,
    }
}

/// Order-sensitive work: cell (i, j) reads (i-1, j) and (i, j-1), so
/// any cone violation corrupts the table as well as tripping the
/// checker.
fn prefix_reference(ni: usize, nj: usize) -> Vec<f64> {
    let mut table = vec![0.0f64; ni * nj];
    for i in 0..ni {
        for j in 0..nj {
            let up = if i > 0 { table[(i - 1) * nj + j] } else { 1.0 };
            let left = if j > 0 { table[i * nj + j - 1] } else { 0.0 };
            table[i * nj + j] = up + left;
        }
    }
    table
}

fn certified_pipeline_program(name: &str) -> polymix_ast::tree::Program {
    let k = kernel_by_name(name).expect("kernel");
    let scop = (k.build)();
    let opts = PolyAstOptions {
        tile: 4,
        time_tile: 2,
        ..Default::default()
    };
    let prog = optimize_poly_ast(&scop, &opts).expect("optimize");
    let cert = verify_program(&prog);
    assert!(
        cert.is_certified(),
        "{name}: compiler output must certify before the dynamic half runs"
    );
    let mut has_pipeline = false;
    let mut body = prog.body.clone();
    body.visit_loops_mut(&mut |l| has_pipeline |= l.par == Par::Pipeline);
    assert!(has_pipeline, "{name}: expected a pipeline loop");
    prog
}

/// Certified pipeline programs → the executor they target stays
/// dependence-clean even under seeded delays and adversarial yields.
#[test]
fn certified_pipelines_run_clean_under_fault_injection() {
    for name in ["seidel-2d", "jacobi-2d-imper", "fdtd-2d"] {
        let _prog = certified_pipeline_program(name);
        let (ni, nj) = (24usize, 64usize);
        let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
        let _guard = install(FaultPlan {
            seed: 0xC0FFEE ^ name.len() as u64,
            delay_us_max: 40,
            yield_pct: 25,
            ..Default::default()
        });
        let stats = pipeline_2d(grid(ni as i64, nj as i64), 4, |i, j| {
            let (i, j) = (i as usize, j as usize);
            let up = if i > 0 {
                *table[(i - 1) * nj + j].lock().unwrap()
            } else {
                1.0
            };
            let left = if j > 0 {
                *table[i * nj + j - 1].lock().unwrap()
            } else {
                0.0
            };
            *table[i * nj + j].lock().unwrap() = up + left;
        })
        .unwrap_or_else(|e| panic!("{name}: certified pipeline failed dynamically: {e}"));
        assert!(
            !stats.order_check_disarmed,
            "{name}: a clean run with a disarmed checker certifies nothing"
        );
        let expected = prefix_reference(ni, nj);
        for (k, cell) in table.iter().enumerate() {
            assert_eq!(*cell.lock().unwrap(), expected[k], "{name}: cell {k}");
        }
    }
}

/// The mislabeling the certifier rejects statically also fails
/// dynamically: a doall over the same grid skips the await cone, and
/// the order checker records the missed sources.
#[test]
fn statically_rejected_doall_races_dynamically() {
    // Static half: relabeling seidel-2d's pipeline loop as doall is
    // rejected with the specific kind.
    let mut prog = certified_pipeline_program("seidel-2d");
    let mut flipped = false;
    prog.body.visit_loops_mut(&mut |l| {
        if !flipped && l.par == Par::Pipeline {
            l.par = Par::Doall;
            flipped = true;
        }
    });
    assert!(flipped);
    let cert = verify_program(&prog);
    assert!(
        cert.violations
            .iter()
            .any(|v| v.kind == ViolationKind::DoallCarriesDep),
        "expected DoallCarriesDep, got: {:?}",
        cert.violations
    );

    // Dynamic half: run the grid as the bogus annotation instructs — a
    // flat doall with no awaits — while shadowing it with the order
    // checker. Thread 0 is stalled at cell (0, 0), so the other chunks
    // start with every up-neighbor still pending.
    let (ni, nj) = (8i64, 32i64);
    let checker = OrderChecker::try_new(grid(ni, nj)).expect("shadow fits");
    let _guard = install(FaultPlan {
        stall_ms_at: Some(((0, 0), 100)),
        ..Default::default()
    });
    let checker_ref = &checker;
    par_for(0, ni * nj, 4, move |flat| {
        let (i, j) = (flat / nj, flat % nj);
        checker_ref.check_sources(i, j);
        checker_ref.mark_done(i, j);
    })
    .expect("the doall itself runs; only the order is wrong");
    let violations = checker.violations();
    assert!(
        !violations.is_empty(),
        "unsynchronized doall over a dependent grid must trip the order checker"
    );
    // Sanity: the violations are real cone misses, reported as
    // (cell, missed source) with the source lexicographically earlier.
    for (i, j, si, sj) in violations {
        assert!((si, sj) < (i, j), "({si},{sj}) is not a source of ({i},{j})");
    }
}

/// The satellite contract for oversized grids: the checker stands down
/// and the run reports it, instead of silently "passing".
#[test]
fn oversized_grid_reports_disarmed_checker() {
    // 2^13 x 2^12 = 2^25 cells: one past the 2^24 shadow budget.
    let big = grid(1 << 13, 1 << 12);
    assert!(OrderChecker::try_new(big).is_none());
    let stats = pipeline_2d(big, 2, |_i, _j| {}).expect("run");
    assert!(
        stats.order_check_disarmed,
        "an unshadowed order-check run must say so in RunStats"
    );
}

/// Watchdogged fault-injection runs that do violate the cone surface as
/// errors, not hangs: a panic mid-grid poisons the run and the
/// primitive returns the contained failure.
#[test]
fn injected_panic_is_contained_not_hung() {
    let _prog = certified_pipeline_program("seidel-2d");
    let _guard = install(FaultPlan {
        panic_at: Some((3, 7)),
        ..Default::default()
    });
    let err = pipeline_2d(grid(8, 16), 4, |_i, _j| {}).expect_err("panic must surface");
    match err {
        RuntimeError::WorkerPanic { cell, .. } => assert_eq!(cell, Some((3, 7))),
        other => panic!("unexpected failure mode: {other}"),
    }
}
