//! Fault-tolerance stress suite for the parallel runtime: oversubscribed
//! schedules, worker panics at adversarial positions, watchdog stall
//! detection, and (with `--features fault-inject`) the seeded
//! fault-injection matrix plus degraded sequential re-runs.
//!
//! Every test asserts *prompt* error return — a contained failure must
//! surface as `Err(..)`, never as a hang.

use polymix_runtime::{
    par_for, pipeline_2d, pipeline_2d_opts, reduce_array, wavefront_2d, GridSweep, RunStats,
    RuntimeError, RuntimeOptions,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn grid(ni: i64, nj: i64) -> GridSweep {
    GridSweep {
        i_lo: 0,
        i_hi: ni,
        j_lo: 0,
        j_hi: nj,
    }
}

/// Runs `f`, asserting it returns within `limit` (hang detector).
fn within<T>(limit: Duration, f: impl FnOnce() -> T) -> T {
    let started = Instant::now();
    let out = f();
    assert!(
        started.elapsed() < limit,
        "primitive took {:?} (limit {limit:?}) — stalled instead of failing fast",
        started.elapsed()
    );
    out
}

/// The order-sensitive reference computation: table[i][j] =
/// table[i-1][j] + table[i][j-1], 1.0 fed in at the top row.
fn prefix_reference(ni: usize, nj: usize) -> Vec<f64> {
    let mut table = vec![0.0f64; ni * nj];
    for i in 0..ni {
        for j in 0..nj {
            let up = if i > 0 { table[(i - 1) * nj + j] } else { 1.0 };
            let left = if j > 0 { table[i * nj + j - 1] } else { 0.0 };
            table[i * nj + j] = up + left;
        }
    }
    table
}

fn prefix_body(table: &[Mutex<f64>], nj: usize) -> impl Fn(i64, i64) + Sync + '_ {
    move |i: i64, j: i64| {
        let (i, j) = (i as usize, j as usize);
        let up = if i > 0 {
            *table[(i - 1) * nj + j].lock().unwrap()
        } else {
            1.0
        };
        let left = if j > 0 {
            *table[i * nj + j - 1].lock().unwrap()
        } else {
            0.0
        };
        *table[i * nj + j].lock().unwrap() = up + left;
    }
}

#[test]
fn oversubscribed_pipeline_is_correct() {
    // Workers far beyond core count: the spin → yield → park backoff
    // must still make global progress, and results must be exact.
    let (ni, nj) = (48usize, 64usize);
    let reference = prefix_reference(ni, nj);
    for threads in [32, 64] {
        let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
        within(Duration::from_secs(60), || {
            pipeline_2d_opts(
                grid(ni as i64, nj as i64),
                threads,
                RuntimeOptions::watched(),
                prefix_body(&table, nj),
            )
            .expect("oversubscribed clean run")
        });
        let got: Vec<f64> = table.into_iter().map(|m| m.into_inner().unwrap()).collect();
        assert_eq!(got, reference, "threads={threads}");
    }
}

#[test]
fn oversubscribed_doall_and_reduction_are_correct() {
    let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
    within(Duration::from_secs(60), || {
        par_for(0, 1000, 128, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run")
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));

    let mut acc = vec![0.0f64; 4];
    within(Duration::from_secs(60), || {
        reduce_array(&mut acc, 0, 4000, 96, |i, local| {
            local[(i % 4) as usize] += 1.0;
        })
        .expect("clean run")
    });
    assert_eq!(acc, vec![1000.0; 4]);
}

/// Panic positions exercised for every primitive: first cell, a middle
/// cell, last cell.
fn positions(ni: i64, nj: i64) -> [(i64, i64); 3] {
    [(0, 0), (ni / 2, nj / 2), (ni - 1, nj - 1)]
}

#[test]
fn pipeline_panic_matrix_returns_promptly() {
    let (ni, nj) = (16i64, 16i64);
    for (pi, pj) in positions(ni, nj) {
        for threads in [2, 8] {
            let err = within(Duration::from_secs(60), || {
                pipeline_2d_opts(
                    grid(ni, nj),
                    threads,
                    RuntimeOptions::watched(),
                    |i, j| {
                        if (i, j) == (pi, pj) {
                            panic!("boom at ({i}, {j})");
                        }
                    },
                )
                .expect_err("panic must surface")
            });
            match err {
                RuntimeError::WorkerPanic { cell, .. } => {
                    assert_eq!(cell, Some((pi, pj)), "threads={threads}")
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }
}

#[test]
fn wavefront_panic_matrix_returns_promptly() {
    let (ni, nj) = (12i64, 12i64);
    for (pi, pj) in positions(ni, nj) {
        let err = within(Duration::from_secs(60), || {
            wavefront_2d(grid(ni, nj), 6, |i, j| {
                if (i, j) == (pi, pj) {
                    panic!("boom at ({i}, {j})");
                }
            })
            .expect_err("panic must surface")
        });
        assert!(
            matches!(err, RuntimeError::WorkerPanic { cell, .. } if cell == Some((pi, pj))),
            "{err:?}"
        );
    }
}

#[test]
fn doall_and_reduction_panic_matrix() {
    for p in [0i64, 500, 999] {
        let err = within(Duration::from_secs(60), || {
            par_for(0, 1000, 8, |i| {
                if i == p {
                    panic!("boom at {i}");
                }
            })
            .expect_err("panic must surface")
        });
        assert!(
            matches!(err, RuntimeError::WorkerPanic { cell, .. } if cell == Some((p, 0))),
            "{err:?}"
        );
        let mut acc = vec![0.0];
        let err = within(Duration::from_secs(60), || {
            reduce_array(&mut acc, 0, 1000, 8, |i, local| {
                if i == p {
                    panic!("boom at {i}");
                }
                local[0] += 1.0;
            })
            .expect_err("panic must surface")
        });
        assert!(matches!(err, RuntimeError::WorkerPanic { .. }), "{err:?}");
    }
}

#[test]
fn degraded_sequential_rerun_matches_reference() {
    // The bench-layer degradation contract in miniature: a parallel run
    // fails, the caller re-runs sequentially from scratch and gets the
    // exact reference answer.
    let (ni, nj) = (20usize, 24usize);
    let reference = prefix_reference(ni, nj);
    let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
    let parallel = pipeline_2d(grid(ni as i64, nj as i64), 8, |i, j| {
        if (i, j) == (10, 11) {
            panic!("mid-run failure");
        }
        prefix_body(&table, nj)(i, j);
    });
    assert!(parallel.is_err());
    // Degrade: fresh state, threads = 1, no failing body.
    let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
    let stats: RunStats = pipeline_2d(grid(ni as i64, nj as i64), 1, prefix_body(&table, nj))
        .expect("sequential re-run");
    assert_eq!(stats.workers, 1);
    let got: Vec<f64> = table.into_iter().map(|m| m.into_inner().unwrap()).collect();
    assert_eq!(got, reference);
}

#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;
    use polymix_runtime::fault_inject::{install, FaultPlan};

    #[test]
    fn seeded_panic_matrix_across_primitives() {
        let (ni, nj) = (10i64, 10i64);
        for (pi, pj) in positions(ni, nj) {
            // pipeline_2d
            {
                let _g = install(FaultPlan {
                    seed: 42,
                    panic_at: Some((pi, pj)),
                    ..FaultPlan::default()
                });
                let err = within(Duration::from_secs(60), || {
                    pipeline_2d_opts(grid(ni, nj), 4, RuntimeOptions::watched(), |_, _| {})
                        .expect_err("injected panic must surface")
                });
                match &err {
                    RuntimeError::WorkerPanic { cell, payload, .. } => {
                        assert_eq!(*cell, Some((pi, pj)));
                        assert!(payload.contains("fault-inject"), "{payload}");
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            // wavefront_2d
            {
                let _g = install(FaultPlan {
                    seed: 43,
                    panic_at: Some((pi, pj)),
                    ..FaultPlan::default()
                });
                let err = within(Duration::from_secs(60), || {
                    wavefront_2d(grid(ni, nj), 4, |_, _| {})
                        .expect_err("injected panic must surface")
                });
                assert!(
                    matches!(&err, RuntimeError::WorkerPanic { cell, .. } if *cell == Some((pi, pj))),
                    "{err:?}"
                );
            }
            // par_for runs cells (i, 0): inject only on the diagonal's
            // first column positions.
            if pj == 0 || pi == pj {
                let target = (pi, 0);
                let _g = install(FaultPlan {
                    seed: 44,
                    panic_at: Some(target),
                    ..FaultPlan::default()
                });
                let err = within(Duration::from_secs(60), || {
                    par_for(0, ni, 4, |_| {}).expect_err("injected panic must surface")
                });
                assert!(
                    matches!(&err, RuntimeError::WorkerPanic { cell, .. } if *cell == Some(target)),
                    "{err:?}"
                );
                // reduction shares the (i, 0) keying.
                let _g2 = {
                    drop(_g);
                    install(FaultPlan {
                        seed: 45,
                        panic_at: Some(target),
                        ..FaultPlan::default()
                    })
                };
                let mut acc = vec![0.0];
                let err = within(Duration::from_secs(60), || {
                    reduce_array(&mut acc, 0, ni, 4, |_, _| {})
                        .expect_err("injected panic must surface")
                });
                assert!(matches!(&err, RuntimeError::WorkerPanic { .. }), "{err:?}");
            }
        }
    }

    #[test]
    fn injected_stall_trips_watchdog() {
        // Worker 0 sleeps 400 ms before its first cell; a 50 ms
        // watchdog must report Stalled long before the sleep ends
        // naturally — and the stalled frontier must name worker 0's
        // block.
        let _g = install(FaultPlan {
            seed: 7,
            stall_ms_at: Some(((0, 0), 400)),
            ..FaultPlan::default()
        });
        let opts = RuntimeOptions {
            watchdog: Some(Duration::from_millis(50)),
            ..RuntimeOptions::default()
        };
        let err = within(Duration::from_secs(30), || {
            pipeline_2d_opts(grid(32, 32), 4, opts, |_, _| {})
                .expect_err("stall must be detected")
        });
        match err {
            RuntimeError::Stalled { stalled_cells } => {
                assert!(
                    stalled_cells.contains(&(0, 0)),
                    "frontier {stalled_cells:?} misses the wedged cell"
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn adversarial_schedule_preserves_correctness() {
        // Seeded delays + yield storms perturb the interleaving; the
        // dependence protocol (checked by order-check, which
        // fault-inject implies) must still produce exact results.
        let (ni, nj) = (24usize, 24usize);
        let reference = prefix_reference(ni, nj);
        for seed in [1u64, 2, 3] {
            let _g = install(FaultPlan {
                seed,
                delay_us_max: 50,
                yield_pct: 25,
                ..FaultPlan::default()
            });
            let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
            within(Duration::from_secs(120), || {
                pipeline_2d_opts(
                    grid(ni as i64, nj as i64),
                    6,
                    RuntimeOptions::watched(),
                    prefix_body(&table, nj),
                )
                .expect("adversarial but legal schedule")
            });
            let got: Vec<f64> = table.into_iter().map(|m| m.into_inner().unwrap()).collect();
            assert_eq!(got, reference, "seed={seed}");
        }
    }

    #[test]
    fn injected_failure_then_degraded_rerun() {
        // Acceptance scenario: injected panic in a worker, then the
        // sequential degraded re-run (plan cleared) matches reference.
        let (ni, nj) = (16usize, 16usize);
        let reference = prefix_reference(ni, nj);
        {
            let _g = install(FaultPlan {
                seed: 99,
                panic_at: Some((8, 8)),
                ..FaultPlan::default()
            });
            let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
            let err = within(Duration::from_secs(60), || {
                pipeline_2d_opts(
                    grid(ni as i64, nj as i64),
                    4,
                    RuntimeOptions::watched(),
                    prefix_body(&table, nj),
                )
                .expect_err("injected panic must surface")
            });
            assert!(matches!(err, RuntimeError::WorkerPanic { .. }), "{err:?}");
        } // guard dropped: plan cleared, degrade cleanly
        let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
        pipeline_2d(grid(ni as i64, nj as i64), 1, prefix_body(&table, nj))
            .expect("degraded sequential re-run");
        let got: Vec<f64> = table.into_iter().map(|m| m.into_inner().unwrap()).collect();
        assert_eq!(got, reference);
    }
}
