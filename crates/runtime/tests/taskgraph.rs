//! Adversarial integration suite for the tile task-graph runtime:
//! seeded fault injection through the same hooks as every other
//! primitive, cross-validation against the dynamic order checker, and
//! cross-validation against `polymix-verify`'s counter-graph coverage
//! certificate (the static and dynamic tools audit the same edge set
//! from opposite ends).

use polymix_runtime::{
    taskgraph_2d, taskgraph_2d_opts, GridSweep, RuntimeError, RuntimeOptions, TileGraph,
};
use std::collections::HashSet;
use std::sync::Mutex;

fn grid(ni: i64, nj: i64) -> GridSweep {
    GridSweep {
        i_lo: 0,
        i_hi: ni,
        j_lo: 0,
        j_hi: nj,
    }
}

/// The runtime graph's edge set, re-certified by the *independent*
/// static pass in polymix-verify: build the counter graph the runtime
/// would execute, hand its edges to the certifier, and the re-derived
/// inter-tile dependence relation must be covered.
#[test]
fn runtime_graph_certifies_clean_in_polymix_verify() {
    for deps in [
        vec![(1i64, 0i64), (0, 1)],
        vec![(1, 0), (0, 1), (1, 1)],
        vec![(1, 0), (0, 1), (1, -1)],
        vec![(2, 0), (0, 1), (1, 0)],
    ] {
        let graph = TileGraph::from_grid_deps(grid(7, 6), &deps).expect("build");
        let edges = graph.edges();
        let cert = polymix_verify::certify_tile_graph("runtime-graph", 7, 6, &deps, &edges);
        assert!(
            cert.is_certified(),
            "deps {deps:?}: {:?}",
            cert.violations
        );
    }
}

#[test]
fn diagonal_graph_certifies_any_forward_cone() {
    // The full-cone wavefront graph must cover every vector that moves
    // strictly forward across diagonals — including ones it was never
    // told about. This is the subsumption claim, proved statically.
    let graph = TileGraph::diagonal(grid(6, 6)).expect("build");
    let edges = graph.edges();
    for deps in [vec![(1i64, 0i64), (0, 1)], vec![(1, 1)], vec![(2, 1), (1, 2)]] {
        let cert = polymix_verify::certify_tile_graph("diagonal", 6, 6, &deps, &edges);
        assert!(cert.is_certified(), "deps {deps:?}: {:?}", cert.violations);
    }
}

#[test]
fn mutated_graph_dropping_an_edge_is_rejected() {
    // Drop one interior edge from the runtime's own graph: the
    // certifier must notice the uncovered pair. This is the tamper
    // check — a code-motion bug that loses a counter edge cannot pass
    // certification.
    let deps = [(1i64, 0i64), (0, 1)];
    let graph = TileGraph::from_grid_deps(grid(5, 5), &deps).expect("build");
    let mut edges = graph.edges();
    let victim = edges
        .iter()
        .position(|&(s, d)| s == 12 && d == 13) // (2,2) -> (2,3), interior
        .expect("interior edge present");
    edges.swap_remove(victim);
    let cert = polymix_verify::certify_tile_graph("tampered", 5, 5, &deps, &edges);
    assert!(!cert.is_certified(), "dropped edge must fail certification");
    assert!(cert
        .violations
        .iter()
        .any(|v| v.kind == polymix_verify::ViolationKind::TaskGraphUncovered));
}

#[cfg(feature = "order-check")]
#[test]
fn order_checker_cross_validates_certified_taskgraph_run() {
    // Static certificate + dynamic shadow on the same run: the counter
    // graph certifies, and the armed order checker observes every cell
    // seeing its (i-1, j)/(i, j-1) sources first.
    let deps = [(1i64, 0i64), (0, 1)];
    let graph = TileGraph::from_grid_deps(grid(12, 9), &deps).expect("build");
    let cert = polymix_verify::certify_tile_graph("cross", 12, 9, &deps, &graph.edges());
    assert!(cert.is_certified(), "{:?}", cert.violations);
    let stats = graph
        .run(4, RuntimeOptions::default(), |_, _, _| {})
        .expect("certified graph runs clean");
    assert!(
        !stats.order_check_disarmed,
        "standard-cone graphs keep the dynamic checker armed"
    );
    // A *widened* cone that still contains the standard vectors keeps
    // the checker armed: the (i-1, j)/(i, j-1) sources remain ordered,
    // and extra edges cannot create phantom violations.
    let skew = TileGraph::from_grid_deps(grid(6, 6), &[(1, 0), (0, 1), (1, -1)]).expect("build");
    let stats = skew
        .run(4, RuntimeOptions::default(), |_, _, _| {})
        .expect("skewed graph runs clean");
    assert!(!stats.order_check_disarmed);
    // A cone that does NOT order the (i, j-1) source stands the checker
    // down — asserting the standard relation would report phantom
    // violations — and says so through RunStats, not silently.
    let narrow = TileGraph::from_grid_deps(grid(6, 6), &[(1, 0)]).expect("build");
    let stats = narrow
        .run(4, RuntimeOptions::default(), |_, _, _| {})
        .expect("narrow graph runs clean");
    assert!(stats.order_check_disarmed);
    // Explicit DAGs have no grid relation at all: also disarmed.
    let dag = TileGraph::from_edges(4, None, &[(0, 1), (1, 2), (2, 3)]).expect("build");
    let stats = dag
        .run(2, RuntimeOptions::default(), |_, _, _| {})
        .expect("dag runs clean");
    assert!(stats.order_check_disarmed);
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use polymix_runtime::fault_inject::{install, FaultPlan};

    #[test]
    fn seeded_panic_mid_tile_poisons_transitive_successors() {
        let _guard = install(FaultPlan {
            seed: 0xBAD,
            delay_us_max: 25,
            yield_pct: 20,
            panic_at: Some((3, 3)),
            ..FaultPlan::default()
        });
        let ran: Mutex<HashSet<(i64, i64)>> = Mutex::new(HashSet::new());
        let err = taskgraph_2d(grid(10, 10), 4, &[(1, 0), (0, 1)], |i, j| {
            ran.lock().unwrap().insert((i, j));
        })
        .expect_err("injected panic must surface");
        match err {
            RuntimeError::WorkerPanic { cell, payload, .. } => {
                assert_eq!(cell, Some((3, 3)));
                assert!(payload.contains("fault-inject"), "{payload}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        let ran = ran.lock().unwrap();
        assert!(!ran.contains(&(3, 3)), "the panicked tile never completed");
        for i in 3..10 {
            for j in 3..10 {
                assert!(
                    !ran.contains(&(i, j)),
                    "transitive successor ({i}, {j}) ran after the poison"
                );
            }
        }
    }

    #[test]
    fn injected_stall_trips_the_watchdog() {
        let _guard = install(FaultPlan {
            seed: 7,
            stall_ms_at: Some(((2, 2), 600)),
            ..FaultPlan::default()
        });
        let err = taskgraph_2d_opts(
            grid(8, 8),
            4,
            RuntimeOptions {
                watchdog: Some(std::time::Duration::from_millis(60)),
                ..RuntimeOptions::default()
            },
            &[(1, 0), (0, 1)],
            |_, _| {},
        )
        .expect_err("finite injected stall must be reported");
        match err {
            RuntimeError::Stalled { stalled_cells } => {
                assert!(!stalled_cells.is_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn adversarial_schedules_preserve_order_sensitive_results() {
        // Seeded delays + yields across several seeds: the task graph
        // must still produce the sequential prefix-sum table, with the
        // order checker armed the whole time (fault-inject implies
        // order-check).
        let ni = 11usize;
        let nj = 13usize;
        let reference = {
            let mut table = vec![0.0f64; ni * nj];
            for i in 0..ni {
                for j in 0..nj {
                    let up = if i > 0 { table[(i - 1) * nj + j] } else { 1.0 };
                    let left = if j > 0 { table[i * nj + j - 1] } else { 0.0 };
                    table[i * nj + j] = up + left;
                }
            }
            table
        };
        for seed in [1u64, 0xFEED, 0x1234_5678] {
            let _guard = install(FaultPlan {
                seed,
                delay_us_max: 40,
                yield_pct: 30,
                ..FaultPlan::default()
            });
            let table: Vec<Mutex<f64>> = (0..ni * nj).map(|_| Mutex::new(0.0)).collect();
            let stats = taskgraph_2d(
                grid(ni as i64, nj as i64),
                4,
                &[(1, 0), (0, 1)],
                |i, j| {
                    let (i, j) = (i as usize, j as usize);
                    let up = if i > 0 {
                        *table[(i - 1) * nj + j].lock().unwrap()
                    } else {
                        1.0
                    };
                    let left = if j > 0 {
                        *table[i * nj + j - 1].lock().unwrap()
                    } else {
                        0.0
                    };
                    *table[i * nj + j].lock().unwrap() = up + left;
                },
            )
            .expect("adversarial schedule still correct");
            assert!(!stats.order_check_disarmed);
            let got: Vec<f64> = table.iter().map(|m| *m.lock().unwrap()).collect();
            assert_eq!(got, reference, "seed {seed:#x} diverged");
        }
    }

    #[test]
    fn explicit_dag_panic_containment() {
        // A panic in one branch of an explicit DAG must not stop the
        // independent branch's already-published nodes from having run,
        // but must keep all downstream nodes of the failed branch
        // unexecuted.
        let _guard = install(FaultPlan::default());
        // chain A: 0 -> 1 -> 2 ; chain B: 3 -> 4 ; join: {2, 4} -> 5
        let edges = [(0, 1), (1, 2), (3, 4), (2, 5), (4, 5)];
        let graph = TileGraph::from_edges(6, None, &edges).expect("build");
        let ran: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
        let err = graph
            .run(2, RuntimeOptions::default(), |node, _, _| {
                if node == 1 {
                    std::panic::panic_any("branch boom");
                }
                ran.lock().unwrap().insert(node);
            })
            .expect_err("panic surfaces");
        assert!(matches!(err, RuntimeError::WorkerPanic { .. }), "{err:?}");
        let ran = ran.lock().unwrap();
        assert!(!ran.contains(&2), "downstream of the panic must not run");
        assert!(!ran.contains(&5), "the join must not run");
    }
}
