//! Integration tests for the persistent worker pool: reuse across
//! back-to-back jobs, recovery after a panicking job, and — under the
//! adversarial `fault-inject` schedules — bit-exact agreement between
//! the pooled and spawn-per-call execution paths. The last test is the
//! CI pool smoke: a scheduling bug in the pool (lost wakeup, stale
//! mailbox, worker running the wrong slot) shows up as a checksum
//! mismatch or a hang, not a silent pass.

use polymix_runtime::{
    par_for_opts, pipeline_2d_opts, GridSweep, PoolPolicy, RuntimeError, RuntimeOptions,
};
use std::sync::atomic::{AtomicI64, Ordering};

fn pooled_opts() -> RuntimeOptions {
    RuntimeOptions {
        pool: PoolPolicy::Persistent,
        ..RuntimeOptions::default()
    }
}

#[test]
fn pool_survives_a_panicking_job_mid_stress_sequence() {
    // 50 back-to-back jobs on the persistent pool; job 25 panics. The
    // panic must surface as WorkerPanic for that job only, and every
    // later job must still run to completion on the pooled path.
    let n = 64i64;
    for round in 0..50 {
        let hits: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
        let result = par_for_opts(0, n, 4, pooled_opts(), |i| {
            if round == 25 && i == 40 {
                std::panic::panic_any("stress boom");
            }
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        if round == 25 {
            let err = result.expect_err("round 25 must report the panic");
            assert!(
                matches!(err, RuntimeError::WorkerPanic { .. }),
                "unexpected error: {err:?}"
            );
        } else {
            let stats = result.expect("healthy rounds succeed");
            assert!(stats.pooled, "round {round} should run on the pool");
            assert_eq!(stats.cells, n as u64);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }
}

/// Seidel-style dependent sweep over `field`; returns the final values.
fn seidel_sweep(
    ni: usize,
    nj: usize,
    threads: usize,
    opts: RuntimeOptions,
) -> Result<Vec<f64>, RuntimeError> {
    let mut field: Vec<f64> = (0..ni * nj).map(|k| (k % 17) as f64).collect();
    let grid = GridSweep {
        i_lo: 1,
        i_hi: ni as i64,
        j_lo: 1,
        j_hi: nj as i64,
    };
    let ptr = field.as_mut_ptr() as usize;
    pipeline_2d_opts(grid, threads, opts, move |i, j| {
        let p = ptr as *mut f64;
        let (i, j) = (i as usize, j as usize);
        // SAFETY: each interior cell is written once, after its (i-1, j)
        // and (i, j-1) sources — exactly the order the pipeline enforces.
        unsafe {
            let v =
                0.2 * (*p.add(i * nj + j) + *p.add((i - 1) * nj + j) + *p.add(i * nj + j - 1));
            *p.add(i * nj + j) = v;
        }
    })?;
    Ok(field)
}

#[test]
fn pooled_and_spawned_sweeps_agree_bit_for_bit() {
    let reference = seidel_sweep(
        33,
        29,
        4,
        RuntimeOptions {
            pool: PoolPolicy::SpawnPerCall,
            ..RuntimeOptions::default()
        },
    )
    .expect("spawned sweep");
    // Repeat invocations on the pool: the many-invocations-small-grid
    // shape the pool exists for, each compared against the spawn path.
    for _ in 0..8 {
        let pooled = seidel_sweep(33, 29, 4, pooled_opts()).expect("pooled sweep");
        assert!(
            pooled
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "pooled sweep diverged from spawn-per-call sweep"
        );
    }
}

#[test]
fn watchdog_tolerates_workers_parked_between_pooled_jobs() {
    // The watchdog regression this pins: persistent-pool workers park in
    // their mailboxes between jobs, and gang delivery wakes them one at
    // a time. A waiter from job N+1 whose deadline is shorter than that
    // delivery latency used to see a frozen progress epoch — parked
    // peers publish nothing — and report `Stalled` on a perfectly
    // healthy run. The fix feeds the watchdog from the pool's
    // job-lifecycle heartbeat until the gang is fully online, so
    // back-to-back pooled jobs under a tight deadline must all pass,
    // including after idle gaps longer than the deadline itself.
    let opts = RuntimeOptions {
        pool: PoolPolicy::Persistent,
        watchdog: Some(std::time::Duration::from_millis(75)),
        ..RuntimeOptions::default()
    };
    for round in 0..12 {
        let field = seidel_sweep(17, 19, 4, opts)
            .unwrap_or_else(|e| panic!("watched pooled round {round} failed: {e:?}"));
        assert_eq!(field.len(), 17 * 19);
        if round % 4 == 3 {
            // Idle longer than the watchdog deadline with every worker
            // parked; the next round must still come up clean.
            std::thread::sleep(std::time::Duration::from_millis(120));
        }
    }
}

/// The CI pool smoke: the same pooled-vs-spawn agreement, but under an
/// adversarial seeded schedule (per-cell delays + yields) and with the
/// dynamic dependence-order checker armed via the `order-check` feature.
#[cfg(feature = "fault-inject")]
#[test]
fn pool_smoke_pooled_matches_spawn_under_adversarial_schedule() {
    use polymix_runtime::fault_inject::{install, FaultPlan};
    let _guard = install(FaultPlan {
        seed: 0xC0FFEE,
        delay_us_max: 40,
        yield_pct: 25,
        ..FaultPlan::default()
    });
    let reference = seidel_sweep(
        24,
        21,
        4,
        RuntimeOptions {
            pool: PoolPolicy::SpawnPerCall,
            ..RuntimeOptions::default()
        },
    )
    .expect("spawned sweep under faults");
    for batch in [None, Some(1), Some(3)] {
        let pooled = seidel_sweep(
            24,
            21,
            4,
            RuntimeOptions {
                pool: PoolPolicy::Persistent,
                pipeline_batch: batch,
                ..RuntimeOptions::default()
            },
        )
        .expect("pooled sweep under faults");
        assert!(
            pooled
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "pooled (batch {batch:?}) diverged under the adversarial schedule"
        );
    }
}
