//! Injection-schedule determinism across pool policies (`fault-inject`).
//!
//! The regression this binary pins: the seeded per-worker start
//! perturbation (`fault_inject::before_worker`) was threaded through the
//! persistent-pool path only, so `PoolPolicy::SpawnPerCall` runs drew a
//! *different* injection schedule from `PoolPolicy::Persistent` runs of
//! the same seed — a failing schedule found under one policy did not
//! replay under the other. Both paths now run the hook identically, and
//! these tests assert the recorded traces are equal event-for-event.
//!
//! This lives in its own integration binary on purpose: the injection
//! trace is process-global, and sibling tests exercising the runtime
//! while a plan is installed would interleave their own events into it.

#![cfg(feature = "fault-inject")]

use polymix_runtime::fault_inject::{install, take_trace, FaultPlan, TraceEvent};
use polymix_runtime::{
    pipeline_2d_opts, taskgraph_2d_opts, GridSweep, PoolPolicy, RuntimeOptions,
};

fn grid(ni: i64, nj: i64) -> GridSweep {
    GridSweep {
        i_lo: 0,
        i_hi: ni,
        j_lo: 0,
        j_hi: nj,
    }
}

fn adversarial_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        delay_us_max: 30,
        yield_pct: 20,
        ..FaultPlan::default()
    }
}

/// Runs one pipeline sweep under `policy` with `plan` installed and
/// returns the sorted injection trace (recording order is
/// scheduling-dependent; the decision *set* must not be).
fn pipeline_trace(policy: PoolPolicy, seed: u64) -> Vec<TraceEvent> {
    let _guard = install(adversarial_plan(seed));
    let opts = RuntimeOptions {
        pool: policy,
        ..RuntimeOptions::default()
    };
    pipeline_2d_opts(grid(13, 11), 3, opts, |_, _| {}).expect("sweep under faults");
    let mut trace = take_trace();
    trace.sort();
    trace
}

#[test]
fn pipeline_injection_traces_agree_across_pool_policies() {
    let pooled = pipeline_trace(PoolPolicy::Persistent, 0xDECAF);
    let spawned = pipeline_trace(PoolPolicy::SpawnPerCall, 0xDECAF);
    assert!(
        pooled.iter().any(|e| matches!(e, TraceEvent::WorkerStart { .. })),
        "the pooled path must draw seeded worker-start perturbations"
    );
    assert!(
        spawned.iter().any(|e| matches!(e, TraceEvent::WorkerStart { .. })),
        "the spawn path must draw seeded worker-start perturbations"
    );
    assert_eq!(
        pooled, spawned,
        "the same seed must produce the same injection schedule under both policies"
    );
    // And a different seed really changes the schedule (the comparison
    // above is not vacuous).
    assert_ne!(pooled, pipeline_trace(PoolPolicy::Persistent, 0xBEEF));
}

#[test]
fn taskgraph_injection_traces_agree_across_pool_policies() {
    let run = |policy: PoolPolicy| -> Vec<TraceEvent> {
        let _guard = install(adversarial_plan(0x7A5C));
        let opts = RuntimeOptions {
            pool: policy,
            ..RuntimeOptions::default()
        };
        taskgraph_2d_opts(grid(9, 10), 3, opts, &[(1, 0), (0, 1)], |_, _| {})
            .expect("taskgraph under faults");
        let mut trace = take_trace();
        trace.sort();
        trace
    };
    let pooled = run(PoolPolicy::Persistent);
    let spawned = run(PoolPolicy::SpawnPerCall);
    let cells = pooled
        .iter()
        .filter(|e| matches!(e, TraceEvent::Cell { .. }))
        .count();
    assert_eq!(cells, 9 * 10, "every tile draws exactly one cell decision");
    assert_eq!(pooled, spawned);
}
