//! The loop-tree (AST) program representation.
//!
//! A [`Program`] owns a SCoP (for statement bodies, arrays and parameter
//! names) plus a tree of loops/guards/statement instances. Loop bounds are
//! `max`/`min` combinations of affine expressions over enclosing loop
//! variables and parameters — exactly what Fourier–Motzkin bound
//! projection produces — so triangular and tile-shaped loops are
//! first-class.
//!
//! Statement instances carry one [`LinExpr`] per *original* statement
//! iterator: the materialized inverse schedule. The interpreter and the
//! Rust emitter evaluate original subscripts through these expressions,
//! which keeps every transformation semantics-preserving by construction
//! as long as the expressions are updated consistently.

use polymix_ir::Scop;

/// An affine expression over AST loop variables and SCoP parameters:
/// `Σ c_v·var + Σ c_p·param + c`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Sparse `(variable id, coefficient)` terms.
    pub var_coeffs: Vec<(usize, i64)>,
    /// Sparse `(parameter id, coefficient)` terms.
    pub param_coeffs: Vec<(usize, i64)>,
    /// Constant term.
    pub c: i64,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn con(c: i64) -> LinExpr {
        LinExpr {
            c,
            ..Default::default()
        }
    }

    /// The single-variable expression `var`.
    pub fn var(v: usize) -> LinExpr {
        LinExpr {
            var_coeffs: vec![(v, 1)],
            ..Default::default()
        }
    }

    /// The single-parameter expression `param`.
    pub fn param(p: usize) -> LinExpr {
        LinExpr {
            param_coeffs: vec![(p, 1)],
            ..Default::default()
        }
    }

    /// Coefficient of variable `v`.
    pub fn coeff_of(&self, v: usize) -> i64 {
        self.var_coeffs
            .iter()
            .filter(|(x, _)| *x == v)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Sum of two expressions (normalized).
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.var_coeffs.extend(other.var_coeffs.iter().copied());
        out.param_coeffs.extend(other.param_coeffs.iter().copied());
        out.c += other.c;
        out.normalize();
        out
    }

    /// `self + k·other`.
    pub fn add_scaled(&self, other: &LinExpr, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.var_coeffs
            .extend(other.var_coeffs.iter().map(|&(v, c)| (v, k * c)));
        out.param_coeffs
            .extend(other.param_coeffs.iter().map(|&(p, c)| (p, k * c)));
        out.c += k * other.c;
        out.normalize();
        out
    }

    /// `self` scaled by `k`.
    pub fn scale(&self, k: i64) -> LinExpr {
        LinExpr::con(0).add_scaled(self, k)
    }

    /// Adds a constant.
    pub fn plus(&self, c: i64) -> LinExpr {
        let mut out = self.clone();
        out.c += c;
        out
    }

    /// Substitutes `replacement` for variable `v`.
    pub fn subst(&self, v: usize, replacement: &LinExpr) -> LinExpr {
        let k = self.coeff_of(v);
        if k == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.var_coeffs.retain(|(x, _)| *x != v);
        out = out.add_scaled(replacement, k);
        out
    }

    /// Evaluates with variable values looked up in `vars` (indexed by
    /// variable id) and parameters in `params`.
    pub fn eval(&self, vars: &[i64], params: &[i64]) -> i64 {
        self.var_coeffs
            .iter()
            .map(|&(v, c)| c * vars[v])
            .sum::<i64>()
            + self
                .param_coeffs
                .iter()
                .map(|&(p, c)| c * params[p])
                .sum::<i64>()
            + self.c
    }

    /// True when the expression uses no loop variables.
    pub fn is_loop_invariant(&self) -> bool {
        self.var_coeffs.is_empty()
    }

    fn normalize(&mut self) {
        self.var_coeffs.sort_by_key(|&(v, _)| v);
        self.var_coeffs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        self.var_coeffs.retain(|&(_, c)| c != 0);
        self.param_coeffs.sort_by_key(|&(p, _)| p);
        self.param_coeffs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        self.param_coeffs.retain(|&(_, c)| c != 0);
    }
}

/// One bound expression `expr / denom` (ceil for lower, floor for upper).
#[derive(Clone, Debug, PartialEq)]
pub struct BoundExpr {
    /// The affine numerator.
    pub expr: LinExpr,
    /// Positive divisor.
    pub denom: i64,
}

/// A loop bound: `max` (lower) or `min` (upper) over affine expressions.
#[derive(Clone, Debug, PartialEq)]
pub struct Bound {
    /// Component expressions; never empty.
    pub exprs: Vec<BoundExpr>,
}

impl Bound {
    /// Single-expression bound with unit denominator.
    pub fn of(e: LinExpr) -> Bound {
        Bound {
            exprs: vec![BoundExpr { expr: e, denom: 1 }],
        }
    }

    /// Constant bound.
    pub fn con(c: i64) -> Bound {
        Bound::of(LinExpr::con(c))
    }

    /// Evaluates as a lower bound (`max` of ceiling divisions).
    pub fn eval_lower(&self, vars: &[i64], params: &[i64]) -> i64 {
        self.exprs
            .iter()
            .map(|b| {
                let v = b.expr.eval(vars, params);
                -((-v).div_euclid(b.denom))
            })
            .max()
            .expect("empty bound")
    }

    /// Evaluates as an upper bound (`min` of floor divisions).
    pub fn eval_upper(&self, vars: &[i64], params: &[i64]) -> i64 {
        self.exprs
            .iter()
            .map(|b| b.expr.eval(vars, params).div_euclid(b.denom))
            .min()
            .expect("empty bound")
    }

    /// Applies a function to every component expression.
    pub fn map(&self, f: &impl Fn(&LinExpr) -> LinExpr) -> Bound {
        Bound {
            exprs: self
                .exprs
                .iter()
                .map(|b| BoundExpr {
                    expr: f(&b.expr),
                    denom: b.denom,
                })
                .collect(),
        }
    }

    /// True when the bound is the single constant `c`.
    pub fn is_const(&self) -> Option<i64> {
        if self.exprs.len() == 1
            && self.exprs[0].denom == 1
            && self.exprs[0].expr.var_coeffs.is_empty()
            && self.exprs[0].expr.param_coeffs.is_empty()
        {
            Some(self.exprs[0].expr.c)
        } else {
            None
        }
    }
}

/// Parallelism annotation of a loop (Sec. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Par {
    /// Sequential.
    #[default]
    Seq,
    /// Fully parallel iterations.
    Doall,
    /// Parallel modulo an associative-commutative reduction.
    Reduction,
    /// Cross-iteration forward dependences only: point-to-point pipeline.
    Pipeline,
    /// Execute this loop and its immediate inner loop as diagonal
    /// wavefronts (`w = u + v`), each diagonal's cells in parallel with a
    /// barrier between diagonals — the doall-only alternative the paper's
    /// pipeline construct is compared against (Fig. 6). Sequential
    /// execution order remains legal, so the interpreter treats it as a
    /// plain loop.
    Wavefront,
}

/// A counted loop `for var in lo..=hi step step`.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// Variable id (index into the interpreter's variable frame).
    pub var: usize,
    /// Display name (e.g. `c1`, `i_t`).
    pub name: String,
    /// Lower bound (`max` of ceils).
    pub lo: Bound,
    /// Upper bound, **inclusive** (`min` of floors).
    pub hi: Bound,
    /// Step, strictly positive.
    pub step: i64,
    /// Parallelism annotation.
    pub par: Par,
    /// Loop body.
    pub body: Node,
}

/// A statement instance: executes `scop.statements[stmt_idx]` with each
/// original iterator computed from the enclosing AST variables.
#[derive(Clone, Debug, PartialEq)]
pub struct StmtNode {
    /// Index into the owning SCoP's statement list.
    pub stmt_idx: usize,
    /// One expression per original iterator of the statement.
    pub iter_exprs: Vec<LinExpr>,
}

/// A node of the loop tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Sequential composition.
    Seq(Vec<Node>),
    /// A loop.
    Loop(Box<Loop>),
    /// Conditional execution: body runs iff every expression is `>= 0`.
    Guard(Vec<LinExpr>, Box<Node>),
    /// A statement instance.
    Stmt(StmtNode),
}

impl Node {
    /// Convenience constructor.
    pub fn loop_(l: Loop) -> Node {
        Node::Loop(Box::new(l))
    }

    /// Depth-first mutable visit of every loop in the tree.
    pub fn visit_loops_mut(&mut self, f: &mut impl FnMut(&mut Loop)) {
        match self {
            Node::Seq(xs) => xs.iter_mut().for_each(|x| x.visit_loops_mut(f)),
            Node::Loop(l) => {
                f(l);
                l.body.visit_loops_mut(f);
            }
            Node::Guard(_, b) => b.visit_loops_mut(f),
            Node::Stmt(_) => {}
        }
    }

    /// Depth-first visit of every statement node.
    pub fn visit_stmts(&self, f: &mut impl FnMut(&StmtNode)) {
        match self {
            Node::Seq(xs) => xs.iter().for_each(|x| x.visit_stmts(f)),
            Node::Loop(l) => l.body.visit_stmts(f),
            Node::Guard(_, b) => b.visit_stmts(f),
            Node::Stmt(s) => f(s),
        }
    }

    /// Rewrites every affine expression in the subtree (bounds, guards and
    /// statement iterator expressions) through `f`.
    pub fn map_exprs(&mut self, f: &impl Fn(&LinExpr) -> LinExpr) {
        match self {
            Node::Seq(xs) => xs.iter_mut().for_each(|x| x.map_exprs(f)),
            Node::Loop(l) => {
                l.lo = l.lo.map(f);
                l.hi = l.hi.map(f);
                l.body.map_exprs(f);
            }
            Node::Guard(gs, b) => {
                for g in gs.iter_mut() {
                    *g = f(g);
                }
                b.map_exprs(f);
            }
            Node::Stmt(s) => {
                for e in s.iter_exprs.iter_mut() {
                    *e = f(e);
                }
            }
        }
    }

    /// Substitutes `replacement` for variable `v` throughout the subtree.
    pub fn subst_var(&mut self, v: usize, replacement: &LinExpr) {
        self.map_exprs(&|e| e.subst(v, replacement));
    }

    /// Number of statement instances syntactically in the subtree.
    pub fn count_stmts(&self) -> usize {
        let mut n = 0;
        self.visit_stmts(&mut |_| n += 1);
        n
    }
}

/// A complete optimizable/executable program: the owning SCoP plus the
/// current loop tree.
#[derive(Clone, Debug)]
pub struct Program {
    /// The SCoP supplying statement bodies, arrays and parameters.
    pub scop: Scop,
    /// The loop tree.
    pub body: Node,
    /// Number of loop-variable slots allocated (ids are `0..n_vars`).
    pub n_vars: usize,
}

impl Program {
    /// Allocates a fresh loop-variable slot.
    pub fn fresh_var(&mut self) -> usize {
        self.n_vars += 1;
        self.n_vars - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_algebra() {
        let e = LinExpr::var(0).add_scaled(&LinExpr::var(1), 2).plus(3);
        assert_eq!(e.eval(&[10, 20], &[]), 10 + 40 + 3);
        let s = e.subst(1, &LinExpr::param(0).plus(-1));
        // 0: v0 + 2*(p0 - 1) + 3 = v0 + 2 p0 + 1
        assert_eq!(s.eval(&[10, 999], &[5]), 10 + 10 + 1);
        assert_eq!(s.coeff_of(1), 0);
    }

    #[test]
    fn linexpr_normalization_merges_terms() {
        let e = LinExpr::var(2).add(&LinExpr::var(2)).add(&LinExpr::var(1));
        assert_eq!(e.var_coeffs, vec![(1, 1), (2, 2)]);
        let z = e.add_scaled(&LinExpr::var(2), -2);
        assert_eq!(z.var_coeffs, vec![(1, 1)]);
    }

    #[test]
    fn bound_evaluation_max_min_and_division() {
        // lower: max(0, (v0 - 3)/2 ceil), upper: min(9, v0).
        let lo = Bound {
            exprs: vec![
                BoundExpr {
                    expr: LinExpr::con(0),
                    denom: 1,
                },
                BoundExpr {
                    expr: LinExpr::var(0).plus(-3),
                    denom: 2,
                },
            ],
        };
        let hi = Bound {
            exprs: vec![
                BoundExpr {
                    expr: LinExpr::con(9),
                    denom: 1,
                },
                BoundExpr {
                    expr: LinExpr::var(0),
                    denom: 1,
                },
            ],
        };
        assert_eq!(lo.eval_lower(&[8], &[]), 3); // ceil(5/2) = 3
        assert_eq!(lo.eval_lower(&[2], &[]), 0);
        assert_eq!(hi.eval_upper(&[7], &[]), 7);
        assert_eq!(hi.eval_upper(&[100], &[]), 9);
    }

    #[test]
    fn node_substitution_reaches_everything() {
        let mut n = Node::Loop(Box::new(Loop {
            var: 1,
            name: "j".into(),
            lo: Bound::of(LinExpr::var(0)),
            hi: Bound::of(LinExpr::var(0).plus(4)),
            step: 1,
            par: Par::Seq,
            body: Node::Stmt(StmtNode {
                stmt_idx: 0,
                iter_exprs: vec![LinExpr::var(0), LinExpr::var(1)],
            }),
        }));
        // Replace v0 by 2*v2 + 1 everywhere.
        let r = LinExpr::var(2).scale(2).plus(1);
        n.subst_var(0, &r);
        match &n {
            Node::Loop(l) => {
                assert_eq!(l.lo.exprs[0].expr.eval(&[0, 0, 3], &[]), 7);
                match &l.body {
                    Node::Stmt(s) => {
                        assert_eq!(s.iter_exprs[0].eval(&[0, 0, 3], &[]), 7);
                        assert_eq!(s.iter_exprs[1].eval(&[0, 9, 3], &[]), 9);
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn count_stmts_walks_guards_and_seqs() {
        let s = Node::Stmt(StmtNode {
            stmt_idx: 0,
            iter_exprs: vec![],
        });
        let g = Node::Guard(vec![LinExpr::con(1)], Box::new(s.clone()));
        let n = Node::Seq(vec![s, g]);
        assert_eq!(n.count_stmts(), 2);
    }

    #[test]
    fn is_const_detection() {
        assert_eq!(Bound::con(5).is_const(), Some(5));
        assert_eq!(Bound::of(LinExpr::var(0)).is_const(), None);
        assert_eq!(Bound::of(LinExpr::param(0)).is_const(), None);
    }
}
