//! The parallelism detector of Sec. IV-A.
//!
//! Loop-level parallelism is classified from dependence vectors into
//! **doall** (no carried dependence), **pipeline** (all carried
//! dependences uniform and forward in this and the next level — runnable
//! with point-to-point synchronization), **reduction** (all carried
//! dependences come from associative-commutative updates), or their
//! combination; anything else is sequential.

use polymix_deps::DepElem;

/// Result of classifying one loop level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopParallelism {
    /// No dependence carried by the loop.
    Doall,
    /// All carried dependences are uniform, non-negative here and at the
    /// next level: point-to-point pipeline across a 2-D grid.
    Pipeline,
    /// All carried dependences come from reductions.
    Reduction,
    /// Mixture of pipelineable and reduction-carried dependences.
    ReductionPipeline,
    /// None of the above.
    Sequential,
}

impl LoopParallelism {
    /// True when the loop can run threads without a serial schedule.
    pub fn is_parallel(self) -> bool {
        self != LoopParallelism::Sequential
    }

    /// The `await source(..)` offsets the runtime protocol must observe
    /// for this kind of parallelism, as `(d_outer, d_inner)` deltas: a
    /// cell `(i, j)` may only run after `(i + d_outer, j + d_inner)` for
    /// every listed source. Doall and reduction levels impose no
    /// point-to-point ordering (reductions reorder freely by
    /// associativity); pipeline levels synchronize on the Sec. IV-D
    /// cone `source(i-1, j) source(i, j-1)`. The runtime's `order-check`
    /// feature and the emitted poisonable protocol both enforce exactly
    /// this set.
    pub fn await_sources(self) -> &'static [(i64, i64)] {
        match self {
            LoopParallelism::Pipeline | LoopParallelism::ReductionPipeline => {
                &[(-1, 0), (0, -1)]
            }
            LoopParallelism::Doall
            | LoopParallelism::Reduction
            | LoopParallelism::Sequential => &[],
        }
    }
}

/// Classifies loop level `k` of a nest given the dependence vectors of
/// every edge whose endpoints are inside the loop. Each entry is
/// `(vector, is_reduction_dep)`. Vectors already satisfied by an outer
/// level (a component `>= 1` before `k`) are ignored, matching the
/// paper's "not satisfied by the outer loops" filtering.
pub fn classify_level(vectors: &[(Vec<DepElem>, bool)], k: usize) -> LoopParallelism {
    classify_level_in_nest(vectors, k, usize::MAX)
}

/// Like [`classify_level`] but aware of the nest depth: pipeline
/// parallelism at level `k` synchronizes across levels `k` and `k+1`, so
/// it requires `k + 1 < depth` (the paper's "at least two-level pipeline
/// parallelism" condition).
pub fn classify_level_in_nest(
    vectors: &[(Vec<DepElem>, bool)],
    k: usize,
    depth: usize,
) -> LoopParallelism {
    let relevant: Vec<&(Vec<DepElem>, bool)> = vectors
        .iter()
        .filter(|(v, _)| {
            // Unsatisfied at outer levels: every component before k is 0.
            v.iter().take(k).all(|e| e.is_zero())
        })
        .collect();

    let elem_at = |v: &[DepElem], i: usize| v.get(i).copied().unwrap_or(DepElem::Const(0));

    // doall: every relevant vector has e_k == 0.
    if relevant.iter().all(|(v, _)| elem_at(v, k).is_zero()) {
        return LoopParallelism::Doall;
    }

    let mut pipeline_ok = true;
    let mut reduction_ok = true;
    let mut any_pipeline_carried = false;
    let mut any_reduction_carried = false;
    for (v, is_red) in &relevant {
        let ek = elem_at(v, k);
        if ek.is_zero() {
            // Not carried here — but a backward component at k+1 breaks
            // the left-to-right block order of the p2p construct.
            if !*is_red && elem_at(v, k + 1).may_be_negative() {
                pipeline_ok = false;
            }
            continue;
        }
        // Carried dependence. The point-to-point construct synchronizes
        // on the full product-order cone of (k, k+1), so a dependence is
        // pipelineable when it is strictly forward at k and non-negative
        // at k+1 (uniformity is not required for the await cone).
        let cone_forward = ek.is_positive() && elem_at(v, k + 1).is_nonneg();
        if *is_red {
            any_reduction_carried = true;
            // A reduction dep needs no ordering at all.
        } else if cone_forward {
            any_pipeline_carried = true;
            reduction_ok = false;
        } else {
            pipeline_ok = false;
            reduction_ok = false;
        }
    }

    if k + 1 >= depth {
        pipeline_ok = false;
    }
    match (
        pipeline_ok && any_pipeline_carried,
        reduction_ok && any_reduction_carried,
        any_reduction_carried,
    ) {
        (true, _, true) => LoopParallelism::ReductionPipeline,
        (true, _, false) => LoopParallelism::Pipeline,
        (false, true, _) => LoopParallelism::Reduction,
        _ => LoopParallelism::Sequential,
    }
}

/// Finds the outermost parallel level of a nest of `depth` loops, with its
/// classification — the paper's strategy "use the loop parallelism at the
/// outermost possible level regardless of kind".
pub fn outermost_parallel(
    vectors: &[(Vec<DepElem>, bool)],
    depth: usize,
) -> Option<(usize, LoopParallelism)> {
    for k in 0..depth {
        let c = classify_level_in_nest(vectors, k, depth);
        if c.is_parallel() {
            return Some((k, c));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use DepElem::*;

    #[test]
    fn no_deps_is_doall() {
        assert_eq!(classify_level(&[], 0), LoopParallelism::Doall);
    }

    #[test]
    fn zero_component_is_doall() {
        let v = vec![(vec![Const(0), Const(1)], false)];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Doall);
        assert_eq!(classify_level_in_nest(&v, 1, 2), LoopParallelism::Sequential);
    }

    #[test]
    fn stencil_unit_deps_are_pipeline() {
        // seidel: (1,0), (0,1), (1,1)-ish. At level 0: carried (1,0),(1,1)
        // uniform forward; (0,1) not carried at 0.
        let v = vec![
            (vec![Const(1), Const(0)], false),
            (vec![Const(0), Const(1)], false),
            (vec![Const(1), Const(1)], false),
        ];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Pipeline);
    }

    #[test]
    fn negative_next_level_blocks_pipeline() {
        // (1,-1): forward at 0 but backward at 1 → needs skewing first.
        let v = vec![(vec![Const(1), Const(-1)], false)];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Sequential);
    }

    #[test]
    fn nonuniform_forward_cone_is_pipeline() {
        // A non-uniform but strictly forward dependence is covered by the
        // await cone: (≥1, ≥0) pipelines.
        let v = vec![(vec![Plus, Const(0)], false)];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Pipeline);
        // But a possibly-negative next level is not.
        let v = vec![(vec![Plus, Star], false)];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Sequential);
    }

    #[test]
    fn reduction_deps_allow_reduction_parallelism() {
        let v = vec![(vec![Const(1), Const(0)], true)];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Reduction);
        // Even non-uniform reduction carries are fine.
        let v = vec![(vec![Plus, Star], true)];
        assert_eq!(classify_level(&v, 0), LoopParallelism::Reduction);
    }

    #[test]
    fn mixed_reduction_and_pipeline() {
        let v = vec![
            (vec![Const(1), Const(0)], true),
            (vec![Const(1), Const(1)], false),
        ];
        assert_eq!(classify_level(&v, 0), LoopParallelism::ReductionPipeline);
    }

    #[test]
    fn outer_satisfied_deps_are_ignored_inside() {
        // Dep carried at level 0 doesn't serialize level 1.
        let v = vec![(vec![Const(1), Const(-5)], false)];
        assert_eq!(classify_level(&v, 1), LoopParallelism::Doall);
    }

    #[test]
    fn await_sources_match_the_sec_ivd_cone() {
        assert_eq!(
            LoopParallelism::Pipeline.await_sources(),
            &[(-1, 0), (0, -1)]
        );
        assert_eq!(
            LoopParallelism::ReductionPipeline.await_sources(),
            &[(-1, 0), (0, -1)]
        );
        assert!(LoopParallelism::Doall.await_sources().is_empty());
        assert!(LoopParallelism::Reduction.await_sources().is_empty());
        assert!(LoopParallelism::Sequential.await_sources().is_empty());
    }

    #[test]
    fn outermost_parallel_scan() {
        // Level 0 pipelines via the cone; without the next-level loop it
        // would fall through to level 1's doall.
        let v = vec![(vec![Plus, Const(0)], false)];
        assert_eq!(
            outermost_parallel(&v, 2),
            Some((0, LoopParallelism::Pipeline))
        );
        assert_eq!(outermost_parallel(&v, 1), None); // no level to pipe over
        // Fully serial chain in one loop.
        let v = vec![(vec![Star], false)];
        assert_eq!(outermost_parallel(&v, 1), None);
    }
}
