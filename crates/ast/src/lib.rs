//! # polymix-ast
//!
//! The syntactic (AST-level) half of the polymix optimizer (Sec. IV of the
//! paper): a concrete loop-tree representation plus the transformations
//! the paper applies *outside* the polyhedral framework —
//!
//! * [`tree`] — loop AST: loops with `max`/`min` affine bounds, guards,
//!   statement instances carrying the (inverse-schedule) iterator
//!   expressions, and parallelism annotations;
//! * [`transforms`] — loop skewing, strip-mining, interchange, rectangular
//!   band tiling, unrolling / unroll-and-jam (register tiling), and
//!   wavefronting (for the baseline);
//! * [`parallel`] — the doall / pipeline / reduction parallelism detector
//!   of Sec. IV-A, driven by dependence vectors;
//! * [`interp`] — a reference interpreter executing any program tree on
//!   concrete arrays; it is the workspace's semantic-equivalence oracle
//!   and the trace source for the cache simulator;
//! * [`pretty`] — a stable text rendering used by snapshot tests.

pub mod interp;
pub mod parallel;
pub mod pretty;
pub mod transforms;
pub mod tree;

pub use interp::{alloc_arrays, execute, execute_traced, AccessEvent};
pub use parallel::{classify_level, classify_level_in_nest, outermost_parallel, LoopParallelism};
pub use tree::{Bound, LinExpr, Loop, Node, Par, Program, StmtNode};
