//! Syntactic loop transformations (Sec. IV-B/C).
//!
//! Everything here is a pure tree rewrite: legality is the caller's
//! responsibility (the optimizer checks dependence vectors *before*
//! transforming, per the paper's staging), and the interpreter-based
//! equivalence tests verify the composition end-to-end.

use crate::tree::{Bound, BoundExpr, LinExpr, Loop, Node, Par, Program};
use polymix_ir::error::PolymixError;

/// Length of the perfect loop band starting at `node`: the number of
/// directly nested loops (each body exactly one loop) before hitting a
/// `Seq`, `Guard` or statement.
pub fn band_depth(node: &Node) -> usize {
    match node {
        Node::Loop(l) => 1 + band_depth(&l.body),
        _ => 0,
    }
}

/// Skews the loop `inner` (found by variable id) by `factor ×` the value
/// of the enclosing loop variable `outer_var`: the new inner variable is
/// `w = v + factor·outer`, so all loop-carried distances on `inner`
/// become `δ_w = δ_v + factor·δ_outer`. Returns `true` if the loop was
/// found and rewritten.
pub fn skew(node: &mut Node, inner_var: usize, outer_var: usize, factor: i64) -> bool {
    match node {
        Node::Seq(xs) => xs
            .iter_mut()
            .any(|x| skew(x, inner_var, outer_var, factor)),
        Node::Guard(_, b) => skew(b, inner_var, outer_var, factor),
        Node::Loop(l) => {
            if l.var != inner_var {
                return skew(&mut l.body, inner_var, outer_var, factor);
            }
            let shift = LinExpr::var(outer_var).scale(factor);
            // Bounds of w = v + factor·outer are old bounds + shift.
            l.lo = l.lo.map(&|e| e.add(&shift));
            l.hi = l.hi.map(&|e| e.add(&shift));
            // Inside, v = w - factor·outer.
            let replacement = LinExpr::var(inner_var).add_scaled(&LinExpr::var(outer_var), -factor);
            l.body.subst_var(inner_var, &replacement);
            true
        }
        Node::Stmt(_) => false,
    }
}

/// Relaxes a bound expression for use in a *tile* loop: every reference to
/// a point variable of an outer tiled loop is replaced by the tile-extreme
/// value that makes the bound cover all point iterations.
/// `point_to_tile` maps point variable → (tile variable, tile size).
fn relax_bound(
    b: &Bound,
    point_to_tile: &[(usize, usize, i64)],
    lower: bool,
) -> Bound {
    Bound {
        exprs: b
            .exprs
            .iter()
            .map(|be| {
                let mut e = be.expr.clone();
                for &(pv, tv, ts) in point_to_tile {
                    let c = e.coeff_of(pv);
                    if c == 0 {
                        continue;
                    }
                    // Lower bounds must be minimized (cover from below);
                    // upper bounds maximized.
                    let use_low_end = (c > 0) == lower;
                    let repl = if use_low_end {
                        LinExpr::var(tv)
                    } else {
                        LinExpr::var(tv).plus(ts - 1)
                    };
                    e = e.subst(pv, &repl);
                }
                BoundExpr {
                    expr: e,
                    denom: be.denom,
                }
            })
            .collect(),
    }
}

/// Tiles the perfect band of `sizes.len()` loops rooted at `node`
/// (which must be a `Loop` with `band_depth(node) >= sizes.len()`),
/// producing `k` tile loops around `k` point loops:
///
/// ```text
/// for x1t in lo1'..hi1' step T1          (relaxed bounds)
///   …
///     for x1 in max(lo1, x1t)..min(hi1, x1t+T1-1)
///       …
///         body
/// ```
///
/// Triangular / skewed bands are handled by bound relaxation (tile loops
/// may visit empty tiles; point loops clamp exactly). Parallelism
/// annotations migrate to the tile loops. Returns a
/// [`PolymixError::Transform`] on a non-loop node or insufficient band
/// depth; callers keep (a clone of) the untransformed tree in that case.
pub fn tile_band(prog: &mut Program, node: Node, sizes: &[i64]) -> Result<Node, PolymixError> {
    let k = sizes.len();
    if k < 1 {
        return Err(PolymixError::transform("tile_band", "empty tile size list"));
    }
    let depth = band_depth(&node);
    if depth < k {
        return Err(PolymixError::transform(
            "tile_band",
            format!("band depth {depth} < requested {k}"),
        ));
    }
    // Collect the k loops.
    let mut loops: Vec<Loop> = Vec::with_capacity(k);
    let mut cur = node;
    for _ in 0..k {
        match cur {
            Node::Loop(l) => {
                let l = *l;
                cur = l.body.clone();
                loops.push(Loop {
                    body: Node::Seq(vec![]),
                    ..l
                });
            }
            // band_depth(node) >= k guarantees k nested loops.
            _ => {
                return Err(PolymixError::transform(
                    "tile_band",
                    "band ended early at a non-loop node",
                ))
            }
        }
    }
    let innermost_body = cur;

    // Allocate tile variables.
    let tile_vars: Vec<usize> = (0..k).map(|_| prog.fresh_var()).collect();
    let map: Vec<(usize, usize, i64)> = loops
        .iter()
        .zip(&tile_vars)
        .zip(sizes)
        .map(|((l, &tv), &ts)| (l.var, tv, ts))
        .collect();

    // Point loops, innermost first.
    let mut body = innermost_body;
    for j in (0..k).rev() {
        let l = &loops[j];
        let (_, tv, ts) = map[j];
        let mut lo = l.lo.clone();
        lo.exprs.push(BoundExpr {
            expr: LinExpr::var(tv),
            denom: 1,
        });
        let mut hi = l.hi.clone();
        hi.exprs.push(BoundExpr {
            expr: LinExpr::var(tv).plus(ts - 1),
            denom: 1,
        });
        body = Node::loop_(Loop {
            var: l.var,
            name: l.name.clone(),
            lo,
            hi,
            step: l.step,
            par: Par::Seq,
            body,
        });
    }

    // Tile loops, innermost first. Bounds of tile loop j may reference the
    // point variables of loops 0..j: relax them through all outer tiles.
    for j in (0..k).rev() {
        let l = &loops[j];
        let (_, tv, ts) = map[j];
        let outer_map = &map[..j];
        let lo = relax_bound(&l.lo, outer_map, true);
        let hi = relax_bound(&l.hi, outer_map, false);
        body = Node::loop_(Loop {
            var: tv,
            name: format!("{}t", l.name),
            lo,
            hi,
            step: ts * l.step,
            par: l.par,
            body,
        });
    }
    Ok(body)
}

/// Unrolls `loop_node` (a `Loop` with step 1) by `factor` using the
/// guarded-epilogue scheme: the loop steps by `factor`, the body is
/// replicated at offsets `0..factor`, and replicas past the first are
/// guarded by `hi - (v + r) >= 0` so ragged trip counts stay correct.
/// Errors on a non-unit step or a divided upper bound; the caller keeps
/// the original loop.
pub fn unroll(l: &Loop, factor: i64) -> Result<Node, PolymixError> {
    if factor < 1 {
        return Err(PolymixError::transform(
            "unroll",
            format!("factor {factor} < 1"),
        ));
    }
    if l.step != 1 {
        return Err(PolymixError::transform(
            "unroll",
            format!("requires unit step, loop {} has step {}", l.name, l.step),
        ));
    }
    if factor == 1 {
        return Ok(Node::loop_(l.clone()));
    }
    if l.hi.exprs.iter().any(|be| be.denom != 1) {
        return Err(PolymixError::transform(
            "unroll",
            format!("divided upper bound on loop {}", l.name),
        ));
    }
    let mut replicas = Vec::with_capacity(factor as usize);
    for r in 0..factor {
        let mut b = l.body.clone();
        if r > 0 {
            b.subst_var(l.var, &LinExpr::var(l.var).plus(r));
            // Guard: v + r <= hi  ⇔  hi - v - r >= 0 for every hi expr.
            let guards: Vec<LinExpr> = l
                .hi
                .exprs
                .iter()
                .map(|be| be.expr.add_scaled(&LinExpr::var(l.var), -1).plus(-r))
                .collect();
            b = Node::Guard(guards, Box::new(b));
        }
        replicas.push(b);
    }
    Ok(Node::loop_(Loop {
        var: l.var,
        name: l.name.clone(),
        lo: l.lo.clone(),
        hi: l.hi.clone(),
        step: factor,
        par: l.par,
        body: Node::Seq(replicas),
    }))
}

/// Unroll-and-jam: unrolls an outer loop of a perfect pair by `factor`
/// and jams the replicated inner loops into one (register tiling,
/// Sec. IV-C). Requires the inner loop's bounds to be invariant in the
/// outer variable; returns `None` when the shape does not allow it.
pub fn unroll_and_jam(l: &Loop, factor: i64) -> Option<Node> {
    if factor < 1 {
        return None;
    }
    if factor == 1 {
        return Some(Node::loop_(l.clone()));
    }
    if l.step != 1 {
        return None;
    }
    if l.hi.exprs.iter().any(|be| be.denom != 1) {
        return None; // divided upper bound: replica guards inexpressible
    }
    let inner = match &l.body {
        Node::Loop(i) => i.as_ref().clone(),
        _ => return None,
    };
    let invariant = |b: &Bound| b.exprs.iter().all(|be| be.expr.coeff_of(l.var) == 0);
    if !invariant(&inner.lo) || !invariant(&inner.hi) {
        return None;
    }
    // Jammed inner body: replicas of inner.body at outer offsets.
    let mut replicas = Vec::with_capacity(factor as usize);
    for r in 0..factor {
        let mut b = inner.body.clone();
        if r > 0 {
            b.subst_var(l.var, &LinExpr::var(l.var).plus(r));
            let guards: Vec<LinExpr> = l
                .hi
                .exprs
                .iter()
                .map(|be| be.expr.add_scaled(&LinExpr::var(l.var), -1).plus(-r))
                .collect();
            b = Node::Guard(guards, Box::new(b));
        }
        replicas.push(b);
    }
    Some(Node::loop_(Loop {
        var: l.var,
        name: l.name.clone(),
        lo: l.lo.clone(),
        hi: l.hi.clone(),
        step: factor,
        par: l.par,
        body: Node::loop_(Loop {
            body: Node::Seq(replicas),
            ..inner
        }),
    }))
}

/// Wavefronts a perfect pair of loops: replaces `(u, v)` by `(w, v)` with
/// `w = u + v`; the inner loop is marked [`Par::Doall`] (all iterations of
/// a diagonal are independent once every dependence is non-negative in
/// both dimensions). Requires the inner bounds to be invariant in `u`.
/// Returns `None` when the shape does not allow it.
pub fn wavefront(l: &Loop) -> Option<Node> {
    let inner = match &l.body {
        Node::Loop(i) => i.as_ref().clone(),
        _ => return None,
    };
    if l.step != 1 || inner.step != 1 {
        return None;
    }
    let invariant = |b: &Bound| b.exprs.iter().all(|be| be.expr.coeff_of(l.var) == 0);
    if !invariant(&inner.lo) || !invariant(&inner.hi) {
        return None;
    }
    let unit = |b: &Bound| b.exprs.iter().all(|be| be.denom == 1);
    if !unit(&l.lo) || !unit(&l.hi) || !unit(&inner.lo) || !unit(&inner.hi) {
        return None;
    }
    // w = u + v : bounds are cross sums (max+max / min+min distribute).
    let cross = |a: &Bound, b: &Bound| Bound {
        exprs: a
            .exprs
            .iter()
            .flat_map(|x| {
                b.exprs.iter().map(move |y| BoundExpr {
                    expr: x.expr.add(&y.expr),
                    denom: 1,
                })
            })
            .collect(),
    };
    let w_lo = cross(&l.lo, &inner.lo);
    let w_hi = cross(&l.hi, &inner.hi);
    // Inner v: max(lo_v, w - hi_u) .. min(hi_v, w - lo_u). Note w is the
    // *same variable slot* as u (reused), v keeps its slot.
    let w_var = l.var;
    let minus = |b: &Bound| -> Vec<BoundExpr> {
        b.exprs
            .iter()
            .map(|be| BoundExpr {
                expr: LinExpr::var(w_var).add_scaled(&be.expr, -1),
                denom: 1,
            })
            .collect()
    };
    let mut v_lo = inner.lo.clone();
    v_lo.exprs.extend(minus(&l.hi)); // v >= w - hi_u
    let mut v_hi = inner.hi.clone();
    v_hi.exprs.extend(minus(&l.lo)); // v <= w - lo_u
    // Body: u = w - v.
    let mut body = inner.body.clone();
    body.subst_var(
        l.var,
        &LinExpr::var(w_var).add_scaled(&LinExpr::var(inner.var), -1),
    );
    // (subst_var on l.var already replaced u, and w reuses u's slot: the
    //  substitution above must therefore happen on a *fresh* copy — it maps
    //  old-u to w - v, and since w occupies u's slot the expression is
    //  self-consistent at evaluation time.)
    Some(Node::loop_(Loop {
        var: w_var,
        name: format!("w_{}", l.name),
        lo: w_lo,
        hi: w_hi,
        step: 1,
        par: Par::Seq,
        body: Node::loop_(Loop {
            var: inner.var,
            name: inner.name.clone(),
            lo: v_lo,
            hi: v_hi,
            step: 1,
            par: Par::Doall,
            body,
        }),
    }))
}

/// Walks the tree and tiles every maximal perfect band of depth ≥ 2 with
/// the given tile size (same size per dimension, the paper's setup), then
/// recurses into the point-loop bodies. Bands of depth 1 are left alone.
pub fn tile_all(prog: &mut Program, node: Node, tile: i64) -> Result<Node, PolymixError> {
    match node {
        Node::Seq(xs) => Ok(Node::Seq(
            xs.into_iter()
                .map(|x| tile_all(prog, x, tile))
                .collect::<Result<_, _>>()?,
        )),
        Node::Guard(g, b) => Ok(Node::Guard(g, Box::new(tile_all(prog, *b, tile)?))),
        Node::Stmt(s) => Ok(Node::Stmt(s)),
        Node::Loop(l) => {
            let node = Node::Loop(l);
            let depth = band_depth(&node);
            if depth >= 2 {
                let sizes = vec![tile; depth];
                let tiled = tile_band(prog, node, &sizes)?;
                // Recurse into the innermost body (below 2k loops).
                descend_and_recurse(prog, tiled, 2 * depth, tile)
            } else {
                // Single loop: recurse into body.
                match node {
                    Node::Loop(mut l) => {
                        l.body = tile_all(prog, l.body, tile)?;
                        Ok(Node::Loop(l))
                    }
                    other => Ok(other),
                }
            }
        }
    }
}

fn descend_and_recurse(
    prog: &mut Program,
    node: Node,
    levels: usize,
    tile: i64,
) -> Result<Node, PolymixError> {
    if levels == 0 {
        return tile_all(prog, node, tile);
    }
    match node {
        Node::Loop(mut l) => {
            l.body = descend_and_recurse(prog, l.body, levels - 1, tile)?;
            Ok(Node::Loop(l))
        }
        other => tile_all(prog, other, tile),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{alloc_arrays, execute};
    use crate::tree::{Program, StmtNode};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Expr;

    /// `for i in 0..N: for j in 0..N: A[i][j] = A[i][j] + 1` with AST.
    fn grid_program(n: i64) -> Program {
        let mut b = ScopBuilder::new("grid", &["N"], &[n]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let body = Expr::add(b.rd(a, &[ix("i"), ix("j")]), Expr::Const(1.0));
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let body = Node::loop_(Loop {
            var: 0,
            name: "i".into(),
            lo: Bound::con(0),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: Par::Seq,
            body: Node::loop_(Loop {
                var: 1,
                name: "j".into(),
                lo: Bound::con(0),
                hi: Bound::of(LinExpr::param(0).plus(-1)),
                step: 1,
                par: Par::Seq,
                body: Node::Stmt(StmtNode {
                    stmt_idx: 0,
                    iter_exprs: vec![LinExpr::var(0), LinExpr::var(1)],
                }),
            }),
        });
        Program {
            scop,
            body,
            n_vars: 2,
        }
    }

    fn run_all_ones(p: &Program, n: i64) -> Vec<f64> {
        let mut arrays = alloc_arrays(&p.scop, &[n]);
        execute(p, &[n], &mut arrays);
        arrays[0].clone()
    }

    #[test]
    fn band_depth_of_grid_is_two() {
        let p = grid_program(4);
        assert_eq!(band_depth(&p.body), 2);
    }

    #[test]
    fn tiling_preserves_semantics_including_ragged_edges() {
        for n in [1, 3, 7, 8, 10] {
            let mut p = grid_program(n);
            let body = p.body.clone();
            p.body = tile_band(&mut p, body, &[3, 3]).expect("tile");
            let out = run_all_ones(&p, n);
            assert_eq!(out, vec![1.0; (n * n) as usize], "n={n}");
        }
    }

    #[test]
    fn tiling_executes_each_point_exactly_once() {
        // A[i][j] += 1 would double-count if tiles overlapped.
        let n = 10;
        let mut p = grid_program(n);
        let body = p.body.clone();
        p.body = tile_band(&mut p, body, &[4, 3]).expect("tile");
        let out = run_all_ones(&p, n);
        assert!(out.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn tile_loops_inherit_parallelism() {
        let mut p = grid_program(6);
        if let Node::Loop(l) = &mut p.body {
            l.par = Par::Doall;
        }
        let body = p.body.clone();
        p.body = tile_band(&mut p, body, &[2, 2]).expect("tile");
        match &p.body {
            Node::Loop(t) => {
                assert_eq!(t.par, Par::Doall);
                assert!(t.name.ends_with('t'));
                assert_eq!(t.step, 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn skewed_then_tiled_triangular_band_is_correct() {
        let n = 9;
        let mut p = grid_program(n);
        // Skew j by i: j' = j + i (legal here; semantics preserved).
        assert!(skew(&mut p.body, 1, 0, 1));
        let out = run_all_ones(&p, n);
        assert_eq!(out, vec![1.0; (n * n) as usize]);
        // Now tile the skewed (triangular) band.
        let body = p.body.clone();
        p.body = tile_band(&mut p, body, &[4, 4]).expect("tile");
        let out = run_all_ones(&p, n);
        assert_eq!(out, vec![1.0; (n * n) as usize]);
    }

    #[test]
    fn unroll_guarded_epilogue_is_exact() {
        for n in [5, 8, 9] {
            let mut p = grid_program(n);
            // Unroll the inner j loop by 4.
            if let Node::Loop(i) = &mut p.body {
                if let Node::Loop(j) = &i.body {
                    i.body = unroll(j, 4).expect("unroll");
                }
            }
            let out = run_all_ones(&p, n);
            assert_eq!(out, vec![1.0; (n * n) as usize], "n={n}");
        }
    }

    #[test]
    fn unroll_and_jam_outer_by_two() {
        for n in [4, 5, 7] {
            let mut p = grid_program(n);
            let jammed = match &p.body {
                Node::Loop(l) => unroll_and_jam(l, 2).expect("jammable"),
                _ => panic!(),
            };
            p.body = jammed;
            let out = run_all_ones(&p, n);
            assert_eq!(out, vec![1.0; (n * n) as usize], "n={n}");
        }
    }

    #[test]
    fn unroll_and_jam_refuses_triangular_inner() {
        let mut p = grid_program(6);
        // Make the inner loop bounds depend on i.
        if let Node::Loop(l) = &mut p.body {
            if let Node::Loop(j) = &mut l.body {
                j.hi = Bound::of(LinExpr::var(0));
            }
        }
        if let Node::Loop(l) = &p.body {
            assert!(unroll_and_jam(l, 2).is_none());
        }
    }

    #[test]
    fn wavefront_preserves_semantics() {
        for n in [1, 4, 7] {
            let mut p = grid_program(n);
            let w = match &p.body {
                Node::Loop(l) => wavefront(l).expect("wavefrontable"),
                _ => panic!(),
            };
            p.body = w;
            let out = run_all_ones(&p, n);
            assert_eq!(out, vec![1.0; (n * n) as usize], "n={n}");
            // Inner loop must be doall.
            if let Node::Loop(w) = &p.body {
                if let Node::Loop(v) = &w.body {
                    assert_eq!(v.par, Par::Doall);
                } else {
                    panic!();
                }
            }
        }
    }

    #[test]
    fn tile_all_handles_nested_seq_structures() {
        // Two grid nests in sequence; both get tiled.
        let n = 6;
        let p1 = grid_program(n);
        let mut p = p1.clone();
        p.body = Node::Seq(vec![p1.body.clone(), p1.body.clone()]);
        let body = p.body.clone();
        p.body = tile_all(&mut p, body, 4).expect("tile_all");
        // Each grid increments once → value 2 everywhere.
        let out = run_all_ones(&p, n);
        assert_eq!(out, vec![2.0; (n * n) as usize]);
        // Structure: Seq of two tiled nests (4 loops deep each).
        if let Node::Seq(xs) = &p.body {
            assert_eq!(xs.len(), 2);
            assert_eq!(band_depth(&xs[0]), 4);
        } else {
            panic!();
        }
    }
}

/// Tiles the outermost `sizes.len()` levels of a possibly *imperfect*
/// nest by clamping: tile loops iterate box origins over the shared level
/// coordinates, the whole original structure becomes the tile body with
/// every level-`k` loop's bounds intersected with
/// `[u_k, u_k + size_k - 1]`.
///
/// Requirements (checked; returns `None` when unmet):
/// * at every level `k < sizes.len()` all loops have *identical* lower
///   and upper bounds,
/// * those bounds reference no loop variables of levels `>= 1` other than
///   shared chain variables — concretely, every variable they mention
///   must belong to a loop that is the unique loop of its level.
///
/// This is the classical "tile the fused band jointly" shape needed for
/// time-tiling imperfectly nested stencils (jacobi-style kernels).
pub fn tile_imperfect(prog: &mut Program, node: Node, sizes: &[i64]) -> Option<Node> {
    let m = sizes.len();
    // Collect per-level loop bound sets and the shared chain variables.
    fn collect<'a>(node: &'a Node, level: usize, out: &mut Vec<Vec<&'a Loop>>) {
        match node {
            Node::Seq(xs) => xs.iter().for_each(|x| collect(x, level, out)),
            Node::Guard(_, b) => collect(b, level, out),
            Node::Loop(l) => {
                if level < out.len() {
                    out[level].push(l);
                    collect(&l.body, level + 1, out);
                }
            }
            Node::Stmt(_) => {}
        }
    }
    let mut levels: Vec<Vec<&Loop>> = vec![Vec::new(); m];
    collect(&node, 0, &mut levels);
    // Every statement must sit below all m band levels; otherwise the
    // clamped body would re-execute shallow statements once per tile of
    // the missing levels (duplicating work — illegal).
    fn min_stmt_depth(node: &Node, level: usize, min: &mut usize) {
        match node {
            Node::Seq(xs) => xs.iter().for_each(|x| min_stmt_depth(x, level, min)),
            Node::Guard(_, b) => min_stmt_depth(b, level, min),
            Node::Loop(l) => min_stmt_depth(&l.body, level + 1, min),
            Node::Stmt(_) => *min = (*min).min(level),
        }
    }
    let mut min_depth = usize::MAX;
    min_stmt_depth(&node, 0, &mut min_depth);
    if min_depth < m {
        return None;
    }
    // Uniqueness / identical-bounds checks, and gather shared vars.
    let mut shared_vars: Vec<usize> = Vec::new();
    let mut reps_acc: Vec<(Bound, Bound)> = Vec::new();
    for lvl in levels.iter().take(m) {
        let first = lvl.first()?;
        if first.step != 1 || lvl.iter().any(|l| l.step != 1) {
            return None;
        }
        // Unify bounds across same-level loops: identical bounds pass
        // directly; single-expression bounds differing only in their
        // constant term unify to the min (lower) / max (upper) constant,
        // which over-approximates the union (point loops clamp exactly).
        let unified_lo = unify_level_bound(lvl, true)?;
        let unified_hi = unify_level_bound(lvl, false)?;
        // Bounds may only reference shared vars (of unique outer levels).
        let refs_ok = |b: &Bound| {
            b.exprs.iter().all(|be| {
                be.expr
                    .var_coeffs
                    .iter()
                    .all(|(v, _)| shared_vars.contains(v))
            })
        };
        if !refs_ok(&unified_lo) || !refs_ok(&unified_hi) {
            return None;
        }
        reps_acc.push((unified_lo, unified_hi));
        let _ = first;
        if lvl.len() == 1 {
            shared_vars.push(lvl[0].var);
        } else {
            // Multiple loops at this level: no shared var below here.
            // Bounds of deeper levels must then be var-free; keep going.
        }
    }

    // Unified representative bounds per level.
    let reps: Vec<(Bound, Bound)> = reps_acc;
    // Map from the unique chain vars to their tile vars for relaxation.
    let tile_vars: Vec<usize> = (0..m).map(|_| prog.fresh_var()).collect();
    let chain_map: Vec<(usize, usize, i64)> = levels[..m]
        .iter()
        .enumerate()
        .filter(|(_, lvl)| lvl.len() == 1)
        .map(|(k, lvl)| (lvl[0].var, tile_vars[k], sizes[k]))
        .collect();

    // Clamp every level-k loop in the body.
    let mut body = node;
    fn clamp(node: &mut Node, level: usize, tile_vars: &[usize], sizes: &[i64]) {
        match node {
            Node::Seq(xs) => xs
                .iter_mut()
                .for_each(|x| clamp(x, level, tile_vars, sizes)),
            Node::Guard(_, b) => clamp(b, level, tile_vars, sizes),
            Node::Loop(l) => {
                if level < tile_vars.len() {
                    l.lo.exprs.push(BoundExpr {
                        expr: LinExpr::var(tile_vars[level]),
                        denom: 1,
                    });
                    l.hi.exprs.push(BoundExpr {
                        expr: LinExpr::var(tile_vars[level]).plus(sizes[level] - 1),
                        denom: 1,
                    });
                    clamp(&mut l.body, level + 1, tile_vars, sizes);
                }
            }
            Node::Stmt(_) => {}
        }
    }
    clamp(&mut body, 0, &tile_vars, sizes);

    // Parallelism marks of unique level-k loops migrate to tile loops
    // (and the point loop is demoted to sequential).
    let mut pars = vec![Par::Seq; m];
    {
        fn demote(node: &mut Node, level: usize, pars: &mut Vec<Par>) {
            match node {
                Node::Seq(xs) => xs.iter_mut().for_each(|x| demote(x, level, pars)),
                Node::Guard(_, b) => demote(b, level, pars),
                Node::Loop(l) => {
                    if level < pars.len() {
                        if l.par != Par::Seq {
                            pars[level] = l.par;
                            l.par = Par::Seq;
                        }
                        demote(&mut l.body, level + 1, pars);
                    }
                }
                Node::Stmt(_) => {}
            }
        }
        demote(&mut body, 0, &mut pars);
    }
    // Wrap in tile loops, innermost tile loop first.
    for k in (0..m).rev() {
        let (lo, hi) = &reps[k];
        let lo = relax_bound(lo, &chain_map, true);
        let hi = relax_bound(hi, &chain_map, false);
        body = Node::loop_(Loop {
            var: tile_vars[k],
            name: format!("u{k}t"),
            lo,
            hi,
            step: sizes[k],
            par: pars[k],
            body,
        });
    }
    Some(body)
}

/// Unifies the bounds of all loops at one level for joint tiling: equal
/// bounds pass through; single-expression bounds with identical variable /
/// parameter coefficients unify to the min (lower) or max (upper)
/// constant term. Returns `None` when unification is impossible.
fn unify_level_bound(lvl: &[&Loop], lower: bool) -> Option<Bound> {
    let get = |l: &Loop| if lower { l.lo.clone() } else { l.hi.clone() };
    let first = get(lvl[0]);
    if lvl.iter().all(|l| get(l) == first) {
        return Some(first);
    }
    // Constant-term-only differences on single-expression bounds.
    if first.exprs.len() != 1 || first.exprs[0].denom != 1 {
        return None;
    }
    let base = &first.exprs[0].expr;
    let mut c = base.c;
    for l in &lvl[1..] {
        let b = get(l);
        if b.exprs.len() != 1 || b.exprs[0].denom != 1 {
            return None;
        }
        let e = &b.exprs[0].expr;
        if e.var_coeffs != base.var_coeffs || e.param_coeffs != base.param_coeffs {
            return None;
        }
        c = if lower { c.min(e.c) } else { c.max(e.c) };
    }
    let mut expr = base.clone();
    expr.c = c;
    Some(Bound::of(expr))
}

#[cfg(test)]
mod imperfect_tests {
    use super::*;
    use crate::interp::{alloc_arrays, execute};
    use crate::tree::{Program, StmtNode};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Expr;

    /// t-loop containing two sibling i-loops (jacobi shape), as SCoP+AST.
    fn two_phase(n: i64, t: i64) -> Program {
        let mut b = ScopBuilder::new("tp", &["T", "N"], &[t, n]);
        let a = b.array("A", &["N"]);
        let c = b.array("B", &["N"]);
        b.enter("t", con(0), par("T"));
        b.enter("i", con(0), par("N"));
        let body = Expr::add(b.rd(a, &[ix("i")]), Expr::Const(1.0));
        b.stmt("S0", c, &[ix("i")], body);
        b.exit();
        b.enter("i", con(0), par("N"));
        let body = b.rd(c, &[ix("i")]);
        b.stmt("S1", a, &[ix("i")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let mk_inner = |stmt_idx: usize, var: usize| {
            Node::loop_(Loop {
                var,
                name: "i".into(),
                lo: Bound::con(0),
                hi: Bound::of(LinExpr::param(1).plus(-1)),
                step: 1,
                par: Par::Seq,
                body: Node::Stmt(StmtNode {
                    stmt_idx,
                    iter_exprs: vec![LinExpr::var(0), LinExpr::var(var)],
                }),
            })
        };
        let body = Node::loop_(Loop {
            var: 0,
            name: "t".into(),
            lo: Bound::con(0),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: Par::Seq,
            body: Node::Seq(vec![mk_inner(0, 1), mk_inner(1, 2)]),
        });
        Program {
            scop,
            body,
            n_vars: 3,
        }
    }

    #[test]
    fn imperfect_tiling_preserves_semantics() {
        for (t, n) in [(1i64, 5i64), (4, 9), (6, 16)] {
            let base = two_phase(n, t);
            let mut expected = alloc_arrays(&base.scop, &[t, n]);
            execute(&base, &[t, n], &mut expected);

            let mut tiled = two_phase(n, t);
            let body = tiled.body.clone();
            let new = tile_imperfect(&mut tiled, body, &[2, 4]).expect("tilable");
            tiled.body = new;
            let mut actual = alloc_arrays(&tiled.scop, &[t, n]);
            execute(&tiled, &[t, n], &mut actual);
            assert_eq!(actual, expected, "t={t} n={n}");
        }
    }

    #[test]
    fn imperfect_tiling_unifies_constant_offset_bounds() {
        // A shorter second i-loop (same coefficients, different constant)
        // unifies: the tile hull covers both, point loops clamp.
        let t = 3;
        let n = 8;
        let mut p = two_phase(n, t);
        if let Node::Loop(tl) = &mut p.body {
            if let Node::Seq(xs) = &mut tl.body {
                if let Node::Loop(l2) = &mut xs[1] {
                    l2.hi = Bound::of(LinExpr::param(1).plus(-2));
                }
            }
        }
        let mut expected = alloc_arrays(&p.scop, &[t, n]);
        execute(&p, &[t, n], &mut expected);
        let body = p.body.clone();
        let tiled = tile_imperfect(&mut p, body, &[2, 4]).expect("unifiable");
        p.body = tiled;
        let mut actual = alloc_arrays(&p.scop, &[t, n]);
        execute(&p, &[t, n], &mut actual);
        assert_eq!(actual, expected);
    }

    #[test]
    fn imperfect_tiling_rejects_incomparable_bounds() {
        let mut p = two_phase(8, 3);
        // Second i-loop bounded by 2·N: different coefficients, no
        // unification possible.
        if let Node::Loop(tl) = &mut p.body {
            if let Node::Seq(xs) = &mut tl.body {
                if let Node::Loop(l2) = &mut xs[1] {
                    l2.hi = Bound::of(LinExpr::param(1).scale(2).plus(-1));
                }
            }
        }
        let body = p.body.clone();
        assert!(tile_imperfect(&mut p, body, &[2, 4]).is_none());
    }

    #[test]
    fn imperfect_tile_loop_structure() {
        let mut p = two_phase(8, 4);
        let body = p.body.clone();
        let new = tile_imperfect(&mut p, body, &[2, 4]).unwrap();
        // Two tile loops wrapping the original t loop.
        match &new {
            Node::Loop(u0) => {
                assert_eq!(u0.step, 2);
                match &u0.body {
                    Node::Loop(u1) => {
                        assert_eq!(u1.step, 4);
                        assert!(matches!(&u1.body, Node::Loop(t) if t.name == "t"));
                    }
                    _ => panic!("expected inner tile loop"),
                }
            }
            _ => panic!("expected tile loop"),
        }
        p.body = new;
    }
}

/// Fully unrolls a loop whose trip count is a compile-time constant
/// (constant bounds and step): the body is replicated once per iteration
/// with the variable substituted by its value. Returns `None` when the
/// bounds are not constant or the trip count exceeds `limit`.
pub fn full_unroll(l: &Loop, limit: i64) -> Option<Node> {
    let lo = l.lo.is_const()?;
    let hi = l.hi.is_const()?;
    if hi < lo {
        return Some(Node::Seq(vec![]));
    }
    let trips = (hi - lo) / l.step + 1;
    if trips > limit {
        return None;
    }
    let mut out = Vec::with_capacity(trips as usize);
    let mut v = lo;
    while v <= hi {
        let mut b = l.body.clone();
        b.subst_var(l.var, &LinExpr::con(v));
        out.push(b);
        v += l.step;
    }
    Some(Node::Seq(out))
}

/// Distributes a loop over the members of its `Seq` body:
/// `for v { A; B }` becomes `for v { A }; for v { B }` (each clone gets a
/// fresh variable). **Legality** (no backward dependence from a later
/// member to an earlier one carried by this loop) is the caller's
/// responsibility. Returns `None` when the body is not a `Seq`.
pub fn distribute(prog: &mut Program, l: &Loop) -> Option<Node> {
    let Node::Seq(members) = &l.body else {
        return None;
    };
    let out = members
        .iter()
        .map(|m| {
            let var = prog.fresh_var();
            let mut body = m.clone();
            body.subst_var(l.var, &LinExpr::var(var));
            Node::loop_(Loop {
                var,
                name: l.name.clone(),
                lo: l.lo.clone(),
                hi: l.hi.clone(),
                step: l.step,
                par: l.par,
                body,
            })
        })
        .collect();
    Some(Node::Seq(out))
}

/// Fuses two adjacent loops with identical bounds and step:
/// `for u { A }; for v { B }` becomes `for u { A; B[v := u] }`.
/// **Legality** (no dependence from the second loop's earlier iterations
/// to the first loop's later ones) is the caller's responsibility.
/// Returns `None` when bounds or steps differ.
pub fn fuse(a: &Loop, b: &Loop) -> Option<Node> {
    if a.lo != b.lo || a.hi != b.hi || a.step != b.step {
        return None;
    }
    let mut b_body = b.body.clone();
    b_body.subst_var(b.var, &LinExpr::var(a.var));
    let body = match a.body.clone() {
        Node::Seq(mut xs) => {
            xs.push(b_body);
            Node::Seq(xs)
        }
        other => Node::Seq(vec![other, b_body]),
    };
    Some(Node::loop_(Loop {
        var: a.var,
        name: a.name.clone(),
        lo: a.lo.clone(),
        hi: a.hi.clone(),
        step: a.step,
        par: Par::Seq,
        body,
    }))
}

#[cfg(test)]
mod structure_tests {
    use super::*;
    use crate::interp::{alloc_arrays, execute};
    use crate::tree::{Program, StmtNode};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Expr;

    /// Two independent statements over the same range, as one fused loop.
    fn two_stmt_loop(n: i64) -> Program {
        let mut b = ScopBuilder::new("ts", &["N"], &[n]);
        let x = b.array("X", &["N"]);
        let y = b.array("Y", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S0", x, &[ix("i")], Expr::Iter(0));
        let body = Expr::mul(b.rd(x, &[ix("i")]), Expr::Const(2.0));
        b.stmt("S1", y, &[ix("i")], body);
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let mk = |idx: usize| {
            Node::Stmt(StmtNode {
                stmt_idx: idx,
                iter_exprs: vec![LinExpr::var(0)],
            })
        };
        Program {
            scop,
            body: Node::loop_(Loop {
                var: 0,
                name: "i".into(),
                lo: Bound::con(0),
                hi: Bound::of(LinExpr::param(0).plus(-1)),
                step: 1,
                par: Par::Seq,
                body: Node::Seq(vec![mk(0), mk(1)]),
            }),
            n_vars: 1,
        }
    }

    fn outputs(p: &Program, n: i64) -> Vec<Vec<f64>> {
        let mut arrays = alloc_arrays(&p.scop, &[n]);
        execute(p, &[n], &mut arrays);
        arrays
    }

    #[test]
    fn distribute_preserves_independent_statements() {
        let n = 9;
        let base = two_stmt_loop(n);
        let expected = outputs(&base, n);
        let mut p = two_stmt_loop(n);
        let l = match &p.body {
            Node::Loop(l) => l.as_ref().clone(),
            _ => panic!(),
        };
        p.body = distribute(&mut p, &l).expect("distributable");
        assert_eq!(outputs(&p, n), expected);
        // Two top-level loops now.
        match &p.body {
            Node::Seq(xs) => assert_eq!(xs.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn fuse_inverts_distribute() {
        let n = 7;
        let base = two_stmt_loop(n);
        let expected = outputs(&base, n);
        let mut p = two_stmt_loop(n);
        let l = match &p.body {
            Node::Loop(l) => l.as_ref().clone(),
            _ => panic!(),
        };
        let distributed = distribute(&mut p, &l).unwrap();
        let (a, b) = match &distributed {
            Node::Seq(xs) => match (&xs[0], &xs[1]) {
                (Node::Loop(a), Node::Loop(b)) => (a.as_ref().clone(), b.as_ref().clone()),
                _ => panic!(),
            },
            _ => panic!(),
        };
        p.body = fuse(&a, &b).expect("fusable");
        assert_eq!(outputs(&p, n), expected);
    }

    #[test]
    fn fuse_rejects_mismatched_bounds() {
        let mut p = two_stmt_loop(5);
        let l = match &p.body {
            Node::Loop(l) => l.as_ref().clone(),
            _ => panic!(),
        };
        let d = distribute(&mut p, &l).unwrap();
        let Node::Seq(xs) = d else { panic!() };
        let (Node::Loop(a), Node::Loop(b)) = (xs[0].clone(), xs[1].clone()) else {
            panic!()
        };
        let mut shorter = *b;
        shorter.hi = Bound::con(3);
        assert!(fuse(&a, &shorter).is_none());
        let mut stepped = a.as_ref().clone();
        stepped.step = 2;
        assert!(fuse(&stepped, &a).is_none());
    }

    #[test]
    fn full_unroll_replicates_constant_trip_loops() {
        let n = 4;
        let base = two_stmt_loop(n);
        let expected = outputs(&base, n);
        let mut p = two_stmt_loop(n);
        // Pin the loop to constant bounds (N = 4).
        if let Node::Loop(l) = &mut p.body {
            l.hi = Bound::con(3);
            let unrolled = full_unroll(l, 16).expect("constant trip");
            p.body = unrolled;
        }
        assert_eq!(outputs(&p, n), expected);
        assert_eq!(p.body.count_stmts(), 8); // 4 iterations × 2 statements
    }

    #[test]
    fn full_unroll_refuses_large_or_dynamic_loops() {
        let p = two_stmt_loop(5);
        if let Node::Loop(l) = &p.body {
            assert!(full_unroll(l, 16).is_none(), "parametric bound");
            let mut c = l.as_ref().clone();
            c.hi = Bound::con(99);
            assert!(full_unroll(&c, 16).is_none(), "trip over limit");
            c.hi = Bound::con(-1);
            assert!(matches!(full_unroll(&c, 16), Some(Node::Seq(v)) if v.is_empty()));
        }
    }
}
