//! Stable text rendering of programs, for diagnostics and snapshot tests.

use crate::tree::{Bound, LinExpr, Node, Par, Program};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders the program's loop tree as indented pseudo-code.
pub fn render(prog: &Program) -> String {
    let mut names: HashMap<usize, String> = HashMap::new();
    collect_names(&prog.body, &mut names);
    let mut out = String::new();
    walk(prog, &prog.body, 0, &names, &mut out);
    out
}

fn collect_names(node: &Node, names: &mut HashMap<usize, String>) {
    match node {
        Node::Seq(xs) => xs.iter().for_each(|x| collect_names(x, names)),
        Node::Guard(_, b) => collect_names(b, names),
        Node::Loop(l) => {
            names.entry(l.var).or_insert_with(|| l.name.clone());
            collect_names(&l.body, names);
        }
        Node::Stmt(_) => {}
    }
}

fn expr_str(e: &LinExpr, names: &HashMap<usize, String>, params: &[String]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for &(v, c) in &e.var_coeffs {
        let n = names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| format!("v{v}"));
        parts.push(term(c, &n, parts.is_empty()));
    }
    for &(p, c) in &e.param_coeffs {
        let n = params.get(p).cloned().unwrap_or_else(|| format!("p{p}"));
        parts.push(term(c, &n, parts.is_empty()));
    }
    if e.c != 0 || parts.is_empty() {
        if parts.is_empty() {
            parts.push(format!("{}", e.c));
        } else if e.c > 0 {
            parts.push(format!(" + {}", e.c));
        } else {
            parts.push(format!(" - {}", -e.c));
        }
    }
    parts.concat()
}

fn term(c: i64, name: &str, first: bool) -> String {
    match (c, first) {
        (1, true) => name.to_string(),
        (-1, true) => format!("-{name}"),
        (c, true) => format!("{c}*{name}"),
        (1, false) => format!(" + {name}"),
        (-1, false) => format!(" - {name}"),
        (c, false) if c > 0 => format!(" + {c}*{name}"),
        (c, false) => format!(" - {}*{name}", -c),
    }
}

fn bound_str(
    b: &Bound,
    lower: bool,
    names: &HashMap<usize, String>,
    params: &[String],
) -> String {
    let parts: Vec<String> = b
        .exprs
        .iter()
        .map(|be| {
            let s = expr_str(&be.expr, names, params);
            if be.denom == 1 {
                s
            } else if lower {
                format!("ceil({s}, {})", be.denom)
            } else {
                format!("floor({s}, {})", be.denom)
            }
        })
        .collect();
    if let [only] = parts.as_slice() {
        only.clone()
    } else if lower {
        format!("max({})", parts.join(", "))
    } else {
        format!("min({})", parts.join(", "))
    }
}

fn walk(
    prog: &Program,
    node: &Node,
    indent: usize,
    names: &HashMap<usize, String>,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Seq(xs) => xs.iter().for_each(|x| walk(prog, x, indent, names, out)),
        Node::Guard(gs, b) => {
            let conds: Vec<String> = gs
                .iter()
                .map(|g| format!("{} >= 0", expr_str(g, names, &prog.scop.params)))
                .collect();
            let _ = writeln!(out, "{pad}if {}:", conds.join(" && "));
            walk(prog, b, indent + 1, names, out);
        }
        Node::Loop(l) => {
            let kw = match l.par {
                Par::Seq => "for",
                Par::Doall => "parfor",
                Par::Reduction => "redfor",
                Par::Pipeline => "pipefor",
                Par::Wavefront => "wavefor",
            };
            let lo = bound_str(&l.lo, true, names, &prog.scop.params);
            let hi = bound_str(&l.hi, false, names, &prog.scop.params);
            let step = if l.step == 1 {
                String::new()
            } else {
                format!(" step {}", l.step)
            };
            let _ = writeln!(out, "{pad}{kw} {} = {lo} .. {hi}{step}:", l.name);
            walk(prog, &l.body, indent + 1, names, out);
        }
        Node::Stmt(s) => {
            let stmt = &prog.scop.statements[s.stmt_idx];
            let args: Vec<String> = s
                .iter_exprs
                .iter()
                .map(|e| expr_str(e, names, &prog.scop.params))
                .collect();
            let _ = writeln!(out, "{pad}{}({})", stmt.name, args.join(", "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Loop, StmtNode};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Expr;

    #[test]
    fn renders_loop_and_stmt() {
        let mut b = ScopBuilder::new("t", &["N"], &[4]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S", a, &[ix("i")], Expr::Const(0.0));
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let prog = Program {
            scop,
            body: Node::loop_(Loop {
                var: 0,
                name: "i".into(),
                lo: Bound::con(0),
                hi: Bound::of(LinExpr::param(0).plus(-1)),
                step: 1,
                par: crate::tree::Par::Doall,
                body: Node::Stmt(StmtNode {
                    stmt_idx: 0,
                    iter_exprs: vec![LinExpr::var(0)],
                }),
            }),
            n_vars: 1,
        };
        let s = render(&prog);
        assert_eq!(s, "parfor i = 0 .. N - 1:\n  S(i)\n");
    }

    #[test]
    fn renders_max_min_bounds_and_guards() {
        let mut b = ScopBuilder::new("t", &["N"], &[4]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S", a, &[ix("i")], Expr::Const(0.0));
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let lo = Bound {
            exprs: vec![
                crate::tree::BoundExpr {
                    expr: LinExpr::con(0),
                    denom: 1,
                },
                crate::tree::BoundExpr {
                    expr: LinExpr::param(0).plus(-8),
                    denom: 2,
                },
            ],
        };
        let prog = Program {
            scop,
            body: Node::loop_(Loop {
                var: 0,
                name: "i".into(),
                lo,
                hi: Bound::of(LinExpr::param(0).plus(-1)),
                step: 2,
                par: crate::tree::Par::Seq,
                body: Node::Guard(
                    vec![LinExpr::var(0).plus(-1)],
                    Box::new(Node::Stmt(StmtNode {
                        stmt_idx: 0,
                        iter_exprs: vec![LinExpr::var(0)],
                    })),
                ),
            }),
            n_vars: 1,
        };
        let s = render(&prog);
        assert!(s.contains("max(0, ceil(N - 8, 2))"), "{s}");
        assert!(s.contains("step 2"), "{s}");
        assert!(s.contains("if i - 1 >= 0:"), "{s}");
    }
}
