//! Tree-walking interpreter for [`Program`]s.
//!
//! This is the workspace's semantic oracle: every optimized program is
//! executed here (on miniature datasets) and compared element-by-element
//! against the kernel's native Rust reference implementation. It also
//! drives the cache simulator by reporting every array access in
//! execution order.

use crate::tree::{Node, Program, StmtNode};
use polymix_ir::expr::Expr;
use polymix_ir::Scop;

/// One array access performed by the interpreter, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessEvent {
    /// Array index within the SCoP.
    pub array: usize,
    /// Linearized (row-major) element offset.
    pub offset: usize,
    /// Write or read.
    pub is_write: bool,
}

/// Allocates zero-initialized storage for every array of the SCoP at the
/// given parameter values.
pub fn alloc_arrays(scop: &Scop, params: &[i64]) -> Vec<Vec<f64>> {
    scop.arrays
        .iter()
        .map(|a| vec![0.0; a.len(params).max(1)])
        .collect()
}

struct Interp<'a, F: FnMut(AccessEvent)> {
    scop: &'a Scop,
    params: &'a [i64],
    extents: Vec<Vec<i64>>,
    arrays: &'a mut [Vec<f64>],
    vars: Vec<i64>,
    observer: F,
}

impl<F: FnMut(AccessEvent)> Interp<'_, F> {
    fn run(&mut self, node: &Node) {
        match node {
            Node::Seq(xs) => xs.iter().for_each(|x| self.run(x)),
            Node::Guard(gs, b) => {
                if gs.iter().all(|g| g.eval(&self.vars, self.params) >= 0) {
                    self.run(b);
                }
            }
            Node::Loop(l) => {
                let lo = l.lo.eval_lower(&self.vars, self.params);
                let hi = l.hi.eval_upper(&self.vars, self.params);
                assert!(l.step > 0, "non-positive loop step");
                let mut v = lo;
                while v <= hi {
                    self.vars[l.var] = v;
                    self.run(&l.body);
                    v += l.step;
                }
            }
            Node::Stmt(s) => self.exec_stmt(s),
        }
    }

    fn exec_stmt(&mut self, s: &StmtNode) {
        let stmt = &self.scop.statements[s.stmt_idx];
        debug_assert_eq!(s.iter_exprs.len(), stmt.dim, "iter expr arity");
        let iters: Vec<i64> = s
            .iter_exprs
            .iter()
            .map(|e| e.eval(&self.vars, self.params))
            .collect();
        let value = self.eval_expr(&stmt.body, &iters);
        let (arr, off) = self.locate(stmt.write.array.0, &stmt.write.map, &iters);
        (self.observer)(AccessEvent {
            array: arr,
            offset: off,
            is_write: true,
        });
        self.arrays[arr][off] = value;
    }

    fn eval_expr(&mut self, e: &Expr, iters: &[i64]) -> f64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Iter(k) => iters[*k] as f64,
            Expr::Param(k) => self.params[*k] as f64,
            Expr::Bin(op, a, b) => {
                let x = self.eval_expr(a, iters);
                let y = self.eval_expr(b, iters);
                op.apply(x, y)
            }
            Expr::Un(op, a) => {
                let x = self.eval_expr(a, iters);
                op.apply(x)
            }
            Expr::Read { array, subs } => {
                let (arr, off) = self.locate(array.0, subs, iters);
                (self.observer)(AccessEvent {
                    array: arr,
                    offset: off,
                    is_write: false,
                });
                self.arrays[arr][off]
            }
        }
    }

    /// Resolves an access (affine subscript rows) to `(array, offset)`.
    fn locate(&self, array: usize, rows: &[Vec<i64>], iters: &[i64]) -> (usize, usize) {
        let ext = &self.extents[array];
        debug_assert_eq!(rows.len(), ext.len(), "array rank mismatch");
        let mut off: i64 = 0;
        for (dim, row) in rows.iter().enumerate() {
            let d = iters.len();
            let p = self.params.len();
            debug_assert_eq!(row.len(), d + p + 1);
            let idx: i64 = row[..d].iter().zip(iters).map(|(a, x)| a * x).sum::<i64>()
                + row[d..d + p]
                    .iter()
                    .zip(self.params)
                    .map(|(a, n)| a * n)
                    .sum::<i64>()
                + row[d + p];
            debug_assert!(
                idx >= 0 && idx < ext[dim],
                "subscript {idx} out of bounds [0,{}) in array {array} dim {dim}",
                ext[dim]
            );
            off = off * ext[dim] + idx;
        }
        (array, off as usize)
    }
}

/// Executes the program on the given arrays.
pub fn execute(prog: &Program, params: &[i64], arrays: &mut [Vec<f64>]) {
    execute_traced(prog, params, arrays, |_| {});
}

/// Executes the program, reporting every array access to `observer`.
pub fn execute_traced(
    prog: &Program,
    params: &[i64],
    arrays: &mut [Vec<f64>],
    observer: impl FnMut(AccessEvent),
) {
    let extents = prog
        .scop
        .arrays
        .iter()
        .map(|a| a.extents(params))
        .collect();
    let mut it = Interp {
        scop: &prog.scop,
        params,
        extents,
        arrays,
        vars: vec![0; prog.n_vars.max(1)],
        observer,
    };
    it.run(&prog.body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Bound, LinExpr, Loop, Par};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};

    /// Builds `for i in 0..N: A[i] = A[i] + 1` as SCoP + hand-made AST.
    fn inc_program() -> Program {
        let mut b = ScopBuilder::new("inc", &["N"], &[5]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        let body = Expr::add(b.rd(a, &[ix("i")]), Expr::Const(1.0));
        b.stmt("S", a, &[ix("i")], body);
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let body = Node::loop_(Loop {
            var: 0,
            name: "i".into(),
            lo: Bound::con(0),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: Par::Seq,
            body: Node::Stmt(StmtNode {
                stmt_idx: 0,
                iter_exprs: vec![LinExpr::var(0)],
            }),
        });
        Program {
            scop,
            body,
            n_vars: 1,
        }
    }

    #[test]
    fn increments_every_element() {
        let p = inc_program();
        let mut arrays = alloc_arrays(&p.scop, &[5]);
        arrays[0] = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        execute(&p, &[5], &mut arrays);
        assert_eq!(arrays[0], vec![2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn trace_reports_read_then_write_per_iteration() {
        let p = inc_program();
        let mut arrays = alloc_arrays(&p.scop, &[3]);
        let mut events = Vec::new();
        execute_traced(&p, &[3], &mut arrays, |e| events.push(e));
        assert_eq!(events.len(), 6);
        assert!(!events[0].is_write && events[1].is_write);
        assert_eq!(events[0].offset, 0);
        assert_eq!(events[5].offset, 2);
    }

    #[test]
    fn guard_skips_iterations() {
        let mut p = inc_program();
        // Guard: only run when i - 2 >= 0.
        let inner = match &p.body {
            Node::Loop(l) => l.body.clone(),
            _ => panic!(),
        };
        let guarded = Node::Guard(vec![LinExpr::var(0).plus(-2)], Box::new(inner));
        if let Node::Loop(l) = &mut p.body {
            l.body = guarded;
        }
        let mut arrays = alloc_arrays(&p.scop, &[5]);
        execute(&p, &[5], &mut arrays);
        assert_eq!(arrays[0], vec![0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn step_respects_stride() {
        let mut p = inc_program();
        if let Node::Loop(l) = &mut p.body {
            l.step = 2;
        }
        let mut arrays = alloc_arrays(&p.scop, &[5]);
        execute(&p, &[5], &mut arrays);
        assert_eq!(arrays[0], vec![1.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn reversed_iteration_same_result_for_independent_loop() {
        // Reversal expressed via iter_exprs: i := N-1-v.
        let mut p = inc_program();
        if let Node::Loop(l) = &mut p.body {
            l.body.subst_var(0, &LinExpr::param(0).plus(-1).add_scaled(&LinExpr::var(0), -1));
        }
        let mut arrays = alloc_arrays(&p.scop, &[4]);
        execute(&p, &[4], &mut arrays);
        assert_eq!(arrays[0], vec![1.0; 4]);
    }
}
