//! Dependence polyhedra and the polyhedral dependence graph (PoDG).

use polymix_ir::schedule::Schedule;
use polymix_ir::scop::{Access, Scop, Statement, StmtId};
use polymix_math::{CmpOp, Constraint, Polyhedron};

/// Classification of a data dependence by access kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// write → read (true / RAW).
    Flow,
    /// read → write (WAR).
    Anti,
    /// write → write (WAW).
    Output,
}

/// One dependence polyhedron: all pairs `(x_src, y_dst)` of dependent
/// instances of the two statements, already restricted to pairs ordered
/// `src before dst` by the original schedules.
#[derive(Clone, Debug)]
pub struct Dep {
    /// Source statement.
    pub src: StmtId,
    /// Target statement.
    pub dst: StmtId,
    /// Kind by access classes.
    pub kind: DepKind,
    /// Source statement depth.
    pub src_dim: usize,
    /// Target statement depth.
    pub dst_dim: usize,
    /// The dependence polyhedron over `[x_src | y_dst | params]`.
    pub poly: Polyhedron,
    /// True when the conflicting accesses are both the lhs location of a
    /// reduction-shaped update of the *same* statement (`A[f] ⊕= e`); such
    /// self-dependences may be relaxed by reduction parallelization.
    pub is_reduction: bool,
}

impl Dep {
    /// Lifts a source-statement-local affine row (`[x | params | 1]`) into
    /// the dependence space (`[x | y | params | 1]`).
    pub fn lift_src_row(&self, row: &[i64]) -> Vec<i64> {
        lift_row(row, self.src_dim, self.dst_dim, /*is_src=*/ true)
    }

    /// Lifts a target-statement-local affine row into the dependence space.
    pub fn lift_dst_row(&self, row: &[i64]) -> Vec<i64> {
        lift_row(row, self.dst_dim, self.src_dim, /*is_src=*/ false)
    }

    /// The affine row (dependence space) computing
    /// `dst_expr(y) - src_expr(x)` for two statement-local rows.
    pub fn diff_row(&self, src_row: &[i64], dst_row: &[i64]) -> Vec<i64> {
        let a = self.lift_src_row(src_row);
        let b = self.lift_dst_row(dst_row);
        a.iter().zip(&b).map(|(s, d)| d - s).collect()
    }
}

/// Lifts a statement-local row into dependence space. `own_dim` is the
/// depth of the statement the row belongs to, `other_dim` the depth of the
/// other side.
fn lift_row(row: &[i64], own_dim: usize, other_dim: usize, is_src: bool) -> Vec<i64> {
    let tail = row.len() - own_dim; // params + 1
    let n = own_dim + other_dim + tail;
    let mut out = vec![0i64; n];
    let own_off = if is_src { 0 } else { other_dim };
    out[own_off..own_off + own_dim].copy_from_slice(&row[..own_dim]);
    out[own_dim + other_dim..].copy_from_slice(&row[own_dim..]);
    out
}

/// The polyhedral dependence multigraph of a SCoP.
#[derive(Clone, Debug)]
pub struct Podg {
    /// Number of statements (nodes).
    pub n_stmts: usize,
    /// All dependence edges.
    pub deps: Vec<Dep>,
}

impl Podg {
    /// Edges outgoing from `s`.
    pub fn from(&self, s: StmtId) -> impl Iterator<Item = &Dep> {
        self.deps.iter().filter(move |d| d.src == s)
    }

    /// All edges between the two (unordered) statement sets.
    pub fn between<'a>(
        &'a self,
        a: &'a [StmtId],
        b: &'a [StmtId],
    ) -> impl Iterator<Item = &'a Dep> {
        self.deps.iter().filter(move |d| {
            (a.contains(&d.src) && b.contains(&d.dst))
                || (b.contains(&d.src) && a.contains(&d.dst))
        })
    }
}

/// Builds every dependence polyhedron of the SCoP under the statements'
/// *original* schedules: for each pair of accesses to the same array with
/// at least one write, and each lexicographic order branch, the polyhedron
/// conjoins both domains, subscript equality, and the precedence
/// constraint; nonempty systems become edges.
pub fn build_podg(scop: &Scop) -> Podg {
    let mut deps = Vec::new();
    let p = scop.n_params();
    for (si, s_src) in scop.statements.iter().enumerate() {
        for (sj, s_dst) in scop.statements.iter().enumerate() {
            for (a_src, w_src) in s_src.accesses() {
                for (a_dst, w_dst) in s_dst.accesses() {
                    if !w_src && !w_dst {
                        continue;
                    }
                    if a_src.array != a_dst.array {
                        continue;
                    }
                    let kind = match (w_src, w_dst) {
                        (true, true) => DepKind::Output,
                        (true, false) => DepKind::Flow,
                        (false, true) => DepKind::Anti,
                        (false, false) => unreachable!(),
                    };
                    let is_reduction = si == sj
                        && s_src.is_reduction_update()
                        && a_src.map == s_src.write.map
                        && a_dst.map == s_src.write.map
                        && a_src.array == s_src.write.array;
                    deps.extend(deps_for_pair(
                        scop,
                        StmtId(si),
                        StmtId(sj),
                        s_src,
                        s_dst,
                        &a_src,
                        &a_dst,
                        kind,
                        is_reduction,
                        p,
                    ));
                }
            }
        }
    }
    Podg {
        n_stmts: scop.statements.len(),
        deps,
    }
}

/// Builds the dependence polyhedra (one per order branch) for one access
/// pair, keeping only the nonempty ones.
#[allow(clippy::too_many_arguments)]
fn deps_for_pair(
    scop: &Scop,
    src: StmtId,
    dst: StmtId,
    s_src: &Statement,
    s_dst: &Statement,
    a_src: &Access,
    a_dst: &Access,
    kind: DepKind,
    is_reduction: bool,
    p: usize,
) -> Vec<Dep> {
    let (dr, ds) = (s_src.dim, s_dst.dim);
    let n = dr + ds + p;

    // Base system: both domains + subscript equality.
    let mut base = Polyhedron::universe(n);
    for c in s_src.domain.constraints() {
        base.add(Constraint {
            row: lift_row(&c.row, dr, ds, true),
            op: c.op,
        });
    }
    for c in s_dst.domain.constraints() {
        base.add(Constraint {
            row: lift_row(&c.row, ds, dr, false),
            op: c.op,
        });
    }
    debug_assert_eq!(a_src.map.len(), a_dst.map.len(), "array rank mismatch");
    for (r_src, r_dst) in a_src.map.iter().zip(&a_dst.map) {
        let s_row = lift_row(r_src, dr, ds, true);
        let d_row = lift_row(r_dst, ds, dr, false);
        let eq: Vec<i64> = d_row.iter().zip(&s_row).map(|(d, s)| d - s).collect();
        base.add(Constraint {
            row: eq,
            op: CmpOp::Eq,
        });
    }
    if base.is_empty() {
        return Vec::new();
    }

    // Precedence branches along the original 2d+1 timestamps.
    let sch_src = &s_src.schedule;
    let sch_dst = &s_dst.schedule;
    let mut out = Vec::new();
    let mut prefix = base; // accumulates equalities of already-walked positions
    let max_pos = 2 * dr.max(ds) + 1;
    for pos in 0..max_pos {
        if pos % 2 == 0 {
            // β position pos/2.
            let k = pos / 2;
            let (bs, bd) = (beta_at(sch_src, k), beta_at(sch_dst, k));
            match bs.cmp(&bd) {
                std::cmp::Ordering::Less => {
                    // src statically before dst: everything remaining is a dep.
                    if !prefix.is_empty() {
                        out.push(Dep {
                            src,
                            dst,
                            kind,
                            src_dim: dr,
                            dst_dim: ds,
                            poly: prefix.clone(),
                            is_reduction,
                        });
                    }
                    return out;
                }
                std::cmp::Ordering::Greater => {
                    // src statically after dst at this level: no more deps.
                    return out;
                }
                std::cmp::Ordering::Equal => {}
            }
        } else {
            // Loop position k = (pos-1)/2; may be exhausted on either side.
            let k = (pos - 1) / 2;
            if k >= dr || k >= ds {
                // One side ran out of loops: order decided by remaining β
                // comparisons only; continue the walk (β positions handle it).
                continue;
            }
            let row_s = lift_row(&sched_loop_row(sch_src, k, p), dr, ds, true);
            let row_d = lift_row(&sched_loop_row(sch_dst, k, p), ds, dr, false);
            let diff: Vec<i64> = row_d.iter().zip(&row_s).map(|(d, s)| d - s).collect();
            // Branch: strictly less at this loop level (diff >= 1).
            let mut strict = prefix.clone();
            let mut strict_row = diff.clone();
            strict_row[n] -= 1; // diff - 1 >= 0
            strict.add(Constraint::ge(strict_row));
            if !strict.is_empty() {
                out.push(Dep {
                    src,
                    dst,
                    kind,
                    src_dim: dr,
                    dst_dim: ds,
                    poly: strict,
                    is_reduction,
                });
            }
            // Continue with equality at this level.
            prefix.add(Constraint {
                row: diff,
                op: CmpOp::Eq,
            });
            if prefix.is_empty() {
                return out;
            }
        }
    }
    let _ = scop;
    out
}

fn beta_at(s: &Schedule, k: usize) -> i64 {
    s.beta.get(k).copied().unwrap_or(0)
}

fn sched_loop_row(s: &Schedule, k: usize, p: usize) -> Vec<i64> {
    debug_assert!(k < s.dim());
    debug_assert_eq!(s.n_params(), p);
    s.loop_row(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::expr::{BinOp, Expr};

    /// `for i: A[i] = A[i-1] + 1` — a uniform flow dependence of distance 1.
    fn chain_scop() -> Scop {
        let mut b = ScopBuilder::new("chain", &["N"], &[8]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(1), par("N"));
        let body = Expr::add(b.rd(a, &[ix("i") - con(1)]), Expr::Const(1.0));
        b.stmt("S", a, &[ix("i")], body);
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    #[test]
    fn chain_has_flow_anti_output_self_deps() {
        let scop = chain_scop();
        let g = build_podg(&scop);
        // flow: S(i) writes A[i], S(i+1) reads A[i] — distance 1.
        assert!(g.deps.iter().any(|d| d.kind == DepKind::Flow));
        // anti: S(i) reads A[i-1], S(i-1+2=i+... ) — reads A[i-1], later write A[i-1] happens at i-1 < i: no.
        // Output deps: A[i] written once per i → none.
        let flow: Vec<_> = g.deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flow.len(), 1);
        // The polyhedron should contain (x=1, y=2, N=8) : S(1) -> S(2).
        assert!(flow[0].poly.contains(&[1, 2, 8]));
        assert!(!flow[0].poly.contains(&[2, 1, 8]));
        assert!(!flow[0].poly.contains(&[1, 3, 8]));
    }

    /// Independent statements on different arrays have no dependences.
    #[test]
    fn disjoint_arrays_no_deps() {
        let mut b = ScopBuilder::new("disjoint", &["N"], &[8]);
        let a = b.array("A", &["N"]);
        let c = b.array("C", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S1", a, &[ix("i")], Expr::Const(1.0));
        b.stmt("S2", c, &[ix("i")], Expr::Const(2.0));
        b.exit();
        let g = build_podg(&b.finish().expect("well-formed SCoP"));
        assert!(g.deps.is_empty());
    }

    /// Producer/consumer across two loop nests: R writes tmp, U reads tmp.
    #[test]
    fn producer_consumer_across_nests() {
        let mut b = ScopBuilder::new("pc", &["N"], &[4]);
        let t = b.array("T", &["N"]);
        let o = b.array("O", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("W", t, &[ix("i")], Expr::Const(1.0));
        b.exit();
        b.enter("i", con(0), par("N"));
        let body = b.rd(t, &[ix("i")]);
        b.stmt("R", o, &[ix("i")], body);
        b.exit();
        let g = build_podg(&b.finish().expect("well-formed SCoP"));
        let flows: Vec<_> = g.deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1);
        let d = flows[0];
        assert_eq!(d.src, StmtId(0));
        assert_eq!(d.dst, StmtId(1));
        // Same-iteration dependence: (x=2, y=2).
        assert!(d.poly.contains(&[2, 2, 4]));
        assert!(!d.poly.contains(&[2, 3, 4]));
    }

    /// Reduction self-dependence is flagged.
    #[test]
    fn reduction_dep_flagged() {
        let mut b = ScopBuilder::new("red", &["N"], &[4]);
        let s = b.array("S", &["N"]);
        let x = b.array("X", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let rhs = b.rd(x, &[ix("i"), ix("j")]);
        b.stmt_update("U", s, &[ix("j")], BinOp::Add, rhs);
        b.exit();
        b.exit();
        let g = build_podg(&b.finish().expect("well-formed SCoP"));
        assert!(!g.deps.is_empty());
        // All self deps on S[j] are reduction deps; reads of X produce none.
        assert!(g.deps.iter().all(|d| d.is_reduction));
        // Carried by i (distance (+,0)): contains ((0,j),(1,j)).
        assert!(g.deps.iter().any(|d| d.poly.contains(&[0, 2, 1, 2, 4])));
    }

    /// Statements of different depths (R at depth 2 feeding S at depth 3).
    #[test]
    fn mixed_depth_dependences() {
        let mut b = ScopBuilder::new("mixed", &["N"], &[4]);
        let t = b.array("T", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        b.stmt("R", t, &[ix("i"), ix("j")], Expr::Const(0.0));
        b.enter("k", con(0), par("N"));
        let rhs = Expr::Const(1.0);
        b.stmt_update("S", t, &[ix("i"), ix("j")], BinOp::Add, rhs);
        b.exit();
        b.exit();
        b.exit();
        let g = build_podg(&b.finish().expect("well-formed SCoP"));
        // R -> S flow (R writes then S reads+writes), S -> S output/flow/anti.
        assert!(g
            .deps
            .iter()
            .any(|d| d.src == StmtId(0) && d.dst == StmtId(1)));
        // No S -> R edges (R precedes S in every shared iteration).
        assert!(!g
            .deps
            .iter()
            .any(|d| d.src == StmtId(1) && d.dst == StmtId(0)));
    }

    #[test]
    fn diff_row_computes_target_minus_source() {
        let scop = chain_scop();
        let g = build_podg(&scop);
        let d = &g.deps[0];
        // θ = i on both sides; diff row over [x, y, N, 1] = y - x.
        let row = d.diff_row(&[1, 0, 0], &[1, 0, 0]);
        assert_eq!(row, vec![-1, 1, 0, 0]);
    }
}
