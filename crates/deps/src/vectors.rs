//! Dependence distance / direction vectors of the transformed code.
//!
//! The AST-based stage works on dependence *vectors* rather than
//! polyhedra (Sec. IV): one element per loop level of the transformed
//! nest, each a constant distance when uniform or a direction otherwise.
//! Vectors are extracted from the dependence polyhedra by exact emptiness
//! queries, so they are as precise as the polyhedral representation.

use crate::depgraph::Dep;
use polymix_ir::Schedule;
use polymix_math::{Constraint, Polyhedron};

/// One element of a dependence vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepElem {
    /// Uniform distance.
    Const(i64),
    /// Always strictly positive but not constant (`+`).
    Plus,
    /// Always strictly negative but not constant (`-`).
    Minus,
    /// Always `>= 0` but neither constant nor strictly positive (`0+`).
    NonNeg,
    /// Always `<= 0` but neither constant nor strictly negative (`0-`).
    NonPos,
    /// Unknown sign (`*`).
    Star,
}

impl DepElem {
    /// The element is exactly zero for every dependent pair.
    pub fn is_zero(self) -> bool {
        self == DepElem::Const(0)
    }

    /// The element is `>= 0` for every dependent pair.
    pub fn is_nonneg(self) -> bool {
        matches!(self, DepElem::Const(c) if c >= 0)
            || matches!(self, DepElem::Plus | DepElem::NonNeg)
    }

    /// The element is `>= 1` for every dependent pair.
    pub fn is_positive(self) -> bool {
        matches!(self, DepElem::Const(c) if c >= 1) || self == DepElem::Plus
    }

    /// The element can be negative for some pair.
    pub fn may_be_negative(self) -> bool {
        !self.is_nonneg()
    }
}

/// True when `row <= bound` holds for every point of `poly`
/// (checked as emptiness of `poly ∧ row >= bound + 1`).
fn always_le(poly: &Polyhedron, row: &[i64], bound: i64) -> bool {
    let n = row.len() - 1;
    let mut p = poly.clone();
    let mut r = row.to_vec();
    r[n] -= bound + 1; // row - bound - 1 >= 0
    p.add(Constraint::ge(r));
    p.is_empty()
}

/// True when `row >= bound` holds for every point of `poly`.
fn always_ge(poly: &Polyhedron, row: &[i64], bound: i64) -> bool {
    let neg: Vec<i64> = row.iter().map(|&x| -x).collect();
    always_le(poly, &neg, -bound)
}

/// True when `row == c` for every point of `poly`.
fn always_eq(poly: &Polyhedron, row: &[i64], c: i64) -> bool {
    always_le(poly, row, c) && always_ge(poly, row, c)
}

/// Classifies the affine form `row` (dependence space, trailing constant
/// column) over the dependence polyhedron, using `sample_params` to find a
/// candidate constant distance.
pub fn classify(poly: &Polyhedron, row: &[i64], sample_params: &[i64]) -> DepElem {
    // Candidate constant from a sample point with parameters pinned.
    let n_vars = poly.n_dims() - sample_params.len();
    let mut pinned = poly.clone();
    for (k, &v) in sample_params.iter().enumerate() {
        pinned = pinned.fix(n_vars + k, v);
    }
    if let Some(pt) = pinned.sample() {
        let val: i64 = row[..poly.n_dims()]
            .iter()
            .zip(&pt)
            .map(|(a, x)| a * x)
            .sum::<i64>()
            + row[poly.n_dims()];
        if always_eq(poly, row, val) {
            return DepElem::Const(val);
        }
    }
    let ge1 = always_ge(poly, row, 1);
    let ge0 = ge1 || always_ge(poly, row, 0);
    let le_neg1 = !ge0 && always_le(poly, row, -1);
    let le0 = le_neg1 || always_le(poly, row, 0);
    match (ge1, ge0, le_neg1, le0) {
        (true, _, _, _) => DepElem::Plus,
        (false, true, _, _) => DepElem::NonNeg,
        (_, _, true, _) => DepElem::Minus,
        (_, _, false, true) => DepElem::NonPos,
        _ => DepElem::Star,
    }
}

/// Dependence vector of the edge under the (final) schedules, one element
/// per common loop level `0..depth`. `sample_params` supplies concrete
/// parameter values used only to *guess* constant distances (the guess is
/// then verified parametrically).
pub fn dep_vector(
    dep: &Dep,
    sched_src: &Schedule,
    sched_dst: &Schedule,
    depth: usize,
    sample_params: &[i64],
) -> Vec<DepElem> {
    // Each element is classified over the FULL dependence polyhedron —
    // the classical distance/direction vector. (No peeling of pairs
    // already separated at outer levels: tiling legality needs the
    // complete vector, and the parallelism detector filters on zero
    // prefixes itself.)
    (0..depth)
        .map(|k| {
            if k >= sched_src.dim() || k >= sched_dst.dim() {
                DepElem::Const(0)
            } else {
                let diff = dep.diff_row(&sched_src.loop_row(k), &sched_dst.loop_row(k));
                classify(&dep.poly, &diff, sample_params)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::{build_podg, DepKind};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Scop;

    /// jacobi-like: A[i][j] = B[i-1][j] + B[i][j-1]; B written elsewhere —
    /// simpler: seidel-style in-place: A[i][j] = A[i-1][j] + A[i][j-1].
    fn seidel_like() -> Scop {
        let mut b = ScopBuilder::new("sweep", &["N"], &[6]);
        b.assume_params_at_least(3);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(1), par("N"));
        let body = polymix_ir::Expr::add(
            b.rd(a, &[ix("i") - con(1), ix("j")]),
            b.rd(a, &[ix("i"), ix("j") - con(1)]),
        );
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    #[test]
    fn seidel_flow_distances_are_unit_vectors() {
        let scop = seidel_like();
        let g = build_podg(&scop);
        let s = &scop.statements[0].schedule;
        let mut vecs: Vec<Vec<DepElem>> = g
            .deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .map(|d| dep_vector(d, s, s, 2, &[6]))
            .collect();
        vecs.sort_by_key(|v| format!("{v:?}"));
        assert!(vecs.contains(&vec![DepElem::Const(0), DepElem::Const(1)]));
        assert!(vecs.contains(&vec![DepElem::Const(1), DepElem::Const(0)]));
    }

    #[test]
    fn classify_direction_nonuniform() {
        // Dep from S(x) to S(y) for all x < y (e.g. through a scalar-like
        // cell): distance y - x ranges over 1..N-1 → Plus.
        let mut b = ScopBuilder::new("allpairs", &["N"], &[6]);
        let a = b.array("A", &[]); // scalar cell
        let o = b.array("O", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("W", a, &[], polymix_ir::Expr::Const(1.0));
        let body = b.rd(a, &[]);
        b.stmt("R", o, &[ix("i")], body);
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let g = build_podg(&scop);
        // Flow W(x) -> R(y) splits into an x < y branch (non-constant,
        // strictly positive distance: Plus) and an x == y branch (Const 0).
        let sw = &scop.statements[0].schedule;
        let sr = &scop.statements[1].schedule;
        let vecs: Vec<Vec<DepElem>> = g
            .deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .map(|d| dep_vector(d, sw, sr, 1, &[6]))
            .collect();
        assert!(vecs.contains(&vec![DepElem::Plus]));
        assert!(vecs.contains(&vec![DepElem::Const(0)]));
    }

    #[test]
    fn reversal_flips_distance_sign() {
        let scop = seidel_like();
        let g = build_podg(&scop);
        let mut s = scop.statements[0].schedule.clone();
        s.reverse_level(0);
        let has_minus = g
            .deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .map(|d| dep_vector(d, &s, &s, 2, &[6]))
            .any(|v| v[0] == DepElem::Const(-1));
        assert!(has_minus);
    }

    #[test]
    fn skewing_makes_all_elements_nonnegative() {
        let scop = seidel_like();
        let g = build_podg(&scop);
        let mut s = scop.statements[0].schedule.clone();
        s.skew(1, 0, 1); // j' = i + j
        for d in g.deps.iter().filter(|d| d.kind == DepKind::Flow) {
            let v = dep_vector(d, &s, &s, 2, &[6]);
            assert!(v.iter().all(|e| e.is_nonneg()), "vector {v:?}");
        }
    }

    #[test]
    fn dep_elem_predicates() {
        assert!(DepElem::Const(0).is_zero());
        assert!(DepElem::Const(2).is_positive());
        assert!(DepElem::Plus.is_positive());
        assert!(!DepElem::NonNeg.is_positive());
        assert!(DepElem::NonNeg.is_nonneg());
        assert!(DepElem::Star.may_be_negative());
        assert!(DepElem::Minus.may_be_negative());
        assert!(!DepElem::Const(1).may_be_negative());
    }
}

/// Dependence vector under the schedules *composed with* a row-transform
/// matrix `cmat` (one row per target level; `cmat[k][j]` is the
/// coefficient of original schedule level `j` in new level `k`). This is
/// how AST-level skewing is modeled exactly: new level `k` computes
/// `Σ_j cmat[k][j] · θ_j`, and each element is re-classified over the
/// full dependence polyhedron.
pub fn dep_vector_transformed(
    dep: &Dep,
    sched_src: &Schedule,
    sched_dst: &Schedule,
    cmat: &[Vec<i64>],
    sample_params: &[i64],
) -> Vec<DepElem> {
    let base: Vec<Vec<i64>> = (0..cmat.len())
        .map(|j| {
            if j < sched_src.dim() && j < sched_dst.dim() {
                dep.diff_row(&sched_src.loop_row(j), &sched_dst.loop_row(j))
            } else {
                vec![0; dep.poly.n_dims() + 1]
            }
        })
        .collect();
    cmat.iter()
        .map(|row| {
            let mut diff = vec![0i64; dep.poly.n_dims() + 1];
            for (j, &c) in row.iter().enumerate() {
                if c != 0 {
                    for (d, &b) in diff.iter_mut().zip(&base[j]) {
                        *d += c * b;
                    }
                }
            }
            classify(&dep.poly, &diff, sample_params)
        })
        .collect()
}

#[cfg(test)]
mod transformed_tests {
    use super::*;
    use crate::depgraph::{build_podg, DepKind};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};

    #[test]
    fn transform_matrix_models_ast_skewing() {
        // seidel-like with dep (1, -1): skewing level 1 by level 0
        // (cmat row1 = [1, 1]) must make the component non-negative.
        let mut b = ScopBuilder::new("sk", &["N"], &[6]);
        b.assume_params_at_least(3);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(0), par("N") - con(1));
        let body = b.rd(a, &[ix("i") - con(1), ix("j") + con(1)]);
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let g = build_podg(&scop);
        let s = &scop.statements[0].schedule;
        let flow = g.deps.iter().find(|d| d.kind == DepKind::Flow).unwrap();
        let ident = vec![vec![1, 0], vec![0, 1]];
        let v0 = dep_vector_transformed(flow, s, s, &ident, &[6]);
        assert_eq!(v0, vec![DepElem::Const(1), DepElem::Const(-1)]);
        let skewed = vec![vec![1, 0], vec![1, 1]];
        let v1 = dep_vector_transformed(flow, s, s, &skewed, &[6]);
        assert_eq!(v1, vec![DepElem::Const(1), DepElem::Const(0)]);
        // Skew factor 2 overshoots to +1.
        let skewed2 = vec![vec![1, 0], vec![2, 1]];
        let v2 = dep_vector_transformed(flow, s, s, &skewed2, &[6]);
        assert_eq!(v2, vec![DepElem::Const(1), DepElem::Const(1)]);
    }

    #[test]
    fn identity_transform_matches_dep_vector() {
        let mut b = ScopBuilder::new("id", &["N"], &[5]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(1), par("N"));
        let body = polymix_ir::Expr::add(
            b.rd(a, &[ix("i") - con(1), ix("j")]),
            b.rd(a, &[ix("i"), ix("j") - con(1)]),
        );
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let g = build_podg(&scop);
        let s = &scop.statements[0].schedule;
        let ident = vec![vec![1, 0], vec![0, 1]];
        for d in &g.deps {
            assert_eq!(
                dep_vector(d, s, s, 2, &[5]),
                dep_vector_transformed(d, s, s, &ident, &[5])
            );
        }
    }
}
