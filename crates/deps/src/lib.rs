//! # polymix-deps
//!
//! Data-dependence analysis for polymix SCoPs — the reimplementation of
//! the Candl-style machinery the paper relies on (Sec. III-A):
//!
//! * [`depgraph`] builds *dependence polyhedra* for every pair of
//!   conflicting accesses and assembles the polyhedral dependence
//!   multigraph (**PoDG**),
//! * [`scc`] computes strongly connected components of the PoDG restricted
//!   to unsatisfied edges (the grouping Algorithm 2 recurses over),
//! * [`legality`] checks candidate schedule rows against dependence
//!   polyhedra and *peels* satisfied instances level by level,
//! * [`vectors`] extracts dependence distance/direction vectors of the
//!   transformed code, feeding the AST stage's parallelism detector and
//!   skewing/tiling legality tests (Sec. IV-A/B).
//!
//! ## Dependence-space layout
//!
//! A dependence from source statement `R` (depth `dR`) to target `S`
//! (depth `dS`) lives in the space `[x_R | y_S | params]` with an implicit
//! trailing constant column in constraint rows.

pub mod depgraph;
pub mod legality;
pub mod scc;
pub mod vectors;

pub use depgraph::{build_podg, Dep, DepKind, Podg};
pub use legality::{apply_beta, apply_loop_row, DepState, RowEffect};
pub use scc::sccs;
pub use vectors::{dep_vector, dep_vector_transformed, DepElem};
