//! Strongly connected components of the PoDG (Tarjan's algorithm).
//!
//! Algorithm 2 groups statements into SCCs of the dependence graph
//! restricted to *unsatisfied* edges at each recursion level; the returned
//! components are in a valid topological order of the condensation
//! (sources first), which is exactly the order fusion decisions need.

use polymix_ir::scop::StmtId;

/// Computes SCCs over the statement set `nodes` using the directed edges
/// `edges` (pairs `(src, dst)`), both restricted to `nodes`. Returns the
/// components in reverse-topological order of Tarjan, then reversed so that
/// dependence sources come first.
pub fn sccs(nodes: &[StmtId], edges: &[(StmtId, StmtId)]) -> Vec<Vec<StmtId>> {
    let n = nodes.len();
    let index_of = |s: StmtId| nodes.iter().position(|&x| x == s);
    // Adjacency restricted to the node set, self-loops dropped (they do not
    // affect the partition).
    let mut adj = vec![Vec::new(); n];
    for &(s, d) in edges {
        if s == d {
            continue;
        }
        if let (Some(si), Some(di)) = (index_of(s), index_of(d)) {
            if !adj[si].contains(&di) {
                adj[si].push(di);
            }
        }
    }

    struct Tarjan<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        comps: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                match self.index[w] {
                    None => {
                        self.visit(w);
                        self.low[v] = self.low[v].min(self.low[w]);
                    }
                    Some(iw) if self.on_stack[w] => {
                        self.low[v] = self.low[v].min(iw);
                    }
                    Some(_) => {}
                }
            }
            if Some(self.low[v]) == self.index[v] {
                let mut comp = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.comps.push(comp);
            }
        }
    }

    let mut t = Tarjan {
        adj: &adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        comps: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    // Tarjan emits components in reverse topological order.
    t.comps.reverse();
    t.comps
        .into_iter()
        .map(|c| {
            let mut ids: Vec<StmtId> = c.into_iter().map(|i| nodes[i]).collect();
            ids.sort(); // textual order within a component, deterministic
            ids
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> StmtId {
        StmtId(i)
    }

    #[test]
    fn chain_gives_singletons_in_topo_order() {
        let nodes = vec![s(0), s(1), s(2)];
        let edges = vec![(s(0), s(1)), (s(1), s(2))];
        let c = sccs(&nodes, &edges);
        assert_eq!(c, vec![vec![s(0)], vec![s(1)], vec![s(2)]]);
    }

    #[test]
    fn cycle_collapses() {
        let nodes = vec![s(0), s(1), s(2)];
        let edges = vec![(s(0), s(1)), (s(1), s(0)), (s(1), s(2))];
        let c = sccs(&nodes, &edges);
        assert_eq!(c, vec![vec![s(0), s(1)], vec![s(2)]]);
    }

    #[test]
    fn self_loops_do_not_merge() {
        let nodes = vec![s(0), s(1)];
        let edges = vec![(s(0), s(0)), (s(0), s(1))];
        let c = sccs(&nodes, &edges);
        assert_eq!(c, vec![vec![s(0)], vec![s(1)]]);
    }

    #[test]
    fn edges_outside_node_set_ignored() {
        let nodes = vec![s(1), s(2)];
        let edges = vec![(s(0), s(1)), (s(1), s(2))];
        let c = sccs(&nodes, &edges);
        assert_eq!(c, vec![vec![s(1)], vec![s(2)]]);
    }

    #[test]
    fn disconnected_nodes_are_singletons() {
        let nodes = vec![s(3), s(5), s(9)];
        let c = sccs(&nodes, &[]);
        assert_eq!(c.len(), 3);
        let mut all: Vec<StmtId> = c.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, nodes);
    }

    #[test]
    fn topological_order_respects_cross_edges() {
        // 2 -> 0, 2 -> 1, 1 -> 0 : expect [2], [1], [0].
        let nodes = vec![s(0), s(1), s(2)];
        let edges = vec![(s(2), s(0)), (s(2), s(1)), (s(1), s(0))];
        let c = sccs(&nodes, &edges);
        assert_eq!(c, vec![vec![s(2)], vec![s(1)], vec![s(0)]]);
    }
}
