//! Level-by-level legality checking and satisfaction peeling.
//!
//! The schedulers (both the paper's Algorithm 2 and the Pluto baseline)
//! fix schedule rows one loop level at a time, outermost first. For each
//! dependence edge we keep a [`DepState`]: the *remaining* dependence
//! polyhedron — the pairs of instances not yet strictly ordered by the
//! rows fixed so far. Applying a new row either
//!
//! * **violates** the dependence (some remaining pair would be ordered
//!   target-before-source),
//! * **satisfies** it (every remaining pair becomes strictly ordered), or
//! * leaves a smaller remaining polyhedron (pairs ordered equal at this
//!   level, which deeper levels must order).

use crate::depgraph::Dep;
use polymix_math::{CmpOp, Constraint, Polyhedron};

/// Mutable satisfaction state of one dependence edge during scheduling.
#[derive(Clone, Debug)]
pub struct DepState {
    /// Index of the edge in the PoDG.
    pub dep: usize,
    /// Remaining (not yet strictly ordered) instance pairs.
    pub remaining: Polyhedron,
    /// True once every pair is strictly ordered.
    pub satisfied: bool,
}

impl DepState {
    /// Initial state: nothing satisfied yet.
    pub fn new(dep_idx: usize, dep: &Dep) -> DepState {
        DepState {
            dep: dep_idx,
            remaining: dep.poly.clone(),
            satisfied: false,
        }
    }
}

/// Outcome of applying one schedule row to a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowEffect {
    /// Some instance pair would execute target before source: illegal.
    Violated,
    /// All remaining pairs became strictly ordered: edge fully satisfied.
    Satisfied,
    /// Remaining pairs are ordered equal at this level; recurse deeper.
    Continue,
}

/// Applies the loop-level rows `row_src` / `row_dst` (statement-local
/// layout `[iters | params | 1]`) to the edge. On [`RowEffect::Continue`]
/// the state's remaining polyhedron is shrunk by the equality.
pub fn apply_loop_row(
    dep: &Dep,
    state: &mut DepState,
    row_src: &[i64],
    row_dst: &[i64],
) -> RowEffect {
    if state.satisfied {
        return RowEffect::Satisfied;
    }
    let diff = dep.diff_row(row_src, row_dst); // θ_dst - θ_src over dep space
    let n = diff.len() - 1;

    // Violation: exists remaining pair with diff <= -1.
    let mut viol = state.remaining.clone();
    let neg: Vec<i64> = diff
        .iter()
        .enumerate()
        .map(|(i, &v)| if i == n { -v - 1 } else { -v })
        .collect(); // -diff - 1 >= 0  ⇔  diff <= -1
    viol.add(Constraint::ge(neg));
    if !viol.is_empty() {
        return RowEffect::Violated;
    }

    // Satisfaction: are any pairs left with diff == 0?
    let mut eq = state.remaining.clone();
    eq.add(Constraint {
        row: diff,
        op: CmpOp::Eq,
    });
    if eq.is_empty() {
        state.satisfied = true;
        RowEffect::Satisfied
    } else {
        state.remaining = eq;
        RowEffect::Continue
    }
}

/// Applies a β comparison (`beta_src` vs `beta_dst`) at an interleaving
/// position: smaller-β side executes first.
pub fn apply_beta(state: &mut DepState, beta_src: i64, beta_dst: i64) -> RowEffect {
    if state.satisfied {
        return RowEffect::Satisfied;
    }
    match beta_src.cmp(&beta_dst) {
        std::cmp::Ordering::Less => {
            state.satisfied = true;
            RowEffect::Satisfied
        }
        std::cmp::Ordering::Greater => RowEffect::Violated,
        std::cmp::Ordering::Equal => RowEffect::Continue,
    }
}

/// Convenience: checks whether a *complete* pair of schedules is legal for
/// an edge by walking the interleaved `2d+1` positions (β then loop rows).
/// Reduction edges can be skipped by the caller when reduction
/// parallelization will handle them.
pub fn schedules_legal_for_dep(
    dep: &Dep,
    sched_src: &polymix_ir::Schedule,
    sched_dst: &polymix_ir::Schedule,
) -> bool {
    let mut state = DepState::new(0, dep);
    let max_k = sched_src.dim().max(sched_dst.dim());
    for k in 0..=max_k {
        let bs = sched_src.beta.get(k).copied().unwrap_or(0);
        let bd = sched_dst.beta.get(k).copied().unwrap_or(0);
        match apply_beta(&mut state, bs, bd) {
            RowEffect::Violated => return false,
            RowEffect::Satisfied => return true,
            RowEffect::Continue => {}
        }
        if k < sched_src.dim() && k < sched_dst.dim() {
            let rs = sched_src.loop_row(k);
            let rd = sched_dst.loop_row(k);
            match apply_loop_row(dep, &mut state, &rs, &rd) {
                RowEffect::Violated => return false,
                RowEffect::Satisfied => return true,
                RowEffect::Continue => {}
            }
        }
    }
    // All positions walked with pairs still ordered "equal": the remaining
    // pairs are distinct instances mapped to identical timestamps — treat
    // as illegal (the order between them is unspecified).
    state.remaining.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_podg;
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::{Schedule, Scop};

    /// `for i in 1..N: A[i] = A[i-1]` — serial chain.
    fn chain() -> Scop {
        let mut b = ScopBuilder::new("chain", &["N"], &[8]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(1), par("N"));
        let body = b.rd(a, &[ix("i") - con(1)]);
        b.stmt("S", a, &[ix("i")], body);
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    /// 2-D kernel with dependence only on the i loop:
    /// `for i in 1..N, j in 0..N: A[i][j] = A[i-1][j]`.
    fn vertical_stencil() -> Scop {
        let mut b = ScopBuilder::new("vert", &["N"], &[8]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(0), par("N"));
        let body = b.rd(a, &[ix("i") - con(1), ix("j")]);
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    #[test]
    fn identity_schedule_is_legal_for_chain() {
        let scop = chain();
        let g = build_podg(&scop);
        let s = &scop.statements[0].schedule;
        for d in &g.deps {
            assert!(schedules_legal_for_dep(d, s, s));
        }
    }

    #[test]
    fn reversal_is_illegal_for_chain() {
        let scop = chain();
        let g = build_podg(&scop);
        let mut s = scop.statements[0].schedule.clone();
        s.reverse_level(0);
        assert!(g
            .deps
            .iter()
            .any(|d| !schedules_legal_for_dep(d, &s, &s)));
    }

    #[test]
    fn interchange_legal_when_dep_is_on_one_loop_only() {
        let scop = vertical_stencil();
        let g = build_podg(&scop);
        // Swap i and j: dependence (1, 0) becomes (0, 1): still lexicographically
        // positive, so legal.
        let s = Schedule::from_permutation(&[1, 0], 1);
        for d in &g.deps {
            assert!(schedules_legal_for_dep(d, &s, &s));
        }
    }

    #[test]
    fn loop_row_peeling_tracks_satisfaction() {
        let scop = vertical_stencil();
        let g = build_podg(&scop);
        let flow = g
            .deps
            .iter()
            .find(|d| d.kind == crate::depgraph::DepKind::Flow)
            .unwrap();
        let mut st = DepState::new(0, flow);
        // Row i on both sides: carried strictly (distance 1) -> Satisfied.
        let row_i = vec![1, 0, 0, 0]; // [i, j | N | 1]
        assert_eq!(
            apply_loop_row(flow, &mut st, &row_i, &row_i),
            RowEffect::Satisfied
        );
        // Fresh state, row j first: distance 0 -> Continue, then row i satisfies.
        let mut st = DepState::new(0, flow);
        let row_j = vec![0, 1, 0, 0];
        assert_eq!(
            apply_loop_row(flow, &mut st, &row_j, &row_j),
            RowEffect::Continue
        );
        assert_eq!(
            apply_loop_row(flow, &mut st, &row_i, &row_i),
            RowEffect::Satisfied
        );
    }

    #[test]
    fn negative_row_is_violation() {
        let scop = chain();
        let g = build_podg(&scop);
        let d = &g.deps[0];
        let mut st = DepState::new(0, d);
        let row_neg = vec![-1, 0, 0]; // -i
        assert_eq!(
            apply_loop_row(d, &mut st, &row_neg, &row_neg),
            RowEffect::Violated
        );
    }

    #[test]
    fn beta_ordering() {
        let scop = chain();
        let g = build_podg(&scop);
        let mut st = DepState::new(0, &g.deps[0]);
        assert_eq!(apply_beta(&mut st, 0, 1), RowEffect::Satisfied);
        let mut st = DepState::new(0, &g.deps[0]);
        assert_eq!(apply_beta(&mut st, 1, 0), RowEffect::Violated);
        let mut st = DepState::new(0, &g.deps[0]);
        assert_eq!(apply_beta(&mut st, 2, 2), RowEffect::Continue);
    }

    #[test]
    fn shifted_schedule_still_legal() {
        // Retiming by a constant shifts both sides equally: still legal.
        let scop = chain();
        let g = build_podg(&scop);
        let mut s = scop.statements[0].schedule.clone();
        s.shift_level(0, &[0], 5);
        for d in &g.deps {
            assert!(schedules_legal_for_dep(d, &s, &s));
        }
    }
}
