//! # polymix-math
//!
//! Exact integer / rational linear algebra and affine integer set machinery
//! for the polymix polyhedral compiler.
//!
//! This crate is the "thin ISL" substrate of the workspace: instead of
//! binding to the Integer Set Library, we reimplement the slice of
//! polyhedral arithmetic the rest of the stack needs:
//!
//! * [`Ratio`] — exact `i64`-backed rationals (overflow-checked through
//!   `i128` intermediates),
//! * [`IntMat`] / [`RatMat`] — dense matrices with rank / solve / inverse,
//! * [`AffineExpr`] and [`Constraint`] — affine forms over an ordered list
//!   of dimensions plus a constant column,
//! * [`Polyhedron`] — conjunctions of affine constraints with
//!   Fourier–Motzkin elimination, projection, emptiness tests, bound
//!   extraction for code generation, and point sampling for tests.
//!
//! All PolyBench static control parts have loop bounds and subscripts with
//! coefficients in a tiny range, so exact-shadow Fourier–Motzkin (with a
//! GCD lattice test on equalities) is an *exact* integer emptiness test for
//! every set this workspace constructs; for general inputs it degrades to a
//! sound, conservative test (it may report a rationally-nonempty but
//! integer-empty set as nonempty, which can only suppress transformations,
//! never enable illegal ones).

pub mod fm;
pub mod gcd;
pub mod matrix;
pub mod poly;
pub mod ratio;

pub use fm::eliminate_dim;
pub use gcd::{gcd, gcd_slice, lcm, normalize_row};
pub use matrix::{IntMat, RatMat};
pub use poly::{AffineExpr, CmpOp, Constraint, Polyhedron};
pub use ratio::Ratio;

#[cfg(all(test, feature = "proptest"))]
mod proptests;
