//! Exact rational arithmetic on `i64` numerator / denominator pairs.
//!
//! All intermediate products are computed in `i128` and checked back into
//! `i64` after reduction, so overflow panics loudly instead of silently
//! wrapping — the polyhedra manipulated by the compiler stay tiny, and a
//! panic here always indicates a logic bug upstream.

use crate::gcd::gcd;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number with a strictly positive denominator.
///
/// The representation is always fully reduced: `gcd(num, den) == 1` and
/// `den > 0`. Zero is represented as `0/1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Builds the reduced rational `num / den`. Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Ratio {
        assert!(den != 0, "Ratio with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        let g = if g == 0 { 1 } else { g };
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn int(n: i64) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// Numerator of the reduced form (sign-carrying).
    pub fn num(self) -> i64 {
        self.num
    }

    /// Denominator of the reduced form (always positive).
    pub fn den(self) -> i64 {
        self.den
    }

    /// True iff the value is an integer.
    pub fn is_int(self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns the integer value, panicking if the rational is not integral.
    pub fn to_int(self) -> i64 {
        assert!(self.den == 1, "Ratio {self} is not an integer");
        self.num
    }

    /// Floor to the nearest integer towards negative infinity.
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to the nearest integer towards positive infinity.
    pub fn ceil(self) -> i64 {
        -((-self.num).div_euclid(self.den))
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "division by zero Ratio");
        Ratio::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(self) -> i64 {
        self.num.signum()
    }

    fn from_i128(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "Ratio with zero denominator");
        let sign: i128 = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den);
        let g = if g == 0 { 1 } else { g };
        let num = sign * num / g;
        let den = sign * den / g;
        Ratio {
            num: i64::try_from(num).expect("Ratio numerator overflow"),
            den: i64::try_from(den).expect("Ratio denominator overflow"),
        }
    }
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::from_i128(
            self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::from_i128(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero Ratio");
        Ratio::from_i128(
            self.num as i128 * rhs.den as i128,
            self.den as i128 * rhs.num as i128,
        )
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::int(n)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign_normalization() {
        let r = Ratio::new(4, -6);
        assert_eq!(r.num(), -2);
        assert_eq!(r.den(), 3);
        assert_eq!(Ratio::new(0, -5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::int(2));
        assert_eq!(-a + a, Ratio::ZERO);
    }

    #[test]
    fn floor_ceil_negative_values() {
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::int(5).floor(), 5);
        assert_eq!(Ratio::int(5).ceil(), 5);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 3) > Ratio::new(-1, 2));
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
    }

    #[test]
    fn recip_and_signum() {
        assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
        assert_eq!(Ratio::new(-2, 3).recip(), Ratio::new(-3, 2));
        assert_eq!(Ratio::new(-2, 3).signum(), -1);
        assert_eq!(Ratio::ZERO.signum(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    #[should_panic]
    fn non_integral_to_int_panics() {
        let _ = Ratio::new(1, 2).to_int();
    }
}
